"""The initial ruleset: the repository's real contracts, as AST checks.

Each rule documents *what convention it machine-checks* and *which
part of the repo established it* — a rule nobody can trace back to a
contract is noise.  See ``tools/reprolint/tests/corpus/`` for one
violating and one conforming snippet per rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from reprolint.core import Finding, LintConfig, Rule, SourceModule

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map local alias -> fully dotted origin for every import.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from numpy.random import default_rng as drg`` yields
    ``{"drg": "numpy.random.default_rng"}``.  Only module-level and
    nested imports both count (a function-local ``import random`` is
    still unkeyed randomness).
    """
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    out[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                out[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return out


def dotted_name(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve a ``Name``/``Attribute`` chain to a dotted string with
    import aliases expanded; ``None`` for anything else (calls,
    subscripts, …)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = imports.get(node.id, node.id)
    parts.append(head)
    return ".".join(reversed(parts))


def identifiers(tree: ast.AST) -> set[str]:
    """Every ``Name`` id and ``Attribute`` attr in the tree — the
    cheap \"does this file mention X\" primitive RP002 uses."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            out.add(node.id)
        elif isinstance(node, ast.Attribute):
            out.add(node.attr)
    return out


def _enclosing_reference(
    stack: list[ast.AST],
) -> bool:
    return any(
        isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        and n.name.endswith("_reference")
        for n in stack
    )


# ---------------------------------------------------------------------------
# RP001 — unkeyed randomness
# ---------------------------------------------------------------------------


class UnkeyedRandomness(Rule):
    """All randomness flows through ``repro.utils.rng``.

    The determinism contract (``tests/test_determinism_contract.py``:
    bit-identical results across worker counts and batch/non-batch
    decode paths) holds because every stochastic component draws from
    a seeded or counter-keyed generator handed to it by the harness.
    A stray ``np.random.default_rng()`` (or stdlib ``random``) is a
    hidden entropy source that silently breaks that property, so
    constructing raw generators is allowed only inside
    ``utils/rng.py`` itself and in the exploratory ``examples/``
    tree.  Everyone else takes a ``Generator`` (or seed) argument and
    normalises it with ``ensure_rng`` / ``derive_rng`` / ``keyed_rng``.
    """

    rule_id = "RP001"
    title = "unkeyed randomness outside utils/rng"

    _NUMPY_BANNED = {
        "numpy.random.default_rng",
        "numpy.random.seed",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.Philox",
        "numpy.random.PCG64",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
        "numpy.random.set_state",
    }

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterator[Finding]:
        if module.rel == config.rng_module or module.is_under(
            *config.exploratory_dirs
        ):
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield Finding(
                            self.rule_id,
                            module.rel,
                            node.lineno,
                            "stdlib `random` is unkeyed; draw from "
                            "repro.utils.rng streams instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield Finding(
                        self.rule_id,
                        module.rel,
                        node.lineno,
                        "stdlib `random` is unkeyed; draw from "
                        "repro.utils.rng streams instead",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func, imports)
                if name in self._NUMPY_BANNED:
                    short = name.rsplit(".", 1)[-1]
                    yield Finding(
                        self.rule_id,
                        module.rel,
                        node.lineno,
                        f"direct `np.random.{short}` call; only "
                        "utils/rng.py constructs generators — use "
                        "ensure_rng / derive_rng / keyed_rng",
                    )


# ---------------------------------------------------------------------------
# RP002 — kernel-twin discipline
# ---------------------------------------------------------------------------


class KernelTwinDiscipline(Rule):
    """Every vectorized kernel keeps its loop spec pinned and gated.

    PRs 1/4/5 established the template: a public ``*_reference``
    function is the executable specification of a vectorized twin,
    pinned bit-for-bit in ``tests/test_vectorized_equivalence.py``
    and speed-gated (>= 5x) under ``benchmarks/``.  This rule makes
    the three-way link a machine invariant, so a reference whose twin
    was renamed — or whose equivalence test or benchmark was deleted —
    can no longer drift out of the gate suite silently.
    """

    rule_id = "RP002"
    title = "kernel reference twin out of the gate suite"

    def finalize(
        self, modules: list[SourceModule], config: LintConfig
    ) -> Iterator[Finding]:
        refs: list[tuple[SourceModule, ast.FunctionDef]] = []
        for module in modules:
            if not module.is_under("src"):
                continue
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name.endswith("_reference")
                    and not node.name.startswith("_")
                ):
                    refs.append((module, node))
        if not refs:
            return

        equiv_ids = self._file_identifiers(
            config.root / config.equivalence_test
        )
        bench_ids: set[str] = set()
        bench_dir = config.root / config.benchmarks_dir
        if bench_dir.is_dir():
            for path in sorted(bench_dir.glob("*.py")):
                bench_ids |= self._file_identifiers(path)

        for module, node in refs:
            twin = node.name[: -len("_reference")]
            module_defs = {
                n.name
                for n in ast.walk(module.tree)
                if isinstance(n, ast.FunctionDef)
            }
            if twin not in module_defs:
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    f"`{node.name}` has no vectorized twin `{twin}` "
                    "in the same module",
                )
            if equiv_ids is None:
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    f"equivalence suite {config.equivalence_test} is "
                    "missing; cannot pin reference twins",
                )
            elif node.name not in equiv_ids:
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    f"`{node.name}` is not exercised by "
                    f"{config.equivalence_test} (bit-for-bit pin "
                    "missing)",
                )
            if twin not in bench_ids and node.name not in bench_ids:
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    f"`{twin}` has no benchmark under "
                    f"{config.benchmarks_dir}/ (speed gate missing)",
                )

    @staticmethod
    def _file_identifiers(path: Path) -> set[str] | None:
        if not path.is_file():
            return None
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            return None
        return identifiers(tree)


# ---------------------------------------------------------------------------
# RP003 — experiment contract
# ---------------------------------------------------------------------------


def _is_main_guard(node: ast.If) -> bool:
    test = node.test
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "__name__"
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Eq)
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value == "__main__"
    )


class ExperimentContract(Rule):
    """Each ``exp_*`` module registers exactly one spec, lazily.

    The PR 3 registry discovers experiments by importing every
    ``exp_*`` module; the runner, tests, and tooling all rely on (a)
    one module <-> one ``@register`` spec (``discover()`` would
    silently half-import a module registering zero or two), and (b)
    imports being side-effect-free — a module-level simulation run
    would execute on *every* ``discover()`` call, in every worker
    process.  Constants and point declarations (``grid``/``sweep``
    assignments) are fine; bare module-level calls and loops are not.
    The ``if __name__ == "__main__"`` preview block is exempt.
    """

    rule_id = "RP003"
    title = "experiment module contract"

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterator[Finding]:
        name = Path(module.rel).name
        if not (
            name.startswith("exp_")
            and module.is_under("src")
            and name.endswith(".py")
        ):
            return
        n_registered = 0
        register_lines: list[int] = []
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                for deco in node.decorator_list:
                    target = deco.func if isinstance(deco, ast.Call) else deco
                    dn = dotted_name(target, {})
                    if dn is not None and dn.split(".")[-1] == "register":
                        n_registered += 1
                        register_lines.append(node.lineno)
            elif isinstance(node, ast.Expr):
                if isinstance(node.value, ast.Constant):
                    continue  # docstring / stray constant
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    "module-level call runs at import time (on every "
                    "registry discover()); move it under the "
                    "registered experiment body or the __main__ guard",
                )
            elif isinstance(node, (ast.For, ast.While, ast.With, ast.Try)):
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    f"module-level `{type(node).__name__.lower()}` "
                    "block runs at import time; experiment modules "
                    "must import side-effect-free",
                )
            elif isinstance(node, ast.If) and not _is_main_guard(node):
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    "conditional module-level code; only the "
                    '`if __name__ == "__main__"` preview guard is '
                    "allowed",
                )
        if n_registered != 1:
            yield Finding(
                self.rule_id,
                module.rel,
                register_lines[1] if len(register_lines) > 1 else 1,
                f"exp_* module must register exactly one "
                f"ExperimentSpec via @register, found {n_registered}",
            )


# ---------------------------------------------------------------------------
# RP004 — hot-path purity
# ---------------------------------------------------------------------------


class HotPathPurity(Rule):
    """No per-element Python loops over arrays in hot modules.

    The entire point of PRs 1, 4, and 5 was to eliminate
    element-at-a-time Python from the reception and coding hot paths
    (~15-30x).  This rule keeps them out: inside ``phy/``,
    ``coding/``, and ``sim/medium.py`` it flags

    * multi-dimensional scalar element access swept by nested Python
      loops — a subscript like ``out[i, j]`` whose index tuple names
      two or more enclosing ``for`` targets (the signature of every
      deoptimization those PRs removed), and
    * explicit element iteration via ``np.nditer`` / ``np.ndindex`` /
      ``.flat``.

    ``*_reference`` functions are exempt — they are the executable
    *specifications* of the vectorized kernels (RP002 keeps them
    honest).  Loops over Python objects, ragged group lists, or pivot
    steps that do whole-row array operations are untouched.
    """

    rule_id = "RP004"
    title = "per-element Python loop in hot module"

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterator[Finding]:
        if not module.is_under(*config.hot_paths):
            return
        seen: set[tuple[int, str]] = set()
        for finding in self._scan(module):
            key = (finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                yield finding

    def _scan(self, module: SourceModule) -> Iterator[Finding]:
        imports = import_map(module.tree)

        def visit(
            node: ast.AST,
            loop_targets: frozenset[str],
            stack: list[ast.AST],
        ) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack = stack + [node]
                loop_targets = frozenset()
            if _enclosing_reference(stack):
                return
            if isinstance(node, ast.For):
                yield from self._check_iterable(
                    module, node.iter, imports
                )
                loop_targets = loop_targets | frozenset(
                    _target_names(node.target)
                )
            if isinstance(node, ast.Subscript):
                hit = self._tuple_loop_index(node, loop_targets)
                if hit:
                    yield Finding(
                        self.rule_id,
                        module.rel,
                        node.lineno,
                        "scalar element access "
                        f"`[{', '.join(sorted(hit))}]` swept by nested "
                        "Python loops; vectorize (keep the loop only "
                        "in a *_reference spec)",
                    )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, loop_targets, stack)

        yield from visit(module.tree, frozenset(), [])

    def _check_iterable(
        self,
        module: SourceModule,
        iterable: ast.expr,
        imports: dict[str, str],
    ) -> Iterator[Finding]:
        if isinstance(iterable, ast.Call):
            name = dotted_name(iterable.func, imports)
            if name in ("numpy.nditer", "numpy.ndindex"):
                yield Finding(
                    self.rule_id,
                    module.rel,
                    iterable.lineno,
                    f"`{name.rsplit('.', 1)[-1]}` iterates array "
                    "elements in Python; vectorize",
                )
        if (
            isinstance(iterable, ast.Attribute)
            and iterable.attr == "flat"
        ):
            yield Finding(
                self.rule_id,
                module.rel,
                iterable.lineno,
                "`.flat` iterates array elements in Python; vectorize",
            )

    @staticmethod
    def _tuple_loop_index(
        node: ast.Subscript, loop_targets: frozenset[str]
    ) -> set[str]:
        """Loop-target names indexing a multi-dim scalar subscript.

        Returns a non-empty set only when the subscript's index is a
        tuple of simple (slice-free) expressions naming >= 2 distinct
        enclosing-loop variables — ``aug[row, col]`` with one loop
        variable, ``rows[i, :]`` row slices, and boolean-mask indexing
        all stay clean.
        """
        index = node.slice
        if not isinstance(index, ast.Tuple) or len(index.elts) < 2:
            return set()
        hits: set[str] = set()
        for elt in index.elts:
            if isinstance(elt, (ast.Slice, ast.Starred)):
                return set()
            for sub in ast.walk(elt):
                if isinstance(sub, ast.Slice):
                    return set()
                if (
                    isinstance(sub, ast.Name)
                    and sub.id in loop_targets
                ):
                    hits.add(sub.id)
        return hits if len(hits) >= 2 else set()


def _target_names(target: ast.expr) -> Iterator[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


# ---------------------------------------------------------------------------
# RP005 — nondeterminism sources in library code
# ---------------------------------------------------------------------------


class NondeterminismSources(Rule):
    """No wall-clock reads or float-literal equality in library code.

    Experiment artifacts are byte-diffed across worker counts and
    decode paths in CI; a ``time.time()`` (or ``datetime.now()``)
    that leaks into results breaks the diff non-reproducibly.
    Interval timing for reporting uses ``time.perf_counter`` (as the
    runner does, excluded from JSON artifacts) and the benchmark
    harness lives under ``benchmarks/``, outside reprolint's scan.

    Float-literal ``==``/``!=`` comparisons are the other classic
    flakiness source: they encode an exact-representation assumption
    that vectorization or reassociation silently invalidates.  For
    exact zero-sentinel checks use truthiness (``if not frac:``);
    for tolerances use ``math.isclose``/``np.isclose``.  Tests are
    exempt — pinning exact values is precisely what the equivalence
    suite is for.
    """

    rule_id = "RP005"
    title = "nondeterminism source in library code"

    _WALL_CLOCK = {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterator[Finding]:
        imports = import_map(module.tree)
        in_tests = module.is_under(*config.tests_dirs)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func, imports)
                if name in self._WALL_CLOCK:
                    yield Finding(
                        self.rule_id,
                        module.rel,
                        node.lineno,
                        f"wall-clock `{name}` is nondeterministic; "
                        "use time.perf_counter for intervals and "
                        "keep clock reads out of results",
                    )
            elif (
                isinstance(node, ast.Compare)
                and not in_tests
                and any(
                    isinstance(op, (ast.Eq, ast.NotEq))
                    for op in node.ops
                )
                and any(
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    for side in [node.left, *node.comparators]
                )
            ):
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    "float-literal ==/!= comparison; use "
                    "truthiness for exact-zero sentinels or "
                    "isclose for tolerances",
                )


# ---------------------------------------------------------------------------
# RP008 — supervised fan-out
# ---------------------------------------------------------------------------


class BareWorkerPool(Rule):
    """Parallel fan-out goes through the supervised executor.

    PR 9 replaced the run cache's bare ``Pool.map`` with
    ``repro.exec.Supervisor``: per-task worker processes with
    deadline timeouts, crash isolation, deterministic keyed
    retry/backoff, immediate result write-back, and ``REPRO_FAULTS``
    injection.  A bare ``multiprocessing.Pool`` (or
    ``ProcessPoolExecutor``) loses the whole batch to one dead worker
    and waits forever on a wedged one, so constructing unsupervised
    pools is allowed only inside the executor package itself (and the
    exploratory ``examples/`` tree).
    """

    rule_id = "RP008"
    title = "bare worker pool outside repro/exec"

    _BANNED = {
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "multiprocessing.pool.ThreadPool",
        "multiprocessing.dummy.Pool",
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    }
    #: attribute spellings that reach a pool through a context object
    #: (``ctx.Pool(...)``), which import resolution cannot see
    _BANNED_ATTRS = {"Pool", "ThreadPool", "ProcessPoolExecutor"}

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterator[Finding]:
        if module.is_under(*config.exec_dirs) or module.is_under(
            *config.exploratory_dirs
        ):
            return
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, imports)
            if name in self._BANNED:
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    f"bare `{name}` fan-out; run tasks through "
                    "repro.exec.Supervisor (timeouts, crash "
                    "isolation, deterministic retries)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._BANNED_ATTRS
            ):
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    f"`.{node.func.attr}(...)` constructs an "
                    "unsupervised worker pool; run tasks through "
                    "repro.exec.Supervisor",
                )


def _all_rules() -> tuple[Rule, ...]:
    # dataflow.py imports helpers from this module; resolve the cycle
    # by assembling the registry lazily at import completion.
    from reprolint.dataflow import DATAFLOW_RULES

    return (
        UnkeyedRandomness(),
        KernelTwinDiscipline(),
        ExperimentContract(),
        HotPathPurity(),
        NondeterminismSources(),
        BareWorkerPool(),
        *DATAFLOW_RULES,
    )


ALL_RULES: tuple[Rule, ...] = _all_rules()
