"""reprolint — AST-based invariant checker for this repository.

The repo's correctness story rests on conventions that ordinary test
suites cannot enforce by construction: vectorized kernels keep loop
``*_reference`` executable specifications pinned bit-for-bit and
speed-gated, all randomness flows through the keyed streams of
``repro.utils.rng``, experiment modules register exactly one
:class:`ExperimentSpec`, and designated hot modules stay free of
per-element Python loops over array data.  reprolint turns those
conventions into machine-checked invariants: a small rule framework
over stdlib :mod:`ast` (no new runtime dependencies), a
``python -m reprolint`` CLI with text and JSON output, and per-line
suppressions that *require* a written justification.

Rules
-----
RP001  unkeyed randomness: ``np.random.default_rng`` /
       ``np.random.seed`` / ``np.random.RandomState`` / stdlib
       ``random`` anywhere outside ``utils/rng.py`` (and the
       explicitly-exploratory ``examples/`` tree).
RP002  kernel-twin discipline: every public ``*_reference`` function
       must have a non-reference twin in the same module, an
       equivalence test in ``tests/test_vectorized_equivalence.py``,
       and a benchmark under ``benchmarks/``.
RP003  experiment contract: every ``exp_*`` module registers exactly
       one spec and runs nothing at import time.
RP004  hot-path purity: no per-element Python loops over ndarrays in
       the designated hot modules (``phy/``, ``coding/``,
       ``sim/medium.py``).
RP005  nondeterminism in library code: wall-clock reads
       (``time.time``, ``datetime.now``, …) and float-literal ``==``
       comparisons outside tests.
RP006  unit confusion: unit tags inferred from the ``*_db`` /
       ``*_dbm`` / ``*_mw`` / ``*_watts`` / ``*_linear`` / ``*_s`` /
       ``*_samples`` / ``*_chips`` naming convention are propagated
       through assignments, arithmetic, and call bindings; mixing
       log-scale with linear power, mW with W, or seconds with
       sample/chip counts is flagged.
RP007  RNG stream-domain collisions: every ``derive_key`` /
       ``keyed_rng`` call site (through forwarding wrappers) is
       resolved to its ``(label, id-arity, literal extras)`` domain;
       two sites sharing a domain, a non-literal label, or starred
       ids outside a forwarder are flagged.
RP008  bare worker pools: ``multiprocessing.Pool`` /
       ``ProcessPoolExecutor`` / ``ctx.Pool(...)`` anywhere outside
       the supervised-executor package ``src/repro/exec`` (parallel
       fan-out goes through ``repro.exec.Supervisor``, which adds
       timeouts, crash isolation, and deterministic retries).
RP000  meta: malformed, unjustified, unknown-rule, or unused
       suppression comments.

Suppression syntax (justification mandatory)::

    risky_call()  # reprolint: disable=RP001 -- why this is safe here
"""

from reprolint.core import Checker, Finding, LintConfig, Rule
from reprolint.rules import ALL_RULES

__version__ = "2.1.0"

__all__ = [
    "ALL_RULES",
    "Checker",
    "Finding",
    "LintConfig",
    "Rule",
    "__version__",
]
