"""Cross-module dataflow rules: unit tags and RNG stream domains.

Where ``rules.py`` checks shapes a single line can betray, the two
rules here need *dataflow*: a unit bug is a ``_db`` value flowing into
a milliwatt sum three assignments later, and an RNG stream collision
is two call sites in different subsystems hashing the same
``(label, ids)`` tuple.  Both analyses are deliberately lightweight —
forward propagation over names, arithmetic, and call bindings, no
fixpoints over loops — tuned so the repository's real conventions
infer cleanly with zero suppressions.

RP006 — unit confusion
    The radio model works in three coupled unit systems: log-scale
    powers (``*_db`` relative, ``*_dbm`` absolute), linear powers
    (``*_mw`` / ``*_watts`` / ``*_linear`` ratios), and the time axis
    (``*_s`` seconds vs ``*_samples`` / ``*_chips`` counts).  Tags are
    inferred from the naming convention, from ``utils/units.py``-style
    ``x_to_y`` conversion signatures, and from the ``10*log10`` /
    ``10**(x/10)`` idioms, then propagated through assignments,
    arithmetic, and positional/keyword call bindings project-wide.
    Flagged: adding log-scale to linear, adding two absolute dBm
    powers (powers add in mW, not dB), mixing seconds with sample or
    chip counts, mW with W, and binding an expression with one tag to
    a parameter declaring another.

RP007 — RNG stream-domain collisions
    Every keyed Philox stream is ``derive_key(seed, label, *ids)``;
    bit-identical multiprocess determinism (PR 2) assumes no two
    subsystems hash the same ``(label, ids)`` tuple.  This rule
    collects every ``derive_key`` / ``keyed_rng`` call site —
    including through forwarding wrappers like
    ``gf2_coefficients(seed, label, *ids)`` and calls via variables —
    and flags two sites sharing a ``(label, arity, extras)`` domain,
    any non-literal label, and any starred ``ids`` outside a
    forwarder (unresolvable arity).  Tests are exempt: deliberately
    reconstructing a key to pin its value is their job.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator

from reprolint.core import Finding, LintConfig, Rule, SourceModule
from reprolint.rules import dotted_name, import_map

# ---------------------------------------------------------------------------
# unit tags
# ---------------------------------------------------------------------------

#: log-scale power tags
LOG_TAGS = frozenset({"db", "dbm"})
#: linear power tags ("linear" is a dimensionless power ratio)
LIN_TAGS = frozenset({"mw", "watts", "linear"})
POWER_TAGS = LOG_TAGS | LIN_TAGS
#: the time axis: wall seconds vs sample/chip counts
TIME_TAGS = frozenset({"s", "samples", "chips"})
ALL_TAGS = POWER_TAGS | TIME_TAGS

#: tags that survive multiplicative scaling (a count times a rate is
#: a *different* count, so samples/chips never propagate through */ )
_SCALABLE = frozenset({"db", "dbm", "mw", "watts", "linear", "s"})

#: bare names that are a unit by themselves (units.py parameter style);
#: bare ``s``/``samples``/``chips`` are deliberately absent — short
#: loop variables and waveform arrays use those names for *values*.
_FULL_NAME_TAGS = {
    "db": "db",
    "dbm": "dbm",
    "mw": "mw",
    "watts": "watts",
    "linear": "linear",
}

_SUFFIX_TAGS = {
    "db": "db",
    "dbm": "dbm",
    "mw": "mw",
    "watts": "watts",
    "linear": "linear",
    "s": "s",
    "samples": "samples",
    "chips": "chips",
}

_X_TO_Y_RE = re.compile(r"^(?P<x>.+)_to_(?P<y>[a-z0-9]+)$")

#: builtins / numpy callables that return their first argument's unit
_PASSTHROUGH = frozenset(
    {
        "float",
        "int",
        "abs",
        "round",
        "asarray",
        "array",
        "ascontiguousarray",
        "atleast_1d",
        "abs_",
        "absolute",
        "copy",
        "full_like",
        "broadcast_to",
    }
)
#: callables whose result carries the common tag of all tagged args
_COMBINING = frozenset({"min", "max", "maximum", "minimum", "clip", "where"})
#: ndarray methods that keep the receiver's unit
_METHOD_PASSTHROUGH = frozenset(
    {"sum", "mean", "min", "max", "copy", "astype", "reshape", "ravel",
     "squeeze", "item", "flatten", "cumsum"}
)
#: external modules whose attributes must not hit the project
#: signature table (``np.correlate`` is not ``Synchronizer.correlate``)
_EXTERNAL_HEADS = frozenset({"numpy", "math", "scipy", "builtins"})


#: metric-prefix factors: multiplying or dividing by one of these is a
#: deliberate scale conversion, so the operand's tag must not survive
_SCALE_FACTORS = frozenset({1e3, 1e-3, 1e6, 1e-6, 1e9, 1e-9})


def _scale_breaking(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and abs(float(node.value)) in _SCALE_FACTORS
    )


def suffix_tag(name: str) -> str | None:
    """Unit tag a name declares through the repo naming convention.

    ``snr_db`` -> ``db``; ``n_chips`` -> ``chips``; ``bits_per_s`` ->
    ``None`` (a rate, not a duration); bare ``s`` -> ``None``.
    """
    name = name.lstrip("_").lower()
    if name in _FULL_NAME_TAGS:
        return _FULL_NAME_TAGS[name]
    tokens = name.split("_")
    if len(tokens) < 2:
        return None
    last, prev = tokens[-1], tokens[-2]
    if prev == "per":  # bits_per_s, joules_per_mw, ...: rates
        return None
    return _SUFFIX_TAGS.get(last)


def _conversion_tags(fn_name: str) -> tuple[str | None, str | None]:
    """``(param_tag, return_tag)`` for an ``x_to_y`` conversion name.

    Both sides must be power-domain unit tokens (``dbm_to_mw`` yes,
    ``words_to_chips`` no — that converts representations, not units).
    """
    match = _X_TO_Y_RE.match(fn_name)
    if match is None:
        return None, None
    x = match.group("x").split("_")[-1]
    y = match.group("y")
    if x in POWER_TAGS and y in POWER_TAGS:
        return x, y
    return None, None


def return_tag_for(fn_name: str) -> str | None:
    """Unit tag a callable's *name* promises for its return value.

    Only the power domain is trusted: ``rx_power_mw`` returns mW, but
    ``modulate_chips`` returns waveform *samples* (its suffix names
    the input), so count suffixes never imply a return tag.
    """
    tag = suffix_tag(fn_name)
    if tag in POWER_TAGS:
        return tag
    return _conversion_tags(fn_name)[1]


def incompatible(a: str, b: str) -> str | None:
    """Reason two tags must not meet in +/-/comparison, else None."""
    if a == b:
        return None
    if a in LOG_TAGS and b in LOG_TAGS:
        return None  # db/dbm relative-vs-absolute handled at Add/Sub
    pair = {a, b}
    if pair <= TIME_TAGS:
        return f"seconds/sample-count confusion ({a} vs {b})"
    if (a in POWER_TAGS) != (b in POWER_TAGS):
        return f"power/time-axis confusion ({a} vs {b})"
    if pair == {"mw", "watts"}:
        return "mW/W scale confusion (convert explicitly)"
    if (a in LOG_TAGS) != (b in LOG_TAGS):
        return f"log-scale/linear confusion ({a} vs {b})"
    return None  # linear vs mw/watts: ratio scaling is fine


@dataclass(frozen=True)
class FnSig:
    """Unit profile of one callable: what each binding declares."""

    params: tuple[tuple[str, str | None], ...]  # positional, self-less
    kwonly: tuple[tuple[str, str | None], ...]
    has_vararg: bool
    has_kwarg: bool
    returns: str | None

    def param_tag(self, name: str) -> str | None:
        for pname, tag in (*self.params, *self.kwonly):
            if pname == name:
                return tag
        return None


_AMBIGUOUS = FnSig(params=(), kwonly=(), has_vararg=True, has_kwarg=True,
                   returns=None)


def _function_sig(node: ast.FunctionDef, *, is_method: bool) -> FnSig:
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    if is_method and positional:
        decorators = {
            d.id for d in node.decorator_list if isinstance(d, ast.Name)
        }
        if "staticmethod" not in decorators:
            positional = positional[1:]  # self / cls
    conv_param, conv_return = _conversion_tags(node.name)
    params: list[tuple[str, str | None]] = []
    for i, arg in enumerate(positional):
        tag = suffix_tag(arg.arg)
        if tag is None and i == 0:
            tag = conv_param
        params.append((arg.arg, tag))
    kwonly = tuple(
        (arg.arg, suffix_tag(arg.arg)) for arg in args.kwonlyargs
    )
    returns = return_tag_for(node.name)
    if returns is None:
        returns = conv_return
    return FnSig(
        params=tuple(params),
        kwonly=kwonly,
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        returns=returns,
    )


def _class_sig(node: ast.ClassDef) -> FnSig | None:
    """Constructor profile: ``__init__`` params, else dataclass fields."""
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            return _function_sig(item, is_method=True)
    fields = [
        (item.target.id, suffix_tag(item.target.id))
        for item in node.body
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
    ]
    if not fields:
        return None
    return FnSig(params=tuple(fields), kwonly=(), has_vararg=False,
                 has_kwarg=False, returns=None)


def build_signature_table(modules: list[SourceModule]) -> dict[str, FnSig]:
    """Bare callable name -> unit profile, project-wide.

    A name defined twice with *different* profiles (``decode`` on
    several classes, say) is ambiguous and dropped — better to skip a
    binding check than to bind against the wrong overload.
    """
    table: dict[str, FnSig] = {}
    ambiguous: set[str] = set()

    def record(name: str, sig: FnSig) -> None:
        if name in ambiguous:
            return
        prior = table.get(name)
        if prior is not None and prior != sig:
            ambiguous.add(name)
            table[name] = _AMBIGUOUS
            return
        table[name] = sig

    def scan(body: list[ast.stmt], *, in_class: bool) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.FunctionDef):
                    record(node.name, _function_sig(node, is_method=in_class))
                scan(node.body, in_class=False)
            elif isinstance(node, ast.ClassDef):
                sig = _class_sig(node)
                if sig is not None:
                    record(node.name, sig)
                scan(node.body, in_class=True)

    for module in modules:
        scan(module.tree.body, in_class=False)
    return table


# ---------------------------------------------------------------------------
# RP006 — unit-confusion dataflow
# ---------------------------------------------------------------------------


class _ScopeAnalyzer:
    """Forward tag propagation through one function (or module) body."""

    def __init__(
        self,
        module: SourceModule,
        table: dict[str, FnSig],
        imports: dict[str, str],
        findings: list[Finding],
    ) -> None:
        self.module = module
        self.table = table
        self.imports = imports
        self.findings = findings
        self.env: dict[str, str | None] = {}

    # -- findings ----------------------------------------------------

    def flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding("RP006", self.module.rel, node.lineno, message)
        )

    # -- statements --------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are analyzed independently
        if isinstance(stmt, ast.Assign):
            tag = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, tag, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            tag = self.infer(stmt.value)
            self._bind_target(stmt.target, tag, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            value_tag = self.infer(stmt.value)
            if isinstance(stmt.target, (ast.Name, ast.Attribute)):
                target_tag = self._target_tag(stmt.target)
                if isinstance(stmt.op, (ast.Add, ast.Sub)):
                    self._check_add_sub(
                        stmt, stmt.op, target_tag, value_tag
                    )
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self.infer(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self.infer(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            self.infer(stmt.iter)
            for name in ast.walk(stmt.target):
                if isinstance(name, ast.Name):
                    self.env.pop(name.id, None)
            self.run(stmt.body)
            self.run(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
            self.run(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
            return
        if isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.infer(child)
            return

    def _target_tag(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Name):
            return suffix_tag(target.id) or self.env.get(target.id)
        if isinstance(target, ast.Attribute):
            return suffix_tag(target.attr)
        return None

    def _bind_target(
        self, target: ast.expr, tag: str | None, value: ast.expr
    ) -> None:
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._bind_target(elt, None, value)
            return
        if isinstance(target, ast.Name):
            declared = suffix_tag(target.id)
            if declared is not None and tag is not None:
                reason = incompatible(declared, tag)
                if reason is not None:
                    self.flag(
                        value,
                        f"expression tagged `{tag}` assigned to "
                        f"`{target.id}` (declares `{declared}`): {reason}",
                    )
            self.env[target.id] = tag if declared is None else declared
            return
        if isinstance(target, ast.Attribute):
            declared = suffix_tag(target.attr)
            if declared is not None and tag is not None:
                reason = incompatible(declared, tag)
                if reason is not None:
                    self.flag(
                        value,
                        f"expression tagged `{tag}` assigned to "
                        f"`.{target.attr}` (declares `{declared}`): "
                        f"{reason}",
                    )

    # -- expressions -------------------------------------------------

    def infer(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return suffix_tag(node.id) or self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value)
            return suffix_tag(node.attr)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Subscript):
            tag = self.infer(node.value)
            if not isinstance(node.slice, ast.Slice):
                self.infer(node.slice)
            return tag
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Compare):
            self._compare(node)
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            a = self.infer(node.body)
            b = self.infer(node.orelse)
            return a if a == b else None
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.infer(elt)
            return None
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            self._comprehension(node)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.infer(value.value)
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self.infer(value)
            return None
        if isinstance(node, ast.Lambda):
            return None
        return None

    def _comprehension(self, node: ast.expr) -> None:
        # comprehension targets shadow outer names: drop their tags
        # while visiting the element/condition expressions.
        shadowed: dict[str, str | None] = {}
        for gen in node.generators:  # type: ignore[attr-defined]
            self.infer(gen.iter)
            for name in ast.walk(gen.target):
                if isinstance(name, ast.Name):
                    shadowed.setdefault(name.id, self.env.pop(name.id, None))
        saved = {k: self.env.get(k) for k in shadowed}
        try:
            for gen in node.generators:  # type: ignore[attr-defined]
                for cond in gen.ifs:
                    self.infer(cond)
            if isinstance(node, ast.DictComp):
                self.infer(node.key)
                self.infer(node.value)
            else:
                self.infer(node.elt)  # type: ignore[attr-defined]
        finally:
            for key, value in saved.items():
                if value is None:
                    self.env.pop(key, None)
                else:
                    self.env[key] = value

    # -- arithmetic --------------------------------------------------

    def _binop(self, node: ast.BinOp) -> str | None:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return self._check_add_sub(node, node.op, left, right)
        if isinstance(node.op, ast.Mult):
            if _scale_breaking(node.left) or _scale_breaking(node.right):
                return None  # `watts * 1e3` IS milliwatts, not watts
            return self._mult(left, right)
        if isinstance(node.op, ast.Div):
            return self._div(node, left, right)
        if isinstance(node.op, ast.Pow):
            return self._pow(node, right)
        if isinstance(node.op, (ast.FloorDiv, ast.Mod)):
            return left if right is None else None
        return None

    def _check_add_sub(
        self,
        node: ast.AST,
        op: ast.operator,
        left: str | None,
        right: str | None,
    ) -> str | None:
        if left is None or right is None:
            return left or right
        reason = incompatible(left, right)
        if reason is not None:
            sign = "+" if isinstance(op, ast.Add) else "-"
            self.flag(node, f"`{left} {sign} {right}`: {reason}")
            return None
        if left == "dbm" and right == "dbm":
            if isinstance(op, ast.Add):
                self.flag(
                    node,
                    "`dbm + dbm`: absolute powers do not add in dB — "
                    "convert with dbm_to_mw, sum, convert back",
                )
                return None
            return "db"  # a dBm difference is a dB gap
        if {left, right} == {"db", "dbm"}:
            if isinstance(op, ast.Add) or left == "dbm":
                return "dbm"  # absolute +/- relative offset
            return None  # db - dbm: a negated link budget; untracked
        if left == right:
            return left
        return None  # linear vs mw/watts: compatible but untracked

    @staticmethod
    def _mult(left: str | None, right: str | None) -> str | None:
        tags = [t for t in (left, right) if t is not None]
        if not tags:
            return None
        if len(tags) == 1:
            return tags[0] if tags[0] in _SCALABLE else None
        if "linear" in tags:  # ratio scaling keeps the other unit
            other = tags[0] if tags[1] == "linear" else tags[1]
            return other if other in _SCALABLE or other == "linear" else None
        return None

    @staticmethod
    def _div(
        node: ast.BinOp, left: str | None, right: str | None
    ) -> str | None:
        if left is not None and right is None:
            # dividing by a bare number keeps the unit (db/10, mw/2);
            # dividing by a *named* quantity converts it (chips/rate_hz),
            # as does a metric-prefix constant (mw/1e3 is watts)
            if isinstance(node.right, ast.Constant) and not _scale_breaking(
                node.right
            ):
                return left if left in _SCALABLE else None
            return None
        if left is not None and left == right:
            return "linear" if left in POWER_TAGS else None
        if {left, right} == {"mw", "linear"}:
            return "mw" if left == "mw" else None
        return None

    def _pow(self, node: ast.BinOp, exponent: str | None) -> str | None:
        base = node.left
        if isinstance(base, ast.Constant) and base.value in (10, 10.0):
            if exponent == "db":
                return "linear"
            if exponent == "dbm":
                return "mw"
        return None

    def _compare(self, node: ast.Compare) -> None:
        tags = [self.infer(node.left)]
        tags.extend(self.infer(comp) for comp in node.comparators)
        for (a, b), op in zip(
            zip(tags, tags[1:], strict=False), node.ops, strict=False
        ):
            if a is None or b is None:
                continue
            reason = incompatible(a, b)
            if reason is not None:
                self.flag(node, f"comparison of `{a}` with `{b}`: {reason}")
            elif {a, b} == {"db", "dbm"}:
                self.flag(
                    node,
                    "comparison of `db` with `dbm`: relative gain vs "
                    "absolute power",
                )

    # -- calls -------------------------------------------------------

    def _call(self, node: ast.Call) -> str | None:
        arg_tags = [
            None if isinstance(arg, ast.Starred) else self.infer(arg)
            for arg in node.args
        ]
        kw_tags = {
            kw.arg: self.infer(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.infer(kw.value)

        dotted = dotted_name(node.func, self.imports)
        head = dotted.split(".")[0] if dotted else None
        bare = None
        if isinstance(node.func, ast.Name):
            bare = self.imports.get(node.func.id, node.func.id).split(".")[-1]
        elif isinstance(node.func, ast.Attribute):
            bare = node.func.attr
            self.infer(node.func.value)
        if bare is None:
            return None

        external = head in _EXTERNAL_HEADS
        if bare == "log10":
            arg = arg_tags[0] if arg_tags else None
            if arg in ("mw", "watts"):
                return "dbm"
            if arg == "linear":
                return "db"
            return None
        if bare == "power" and external and len(node.args) == 2:
            base = node.args[0]
            if isinstance(base, ast.Constant) and base.value in (10, 10.0):
                if arg_tags[1] == "db":
                    return "linear"
                if arg_tags[1] == "dbm":
                    return "mw"
            return None
        if bare in _PASSTHROUGH:
            return arg_tags[0] if arg_tags else None
        if bare in _COMBINING:
            tags = {t for t in (*arg_tags, *kw_tags.values()) if t is not None}
            return tags.pop() if len(tags) == 1 else None
        if (
            isinstance(node.func, ast.Attribute)
            and bare in _METHOD_PASSTHROUGH
            and not external
        ):
            return self.infer(node.func.value)

        if external:
            return None
        sig = self.table.get(bare)
        if sig is None or sig is _AMBIGUOUS:
            return return_tag_for(bare)
        self._check_bindings(node, sig, arg_tags, kw_tags)
        return sig.returns if sig.returns is not None else return_tag_for(bare)

    def _check_bindings(
        self,
        node: ast.Call,
        sig: FnSig,
        arg_tags: list[str | None],
        kw_tags: dict[str, str | None],
    ) -> None:
        if any(isinstance(arg, ast.Starred) for arg in node.args) or any(
            kw.arg is None for kw in node.keywords
        ):
            return  # cannot bind positionally through */**
        if len(arg_tags) > len(sig.params) and not sig.has_vararg:
            return  # wrong table entry (arity mismatch); do not guess
        for (pname, ptag), atag, arg in zip(
            sig.params, arg_tags, node.args, strict=False
        ):
            self._check_one_binding(arg, pname, ptag, atag)
        for kw in node.keywords:
            if kw.arg is None:
                continue
            atag = kw_tags.get(kw.arg)
            ptag = sig.param_tag(kw.arg)
            self._check_one_binding(kw.value, kw.arg, ptag, atag)

    def _check_one_binding(
        self,
        arg: ast.expr,
        pname: str,
        ptag: str | None,
        atag: str | None,
    ) -> None:
        if ptag is None or atag is None:
            return
        reason = incompatible(ptag, atag)
        if reason is None and {ptag, atag} == {"db", "dbm"}:
            reason = "relative gain vs absolute power"
        if reason is not None:
            self.flag(
                arg,
                f"argument tagged `{atag}` bound to parameter "
                f"`{pname}` (declares `{ptag}`): {reason}",
            )


class UnitConfusion(Rule):
    """dB/dBm/mW and seconds/sample-count mixing, tracked as dataflow.

    The paper's capture and preamble-detection behaviour is a function
    of SINR comparisons; one dB value summed into a milliwatt total
    (or a carrier-sense threshold compared across scales) biases every
    delivery curve without failing any test.  See the module docstring
    for the tag system and ``README.md`` for the naming convention the
    tags are inferred from.
    """

    rule_id = "RP006"
    title = "unit confusion in tagged dataflow"

    def finalize(
        self, modules: list[SourceModule], config: LintConfig
    ) -> Iterator[Finding]:
        table = build_signature_table(modules)
        for module in modules:
            findings: list[Finding] = []
            imports = import_map(module.tree)

            def analyze(body: list[ast.stmt], env: dict[str, str | None],
                        module: SourceModule = module,
                        imports: dict[str, str] = imports,
                        findings: list[Finding] = findings) -> None:
                scope = _ScopeAnalyzer(module, table, imports, findings)
                scope.env.update(env)
                scope.run(body)

            analyze(module.tree.body, {})
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    env: dict[str, str | None] = {}
                    args = node.args
                    for arg in (
                        *args.posonlyargs,
                        *args.args,
                        *args.kwonlyargs,
                    ):
                        tag = suffix_tag(arg.arg)
                        if tag is not None:
                            env[arg.arg] = tag
                    conv_param, _ = _conversion_tags(node.name)
                    positional = [*args.posonlyargs, *args.args]
                    if conv_param is not None and positional:
                        first = positional[0].arg
                        if first not in ("self", "cls"):
                            env.setdefault(first, conv_param)
                        elif len(positional) > 1:
                            env.setdefault(positional[1].arg, conv_param)
                    analyze(node.body, env)
            seen: set[tuple[int, str]] = set()
            for finding in findings:
                key = (finding.line, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding


# ---------------------------------------------------------------------------
# RP007 — RNG stream-domain collisions
# ---------------------------------------------------------------------------

#: the keyed-stream constructors in utils/rng.py: (seed, label, *ids)
_BASE_ENTRY_POINTS = ("derive_key", "keyed_rng")
#: ids position in the (seed, label, *ids) calling convention
_IDS_START = 2


@dataclass(frozen=True)
class _EntryPoint:
    """One callable whose calls mint stream keys.

    ``extras`` are literal ids a forwarding wrapper appends before
    delegating (``gf2_coefficients`` appending a field discriminator):
    they are part of the hashed tuple, so they are part of the domain.
    """

    name: str
    extras: tuple[int, ...]


@dataclass(frozen=True)
class _CallSite:
    path: str
    line: int
    label: str
    arity: int
    extras: tuple[int, ...]


def _literal_int(node: ast.expr) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _callee_bare(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class StreamDomainCollision(Rule):
    """Two call sites must never share one ``derive_key`` domain.

    ``derive_key(seed, label, *ids)`` hashes ``(seed, label, ids...)``;
    the determinism contract assumes every subsystem draws from its
    own stream family.  Two sites with the same label and id-arity can
    collide for *some* id values — which manifests as two "independent"
    noise processes that are secretly identical (exactly the
    gf2/gf256 coefficient aliasing this rule first caught).  Forwarding
    wrappers — a ``label`` parameter plus a ``*ids`` vararg passed
    through verbatim, optionally with appended literal discriminators —
    are resolved transitively, so their *outer* call sites are the
    audited ones.  The runtime mirror of this rule is the
    ``REPRO_SANITIZE=1`` key ledger in ``repro.utils.sanitize``.
    """

    rule_id = "RP007"
    title = "RNG stream-domain collision"

    def finalize(
        self, modules: list[SourceModule], config: LintConfig
    ) -> Iterator[Finding]:
        entries, internal_sites = self._resolve_forwarders(modules)
        sites: list[_CallSite] = []
        for module in modules:
            if module.is_under(*config.tests_dirs) or module.is_under(
                *config.exploratory_dirs
            ):
                continue
            yield from self._scan_module(module, entries, internal_sites, sites)

        by_domain: dict[tuple[str, int, tuple[int, ...]], list[_CallSite]] = {}
        for site in sorted(sites, key=lambda s: (s.path, s.line)):
            by_domain.setdefault(
                (site.label, site.arity, site.extras), []
            ).append(site)
        for (label, arity, _extras), domain_sites in by_domain.items():
            distinct: list[_CallSite] = []
            for site in domain_sites:
                if not any(
                    d.path == site.path and d.line == site.line
                    for d in distinct
                ):
                    distinct.append(site)
            first = distinct[0]
            for site in distinct[1:]:
                yield Finding(
                    self.rule_id,
                    site.path,
                    site.line,
                    f"stream domain (label '{label}', {arity} ids) is "
                    f"also drawn at {first.path}:{first.line}; two call "
                    "sites sharing one key family can alias — add a "
                    "distinguishing label or literal id",
                )

    # -- forwarder resolution -----------------------------------------

    def _resolve_forwarders(
        self, modules: list[SourceModule]
    ) -> tuple[dict[str, _EntryPoint], set[tuple[str, int]]]:
        entries: dict[str, _EntryPoint] = {
            name: _EntryPoint(name, ()) for name in _BASE_ENTRY_POINTS
        }
        internal: set[tuple[str, int]] = set()
        defs: list[tuple[SourceModule, ast.FunctionDef]] = [
            (module, node)
            for module in modules
            for node in ast.walk(module.tree)
            if isinstance(node, ast.FunctionDef)
        ]
        changed = True
        while changed:
            changed = False
            for module, node in defs:
                hit = self._forwarding_call(node, entries)
                if hit is None:
                    continue
                call, extras = hit
                internal.add((module.rel, call.lineno))
                if node.name not in entries:
                    # keyed_rng itself forwards to derive_key: base
                    # entries get their internal site exempted too.
                    entries[node.name] = _EntryPoint(node.name, extras)
                    changed = True
        return entries, internal

    @staticmethod
    def _forwarding_call(
        node: ast.FunctionDef, entries: dict[str, _EntryPoint]
    ) -> tuple[ast.Call, tuple[int, ...]] | None:
        """The delegating call inside a forwarder, if this is one.

        A forwarder takes ``label`` and ``*ids`` and passes both
        verbatim to a known entry point, optionally appending literal
        int ids:  ``def f(seed, label, *ids, ...): ...
        entry(seed, label, *ids, 2)``.
        """
        args = node.args
        param_names = {a.arg for a in (*args.posonlyargs, *args.args)}
        if "label" not in param_names or args.vararg is None:
            return None
        vararg = args.vararg.arg
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            bare = _callee_bare(call)
            if bare is None or bare not in entries:
                continue
            if len(call.args) < _IDS_START + 1:
                continue
            label_arg = call.args[1]
            if not (
                isinstance(label_arg, ast.Name) and label_arg.id == "label"
            ):
                continue
            star = call.args[_IDS_START]
            if not (
                isinstance(star, ast.Starred)
                and isinstance(star.value, ast.Name)
                and star.value.id == vararg
            ):
                continue
            appended = [_literal_int(a) for a in call.args[_IDS_START + 1:]]
            if any(a is None for a in appended):
                continue
            extras = entries[bare].extras + tuple(
                a for a in appended if a is not None
            )
            return call, extras
        return None

    # -- per-module call-site scan -------------------------------------

    def _scan_module(
        self,
        module: SourceModule,
        entries: dict[str, _EntryPoint],
        internal_sites: set[tuple[str, int]],
        sites: list[_CallSite],
    ) -> Iterator[Finding]:
        aliases = self._entry_aliases(module, entries)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            candidates = self._candidates(node, entries, aliases)
            if not candidates:
                continue
            if (module.rel, node.lineno) in internal_sites:
                continue
            yield from self._scan_site(module, node, candidates, sites)

    @staticmethod
    def _entry_aliases(
        module: SourceModule, entries: dict[str, _EntryPoint]
    ) -> dict[str, tuple[str, ...]]:
        """Local names bound to entry points (``make = gf2 if .. else gf256``)."""
        aliases: dict[str, tuple[str, ...]] = {}
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            names: list[ast.expr]
            if isinstance(value, ast.IfExp):
                names = [value.body, value.orelse]
            else:
                names = [value]
            resolved = tuple(
                n.id
                for n in names
                if isinstance(n, ast.Name) and n.id in entries
            )
            if resolved and len(resolved) == len(names):
                aliases[target.id] = resolved
        return aliases

    @staticmethod
    def _candidates(
        node: ast.Call,
        entries: dict[str, _EntryPoint],
        aliases: dict[str, tuple[str, ...]],
    ) -> tuple[_EntryPoint, ...]:
        bare = _callee_bare(node)
        if bare is None:
            return ()
        if bare in entries:
            return (entries[bare],)
        if isinstance(node.func, ast.Name) and bare in aliases:
            return tuple(entries[name] for name in aliases[bare])
        return ()

    def _scan_site(
        self,
        module: SourceModule,
        node: ast.Call,
        candidates: tuple[_EntryPoint, ...],
        sites: list[_CallSite],
    ) -> Iterator[Finding]:
        label_node: ast.expr | None = None
        if len(node.args) >= _IDS_START:
            label_node = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "label":
                    label_node = kw.value
        if label_node is None:
            return
        if not (
            isinstance(label_node, ast.Constant)
            and isinstance(label_node.value, str)
        ):
            yield Finding(
                self.rule_id,
                module.rel,
                node.lineno,
                "stream label is not a string literal; the domain this "
                "site draws from cannot be audited — inline the label "
                "(or add ids) at the call site",
            )
            return
        ids = node.args[_IDS_START:]
        if any(isinstance(arg, ast.Starred) for arg in ids):
            yield Finding(
                self.rule_id,
                module.rel,
                node.lineno,
                "starred ids make this site's key arity unresolvable; "
                "only a forwarding wrapper (label + *ids passed "
                "verbatim) may do this",
            )
            return
        domains: set[tuple[str, int, tuple[int, ...]]] = set()
        for entry in candidates:
            domain = (
                label_node.value,
                len(ids) + len(entry.extras),
                entry.extras,
            )
            if domain in domains:
                # `make = gf2_... if cond else gf256_...; make(...)`
                # where both wrappers hash the same tuple: the branch
                # choice does not change the stream — the exact
                # aliasing this rule exists to catch.
                yield Finding(
                    self.rule_id,
                    module.rel,
                    node.lineno,
                    f"call resolves to multiple entry points that all "
                    f"hash the same domain (label '{label_node.value}', "
                    f"{domain[1]} ids); give each wrapper a literal "
                    "discriminator id",
                )
                continue
            domains.add(domain)
            sites.append(
                _CallSite(
                    path=module.rel,
                    line=node.lineno,
                    label=label_node.value,
                    arity=len(ids) + len(entry.extras),
                    extras=entry.extras,
                )
            )


DATAFLOW_RULES: tuple[Rule, ...] = (UnitConfusion(), StreamDomainCollision())
