"""Make the in-repo ``reprolint`` package importable under pytest.

reprolint is a repository tool, not an installed package; its tests
run as part of tier-1, so the ``tools/`` directory goes on
``sys.path`` here.
"""

import sys
from pathlib import Path

_TOOLS = Path(__file__).resolve().parents[2]
if str(_TOOLS) not in sys.path:
    sys.path.insert(0, str(_TOOLS))

# The corpus contains deliberately-broken snippet trees; nothing in it
# is a pytest module.
collect_ignore_glob = ["corpus/*"]
