"""Float pinning is allowed under tests/ (RP005 exempts the suite)."""


def check_pin(value):
    assert value == 0.25
