"""RP005 conforming: monotonic intervals, tolerant comparisons."""

import math
import time


def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def is_silent(level):
    return not level


def is_unit(gain):
    return math.isclose(gain, 1.0)
