"""RP005 violating: wall clocks and float-literal equality."""

import time
from datetime import datetime


def stamp(result):
    result["at"] = time.time()
    result["day"] = datetime.now()
    return result


def is_silent(level):
    return level == 0.0
