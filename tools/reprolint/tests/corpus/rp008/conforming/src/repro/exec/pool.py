"""The supervised executor package: pool construction lives here."""

import multiprocessing


def supervised_map(fn, payloads, jobs):
    with multiprocessing.Pool(jobs) as pool:
        return pool.map(fn, payloads)
