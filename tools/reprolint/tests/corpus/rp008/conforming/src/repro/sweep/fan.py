"""Fans a sweep through the supervised executor, as RP008 demands."""

from repro.exec.pool import supervised_map


def fan_out(configs, simulate, jobs=4):
    return supervised_map(simulate, configs, jobs)
