"""Fans a sweep across workers with bare, unsupervised pools."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor


def fan_out(configs, simulate):
    with multiprocessing.Pool(4) as pool:
        results = pool.map(simulate, configs)
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(2) as pool:
        results += pool.map(simulate, configs)
    with ProcessPoolExecutor() as pool:
        results += list(pool.map(simulate, configs))
    return results
