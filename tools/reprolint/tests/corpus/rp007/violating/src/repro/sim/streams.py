"""Corpus: RNG stream-domain collisions for RP007."""

from repro.utils.rng import derive_key


def gf2_coefficients(seed, label, *ids):
    return derive_key(seed, label, *ids, 2)


def gf256_coefficients(seed, label, *ids):
    return derive_key(seed, label, *ids, 2)


def noise_key(seed, node_id):
    return derive_key(seed, "noise", node_id)


def traffic_key(seed, node_id):
    return derive_key(seed, "noise", node_id)


def shadow_key(seed, label):
    return derive_key(seed, label)


def fanout_key(seed, ids):
    return derive_key(seed, "fanout", *ids)


def coefficients(seed, chunk, wide):
    make = gf2_coefficients if wide else gf256_coefficients
    return make(seed, "coeffs", chunk)
