"""Tests may re-derive keys freely: RP007 exempts the tests tree.

Pinning a key's value requires reconstructing it — that is the test's
job, not a collision (the runtime analogue is ``sanitize.suspended``).
"""

from repro.utils.rng import derive_key


def check_pinned():
    a = derive_key(0, "noise", 1)
    b = derive_key(0, "noise", 1)
    return a, b
