"""Corpus: RP007-conforming stream derivations.

The mirror of the violating tree: distinct labels per subsystem,
forwarding wrappers with distinct literal discriminator ids, and no
dynamic labels or starred ids outside a forwarder.
"""

from repro.utils.rng import derive_key


def gf2_coefficients(seed, label, *ids):
    return derive_key(seed, label, *ids, 2)


def gf256_coefficients(seed, label, *ids):
    return derive_key(seed, label, *ids, 256)


def noise_key(seed, node_id):
    return derive_key(seed, "noise", node_id)


def traffic_key(seed, node_id):
    return derive_key(seed, "traffic", node_id)


def coefficients(seed, chunk, wide):
    make = gf2_coefficients if wide else gf256_coefficients
    return make(seed, "coeffs", chunk)
