"""Corpus: deliberate unit-confusion bugs for RP006."""

import numpy as np


def mw_to_dbm(mw):
    return 10.0 * np.log10(mw)


def link_budget(noise_dbm, signal_dbm, gain_db, duration_s, n_chips):
    total_dbm = noise_dbm + signal_dbm
    window_s = duration_s + n_chips
    ratio_linear = gain_db
    return total_dbm, window_s, ratio_linear, mw_to_dbm(gain_db)


def carrier_sense(gain_db, floor_dbm):
    return gain_db > floor_dbm
