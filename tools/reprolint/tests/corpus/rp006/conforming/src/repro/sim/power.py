"""Corpus: unit-correct mirror of the RP006 violating tree."""

import numpy as np


def mw_to_dbm(mw):
    return 10.0 * np.log10(mw)


def dbm_to_mw(dbm):
    return 10.0 ** (dbm / 10.0)


def link_budget(
    noise_dbm, signal_dbm, gain_db, duration_s, n_chips, chip_rate_hz
):
    total_mw = dbm_to_mw(noise_dbm) + dbm_to_mw(signal_dbm)
    window_s = duration_s + n_chips / chip_rate_hz
    rx_dbm = signal_dbm + gain_db
    return mw_to_dbm(total_mw), window_s, rx_dbm


def carrier_sense(rx_dbm, floor_dbm):
    return rx_dbm > floor_dbm
