"""Pins ``correlate`` bit-for-bit against ``correlate_reference``."""

from repro.phy.kern import correlate, correlate_reference


def check_correlate_matches_reference(taps, samples):
    assert list(correlate(taps, samples)) == correlate_reference(taps, samples)
