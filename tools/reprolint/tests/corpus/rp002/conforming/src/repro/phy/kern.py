"""RP002 conforming: reference + twin, pinned and benchmarked."""

import numpy as np


def correlate_reference(taps, samples):
    out = []
    for i in range(len(samples) - len(taps) + 1):
        acc = 0.0
        for j, tap in enumerate(taps):
            acc += tap * samples[i + j]
        out.append(acc)
    return out


def correlate(taps, samples):
    return np.convolve(samples, taps[::-1], mode="valid")
