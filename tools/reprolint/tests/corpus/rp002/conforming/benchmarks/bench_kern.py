"""Speed gate for the vectorized ``correlate`` kernel."""

from repro.phy.kern import correlate


def bench_correlate(benchmark, taps, samples):
    benchmark(correlate, taps, samples)
