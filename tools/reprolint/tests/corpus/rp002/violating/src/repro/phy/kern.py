"""RP002 violating: a reference kernel outside the gate suite."""


def correlate_reference(taps, samples):
    out = []
    for i in range(len(samples) - len(taps) + 1):
        acc = 0.0
        for j, tap in enumerate(taps):
            acc += tap * samples[i + j]
        out.append(acc)
    return out
