"""An equivalence suite that forgot the new reference kernel."""

unrelated = 1
