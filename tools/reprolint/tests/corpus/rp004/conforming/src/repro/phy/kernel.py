"""RP004 conforming: vectorized twin, reference spec, pivot loop."""

import numpy as np


def outer_product(a, b):
    return a[:, None] * b[None, :]


def outer_product_reference(a, b):
    # Loops are the *specification* here: *_reference is RP004-exempt.
    out = np.zeros((a.size, b.size))
    for i in range(a.size):
        for j in range(b.size):
            out[i, j] = a[i] * b[j]
    return out


def eliminate(aug):
    # Pivot-style loop: one loop variable, whole-row array ops — clean.
    row = 0
    for col in range(aug.shape[1]):
        if row >= aug.shape[0] or not aug[row, col]:
            continue
        aug[row + 1 :] ^= np.outer(aug[row + 1 :, col], aug[row])
        row += 1
    return aug
