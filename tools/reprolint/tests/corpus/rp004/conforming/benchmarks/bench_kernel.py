"""Speed gate for the vectorized ``outer_product`` kernel."""

from repro.phy.kernel import outer_product


def bench_outer_product(benchmark, a, b):
    benchmark(outer_product, a, b)
