"""Pins ``outer_product`` against ``outer_product_reference``."""

from repro.phy.kernel import outer_product, outer_product_reference


def check_outer_product_matches_reference(a, b):
    assert (outer_product(a, b) == outer_product_reference(a, b)).all()
