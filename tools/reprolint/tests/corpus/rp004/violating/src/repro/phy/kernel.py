"""RP004 violating: per-element Python loops in a hot module."""

import numpy as np


def outer_product(a, b):
    out = np.zeros((a.size, b.size))
    for i in range(a.size):
        for j in range(b.size):
            out[i, j] = a[i] * b[j]
    return out


def total(grid):
    acc = 0.0
    for idx in np.ndindex(grid.shape):
        acc += grid[idx]
    return acc


def running_max(grid):
    best = -np.inf
    for value in grid.flat:
        best = max(best, value)
    return best
