"""RP001 violating: raw generator construction outside utils/rng."""

import random

import numpy as np


def jitter(n):
    rng = np.random.default_rng()
    return rng.normal(size=n) + random.random()
