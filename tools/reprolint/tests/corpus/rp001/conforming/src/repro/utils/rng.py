"""The one module allowed to construct raw generators (RP001-exempt)."""

import numpy as np


def ensure_rng(rng):
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
