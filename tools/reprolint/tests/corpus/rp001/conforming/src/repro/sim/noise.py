"""RP001 conforming: randomness arrives as a Generator argument."""

from repro.utils.rng import ensure_rng


def jitter(n, rng=None):
    return ensure_rng(rng).normal(size=n)
