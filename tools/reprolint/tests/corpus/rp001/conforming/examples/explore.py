"""Exploratory code under examples/ is RP001-exempt by design."""

import numpy as np

rng = np.random.default_rng()
samples = rng.normal(size=16)
