"""RP003 conforming: one lazy registration, guarded preview."""

from repro.experiments.registry import register

GRID = (1, 2, 3)


@register
def exp_clean():
    return sum(GRID)


if __name__ == "__main__":
    exp_clean()
