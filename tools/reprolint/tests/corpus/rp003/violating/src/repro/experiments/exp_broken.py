"""RP003 violating: import-time work and double registration."""

from repro.experiments.registry import register

print("importing runs on every discover() call")

for _ in range(3):
    pass

if True:
    FLAG = 1


@register
def exp_one():
    return None


@register
def exp_two():
    return None
