"""RP000 conforming: a justified suppression that actually suppresses."""

import numpy as np


def demo_entropy(n):
    rng = np.random.default_rng()  # reprolint: disable=RP001 -- corpus demo
    return rng.normal(size=n)
