"""RP000 violating: malformed, unknown, and unused suppressions."""

import numpy as np


def jitter(n):
    rng = np.random.default_rng()  # reprolint: disable=RP001
    total = n  # reprolint: disable=RP999 -- no such rule
    scaled = total * 2  # reprolint: disable=RP005 -- nothing to suppress
    return rng.normal(size=n) + scaled
