"""The ``python -m reprolint`` front end: exit codes and reports."""

import json
from pathlib import Path

import pytest

from reprolint.cli import main

CORPUS = Path(__file__).resolve().parent / "corpus"


def test_violating_tree_exits_nonzero(monkeypatch, capsys):
    monkeypatch.chdir(CORPUS / "rp001" / "violating")
    assert main(["src"]) == 1
    out = capsys.readouterr().out
    assert "RP001" in out
    assert "2 findings" in out


def test_conforming_tree_exits_zero(monkeypatch, capsys):
    monkeypatch.chdir(CORPUS / "rp005" / "conforming")
    assert main(["src", "tests"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_json_format_and_artifact(monkeypatch, capsys, tmp_path):
    monkeypatch.chdir(CORPUS / "rp005" / "violating")
    out_file = tmp_path / "report.json"
    code = main(["src", "--format", "json", "--json-out", str(out_file)])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["tool"] == "reprolint"
    assert report["counts"] == {"RP005": 3}
    assert {f["rule"] for f in report["findings"]} == {"RP005"}
    # --json-out writes the same report for CI artifact upload
    assert json.loads(out_file.read_text()) == report


def test_json_out_written_even_when_clean(monkeypatch, tmp_path, capsys):
    monkeypatch.chdir(CORPUS / "rp001" / "conforming")
    out_file = tmp_path / "report.json"
    assert main(["src", "--json-out", str(out_file)]) == 0
    report = json.loads(out_file.read_text())
    assert report["findings"] == []
    assert report["files_scanned"] == 2
    capsys.readouterr()


def test_missing_path_errors(monkeypatch):
    monkeypatch.chdir(CORPUS)
    with pytest.raises(SystemExit) as exc:
        main(["no_such_dir"])
    assert exc.value.code == 2


class TestRuleFilters:
    """--select / --ignore and the exit-code contract they honor."""

    def test_select_runs_only_named_rules(self, monkeypatch, capsys):
        # The rp001 violating tree is clean under every other rule, so
        # selecting RP005 must hide its two RP001 findings.
        monkeypatch.chdir(CORPUS / "rp001" / "violating")
        assert main(["src", "--select", "RP005"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_select_still_reports_named_rule(self, monkeypatch, capsys):
        monkeypatch.chdir(CORPUS / "rp001" / "violating")
        assert main(["src", "--select", "RP001"]) == 1
        assert "RP001" in capsys.readouterr().out

    def test_ignore_skips_named_rules(self, monkeypatch, capsys):
        monkeypatch.chdir(CORPUS / "rp001" / "violating")
        assert main(["src", "--ignore", "RP001"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_select_and_ignore_are_mutually_exclusive(self, monkeypatch):
        monkeypatch.chdir(CORPUS / "rp001" / "conforming")
        with pytest.raises(SystemExit) as exc:
            main(["src", "--select", "RP001", "--ignore", "RP005"])
        assert exc.value.code == 2

    def test_unknown_rule_id_is_usage_error(self, monkeypatch):
        monkeypatch.chdir(CORPUS / "rp001" / "conforming")
        with pytest.raises(SystemExit) as exc:
            main(["src", "--select", "RP999"])
        assert exc.value.code == 2

    def test_rp000_cannot_be_ignored(self, monkeypatch):
        monkeypatch.chdir(CORPUS / "rp001" / "conforming")
        with pytest.raises(SystemExit) as exc:
            main(["src", "--ignore", "RP000"])
        assert exc.value.code == 2

    def test_empty_rule_list_is_usage_error(self, monkeypatch):
        monkeypatch.chdir(CORPUS / "rp001" / "conforming")
        with pytest.raises(SystemExit) as exc:
            main(["src", "--select", ","])
        assert exc.value.code == 2

    def test_json_report_reflects_active_rules(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(CORPUS / "rp001" / "conforming")
        assert main(["src", "--select", "RP001", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report["rules"]) == {"RP001"}

    def test_suppression_for_deselected_rule_not_flagged(
        self, monkeypatch, capsys, tmp_path
    ):
        """A suppression whose rule did not run is neither unknown nor
        unused — judging it needs the rule's findings."""
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(
            "import numpy as np\n"
            "gen = np.random.default_rng(0)"
            "  # reprolint: disable=RP001 -- corpus fixture\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        # Full run: the suppression is used (RP001 fires there).
        assert main(["src"]) == 0
        # RP001 deselected: its suppression must not become RP000 noise.
        assert main(["src", "--select", "RP005"]) == 0
        out = capsys.readouterr().out
        assert "unused suppression" not in out
        assert "unknown rule" not in out
