"""The ``python -m reprolint`` front end: exit codes and reports."""

import json
from pathlib import Path

import pytest

from reprolint.cli import main

CORPUS = Path(__file__).resolve().parent / "corpus"


def test_violating_tree_exits_nonzero(monkeypatch, capsys):
    monkeypatch.chdir(CORPUS / "rp001" / "violating")
    assert main(["src"]) == 1
    out = capsys.readouterr().out
    assert "RP001" in out
    assert "2 findings" in out


def test_conforming_tree_exits_zero(monkeypatch, capsys):
    monkeypatch.chdir(CORPUS / "rp005" / "conforming")
    assert main(["src", "tests"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_json_format_and_artifact(monkeypatch, capsys, tmp_path):
    monkeypatch.chdir(CORPUS / "rp005" / "violating")
    out_file = tmp_path / "report.json"
    code = main(["src", "--format", "json", "--json-out", str(out_file)])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["tool"] == "reprolint"
    assert report["counts"] == {"RP005": 3}
    assert {f["rule"] for f in report["findings"]} == {"RP005"}
    # --json-out writes the same report for CI artifact upload
    assert json.loads(out_file.read_text()) == report


def test_json_out_written_even_when_clean(monkeypatch, tmp_path, capsys):
    monkeypatch.chdir(CORPUS / "rp001" / "conforming")
    out_file = tmp_path / "report.json"
    assert main(["src", "--json-out", str(out_file)]) == 0
    report = json.loads(out_file.read_text())
    assert report["findings"] == []
    assert report["files_scanned"] == 2
    capsys.readouterr()


def test_missing_path_errors(monkeypatch):
    monkeypatch.chdir(CORPUS)
    with pytest.raises(SystemExit) as exc:
        main(["no_such_dir"])
    assert exc.value.code == 2
