"""Pin every reprolint rule against the self-test corpus.

Each corpus tree under ``corpus/<rule>/`` is a miniature repository
(the rules are path-sensitive); the violating tree must produce
exactly the findings pinned here — rule id, path, *and* line — and
the conforming tree must produce none.  A second set of tests runs
the cross-file RP002 rule over the *real* repository, asserting that
all nine existing ``*_reference`` kernel twins are discovered and
pass the gate-suite checks.
"""

from pathlib import Path

import ast

import pytest

from reprolint.core import Checker, LintConfig
from reprolint.rules import ALL_RULES, KernelTwinDiscipline

CORPUS = Path(__file__).resolve().parent / "corpus"
REPO = Path(__file__).resolve().parents[3]

#: corpus trees use a non-``test_*`` equivalence-suite name so pytest
#: never collects them; the rule's file layout is config, not magic.
CORPUS_EQUIV = "tests/equivalence_suite.py"


def run_tree(rule_dir: str, kind: str) -> list[tuple[str, str, int]]:
    tree = CORPUS / rule_dir / kind
    assert tree.is_dir(), f"corpus tree missing: {tree}"
    config = LintConfig(root=tree, equivalence_test=CORPUS_EQUIV)
    checker = Checker(ALL_RULES, config)
    scan = [tree / d for d in ("src", "tests", "examples") if (tree / d).is_dir()]
    findings = checker.run(scan)
    return [(f.rule, f.path, f.line) for f in findings]


EXPECTED_VIOLATIONS = {
    "rp000": [
        ("RP000", "src/repro/sim/noisy.py", 7),  # suppression lacks justification
        ("RP001", "src/repro/sim/noisy.py", 7),  # ...so nothing is suppressed
        ("RP000", "src/repro/sim/noisy.py", 8),  # unknown rule RP999
        ("RP000", "src/repro/sim/noisy.py", 9),  # unused suppression
    ],
    "rp001": [
        ("RP001", "src/repro/sim/noise.py", 3),  # stdlib random import
        ("RP001", "src/repro/sim/noise.py", 9),  # raw default_rng()
    ],
    "rp002": [
        ("RP002", "src/repro/phy/kern.py", 4),  # no vectorized twin
        ("RP002", "src/repro/phy/kern.py", 4),  # not in equivalence suite
        ("RP002", "src/repro/phy/kern.py", 4),  # no benchmark
    ],
    "rp003": [
        ("RP003", "src/repro/experiments/exp_broken.py", 5),  # module-level call
        ("RP003", "src/repro/experiments/exp_broken.py", 7),  # module-level for
        ("RP003", "src/repro/experiments/exp_broken.py", 10),  # bare if block
        ("RP003", "src/repro/experiments/exp_broken.py", 20),  # second @register
    ],
    "rp004": [
        ("RP004", "src/repro/phy/kernel.py", 10),  # out[i, j] under nested loops
        ("RP004", "src/repro/phy/kernel.py", 16),  # np.ndindex iteration
        ("RP004", "src/repro/phy/kernel.py", 23),  # .flat iteration
    ],
    "rp005": [
        ("RP005", "src/repro/sim/report.py", 8),  # time.time()
        ("RP005", "src/repro/sim/report.py", 9),  # datetime.now()
        ("RP005", "src/repro/sim/report.py", 14),  # level == 0.0
    ],
    "rp006": [
        ("RP006", "src/repro/sim/power.py", 11),  # dbm + dbm
        ("RP006", "src/repro/sim/power.py", 12),  # seconds + chip count
        ("RP006", "src/repro/sim/power.py", 13),  # db into *_linear name
        ("RP006", "src/repro/sim/power.py", 14),  # db bound to mw param
        ("RP006", "src/repro/sim/power.py", 18),  # db compared with dbm
    ],
    "rp008": [
        ("RP008", "src/repro/sweep/fan.py", 8),  # multiprocessing.Pool
        ("RP008", "src/repro/sweep/fan.py", 11),  # ctx.Pool via a context
        ("RP008", "src/repro/sweep/fan.py", 13),  # ProcessPoolExecutor
    ],
    "rp007": [
        ("RP007", "src/repro/sim/streams.py", 19),  # shares 'noise' with :15
        ("RP007", "src/repro/sim/streams.py", 23),  # non-literal label
        ("RP007", "src/repro/sim/streams.py", 27),  # starred ids, no forwarder
        ("RP007", "src/repro/sim/streams.py", 32),  # alias branches hash alike
    ],
}


@pytest.mark.parametrize("rule_dir", sorted(EXPECTED_VIOLATIONS))
def test_violating_tree_pins_rule_and_lines(rule_dir):
    assert sorted(run_tree(rule_dir, "violating")) == sorted(
        EXPECTED_VIOLATIONS[rule_dir]
    )


@pytest.mark.parametrize("rule_dir", sorted(EXPECTED_VIOLATIONS))
def test_conforming_tree_is_clean(rule_dir):
    assert run_tree(rule_dir, "conforming") == []


def test_missing_equivalence_suite_is_reported():
    tree = CORPUS / "rp002" / "violating"
    config = LintConfig(root=tree, equivalence_test="tests/nope.py")
    findings = Checker([KernelTwinDiscipline()], config).run([tree / "src"])
    assert any("missing" in f.message for f in findings)


def test_finding_render_format():
    findings = Checker(
        ALL_RULES,
        LintConfig(root=CORPUS / "rp001" / "violating", equivalence_test=CORPUS_EQUIV),
    ).run([CORPUS / "rp001" / "violating" / "src"])
    assert findings[0].render().startswith("src/repro/sim/noise.py:3: RP001 ")


# ---------------------------------------------------------------------------
# the real repository
# ---------------------------------------------------------------------------

#: the eleven vectorized kernels whose loop specs the repo maintains
EXPECTED_TWINS = {
    "correlate",
    "correlation",
    "decode",
    "demodulate_soft",
    "gf2_eliminate",
    "gf2_encode",
    "gf256_eliminate",
    "gf256_encode",
    "modulate_chips",
    "plan_chunks",
    "remodulate_frame",
}


def _real_reference_names() -> set[str]:
    names = set()
    for path in sorted((REPO / "src").rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name.endswith("_reference")
                and not node.name.startswith("_")
            ):
                names.add(node.name)
    return names


def test_rp002_sees_all_eleven_real_reference_twins():
    assert _real_reference_names() == {f"{t}_reference" for t in EXPECTED_TWINS}


def test_rp002_cross_verifies_real_repo_clean():
    checker = Checker([KernelTwinDiscipline()], LintConfig(root=REPO))
    findings = checker.run([REPO / "src"])
    assert findings == [], [f.render() for f in findings]


def test_whole_repo_is_reprolint_clean():
    """The CI gate, enforced from tier-1 too: zero findings, zero
    suppressions, over everything reprolint scans."""
    checker = Checker(ALL_RULES, LintConfig(root=REPO))
    findings = checker.run([REPO / "src", REPO / "tests"])
    assert findings == [], [f.render() for f in findings]
    assert checker.files_scanned > 100
