"""Rule framework: source loading, suppressions, and the checker.

Everything here is deliberately stdlib-only (``ast``, ``re``,
``pathlib``): reprolint must be runnable in any environment the test
suite runs in, with zero new dependencies.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator

#: Matches a suppression comment anywhere in a source line.  The
#: justification after ``--`` is mandatory; :class:`Checker` reports
#: RP000 for comments that omit it.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s*(?P<why>.*\S)?\s*)?$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Suppression:
    """A parsed ``# reprolint: disable=...`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    valid: bool
    used: bool = False


@dataclass(frozen=True)
class LintConfig:
    """Repository layout the cross-file rules need to know about.

    Paths are POSIX-style and relative to ``root`` (the directory
    reprolint is invoked from — the repo root in CI).
    """

    root: Path
    #: the one module allowed to construct raw generators
    rng_module: str = "src/repro/utils/rng.py"
    #: explicitly-exploratory trees exempt from RP001
    exploratory_dirs: tuple[str, ...] = ("examples",)
    #: modules whose hot loops RP004 polices
    hot_paths: tuple[str, ...] = (
        "src/repro/phy",
        "src/repro/coding",
        "src/repro/sim/medium.py",
    )
    #: where RP002 expects every reference twin to be pinned
    equivalence_test: str = "tests/test_vectorized_equivalence.py"
    #: where RP002 expects every kernel twin to be speed-gated
    benchmarks_dir: str = "benchmarks"
    #: test tree (RP005's float-equality check does not apply there)
    tests_dirs: tuple[str, ...] = ("tests",)
    #: the supervised-executor package — the one place allowed to
    #: construct worker pools/processes directly (RP008)
    exec_dirs: tuple[str, ...] = ("src/repro/exec",)


@dataclass
class SourceModule:
    """One parsed source file plus its suppression comments."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    def suppressions_at(self, line: int) -> Iterator[Suppression]:
        for s in self.suppressions:
            if s.line == line:
                yield s

    def is_under(self, *parts: str) -> bool:
        """True when the module lives under any of the given
        root-relative path prefixes (or equals one exactly)."""
        p = PurePosixPath(self.rel)
        for prefix in parts:
            pre = PurePosixPath(prefix)
            if p == pre or pre in p.parents:
                return True
        return False


class Rule:
    """Base class: subclasses set ``rule_id``/``title`` and override
    :meth:`check_module` (per-file) and/or :meth:`finalize`
    (cross-file, runs once after every module was scanned)."""

    rule_id: str = "RP000"
    title: str = ""

    def check_module(
        self, module: SourceModule, config: LintConfig
    ) -> Iterator[Finding]:
        return iter(())

    def finalize(
        self, modules: list[SourceModule], config: LintConfig
    ) -> Iterator[Finding]:
        return iter(())


def _parse_suppressions(text: str) -> list[Suppression]:
    out = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "reprolint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        why = (match.group("why") or "").strip()
        out.append(
            Suppression(
                line=lineno,
                rules=rules,
                justification=why,
                valid=bool(rules) and bool(why),
            )
        )
    return out


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated list of
    ``.py`` files, skipping caches and hidden directories."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            seen.setdefault(path.resolve(), None)
            continue
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = sub.relative_to(path).parts
                if any(
                    p == "__pycache__" or p.startswith(".") for p in parts
                ):
                    continue
                seen.setdefault(sub.resolve(), None)
    return sorted(seen)


class Checker:
    """Load sources, run every rule, apply suppressions.

    ``rules`` are the rules to *run* (possibly filtered by the CLI's
    ``--select``/``--ignore``); ``known_rule_ids`` is the full registry
    used to validate suppression comments.  A suppression naming a
    known-but-deselected rule is left alone: it is not "unknown", and
    whether it is used cannot be judged without running its rule.
    """

    def __init__(
        self,
        rules: Iterable[Rule],
        config: LintConfig,
        known_rule_ids: Iterable[str] | None = None,
    ) -> None:
        self.rules = list(rules)
        self.config = config
        self.files_scanned = 0
        active = {rule.rule_id for rule in self.rules} | {"RP000"}
        self.known_rule_ids = (
            set(known_rule_ids) | {"RP000"}
            if known_rule_ids is not None
            else active
        )

    def _load(self, path: Path) -> tuple[SourceModule | None, list[Finding]]:
        rel = path.resolve().relative_to(
            self.config.root.resolve()
        ).as_posix()
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            return None, [
                Finding(
                    rule="RP000",
                    path=rel,
                    line=exc.lineno or 1,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        module = SourceModule(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            suppressions=_parse_suppressions(text),
        )
        return module, []

    def run(self, paths: Iterable[Path]) -> list[Finding]:
        findings: list[Finding] = []
        modules: list[SourceModule] = []
        for path in collect_files(paths):
            module, errors = self._load(path)
            findings.extend(errors)
            if module is not None:
                modules.append(module)
        self.files_scanned = len(modules)

        raw: list[tuple[SourceModule | None, Finding]] = []
        for module in modules:
            for rule in self.rules:
                for finding in rule.check_module(module, self.config):
                    raw.append((module, finding))
        by_rel = {m.rel: m for m in modules}
        for rule in self.rules:
            for finding in rule.finalize(modules, self.config):
                raw.append((by_rel.get(finding.path), finding))

        for module, finding in raw:
            suppressed = False
            if module is not None:
                for s in module.suppressions_at(finding.line):
                    if s.valid and finding.rule in s.rules:
                        s.used = True
                        suppressed = True
            if not suppressed:
                findings.append(finding)

        active = {rule.rule_id for rule in self.rules} | {"RP000"}
        for module in modules:
            for s in module.suppressions:
                if not s.rules:
                    findings.append(
                        Finding(
                            "RP000",
                            module.rel,
                            s.line,
                            "suppression names no rules",
                        )
                    )
                elif not s.justification:
                    findings.append(
                        Finding(
                            "RP000",
                            module.rel,
                            s.line,
                            "suppression lacks a justification "
                            "(use `# reprolint: disable=RULE -- why`)",
                        )
                    )
                elif unknown := [
                    r for r in s.rules if r not in self.known_rule_ids
                ]:
                    findings.append(
                        Finding(
                            "RP000",
                            module.rel,
                            s.line,
                            f"suppression names unknown rule(s) "
                            f"{', '.join(unknown)}",
                        )
                    )
                elif not s.used and set(s.rules) <= active:
                    # Only judged when every named rule actually ran:
                    # a suppression for a --select/--ignore-deselected
                    # rule may well be load-bearing on a full run.
                    findings.append(
                        Finding(
                            "RP000",
                            module.rel,
                            s.line,
                            f"unused suppression for "
                            f"{', '.join(s.rules)} (nothing to suppress)",
                        )
                    )
        findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
        return findings
