"""``python -m reprolint`` — command-line front end.

Usage::

    python -m reprolint src tests                 # text report, exit 1 on findings
    python -m reprolint src tests --format json   # machine-readable report
    python -m reprolint src tests --json-out report.json   # always write JSON

``--json-out`` writes the JSON report regardless of ``--format`` and
of whether findings exist, so CI can upload it as a build artifact
from both passing and failing runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from reprolint import __version__
from reprolint.core import Checker, Finding, LintConfig
from reprolint.rules import ALL_RULES


def _report(
    checker: Checker, findings: list[Finding]
) -> dict[str, object]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return {
        "tool": "reprolint",
        "version": __version__,
        "files_scanned": checker.files_scanned,
        "rules": {
            rule.rule_id: rule.title for rule in checker.rules
        },
        "counts": dict(sorted(counts.items())),
        "findings": [f.to_dict() for f in findings],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for this repository's "
            "determinism, kernel-twin, and experiment contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories to scan (e.g. `src tests`)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root for cross-file rules (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        default=None,
        help="additionally write the JSON report to FILE",
    )
    parser.add_argument(
        "--version", action="version", version=f"reprolint {__version__}"
    )
    args = parser.parse_args(argv)

    root = Path(args.root)
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    checker = Checker(ALL_RULES, LintConfig(root=root))
    findings = checker.run(Path(p) for p in args.paths)
    report = _report(checker, findings)

    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"reprolint: {len(findings)} {noun} in "
            f"{checker.files_scanned} files"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
