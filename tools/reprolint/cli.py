"""``python -m reprolint`` — command-line front end.

Usage::

    python -m reprolint src tests                 # text report, exit 1 on findings
    python -m reprolint src tests --format json   # machine-readable report
    python -m reprolint src tests --json-out report.json   # always write JSON
    python -m reprolint src --select RP006,RP007  # run only these rules
    python -m reprolint src --ignore RP004        # run all but these

``--json-out`` writes the JSON report regardless of ``--format`` and
of whether findings exist, so CI can upload it as a build artifact
from both passing and failing runs.

``--select`` and ``--ignore`` take comma-separated rule ids and are
mutually exclusive.  RP000 (suppression hygiene and syntax errors)
always runs and cannot be ignored.  Suppression comments naming a
deselected rule are neither rejected as unknown nor flagged as unused
— their rule did not run, so they cannot be judged.

Exit codes (stable contract, relied on by CI and pre-commit):

* ``0`` — scan completed, no findings
* ``1`` — scan completed, at least one finding
* ``2`` — usage error (bad flag combination, unknown rule id,
  missing path); nothing was scanned
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from reprolint import __version__
from reprolint.core import Checker, Finding, LintConfig
from reprolint.rules import ALL_RULES


def _report(
    checker: Checker, findings: list[Finding]
) -> dict[str, object]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return {
        "tool": "reprolint",
        "version": __version__,
        "files_scanned": checker.files_scanned,
        "rules": {
            rule.rule_id: rule.title for rule in checker.rules
        },
        "counts": dict(sorted(counts.items())),
        "findings": [f.to_dict() for f in findings],
    }


def _parse_rule_list(
    parser: argparse.ArgumentParser, flag: str, value: str
) -> set[str]:
    """Split a comma-separated rule list and validate every id."""
    rules = {r.strip() for r in value.split(",") if r.strip()}
    if not rules:
        parser.error(f"{flag} needs at least one rule id")
    known = {rule.rule_id for rule in ALL_RULES} | {"RP000"}
    if unknown := sorted(rules - known):
        parser.error(
            f"{flag}: unknown rule id(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return rules


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for this repository's "
            "determinism, kernel-twin, and experiment contracts."
        ),
        epilog=(
            "exit codes: 0 no findings, 1 findings, 2 usage error"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories to scan (e.g. `src tests`)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root for cross-file rules (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        default=None,
        help="additionally write the JSON report to FILE",
    )
    rule_filter = parser.add_mutually_exclusive_group()
    rule_filter.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help=(
            "comma-separated rule ids to run exclusively "
            "(e.g. RP006,RP007); RP000 hygiene always runs"
        ),
    )
    rule_filter.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip (RP000 cannot be ignored)",
    )
    parser.add_argument(
        "--version", action="version", version=f"reprolint {__version__}"
    )
    args = parser.parse_args(argv)

    root = Path(args.root)
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    rules = list(ALL_RULES)
    if args.select is not None:
        selected = _parse_rule_list(parser, "--select", args.select)
        rules = [r for r in rules if r.rule_id in selected]
    elif args.ignore is not None:
        ignored = _parse_rule_list(parser, "--ignore", args.ignore)
        if "RP000" in ignored:
            parser.error(
                "--ignore: RP000 (suppression hygiene) cannot be ignored"
            )
        rules = [r for r in rules if r.rule_id not in ignored]

    checker = Checker(
        rules,
        LintConfig(root=root),
        known_rule_ids={rule.rule_id for rule in ALL_RULES},
    )
    findings = checker.run(Path(p) for p in args.paths)
    report = _report(checker, findings)

    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"reprolint: {len(findings)} {noun} in "
            f"{checker.files_scanned} files"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
