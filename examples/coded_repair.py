"""Coded vs raw PP-ARQ retransmission on a very noisy link.

Runs the same packet stream through the stock PP-ARQ session (bad
runs retransmitted verbatim) and the network-coded variant (bad runs
sent as random linear combinations with redundancy), over channels
harsh enough that retransmissions themselves are frequently lost —
the regime S-PRAC targets.  Also shows the segmented-RLNC codec on
its own: erased CRC-protected segments recovered from coded repair.

Run:  PYTHONPATH=src python examples/coded_repair.py
"""

import numpy as np

from repro.arq.protocol import PpArqSession
from repro.coding import CodedRepairSession, SegmentedRlncCodec
from repro.experiments.exp_fig16 import BurstyLinkChannel
from repro.phy.codebook import ZigbeeCodebook
from repro.utils.rng import derive_rng

PACKET_BYTES = 200
N_PACKETS = 20


def _channel(seed: int, label: str) -> BurstyLinkChannel:
    """A harsh bursty link: most frames lose a large contiguous chunk."""
    return BurstyLinkChannel(
        ZigbeeCodebook(),
        derive_rng(seed, label),
        base_error=0.03,
        burst_error=0.45,
        burst_prob=0.95,
        burst_frac_range=(0.2, 0.6),
    )


def main() -> None:
    seed = 7
    payload_rng = derive_rng(seed, "payloads")
    payloads = [
        bytes(payload_rng.integers(0, 256, PACKET_BYTES, dtype=np.uint8))
        for _ in range(N_PACKETS)
    ]

    # --- 1. the codec alone: erasures repaired by elimination ------------
    codec = SegmentedRlncCodec(n_segments=10, n_repair=5, field="gf256")
    wire = bytearray(codec.encode(payloads[0]))
    for idx in (1, 4, 8):  # corrupt three data segments
        offset, _ = codec.data_spans(PACKET_BYTES)[idx]
        wire[offset] ^= 0xFF
    result = codec.decode(bytes(wire))
    print(
        f"codec: {int((~result.data_ok).sum())} segments erased, "
        f"{int(result.coded_recovered.sum())} recovered by coding, "
        f"payload intact: {result.payload() == payloads[0]}"
    )

    # --- 2. coded vs raw retransmission, same traffic, same regime -------
    for name, session in (
        ("raw PP-ARQ ", PpArqSession(_channel(seed, "raw"))),
        (
            "coded repair",
            CodedRepairSession(
                _channel(seed, "coded"), seed=seed, redundancy=0.5
            ),
        ),
    ):
        delivered = rounds = retransmit_bytes = 0
        for seq, payload in enumerate(payloads):
            log = session.transfer(seq, payload)
            delivered += int(log.delivered)
            rounds += log.rounds
            retransmit_bytes += log.total_retransmit_bytes
        print(
            f"{name}: {delivered}/{N_PACKETS} delivered, "
            f"{rounds / N_PACKETS:.1f} rounds/packet, "
            f"{retransmit_bytes / N_PACKETS:.0f} retransmit B/packet"
        )


if __name__ == "__main__":
    main()
