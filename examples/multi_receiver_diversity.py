"""Multi-receiver diversity on SoftPHY hints (paper §8.4).

The paper suggests PPR's hints give multi-radio diversity (MRD) a
PHY-independent combining rule: several access points hear the same
transmission and a combiner keeps, per codeword, the copy with the
most confident hint.  This example builds the scenario twice:

1. a controlled two-receiver case with complementary collision bursts,
   where combining recovers essentially the whole packet; and
2. the simulated 27-node testbed, where the four sinks hear each
   transmission with independent fading and the combiner's gain over a
   randomly-assigned receiver is measured across the whole run.

Run:  python examples/multi_receiver_diversity.py
"""

from collections import defaultdict

import numpy as np

from repro import NetworkSimulation, SimulationConfig, ZigbeeCodebook
from repro.link.diversity import combine_soft_packets, diversity_gain
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.symbols import SoftPacket


def controlled_case() -> None:
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(5)
    truth = rng.integers(0, 16, 500)
    words = codebook.encode_words(truth)

    # Receiver A is hit over the head of the packet, receiver B over
    # the tail — e.g. different hidden terminals near each one.
    p_a = np.full(500, 0.003)
    p_a[:200] = 0.45
    p_b = np.full(500, 0.003)
    p_b[300:] = 0.45

    packets = []
    for p in (p_a, p_b):
        received = transmit_chipwords(words, p, rng)
        decoded, dist = codebook.decode_hard(received)
        packets.append(
            SoftPacket(
                symbols=decoded, hints=dist.astype(float), truth=truth
            )
        )

    gains = diversity_gain(packets, eta=6.0)
    result = combine_soft_packets(packets)
    print("controlled complementary-burst case:")
    print(f"  receiver A delivers : "
          f"{(packets[0].good_mask(6) & packets[0].correct_mask()).mean():.1%}")
    print(f"  receiver B delivers : "
          f"{(packets[1].good_mask(6) & packets[1].correct_mask()).mean():.1%}")
    print(f"  combined delivers   : {gains['combined']:.1%} "
          f"(misses {gains['combined_miss_fraction']:.2%})")
    print(f"  symbols taken from A: {result.source_share(0):.1%}, "
          f"from B: {result.source_share(1):.1%}\n")


def testbed_case() -> None:
    config = SimulationConfig(
        load_bits_per_s_per_node=13800.0,
        payload_bytes=600,
        duration_s=12.0,
        carrier_sense=False,
        seed=21,
    )
    print("simulating the 27-node testbed at heavy load ...")
    result = NetworkSimulation(config).run()

    by_tx = defaultdict(list)
    for rec in result.records:
        if rec.acquired(True):
            by_tx[rec.tx_id].append(rec)
    groups = [recs for recs in by_tx.values() if len(recs) >= 2]

    vs_mean, vs_best = [], []
    for recs in groups:
        packets = [
            SoftPacket(
                symbols=r.body_symbols.astype(np.int64),
                hints=r.body_hints.astype(np.float64),
                truth=r.body_truth.astype(np.int64),
            )
            for r in recs
        ]
        g = diversity_gain(packets, eta=6.0)
        vs_mean.append(g["combined"] - g["mean_single"])
        vs_best.append(g["combined"] - g["best_single"])

    print(f"{len(groups)} transmissions heard by 2+ receivers")
    print(f"  combining vs a randomly-assigned receiver : "
          f"+{np.mean(vs_mean):.2%} of payload on average")
    print(f"  combining vs the best single receiver     : "
          f"+{np.mean(vs_best):.2%} (never negative: "
          f"{min(vs_best) >= 0})")
    print(
        "\nAs §8.4 anticipates, hint combining gets the benefit of the "
        "best receiver\nwithout knowing in advance which one that is."
    )


def main() -> None:
    controlled_case()
    testbed_case()


if __name__ == "__main__":
    main()
