"""Mesh capacity study: the three schemes on the simulated testbed.

Runs the 27-node nine-room testbed (the paper's Fig. 7 layout) at a
chosen offered load, post-processes the traces under packet CRC,
fragmented CRC and PPR — with and without postamble decoding — and
prints per-link delivery-rate CDFs plus throughput summaries, the
paper's §7.2 methodology end to end.

Run:  python examples/mesh_capacity.py [--load 13800] [--duration 20]
"""

import argparse

import numpy as np

from repro import NetworkSimulation, SimulationConfig, evaluate_schemes
from repro.analysis.textplot import format_table, render_cdf
from repro.link.schemes import default_schemes


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Testbed capacity comparison of delivery schemes."
    )
    parser.add_argument(
        "--load",
        type=float,
        default=13800.0,
        help="offered load per node in bits/s (paper: 3500/6900/13800)",
    )
    parser.add_argument(
        "--duration", type=float, default=20.0, help="simulated seconds"
    )
    parser.add_argument(
        "--carrier-sense",
        action="store_true",
        help="enable CSMA carrier sense (paper Fig. 8 uses it)",
    )
    parser.add_argument("--seed", type=int, default=2007)
    args = parser.parse_args()

    config = SimulationConfig(
        load_bits_per_s_per_node=args.load,
        payload_bytes=1500,
        duration_s=args.duration,
        carrier_sense=args.carrier_sense,
        seed=args.seed,
    )
    print(
        f"simulating: 23 senders at {args.load / 1e3:.1f} Kbit/s/node, "
        f"{args.duration:.0f}s, carrier sense "
        f"{'on' if args.carrier_sense else 'off'} ..."
    )
    result = NetworkSimulation(config).run()
    acquired = sum(r.acquired(True) for r in result.records)
    print(
        f"{len(result.transmissions)} transmissions, "
        f"{len(result.records)} audible receptions, "
        f"{acquired} acquired (preamble or postamble)\n"
    )

    evaluations = evaluate_schemes(result, default_schemes())

    rows = []
    cdf_series = {}
    for e in evaluations:
        rates = np.array(e.delivery_rates())
        tputs = list(e.throughputs_kbps().values())
        rows.append(
            [
                e.label,
                float(np.median(rates)),
                float(rates.mean()),
                float(np.median(tputs)),
                e.aggregate_throughput_kbps(),
            ]
        )
        if e.postamble_enabled:
            cdf_series[e.scheme.name] = rates

    print(
        format_table(
            [
                "scheme",
                "median dlv rate",
                "mean dlv rate",
                "median link Kbps",
                "aggregate Kbps",
            ],
            rows,
            title="Per-link delivery and throughput by scheme "
            "(paper Figs. 8-11)",
        )
    )
    print()
    print("Per-link equivalent frame delivery rate CDF "
          "(postamble variants):")
    print(render_cdf(cdf_series, xlabel="delivery rate", xmax=1.0))


if __name__ == "__main__":
    main()
