"""Opportunistic partial forwarding through lossy relays (§2, §8.4).

A source's frame reaches two relays over collision-prone links; each
relay forwards *only the symbols its SoftPHY hints trust* — the paper's
"forward only the bits likely to be correct" idea — and the destination
merges the partial forwards, leaving any uncovered positions for
PP-ARQ to recover in the background.

The comparison baseline is classic packet-level relaying, where a relay
must receive the whole packet intact before it can forward anything.

Run:  python examples/opportunistic_relay.py
"""

import numpy as np

from repro import ZigbeeCodebook
from repro.link.relay import combine_forwards, make_partial_forward
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.symbols import SoftPacket

ETA = 6.0
FRAME_SYMBOLS = 600


def lossy_hop(codebook, truth, rng, burst_frac):
    """One relay's reception: a collision burst over part of the frame."""
    p = np.full(truth.size, 0.003)
    burst_len = int(burst_frac * truth.size)
    start = int(rng.integers(0, truth.size - burst_len))
    p[start : start + burst_len] = 0.45
    received = transmit_chipwords(codebook.encode_words(truth), p, rng)
    decoded, dist = codebook.decode_hard(received)
    return SoftPacket(
        symbols=decoded, hints=dist.astype(float), truth=truth
    )


def main() -> None:
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(17)

    n_trials = 50
    pkt_relay_success = 0
    partial_coverage = []
    partial_correct = []
    airtime_saved = []

    for _ in range(n_trials):
        truth = rng.integers(0, 16, FRAME_SYMBOLS)
        rx1 = lossy_hop(codebook, truth, rng, burst_frac=0.3)
        rx2 = lossy_hop(codebook, truth, rng, burst_frac=0.3)

        # Baseline: a packet-level relay forwards only intact packets.
        if rx1.correct_mask().all() or rx2.correct_mask().all():
            pkt_relay_success += 1

        # PPR relays: forward the trusted symbols only.
        f1 = make_partial_forward(rx1, ETA)
        f2 = make_partial_forward(rx2, ETA)
        combined = combine_forwards([f1, f2])
        partial_coverage.append(combined.coverage)
        covered = combined.covered
        if covered.any():
            partial_correct.append(
                float((combined.symbols[covered] == truth[covered]).mean())
            )
        airtime_saved.append(
            1.0
            - (f1.airtime_symbols + f2.airtime_symbols)
            / (2 * FRAME_SYMBOLS)
        )

    print(f"{n_trials} frames through two lossy relays "
          f"(30% collision burst each):\n")
    print("packet-level relaying (status quo):")
    print(f"  frames any relay could forward intact : "
          f"{pkt_relay_success}/{n_trials}")
    print("\nSoftPHY partial forwarding (PPR):")
    print(f"  mean destination coverage             : "
          f"{np.mean(partial_coverage):.1%}")
    print(f"  correctness of covered symbols        : "
          f"{np.mean(partial_correct):.2%}")
    print(f"  relay airtime saved vs full copies    : "
          f"{np.mean(airtime_saved):.1%}")
    print(
        "\nUncovered positions would be fetched by PP-ARQ 'in the "
        "background'\nwhile the routing layer keeps forwarding good "
        "bits (paper §8.4)."
    )


if __name__ == "__main__":
    main()
