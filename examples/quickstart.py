"""Quickstart: SoftPHY hints and partial packet recovery in 60 lines.

Walks the core loop of the paper: spread data through the 802.15.4
codebook, corrupt part of it the way a collision would, decode with
Hamming-distance hints, apply the threshold rule, and let PP-ARQ
retransmit only the damaged ranges.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PpArqSession, ZigbeeCodebook
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.symbols import SoftPacket


def main() -> None:
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(7)

    # --- 1. SoftPHY hints ------------------------------------------------
    symbols = rng.integers(0, 16, 100)
    words = codebook.encode_words(symbols)

    # A collision corrupts symbols 40..60 (chip error rate ~0.4);
    # the rest of the packet sees a clean channel.
    p = np.full(100, 0.005)
    p[40:60] = 0.4
    received = transmit_chipwords(words, p, rng)
    decoded, hints = codebook.decode_hard(received)

    correct = decoded == symbols
    print(f"decoded correctly: {correct.sum()}/100 symbols")
    print(f"mean hint on clean symbols   : {hints[correct].mean():.2f}")
    print(f"mean hint on corrupt symbols : {hints[~correct].mean():.2f}")

    # --- 2. the threshold rule (paper §3.2, eta = 6) -----------------------
    eta = 6
    good = hints <= eta
    print(f"\nthreshold rule at eta={eta}:")
    print(f"  labelled good : {good.sum()} (of which correct: "
          f"{(good & correct).sum()})")
    print(f"  labelled bad  : {(~good).sum()} (of which incorrect: "
          f"{(~good & ~correct).sum()})")

    # --- 3. PP-ARQ: retransmit only the damaged ranges --------------------
    def collision_channel(tx_symbols: np.ndarray) -> SoftPacket:
        if tx_symbols.size == 0:
            return SoftPacket(
                symbols=tx_symbols, hints=np.zeros(0), truth=tx_symbols
            )
        p = np.full(tx_symbols.size, 0.005)
        burst = max(1, tx_symbols.size // 5)
        start = rng.integers(0, tx_symbols.size - burst + 1)
        p[start : start + burst] = 0.4
        rx = transmit_chipwords(
            codebook.encode_words(tx_symbols), p, rng
        )
        out, dist = codebook.decode_hard(rx)
        return SoftPacket(
            symbols=out, hints=dist.astype(float), truth=tx_symbols
        )

    session = PpArqSession(collision_channel, eta=eta)
    payload = bytes(rng.integers(0, 256, 250, dtype=np.uint8))
    log = session.transfer(seq=1, payload=payload)
    recovered = session.receiver.reassembled_payload(1)

    print(f"\nPP-ARQ transfer of a {len(payload)}-byte packet:")
    print(f"  delivered            : {log.delivered}")
    print(f"  payload intact       : {recovered == payload}")
    print(f"  rounds               : {log.rounds}")
    print(f"  retransmission sizes : {log.retransmit_packet_bytes} bytes "
          f"(vs {len(payload)} to resend everything)")
    print(f"  feedback sizes       : {log.feedback_bits} bits")


if __name__ == "__main__":
    main()
