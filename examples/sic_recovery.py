"""Successive interference cancellation on a collided capture.

Two packets collide; capture effect lets the receiver decode the
stronger one straight through the interference.  SIC then treats that
decode as side information: re-modulate the stronger packet's chips,
estimate its complex channel gain against the capture, subtract the
reconstruction, and decode the weaker packet from the residual —
where it now stands alone.  Whatever the residual pass cannot clean
falls back to PPR chunk recovery.

The collision here is the hints' worst case: the overlap is exactly
codeword-aligned, so the strong packet's chips form *valid* codewords
inside the weak packet's decode windows — the corrupted head looks
perfectly confident (hint 0) and postamble rollback cannot flag it.
Only cancellation actually removes the interference.

Run:  python examples/sic_recovery.py
"""

import numpy as np

from repro import SicDecoder, WaveformBatchEngine, ZigbeeCodebook
from repro.phy.modulation import MskModulator
from repro.phy.channelsim import TransmissionInstance, awgn_collision_channel
from repro.phy.sync import sync_field_symbols


def main() -> None:
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(7)
    sps = 4
    modulator = MskModulator(sps=sps)
    n_body = 60
    overlap = 24  # symbols of codeword-aligned overlap

    preamble = sync_field_symbols("preamble")
    postamble = sync_field_symbols("postamble")
    body_strong = rng.integers(0, 16, n_body)
    body_weak = rng.integers(0, 16, n_body)
    frame_strong = np.concatenate([preamble, body_strong, postamble])
    frame_weak = np.concatenate([preamble, body_weak, postamble])

    # The weak packet starts while the strong one's tail is on the air,
    # 12 dB down and with the chip grids codeword-aligned.
    chips_per_symbol = codebook.chips_per_symbol
    offset = (frame_strong.size - overlap) * chips_per_symbol * sps
    weak_gain = 0.25
    capture = awgn_collision_channel(
        [
            TransmissionInstance(
                samples=modulator.modulate_symbols(frame_strong, codebook),
                offset=0,
            ),
            TransmissionInstance(
                samples=modulator.modulate_symbols(frame_weak, codebook),
                offset=offset,
                gain=weak_gain,
            ),
        ],
        noise_power=0.002,
        rng=rng,
    )
    print(f"capture window: {capture.size} complex samples, "
          f"{overlap} symbols of aligned overlap, weak packet at "
          f"{20 * np.log10(weak_gain):.0f} dB")

    # --- the plain receiver: capture effect plus postamble rollback --------
    engine = WaveformBatchEngine(codebook, sps=sps, threshold=0.5)
    pair = engine.receive_collision_pair(capture, n_body)
    ok_strong = pair.first.symbols == body_strong
    ok_weak = pair.second.symbols == body_weak
    head = overlap - preamble.size
    head_hints = pair.second.hints[:head]
    print("\nplain receiver:")
    print(f"  strong packet : {ok_strong.sum()}/{n_body} correct")
    print(f"  weak packet   : {ok_weak.sum()}/{n_body} correct")
    print(f"  weak head     : {int((~ok_weak[:head]).sum())}/{head} wrong "
          f"at mean hint {head_hints.mean():.2f} — confidently wrong; "
          f"the SoftPHY threshold rule would deliver them")

    # --- SIC: decode strong, re-modulate, subtract, decode the rest --------
    decoder = SicDecoder(codebook, sps=sps, threshold=0.5)
    result = decoder.decode_pair(capture, n_body)
    print(f"\nSIC pipeline (cancelled={result.cancelled}):")
    assert result.strong is not None and result.weak is not None
    est = result.strong.scale
    print(f"  strong packet : "
          f"{(result.strong.reception.symbols == body_strong).sum()}"
          f"/{n_body} correct, estimated gain {abs(est):.3f}")
    est = result.weak.scale
    print(f"  weak packet   : "
          f"{(result.weak.reception.symbols == body_weak).sum()}"
          f"/{n_body} correct from the residual, estimated gain "
          f"{abs(est):.3f} (true {weak_gain})")
    for label, frame in (("strong", result.strong), ("weak", result.weak)):
        if frame.clean:
            print(f"  {label} packet recovered whole — nothing to retransmit")
        else:
            plan = frame.fallback
            print(f"  {label} packet: {plan.n_bad_symbols} symbols still "
                  f"bad, PPR chunk plan costs {plan.cost_bits:.0f} "
                  f"feedback bits")


if __name__ == "__main__":
    main()
