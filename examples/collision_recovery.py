"""Recovering both packets from a collision (paper Fig. 5 / Fig. 13).

Two senders' MSK waveforms overlap at one receiver.  The first
packet's preamble survives; the second packet's preamble is buried
under the first packet, but its *postamble* is clean — so the receiver
rolls back through its sample buffer and recovers it anyway.

Everything here runs at waveform level: half-sine O-QPSK modulation,
complex-baseband superposition, AWGN, correlation synchronisation and
matched-filter demodulation — fused through the batched waveform
reception engine (one sync pass and one matched-filter + decode call
for both packets).

Run:  python examples/collision_recovery.py
"""

import numpy as np

from repro import MskModulator, WaveformBatchEngine, ZigbeeCodebook
from repro.phy.channelsim import TransmissionInstance, awgn_collision_channel
from repro.phy.sync import sync_field_symbols


def main() -> None:
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(42)
    sps = 4
    modulator = MskModulator(sps=sps)
    n_body = 80
    overlap = 30  # symbols of overlap between the two packets

    preamble = sync_field_symbols("preamble")
    postamble = sync_field_symbols("postamble")
    body1 = rng.integers(0, 16, n_body)
    body2 = rng.integers(0, 16, n_body)
    frame1 = np.concatenate([preamble, body1, postamble])
    frame2 = np.concatenate([preamble, body2, postamble])

    # Packet 2 starts while packet 1's tail is still in the air.
    chips_per_symbol = codebook.chips_per_symbol
    offset = (frame1.size - overlap) * chips_per_symbol * sps
    capture = awgn_collision_channel(
        [
            TransmissionInstance(samples=modulator.modulate_symbols(
                frame1, codebook), offset=0),
            TransmissionInstance(samples=modulator.modulate_symbols(
                frame2, codebook), offset=offset),
        ],
        noise_power=0.05,
        rng=rng,
    )
    print(f"capture window: {capture.size} complex samples, "
          f"{overlap} symbols of overlap")

    engine = WaveformBatchEngine(codebook, sps=sps)

    # --- packet 1 by preamble, packet 2 by postamble rollback, both --------
    # --- through one fused sync + matched-filter + decode pass       --------
    pair = engine.receive_collision_pair(capture, n_body)
    print(f"\npreamble detections : "
          f"{[(d.sample_offset, round(d.score, 2)) for d in pair.preamble_detections]}")
    print(f"postamble detections: "
          f"{[(d.sample_offset, round(d.score, 2)) for d in pair.postamble_detections]}")

    hints1, hints2 = pair.first.hints, pair.second.hints
    ok1 = pair.first.symbols == body1
    print(f"\npacket 1 (preamble path) : {ok1.sum()}/{n_body} correct")
    print(f"  clean-region mean hint : "
          f"{hints1[: n_body - overlap].mean():.2f}")
    print(f"  overlap-region mean hint: "
          f"{hints1[n_body - overlap:].mean():.2f}")
    ok2 = pair.second.symbols == body2
    print(f"packet 2 (postamble rollback) : {ok2.sum()}/{n_body} correct")

    # --- what PPR delivers --------------------------------------------------
    eta = 6
    for name, hints, ok in (
        ("packet 1", hints1, ok1),
        ("packet 2", hints2, ok2),
    ):
        good = hints <= eta
        delivered = (good & ok).sum()
        misses = (good & ~ok).sum()
        print(
            f"{name}: PPR delivers {delivered}/{n_body} symbols "
            f"(misses: {misses}); status-quo packet CRC delivers "
            f"{'all' if ok.all() else 'none'}"
        )


if __name__ == "__main__":
    main()
