"""Learning the SoftPHY threshold online (paper §3.3).

The PHY only promises *monotonicity* — lower hint means higher
confidence — so the link layer must learn where to draw the good/bad
line.  This example runs a receiver through three channel regimes
(clean, collision-dominated, noise-dominated) and shows the
:class:`~repro.link.adaptive.AdaptiveThreshold` tracking the right
threshold from verified feedback alone, without ever interpreting hint
semantics.

Run:  python examples/adaptive_threshold.py
"""

import numpy as np

from repro import ZigbeeCodebook
from repro.link.adaptive import AdaptiveThreshold
from repro.phy.chipchannel import transmit_chipwords


def run_regime(name, adapt, codebook, rng, base_p, burst_p, n_packets=40):
    """Push packets through one channel regime and report the learner."""
    for _ in range(n_packets):
        symbols = rng.integers(0, 16, 250)
        p = np.full(250, base_p)
        if burst_p > 0:
            start = rng.integers(0, 180)
            p[start : start + 60] = burst_p
        received = transmit_chipwords(
            codebook.encode_words(symbols), p, rng
        )
        decoded, hints = codebook.decode_hard(received)
        # In deployment, correctness arrives post-hoc from PP-ARQ's
        # per-run CRC verification; the simulation knows it directly.
        adapt.observe(hints, decoded == symbols)
    eta = adapt.best_threshold()
    print(
        f"{name:28s} learned eta = {eta:2d}   "
        f"miss rate = {adapt.miss_rate(eta):.4f}   "
        f"false alarms = {adapt.false_alarm_rate(eta):.4f}"
    )
    return eta


def main() -> None:
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(33)

    print("regime                        learned threshold and rates")
    print("-" * 72)

    # Fresh learner per regime to show what each channel implies.
    clean = AdaptiveThreshold()
    run_regime("clean channel", clean, codebook, rng, 0.002, 0.0)

    collisions = AdaptiveThreshold()
    run_regime(
        "collision-dominated", collisions, codebook, rng, 0.002, 0.45
    )

    noisy = AdaptiveThreshold()
    run_regime("noise-dominated (marginal)", noisy, codebook, rng, 0.12, 0.0)

    # One learner across all three regimes: the long-run compromise.
    mixed = AdaptiveThreshold()
    for base_p, burst_p in ((0.002, 0.0), (0.002, 0.45), (0.12, 0.0)):
        run_regime("  (mixed-traffic learner)", mixed, codebook, rng,
                   base_p, burst_p, n_packets=20)

    print(
        "\nThe paper's fixed eta = 6 sits inside the range the learner "
        "picks across regimes,\nwhich is why a single threshold worked "
        "for their testbed (cf. §3.2, §7.4)."
    )


if __name__ == "__main__":
    main()
