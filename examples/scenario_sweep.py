"""Scenario sweep API: fan parameter grids through the run cache.

Sweeps a small load x seed grid through the shared RunCache (the same
machinery the registered experiments use), evaluates one cached run
under several thresholds via a non-config axis, and shows the stable
JSON form every experiment result carries.

Run:  PYTHONPATH=src python examples/scenario_sweep.py
"""

import json

from repro.experiments import registry
from repro.experiments.common import (
    RunCache,
    labelled_evaluations,
    mean_delivery_rate,
    sweep,
)


def main() -> None:
    # Every cache entry is keyed by its full frozen SimulationConfig,
    # so load, seed, duration, ... can all be swept without aliasing;
    # jobs=2 shards uncached points across worker processes.
    cache = RunCache(duration_s=4.0, seed=42, jobs=2)

    # --- 1. a config-axis sweep: load x seed -----------------------------
    print("load x seed sweep (mean per-link delivery rate):")
    grid_sweep = sweep(
        loads=(3500.0, 13800.0), seeds=(42, 43), carrier_sense=False
    )
    for scenario, result in grid_sweep.run(cache):
        evals = labelled_evaluations(result)
        ppr = mean_delivery_rate(evals["ppr, postamble"])
        status_quo = mean_delivery_rate(evals["packet_crc, no postamble"])
        print(
            f"  {scenario.label():<42} "
            f"ppr={ppr:.3f}  status_quo={status_quo:.3f}"
        )

    # --- 2. a non-config axis: eta rides along as a parameter ------------
    # All three scenarios resolve to the same simulation config (one
    # cached run); only the evaluation threshold varies.
    print("\neta sweep over one cached run (no new simulation):")
    for scenario, result in sweep(
        load=13800.0, carrier_sense=False, eta=(2, 6, 10)
    ).run(cache):
        eta = scenario.param("eta")
        evals = labelled_evaluations(result, eta=eta)
        ppr = mean_delivery_rate(evals["ppr, postamble"])
        print(f"  eta={eta:<3} ppr mean delivery = {ppr:.3f}")

    # --- 3. registered experiments and their JSON schema ------------------
    # The registry knows every experiment's declared simulation points;
    # results serialize to a stable schema for downstream analysis.
    spec = registry.get_spec("fig16")
    result = spec.run(cache)
    document = json.dumps(result.to_dict(), sort_keys=True)
    print(f"\n{spec.experiment_id}: {spec.title}")
    print(f"  declared points : {len(spec.points)}")
    print(f"  shape checks    : "
          f"{sum(c.passed for c in result.shape_checks)}"
          f"/{len(result.shape_checks)} passed")
    print(f"  JSON document   : {len(document)} bytes, "
          f"schema v{result.to_dict()['schema_version']}")


if __name__ == "__main__":
    main()
