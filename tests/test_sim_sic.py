"""The in-simulation SIC pass: opt-in, deterministic, and additive.

``SimulationConfig.sic_recovery`` re-decodes isolated two-frame
collisions at waveform fidelity.  The contract pinned here: the pass
is off by default and bit-deterministic when on; it only ever
*upgrades* damaged records (clean records and every identity field
are untouched); and on the collision testbed it strictly improves
acquisitions and whole-frame deliveries over the chip-level baseline.
The flag is part of the config's cache identity.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.sim.network import NetworkSimulation, SimulationConfig
from repro.sim.testbed import collision_testbed
from repro.store import config_from_dict, config_key, config_to_dict
from test_determinism_contract import _assert_results_identical

_ETA = 6.0


def _config(sic: bool) -> SimulationConfig:
    """Heavy load on the two-sender testbed: collisions guaranteed."""
    return SimulationConfig(
        load_bits_per_s_per_node=60000.0,
        payload_bytes=24,
        duration_s=1.5,
        carrier_sense=False,
        seed=3,
        fading_sigma_db=0.0,
        sic_recovery=sic,
    )


def _run(sic: bool):
    return NetworkSimulation(
        _config(sic), testbed=collision_testbed()
    ).run()


@pytest.fixture(scope="module")
def baseline():
    return _run(sic=False)


@pytest.fixture(scope="module")
def with_sic():
    return _run(sic=True)


def _n_acquired(result) -> int:
    return sum(rec.acquired(True) for rec in result.records)


def _n_whole_frames(result) -> int:
    return sum(
        rec.acquired(True) and bool(rec.payload_correct().all())
        for rec in result.records
    )


def _n_good_symbols(result) -> int:
    return sum(
        int(
            (
                (rec.payload_hints() <= _ETA) & rec.payload_correct()
            ).sum()
        )
        for rec in result.records
        if rec.acquired(True)
    )


class TestSicPassEffect:
    def test_off_by_default(self):
        assert SimulationConfig().sic_recovery is False

    def test_record_identities_unchanged(self, baseline, with_sic):
        """The pass rewrites decode outcomes, never the traffic."""
        assert len(baseline.records) == len(with_sic.records)
        for ra, rb in zip(
            baseline.records, with_sic.records, strict=True
        ):
            assert (ra.tx_id, ra.receiver, ra.sender) == (
                rb.tx_id,
                rb.receiver,
                rb.sender,
            )
            assert ra.body_symbols.size == rb.body_symbols.size
            assert np.array_equal(ra.body_truth, rb.body_truth)

    def test_sic_strictly_improves_collision_recovery(
        self, baseline, with_sic
    ):
        assert _n_acquired(with_sic) > _n_acquired(baseline)
        assert _n_whole_frames(with_sic) > _n_whole_frames(baseline)
        assert _n_good_symbols(with_sic) > _n_good_symbols(baseline)

    def test_clean_records_are_untouched(self, baseline, with_sic):
        """SIC only adopts decodes for *damaged* records; anything the
        chip-level pass already got right is byte-identical."""
        upgraded = 0
        for ra, rb in zip(
            baseline.records, with_sic.records, strict=True
        ):
            clean = (
                ra.acquired(True)
                and ra.header_ok
                and ra.trailer_ok
                and not (ra.body_hints > 0).any()
            )
            if clean:
                assert np.array_equal(ra.body_symbols, rb.body_symbols)
                assert np.array_equal(ra.body_hints, rb.body_hints)
                assert (ra.header_ok, ra.trailer_ok) == (
                    rb.header_ok,
                    rb.trailer_ok,
                )
            elif not np.array_equal(ra.body_hints, rb.body_hints):
                upgraded += 1
        assert upgraded > 0

    def test_sic_run_is_bit_deterministic(self, with_sic):
        _assert_results_identical(with_sic, _run(sic=True))


class TestConfigIdentity:
    def test_flag_round_trips_through_store_dict(self):
        config = _config(sic=True)
        restored = config_from_dict(config_to_dict(config))
        assert restored == config
        assert restored.sic_recovery is True

    def test_flag_is_part_of_the_cache_key(self):
        assert config_key(_config(sic=True)) != config_key(
            _config(sic=False)
        )

    def test_flag_survives_dataclass_replace(self):
        on = dataclasses.replace(_config(sic=False), sic_recovery=True)
        assert on == _config(sic=True)
