"""Tests for analysis utilities: stats, runs, text rendering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.runs import (
    ccdf_from_counts,
    longest_run,
    run_length_histogram,
    run_lengths,
)
from repro.analysis.stats import (
    Cdf,
    ccdf_points,
    cdf_points,
    geometric_mean,
    median,
    percentile,
)
from repro.analysis.textplot import (
    format_table,
    render_cdf,
    render_scatter,
    render_series,
)


class TestCdf:
    def test_quantiles(self):
        cdf = Cdf(np.arange(1, 101, dtype=float))
        assert cdf.median() == pytest.approx(50.5)
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 100.0

    def test_at(self):
        cdf = Cdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cdf.at(2.0) == pytest.approx(0.5)
        assert cdf.at(0.5) == 0.0
        assert cdf.at(10.0) == 1.0

    def test_points_monotonic(self):
        xs, ys = Cdf(np.array([3.0, 1.0, 2.0])).points()
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ys) > 0)
        assert ys[-1] == pytest.approx(1.0)

    def test_ccdf_complement(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        xs, tail = ccdf_points(samples)
        _, cdf = cdf_points(samples)
        assert tail == pytest.approx(1.0 - cdf + 0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf(np.array([]))
        with pytest.raises(ValueError):
            cdf_points(np.array([]))

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Cdf(np.array([1.0])).quantile(1.5)


class TestSummaries:
    def test_median_and_percentile(self):
        data = [5, 1, 3]
        assert median(data) == 3.0
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 5.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_epsilon_offsets_zeros(self):
        value = geometric_mean([0.0, 1.0], epsilon=1e-3)
        assert value > 0

    def test_errors(self):
        with pytest.raises(ValueError):
            median([])
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])


class TestRuns:
    def test_run_lengths_basic(self):
        assert run_lengths([True, True, False, True]) == [2, 1]
        assert run_lengths([False, False]) == []
        assert run_lengths([]) == []

    def test_longest_run(self):
        assert longest_run([True, False, True, True, True]) == 3
        assert longest_run([False]) == 0

    def test_histogram_aggregates(self):
        masks = [[True, False, True], [True, True, False]]
        hist = run_length_histogram(masks)
        assert hist[1] == 2
        assert hist[2] == 1

    def test_ccdf_from_counts(self):
        from collections import Counter

        counts = Counter({1: 6, 2: 3, 5: 1})
        lengths, tail = ccdf_from_counts(counts)
        assert lengths.tolist() == [1, 2, 5]
        assert tail == pytest.approx([1.0, 0.4, 0.1])

    def test_ccdf_empty_rejected(self):
        from collections import Counter

        with pytest.raises(ValueError):
            ccdf_from_counts(Counter())

    @given(st.lists(st.booleans(), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_run_lengths_sum_to_true_count(self, mask):
        assert sum(run_lengths(mask)) == sum(mask)


class TestTextRendering:
    def test_render_cdf_structure(self):
        out = render_cdf(
            {"a": np.array([0.1, 0.5, 0.9]), "b": np.array([0.2, 0.4])},
            xmax=1.0,
        )
        assert "o = a" in out
        assert "x = b" in out
        assert "1.0 |" in out

    def test_render_series_logy(self):
        xs = np.arange(1, 6)
        out = render_series(
            xs, {"tail": np.array([1.0, 0.1, 0.01, 0.001, 1e-4])},
            logy=True,
        )
        assert "o = tail" in out
        assert "e" in out  # scientific notation on the axis

    def test_render_scatter_includes_diagonal(self):
        out = render_scatter(
            {"pts": (np.array([1.0, 10.0]), np.array([2.0, 20.0]))}
        )
        assert "y = x" in out

    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 20]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all(len(l) == len(lines[1]) for l in lines[3:])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_cdf({})
        with pytest.raises(ValueError):
            render_series(np.arange(3), {})
        with pytest.raises(ValueError):
            render_scatter({})
