"""Tests for the markdown report generator (the artifact consumer).

The report must be buildable from a runner ``--out`` directory alone —
no simulator access — and must degrade gracefully: a manifest is
optional, an empty directory is a clean error, and more series than
the CDF plot can distinguish are skipped with a note.
"""

import numpy as np
import pytest

from repro.analysis.report import (
    load_results,
    main,
    render_markdown,
)
from repro.analysis.textplot import _MARKERS
from repro.experiments.common import ExperimentResult, ShapeCheck
from repro.experiments.runner import main as runner_main


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory):
    """A real runner artifact directory (fig13 simulates nothing)."""
    out = tmp_path_factory.mktemp("artifacts")
    store = tmp_path_factory.mktemp("store")
    assert (
        runner_main(
            [
                "--experiment",
                "fig13",
                "--out",
                str(out),
                "--store",
                str(store),
            ]
        )
        == 0
    )
    return out


def _result(**overrides) -> ExperimentResult:
    fields = {
        "experiment_id": "figX",
        "title": "Synthetic",
        "paper_expectation": "something holds",
        "rendered": "ASCII ART",
        "shape_checks": [ShapeCheck(name="holds", passed=True)],
        "series": {"values": [1.0, 2.0, 3.0]},
    }
    fields.update(overrides)
    return ExperimentResult(**fields)


class TestLoadResults:
    def test_loads_runner_artifacts(self, artifact_dir):
        results, manifest = load_results(artifact_dir)
        assert [r.experiment_id for r in results] == ["fig13"]
        assert manifest is not None
        assert manifest["store"]["misses"] == 0
        assert results[0].rendered  # full round trip, not just ids

    def test_manifest_is_optional(self, artifact_dir, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        source = artifact_dir / "fig13.json"
        (bare / "fig13.json").write_text(source.read_text())
        results, manifest = load_results(bare)
        assert manifest is None
        assert [r.experiment_id for r in results] == ["fig13"]


class TestRenderMarkdown:
    def test_report_structure(self, artifact_dir):
        results, manifest = load_results(artifact_dir)
        report = render_markdown(results, manifest)
        assert report.startswith("# Reproduction report")
        assert "Run store:" in report
        assert "## fig13 —" in report
        assert "Paper expectation:" in report
        assert "| `fig13` |" in report
        assert "PASS" in report

    def test_cdf_rendered_for_flat_numeric_series(self):
        report = render_markdown([_result()])
        assert "Empirical CDFs" in report
        assert "= values" in report  # the CDF legend names the series

    def test_non_flat_series_skipped(self):
        report = render_markdown(
            [
                _result(
                    series={
                        "nested": [[1.0], [2.0]],
                        "mapping": {"a": 1},
                        "mixed": [1.0, "two"],
                        "empty": [],
                    }
                )
            ]
        )
        assert "Empirical CDFs" not in report

    def test_excess_series_noted(self):
        series = {
            f"s{i}": list(np.arange(3.0))
            for i in range(len(_MARKERS) + 2)
        }
        report = render_markdown([_result(series=series)])
        assert "2 further series omitted" in report

    def test_failed_check_flagged(self):
        report = render_markdown(
            [
                _result(
                    shape_checks=[
                        ShapeCheck(name="broken", passed=False)
                    ]
                )
            ]
        )
        assert "**FAIL**" in report
        assert "[FAIL] broken" in report


def _failure_entry(exp_id="fig9", **overrides) -> dict:
    """One manifest ``failures`` entry, as the runner writes them."""
    entry = {
        "experiment_id": exp_id,
        "title": "Broken experiment",
        "error_type": "InjectedFailure",
        "error": "injected fault (attempt 3)",
        "traceback": "Traceback (most recent call last): ...",
        "attempts": 3,
    }
    entry.update(overrides)
    return entry


class TestFailuresRendering:
    def test_partial_sweep_renders_failures_section(self):
        manifest = {
            "schema_version": 1,
            "failures": {"fig9": _failure_entry()},
        }
        report = render_markdown([_result()], manifest)
        assert "**Partial sweep:** 1 experiment(s) failed" in report
        assert "## Execution failures (1)" in report
        assert "| `fig9` | InjectedFailure: injected fault" in report
        assert "| 3 |" in report
        # The completed experiment still renders in full.
        assert "## figX —" in report
        assert "ASCII ART" in report

    def test_failures_sorted_and_counted(self):
        manifest = {
            "failures": {
                "zeta": _failure_entry("zeta"),
                "alpha": _failure_entry("alpha", attempts=0),
            }
        }
        report = render_markdown([_result()], manifest)
        assert "## Execution failures (2)" in report
        assert report.index("`alpha`") < report.index("`zeta`")
        # attempts=0 (not a sweep failure) renders as a dash.
        alpha_row = next(
            line
            for line in report.splitlines()
            if line.startswith("| `alpha`")
        )
        assert alpha_row.endswith("| — |")

    def test_clean_manifest_has_no_failures_section(self, artifact_dir):
        results, manifest = load_results(artifact_dir)
        report = render_markdown(results, manifest)
        assert "Execution failures" not in report
        assert "Partial sweep" not in report

    def test_failures_survive_the_artifact_round_trip(
        self, artifact_dir, tmp_path
    ):
        """A manifest written with failures entries (as the runner
        writes after a poisoned sweep) drives the report end to end."""
        import json

        partial = tmp_path / "partial"
        partial.mkdir()
        source = artifact_dir / "fig13.json"
        (partial / "fig13.json").write_text(source.read_text())
        manifest = {
            "schema_version": 1,
            "experiments": {"fig13": {"file": "fig13.json"}},
            "failures": {"fig9": _failure_entry()},
        }
        (partial / "manifest.json").write_text(json.dumps(manifest))
        results, loaded = load_results(partial)
        report = render_markdown(results, loaded)
        assert "## Execution failures (1)" in report
        assert "## fig13 —" in report


class TestReportCli:
    def test_writes_report_file(self, artifact_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([str(artifact_dir), "--out", str(out)]) == 0
        capsys.readouterr()
        assert out.read_text().startswith("# Reproduction report")

    def test_prints_to_stdout_by_default(self, artifact_dir, capsys):
        assert main([str(artifact_dir)]) == 0
        assert "# Reproduction report" in capsys.readouterr().out

    def test_empty_directory_is_an_error(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 1
        assert "no experiment artifacts" in capsys.readouterr().err
