"""Structural unit tests for every experiment module at tiny scale.

The benchmark suite runs these at full duration with shape gating;
here each module's pipeline is exercised quickly: the result object is
well-formed, the rendered output mentions the right series, and the
series carry the documented keys.  (Statistics at 3 simulated seconds
are too thin to assert shapes.)
"""

import numpy as np
import pytest

from repro.experiments import (
    exp_fig3,
    exp_fig8,
    exp_fig9,
    exp_fig10,
    exp_fig11,
    exp_fig12,
    exp_fig14,
    exp_fig15,
    exp_sweep_load,
    exp_table2,
)
from repro.experiments.common import RunCache


@pytest.fixture(scope="module")
def tiny_runs():
    return RunCache(duration_s=3.0, seed=11)


class TestFig3Module:
    def test_structure(self, tiny_runs):
        result = exp_fig3.run(tiny_runs)
        assert result.experiment_id == "fig3"
        assert "stats" in result.series
        assert len(result.series["stats"]) == 3
        for _label, (c_le1, inc_le6) in result.series["stats"].items():
            assert 0 <= c_le1 <= 1
            assert 0 <= inc_le6 <= 1
        assert "Hamming distance" in result.rendered


class TestDeliveryModules:
    def test_fig8_series_cover_six_variants(self, tiny_runs):
        result = exp_fig8.run(tiny_runs)
        assert len(result.series) == 6
        for _label, rates in result.series.items():
            assert isinstance(rates, np.ndarray)
            if rates.size:
                assert rates.min() >= 0 and rates.max() <= 1

    def test_fig9_has_carrier_sense_checks(self, tiny_runs):
        result = exp_fig9.run(tiny_runs)
        names = [c.name for c in result.shape_checks]
        assert any("carrier sense" in n for n in names)

    def test_fig10_compares_loads(self, tiny_runs):
        result = exp_fig10.run(tiny_runs)
        names = [c.name for c in result.shape_checks]
        assert any("heavy load" in n for n in names)


class TestThroughputModules:
    def test_fig11_series(self, tiny_runs):
        result = exp_fig11.run(tiny_runs)
        assert "totals" in result.series
        assert len(result.series["totals"]) == 6

    def test_fig12_points_cover_links_at_three_loads(self, tiny_runs):
        result = exp_fig12.run(tiny_runs)
        ppr_points = result.series["ppr_points"]
        pkt_points = result.series["packet_points"]
        assert ppr_points.shape == pkt_points.shape
        assert ppr_points.shape[1] == 2
        assert result.series["ppr_over_frag"] > 0

    def test_table2_columns(self, tiny_runs):
        result = exp_table2.run(tiny_runs)
        assert set(result.series["throughputs"]) == {1, 10, 30, 100, 300}
        assert set(result.series["goodput_fraction"]) == set(
            result.series["throughputs"]
        )


class TestHintStatModules:
    def test_fig14_counts_keyed_by_eta(self, tiny_runs):
        result = exp_fig14.run(tiny_runs)
        assert set(result.series["counts"]) == {1, 2, 3, 4}

    def test_fig15_rates_at_eta6(self, tiny_runs):
        result = exp_fig15.run(tiny_runs)
        assert len(result.series["at_eta6"]) == 3
        for rate in result.series["at_eta6"].values():
            assert 0 <= rate <= 1
        # Monotonicity holds at any scale.
        assert any(
            c.name.startswith("false-alarm rate monotonically")
            and c.passed
            for c in result.shape_checks
        )


class TestSweepLoadModule:
    def test_structure(self):
        # Its own short cache: the sweep overrides the seed axis, so
        # it shares no simulations with the tiny_runs fixture anyway.
        result = exp_sweep_load.run(RunCache(duration_s=2.0, seed=11))
        assert result.experiment_id == "sweep_load"
        assert result.series["loads"] == list(exp_sweep_load.LOADS)
        assert result.series["seeds"] == list(exp_sweep_load.SEEDS)
        assert len(result.series["stats"]) == len(exp_sweep_load.LOADS)
        for stats in result.series["stats"].values():
            assert stats["ppr_ci"] >= 0
            assert stats["gap_min"] <= stats["gap_mean"]
        # One delivery sample per (load, seed) pair.
        for samples in result.series["per_load_ppr"].values():
            assert len(samples) == len(exp_sweep_load.SEEDS)
        assert "95% CI" in result.rendered
