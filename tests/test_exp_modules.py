"""Structural unit tests for every experiment module at tiny scale.

The benchmark suite runs these at full duration with shape gating;
here each module's pipeline is exercised quickly: the result object is
well-formed, the rendered output mentions the right series, and the
series carry the documented keys.  (Statistics at 3 simulated seconds
are too thin to assert shapes.)
"""

import numpy as np
import pytest

from repro.experiments import (
    exp_delivery,
    exp_fig3,
    exp_fig11,
    exp_fig12,
    exp_fig14,
    exp_fig15,
    exp_table2,
)
from repro.experiments.common import CapacityRuns


@pytest.fixture(scope="module")
def tiny_runs():
    return CapacityRuns(duration_s=3.0, seed=11)


class TestFig3Module:
    def test_structure(self, tiny_runs):
        result = exp_fig3.run(tiny_runs)
        assert result.experiment_id == "fig3"
        assert "stats" in result.series
        assert len(result.series["stats"]) == 3
        for label, (c_le1, inc_le6) in result.series["stats"].items():
            assert 0 <= c_le1 <= 1
            assert 0 <= inc_le6 <= 1
        assert "Hamming distance" in result.rendered


class TestDeliveryModules:
    def test_fig8_series_cover_six_variants(self, tiny_runs):
        result = exp_delivery.run_fig8(tiny_runs)
        assert len(result.series) == 6
        for label, rates in result.series.items():
            assert isinstance(rates, np.ndarray)
            if rates.size:
                assert rates.min() >= 0 and rates.max() <= 1

    def test_fig9_has_carrier_sense_checks(self, tiny_runs):
        result = exp_delivery.run_fig9(tiny_runs)
        names = [c.name for c in result.shape_checks]
        assert any("carrier sense" in n for n in names)

    def test_fig10_compares_loads(self, tiny_runs):
        result = exp_delivery.run_fig10(tiny_runs)
        names = [c.name for c in result.shape_checks]
        assert any("heavy load" in n for n in names)


class TestThroughputModules:
    def test_fig11_series(self, tiny_runs):
        result = exp_fig11.run(tiny_runs)
        assert "totals" in result.series
        assert len(result.series["totals"]) == 6

    def test_fig12_points_cover_links_at_three_loads(self, tiny_runs):
        result = exp_fig12.run(tiny_runs)
        ppr_points = result.series["ppr_points"]
        pkt_points = result.series["packet_points"]
        assert ppr_points.shape == pkt_points.shape
        assert ppr_points.shape[1] == 2
        assert result.series["ppr_over_frag"] > 0

    def test_table2_columns(self, tiny_runs):
        result = exp_table2.run(tiny_runs)
        assert set(result.series["throughputs"]) == {1, 10, 30, 100, 300}
        assert set(result.series["goodput_fraction"]) == set(
            result.series["throughputs"]
        )


class TestHintStatModules:
    def test_fig14_counts_keyed_by_eta(self, tiny_runs):
        result = exp_fig14.run(tiny_runs)
        assert set(result.series["counts"]) == {1, 2, 3, 4}

    def test_fig15_rates_at_eta6(self, tiny_runs):
        result = exp_fig15.run(tiny_runs)
        assert len(result.series["at_eta6"]) == 3
        for rate in result.series["at_eta6"].values():
            assert 0 <= rate <= 1
        # Monotonicity holds at any scale.
        assert any(
            c.name.startswith("false-alarm rate monotonically")
            and c.passed
            for c in result.shape_checks
        )
