"""Tests for symbol timing recovery."""

import numpy as np
import pytest

from repro.phy.channelsim import add_awgn
from repro.phy.modulation import MskModulator
from repro.phy.timing import MuellerMullerTed, estimate_chip_phase


class TestPhaseEstimation:
    def _waveform(self, rng, sps=4, n_chips=256):
        mod = MskModulator(sps=sps)
        chips = rng.integers(0, 2, n_chips)
        return mod.modulate_chips(chips)

    def test_recovers_zero_offset(self, rng):
        wave = self._waveform(rng)
        phase, energies = estimate_chip_phase(wave, sps=4)
        assert phase == 0
        assert energies[0] == energies.max()

    def test_recovers_integer_offsets(self, rng):
        wave = self._waveform(rng)
        for offset in (1, 2, 3):
            delayed = np.concatenate(
                [np.zeros(offset, dtype=complex), wave]
            )
            phase, _ = estimate_chip_phase(delayed, sps=4)
            assert phase == offset

    def test_robust_to_noise(self, rng):
        wave = self._waveform(rng, n_chips=512)
        delayed = np.concatenate([np.zeros(2, dtype=complex), wave])
        noisy = add_awgn(delayed, 0.3, rng)
        phase, _ = estimate_chip_phase(noisy, sps=4, n_probe_chips=256)
        assert phase == 2

    def test_works_mid_stream(self, rng):
        """Non-data-aided: the estimator needs no preamble (paper §4)."""
        wave = self._waveform(rng, n_chips=512)
        phase, _ = estimate_chip_phase(
            wave, sps=4, start=4 * 100, n_probe_chips=128
        )
        assert phase == 0

    def test_too_short_capture_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            estimate_chip_phase(np.zeros(40, dtype=complex), sps=4)

    def test_invalid_sps_rejected(self):
        with pytest.raises(ValueError):
            estimate_chip_phase(np.zeros(1000, dtype=complex), sps=1)


class TestMuellerMuller:
    def test_zero_error_when_centred(self):
        ted = MuellerMullerTed()
        # Perfectly sliced alternating soft outputs: no timing error.
        soft = np.array([1.0, -1.0, 1.0, -1.0, 1.0, -1.0])
        assert ted.mean_error(soft) == pytest.approx(0.0)

    def test_error_sign_tracks_sampling_skew(self, rng):
        ted = MuellerMullerTed()
        # Late sampling leaks the *next* chip into each soft output
        # (y_k = a_k + 0.3 a_{k+1}); early sampling leaks the previous
        # one.  For random data E[e] = -0.3 when late, +0.3 when early.
        # (An alternating pattern is degenerate: the leakage only
        # rescales it, so random chips are essential here.)
        chips = rng.choice([-1.0, 1.0], size=4000)
        late = chips[:-1] + 0.3 * chips[1:]
        early = chips[1:] + 0.3 * chips[:-1]
        assert ted.mean_error(late) == pytest.approx(-0.3, abs=0.05)
        assert ted.mean_error(early) == pytest.approx(0.3, abs=0.05)

    def test_error_signal_length(self):
        ted = MuellerMullerTed()
        assert ted.error_signal(np.ones(10)).size == 9
        assert ted.error_signal(np.ones(1)).size == 0

    def test_track_moves_against_error(self, rng):
        ted = MuellerMullerTed(loop_gain=0.1)
        chips = rng.choice([-1.0, 1.0], size=600)
        late = chips[:-1] + 0.3 * chips[1:]
        history = ted.track([late, late, late])
        assert history[-1] > 0  # loop advances phase to compensate
        assert len(history) == 3
        # Accumulates monotonically while the skew persists.
        assert history[0] < history[1] < history[2]

    def test_invalid_gain_rejected(self):
        with pytest.raises(ValueError):
            MuellerMullerTed(loop_gain=0.0)
        with pytest.raises(ValueError):
            MuellerMullerTed(loop_gain=1.0)
