"""End-to-end property tests on the protocol and waveform pipelines.

These pin down system-level guarantees rather than module behaviours:
PP-ARQ converges for *any* error pattern, and the waveform receiver
survives sample-timing misalignment via non-data-aided recovery.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arq.protocol import PpArqSession
from repro.phy.channelsim import add_awgn, fractional_delay
from repro.phy.modulation import MskModulator
from repro.phy.symbols import SoftPacket
from repro.phy.timing import estimate_chip_phase
from repro.utils.bitops import pack_bits_to_uint32
from repro.utils.rng import ensure_rng


class TestPpArqConvergenceProperty:
    """For any one-shot corruption pattern with honest hints, PP-ARQ
    recovers the packet in at most two recovery rounds: one to fetch
    the bad ranges, none-or-one more for verification edge cases."""

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(20, 120),
    )
    @settings(max_examples=25, deadline=None)
    def test_one_shot_corruption_recovers_fast(self, seed, n_bytes):
        rng = ensure_rng(seed)
        payload = bytes(rng.integers(0, 256, n_bytes, dtype=np.uint8))
        first_call = {"done": False}

        def channel(symbols):
            symbols = np.asarray(symbols, dtype=np.int64)
            if symbols.size == 0:
                return SoftPacket(
                    symbols=symbols, hints=np.zeros(0), truth=symbols
                )
            if first_call["done"]:
                # Retransmissions arrive clean.
                return SoftPacket(
                    symbols=symbols,
                    hints=np.zeros(symbols.size),
                    truth=symbols,
                )
            first_call["done"] = True
            # Corrupt an arbitrary subset, with honest high hints.
            corrupted = symbols.copy()
            hints = np.zeros(symbols.size)
            n_bad = int(rng.integers(1, symbols.size))
            idx = rng.choice(symbols.size, n_bad, replace=False)
            corrupted[idx] = (corrupted[idx] + 1) % 16
            hints[idx] = 12.0
            return SoftPacket(
                symbols=corrupted, hints=hints, truth=symbols
            )

        session = PpArqSession(channel, eta=6.0)
        log = session.transfer(1, payload)
        assert log.delivered
        assert session.receiver.reassembled_payload(1) == payload
        assert log.rounds <= 3
        # Retransmitted data symbols never exceed one full packet.
        wire_symbols = 2 * (n_bytes + 4)
        assert log.data_symbols_sent <= 2 * wire_symbols

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_misses_always_caught_by_checksums(self, seed):
        """Even when every corrupted symbol carries a *good* hint (a
        total miss storm), the gap-checksum exchange recovers the
        packet — data integrity never depends on hint quality."""
        rng = ensure_rng(seed)
        payload = bytes(rng.integers(0, 256, 60, dtype=np.uint8))
        calls = {"n": 0}

        def lying_channel(symbols):
            symbols = np.asarray(symbols, dtype=np.int64)
            if symbols.size == 0:
                return SoftPacket(
                    symbols=symbols, hints=np.zeros(0), truth=symbols
                )
            calls["n"] += 1
            if calls["n"] > 1:
                return SoftPacket(
                    symbols=symbols,
                    hints=np.zeros(symbols.size),
                    truth=symbols,
                )
            corrupted = symbols.copy()
            idx = rng.choice(symbols.size, 5, replace=False)
            corrupted[idx] = (corrupted[idx] + 3) % 16
            return SoftPacket(
                symbols=corrupted,
                hints=np.zeros(symbols.size),  # all lies
                truth=symbols,
            )

        session = PpArqSession(lying_channel, eta=6.0)
        log = session.transfer(1, payload)
        assert log.delivered
        assert session.receiver.reassembled_payload(1) == payload


class TestTimingRecoveryEndToEnd:
    """Paper §4: non-data-aided timing recovery lets the receiver
    symbol-synchronise stored samples at any point of a transmission."""

    # Delays whose whole-chip part is even: the energy estimator
    # recovers the sub-chip sample phase but is blind to I/Q rail
    # parity (an odd-chip shift swaps rails); absolute chip alignment
    # comes from frame-sync correlation in the full receiver.
    @pytest.mark.parametrize("delay", [1.0, 2.0, 3.0, 9.0, 10.0, 11.0])
    def test_integer_sample_delays_recovered(self, codebook, delay):
        rng = ensure_rng(int(delay * 10))
        sps = 4
        symbols = rng.integers(0, 16, 40)
        wave = MskModulator(sps=sps).modulate_symbols(symbols, codebook)
        shifted = fractional_delay(wave, delay)
        noisy = add_awgn(shifted, 0.05, rng)

        phase, _ = estimate_chip_phase(noisy, sps=sps)
        assert phase == int(delay) % sps

        # Decode from the estimated alignment: phase gives the
        # chip-rate offset; whole-chip ambiguity resolves by decoding
        # at candidate chip starts and keeping the best hints.
        from repro.phy.demodulation import MskDemodulator

        demod = MskDemodulator(sps=sps)
        start = int(delay) if delay == int(delay) else None
        if start is not None:
            soft = demod.demodulate_soft(noisy, start, 40 * 32)
            hard = (soft > 0).astype(np.uint8).reshape(-1, 32)
            decoded, dists = codebook.decode_hard(
                pack_bits_to_uint32(hard)
            )
            assert np.array_equal(decoded, symbols)
            assert dists.mean() < 1.0

    def test_phase_estimate_consistent_across_packet(self, codebook):
        """Estimating from the head and from the middle of a long
        capture gives the same chip phase — the property that lets
        rollback re-synchronise buffered samples."""
        rng = ensure_rng(3)
        sps = 4
        symbols = rng.integers(0, 16, 120)
        wave = MskModulator(sps=sps).modulate_symbols(symbols, codebook)
        shifted = fractional_delay(wave, 2.0)
        noisy = add_awgn(shifted, 0.1, rng)
        head_phase, _ = estimate_chip_phase(noisy, sps=sps, start=0)
        mid = (60 * 32) * sps  # chip-aligned interior point
        mid_phase, _ = estimate_chip_phase(noisy, sps=sps, start=mid)
        assert head_phase == mid_phase == 2
