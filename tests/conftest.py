"""Shared fixtures for the test suite.

Expensive artifacts (codebook, a small network simulation) are built
once per session; anything stochastic takes an explicit seed so test
failures reproduce exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.codebook import ZigbeeCodebook
from repro.sim.network import NetworkSimulation, SimulationConfig
from repro.utils import sanitize
from repro.utils.rng import ensure_rng


@pytest.fixture(autouse=True)
def _fresh_sanitizer_ledger():
    """Per-test REPRO_SANITIZE isolation.

    Distinct tests legitimately re-derive the same stream keys (each
    pins its own expectations); the key ledger only audits draw sites
    within one test — and, via the shard merge in ``RunCache``, within
    one experiment run.
    """
    sanitize.reset()
    yield
    sanitize.reset()


@pytest.fixture(scope="session")
def codebook() -> ZigbeeCodebook:
    """The 802.15.4 codebook (immutable, safe to share)."""
    return ZigbeeCodebook()


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return ensure_rng(12345)


@pytest.fixture(scope="session")
def small_sim_result():
    """A short heavy-load testbed run shared by simulation tests.

    Heavy load guarantees collisions, partial packets, and postamble
    recoveries all appear in the records.
    """
    config = SimulationConfig(
        load_bits_per_s_per_node=13800.0,
        payload_bytes=400,
        duration_s=10.0,
        carrier_sense=False,
        seed=99,
    )
    return NetworkSimulation(config).run()
