"""Cross-layer integration tests.

These exercise complete paths through the system: testbed traces into
PP-ARQ recovery, waveform PHY into link-layer frame parsing, and the
adaptive threshold learning from real channel statistics.
"""

import numpy as np

from repro.arq.protocol import PpArqSession
from repro.link.adaptive import AdaptiveThreshold
from repro.link.frame import PprFrame, parse_body_symbols
from repro.link.schemes import PprScheme
from repro.phy.channelsim import add_awgn
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.frontend import ReceiverFrontend
from repro.phy.modulation import MskModulator
from repro.phy.symbols import SoftPacket
from repro.utils.rng import ensure_rng


class TestWaveformToLinkLayer:
    def test_frame_through_waveform_phy(self, codebook, rng):
        """Build a PPR frame, modulate it, push it through AWGN, and
        recover it via both sync paths."""
        scheme = PprScheme(eta=6)
        payload = bytes(rng.integers(0, 256, 60, dtype=np.uint8))
        frame = PprFrame.build(
            src=1, dst=2, seq=9, wire_payload=scheme.encode_payload(payload)
        )
        wave = MskModulator(sps=4).modulate_symbols(
            frame.on_air_symbols(), codebook
        )
        noisy = add_awgn(wave, 0.15, rng)
        frontend = ReceiverFrontend(codebook, sps=4)

        # Preamble path.
        det = frontend.detect(noisy, "preamble")[0]
        symbols, hints = frontend.decode_symbols_at(
            noisy, det.sample_offset, 10, frame.n_body_symbols, det.phase
        )
        parsed = parse_body_symbols(symbols)
        assert parsed.header_ok and parsed.trailer_ok
        assert parsed.wire_payload == scheme.encode_payload(payload)
        assert hints.mean() < 1.0

        # Postamble path: roll back from the detected postamble.
        post = frontend.detect(noisy, "postamble")[0]
        symbols2, _ = frontend.decode_symbols_at(
            noisy,
            post.sample_offset,
            -frame.n_body_symbols,
            frame.n_body_symbols,
            post.phase,
        )
        assert np.array_equal(symbols2, symbols)


class TestTracesToPpArq:
    def test_pparq_over_recorded_trace_statistics(
        self, codebook, small_sim_result
    ):
        """Drive PP-ARQ with a channel whose burst statistics come from
        the recorded testbed traces, closing the loop between the
        capacity experiments and the ARQ experiments."""
        damaged = [
            rec
            for rec in small_sim_result.records
            if rec.acquired(True) and not rec.payload_correct().all()
        ]
        assert damaged, "heavy-load run must contain damaged receptions"
        error_masks = [~rec.payload_correct() for rec in damaged[:20]]
        rng = ensure_rng(0)
        cursor = {"i": 0}

        def trace_channel(symbols):
            symbols = np.asarray(symbols, dtype=np.int64)
            if symbols.size == 0:
                return SoftPacket(
                    symbols=symbols, hints=np.zeros(0), truth=symbols
                )
            mask = error_masks[cursor["i"] % len(error_masks)]
            cursor["i"] += 1
            p = np.full(symbols.size, 0.005)
            scaled = np.interp(
                np.linspace(0, 1, symbols.size),
                np.linspace(0, 1, mask.size),
                mask.astype(float),
            )
            p[scaled > 0.5] = 0.4
            words = codebook.encode_words(symbols)
            received = transmit_chipwords(words, p, rng)
            decoded, dist = codebook.decode_hard(received)
            return SoftPacket(
                symbols=decoded,
                hints=dist.astype(float),
                truth=symbols,
            )

        session = PpArqSession(trace_channel, eta=6.0)
        payload = bytes(rng.integers(0, 256, 150, dtype=np.uint8))
        delivered = 0
        for seq in range(5):
            log = session.transfer(seq, payload)
            delivered += int(log.delivered)
            if log.delivered:
                assert session.receiver.reassembled_payload(seq) == payload
        assert delivered == 5


class TestPhyIndependence:
    """The conclusion's promise: 'a PP-ARQ link layer can use different
    SoftPHY implementations without change.'  PP-ARQ is driven here by
    soft-decision correlation hints instead of Hamming distances — the
    receiver code is untouched; only η comes from a calibration pass
    through the adaptive learner."""

    def test_pparq_over_soft_decision_hints(self, codebook):
        from repro.phy.decoder import SoftDecisionDecoder

        rng = ensure_rng(44)
        decoder = SoftDecisionDecoder(codebook)
        noise_sigma = 0.8

        def sdd_channel(symbols):
            symbols = np.asarray(symbols, dtype=np.int64)
            if symbols.size == 0:
                return SoftPacket(
                    symbols=symbols, hints=np.zeros(0), truth=symbols
                )
            clean = (
                codebook.encode(symbols).reshape(-1, 32) * 2.0 - 1.0
            )
            noisy = clean + rng.normal(0, noise_sigma, clean.shape)
            # A collision burst flips sign coherence over a range.
            burst = max(1, symbols.size // 4)
            start = int(rng.integers(0, max(1, symbols.size - burst)))
            noisy[start : start + burst] += rng.normal(
                0, 3.0, (burst, 32)
            )
            result = decoder.decode_samples(noisy)
            return SoftPacket(
                symbols=result.symbols,
                hints=result.hints,
                truth=symbols,
            )

        # Calibrate eta on this PHY's hint scale (SDD margins, not
        # Hamming distances) from verified observations.
        adapt = AdaptiveThreshold(max_hint=32)
        for _ in range(30):
            probe = rng.integers(0, 16, 200)
            soft = sdd_channel(probe)
            adapt.observe(soft.hints, soft.correct_mask())
        eta = float(adapt.best_threshold())

        session = PpArqSession(sdd_channel, eta=eta)
        payload = bytes(rng.integers(0, 256, 150, dtype=np.uint8))
        log = session.transfer(3, payload)
        assert log.delivered
        assert session.receiver.reassembled_payload(3) == payload
        # The recovery was genuinely partial, not full-packet resends.
        if log.retransmit_packet_bytes:
            assert min(log.retransmit_packet_bytes) < len(payload)


class TestAdaptiveFromChannel:
    def test_threshold_learned_from_real_hints(self, codebook):
        """Feed the adaptive learner genuine decoder output and check
        the learned threshold behaves like the paper's eta = 6."""
        rng = ensure_rng(11)
        adapt = AdaptiveThreshold(miss_cost=10.0)
        for _ in range(40):
            symbols = rng.integers(0, 16, 200)
            words = codebook.encode_words(symbols)
            p = np.full(200, 0.01)
            p[50:100] = 0.45  # collision burst
            received = transmit_chipwords(words, p, rng)
            decoded, dist = codebook.decode_hard(received)
            adapt.observe(dist, decoded == symbols)
        eta = adapt.best_threshold()
        assert 2 <= eta <= 10
        # A quarter of the traffic sits inside an equal-power collision
        # burst, where correct codewords legitimately carry large
        # distances — so the false-alarm rate is higher than the
        # paper's network-wide 0.005 but must stay small.
        assert adapt.false_alarm_rate(eta) < 0.10
        assert adapt.miss_rate(eta) < 0.10

    def test_learned_eta_comparable_to_paper_default(self, codebook):
        """Delivery under the learned threshold should be within a few
        percent of delivery under the paper's fixed eta = 6."""
        rng = ensure_rng(13)
        adapt = AdaptiveThreshold()
        records = []
        for _ in range(30):
            symbols = rng.integers(0, 16, 300)
            words = codebook.encode_words(symbols)
            p = np.full(300, 0.02)
            start = rng.integers(0, 200)
            p[start : start + 80] = 0.4
            received = transmit_chipwords(words, p, rng)
            decoded, dist = codebook.decode_hard(received)
            correct = decoded == symbols
            records.append((dist.astype(float), correct))
            adapt.observe(dist, correct)
        eta = adapt.best_threshold()

        def delivered(threshold):
            return sum(
                int(((h <= threshold) & c).sum()) for h, c in records
            )

        assert delivered(eta) >= 0.95 * delivered(6.0)
