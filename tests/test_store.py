"""Tests for the durable content-addressed run store.

Covers the key derivation (content addressing + version stamps), the
bit-for-bit round trip the determinism contract depends on, the
observability counters, and the durability properties: atomic writes
under concurrent writers, corrupt/truncated entries detected and
transparently recomputed, and version-stamp invalidation.
"""

import dataclasses
import gzip
import json

import numpy as np
import pytest

import repro.experiments.common as common
from repro.exec import FaultPlan, Supervisor, Task
from repro.experiments.common import RunCache
from repro.store import (
    RunStore,
    STORE_SCHEMA_VERSION,
    canonical_config_dict,
    canonical_json,
    config_key,
    config_from_dict,
    config_to_dict,
    result_from_parts,
    result_to_parts,
)

_DURATION_S = 2.0
_SEED = 21


def _config(**overrides):
    base = RunCache(duration_s=_DURATION_S, seed=_SEED)
    fields = {"load": 13800.0, "carrier_sense": False, **overrides}
    return base.config_for(**fields)


@pytest.fixture(scope="module")
def run():
    """One cheap simulated point, shared across the module."""
    config = _config()
    return config, common._simulate_config(config)


def _assert_results_identical(a, b) -> None:
    assert a.config == b.config
    assert np.array_equal(a.testbed.positions_m, b.testbed.positions_m)
    assert a.testbed.sender_ids == b.testbed.sender_ids
    assert a.testbed.receiver_ids == b.testbed.receiver_ids
    assert a.testbed.room_grid == b.testbed.room_grid
    assert a.testbed.area_m == b.testbed.area_m
    assert len(a.transmissions) == len(b.transmissions)
    for ta, tb in zip(a.transmissions, b.transmissions, strict=True):
        assert dataclasses.astuple(ta)[:4] == dataclasses.astuple(tb)[:4]
        assert ta.symbols.dtype == tb.symbols.dtype
        assert np.array_equal(ta.symbols, tb.symbols)
        assert (ta.symbol_period, ta.seq) == (tb.symbol_period, tb.seq)
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records, strict=True):
        for field in (
            "tx_id",
            "sender",
            "receiver",
            "start",
            "preamble_detectable",
            "header_ok",
            "postamble_detectable",
            "trailer_ok",
            "acquired_preamble",
            "payload_start",
            "payload_end",
        ):
            assert getattr(ra, field) == getattr(rb, field), field
        for field in ("body_symbols", "body_hints", "body_truth"):
            va, vb = getattr(ra, field), getattr(rb, field)
            assert va.dtype == vb.dtype, field
            assert np.array_equal(va, vb), field


class TestKeys:
    def test_key_is_hex_sha256(self):
        key = config_key(_config())
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_equal_configs_equal_keys(self):
        assert config_key(_config()) == config_key(_config())

    def test_every_field_is_part_of_the_key(self):
        base = config_key(_config())
        assert config_key(_config(load=3500.0)) != base
        assert config_key(_config(seed=_SEED + 1)) != base
        assert config_key(_config(carrier_sense=True)) != base

    def test_version_stamp_is_part_of_the_key(self):
        config = _config()
        assert config_key(config, repro_version="9.9.9") != config_key(
            config
        )

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": [2.5, None]}) == canonical_json(
            {"a": [2.5, None], "b": 1}
        )

    def test_config_dict_round_trip(self):
        config = _config()
        assert config_from_dict(config_to_dict(config)) == config
        # canonical_config_dict is the same plain data.
        assert canonical_config_dict(config) == config_to_dict(config)


class TestRoundTrip:
    def test_parts_round_trip_bit_for_bit(self, run):
        _config_, result = run
        structure, binary = result_to_parts(result)
        # The structure must survive a JSON round trip unchanged.
        structure = json.loads(canonical_json(structure))
        _assert_results_identical(
            result, result_from_parts(structure, binary)
        )

    def test_store_round_trip_bit_for_bit(self, run, tmp_path):
        config, result = run
        store = RunStore(tmp_path)
        store.put(config, result)
        loaded = store.get(config)
        assert loaded is not None
        _assert_results_identical(result, loaded)

    def test_counters(self, run, tmp_path):
        config, result = run
        store = RunStore(tmp_path)
        assert store.get(config) is None
        store.put(config, result)
        assert store.get(config) is not None
        assert store.counters.as_dict() == {
            "hits": 1,
            "misses": 1,
            "writes": 1,
            "corrupt": 0,
        }
        assert store.counters.summary() == (
            "1 hits, 1 misses, 1 writes, 0 corrupt"
        )

    def test_entry_bytes_deterministic(self, run, tmp_path):
        config, result = run
        store = RunStore(tmp_path)
        path = store.put(config, result)
        first = path.read_bytes()
        assert store.put(config, result) == path
        assert path.read_bytes() == first

    def test_put_rejects_mismatched_config(self, run, tmp_path):
        config, result = run
        with pytest.raises(ValueError, match="different config"):
            RunStore(tmp_path).put(_config(load=3500.0), result)

    def test_no_temp_files_left_behind(self, run, tmp_path):
        config, result = run
        store = RunStore(tmp_path)
        path = store.put(config, result)
        assert list(path.parent.iterdir()) == [path]


def _warm_store(tmp_path, run) -> tuple[RunStore, object]:
    config, result = run
    store = RunStore(tmp_path)
    store.put(config, result)
    return store, config


class TestCorruption:
    def test_truncated_entry_recovers(self, run, tmp_path):
        store, config = _warm_store(tmp_path, run)
        path = store.path_for(config)
        path.write_bytes(path.read_bytes()[:100])
        assert store.get(config) is None
        assert store.counters.corrupt == 1
        assert store.counters.misses == 1
        assert not path.exists()  # bad entry deleted for rewrite

    def test_garbage_entry_recovers(self, run, tmp_path):
        store, config = _warm_store(tmp_path, run)
        store.path_for(config).write_bytes(b"not a gzip stream")
        assert store.get(config) is None
        assert store.counters.corrupt == 1

    def test_checksum_mismatch_detected(self, run, tmp_path):
        store, config = _warm_store(tmp_path, run)
        path = store.path_for(config)
        raw = bytearray(gzip.decompress(path.read_bytes()))
        raw[-1] ^= 0xFF  # flip a payload byte; header stays valid
        path.write_bytes(gzip.compress(bytes(raw), mtime=0))
        assert store.get(config) is None
        assert store.counters.corrupt == 1

    def test_schema_version_mismatch_invalidates(self, run, tmp_path):
        store, config = _warm_store(tmp_path, run)
        path = store.path_for(config)
        raw = gzip.decompress(path.read_bytes())
        header_end = raw.index(b"\n")
        header = json.loads(raw[:header_end])
        assert header["store_schema_version"] == STORE_SCHEMA_VERSION
        header["store_schema_version"] = STORE_SCHEMA_VERSION + 1
        path.write_bytes(
            gzip.compress(
                canonical_json(header).encode()
                + b"\n"
                + raw[header_end + 1 :],
                mtime=0,
            )
        )
        assert store.get(config) is None
        assert store.counters.corrupt == 1

    def test_version_mismatch_invalidates(self, run, tmp_path):
        store, config = _warm_store(tmp_path, run)
        path = store.path_for(config)
        raw = gzip.decompress(path.read_bytes())
        header_end = raw.index(b"\n")
        header = json.loads(raw[:header_end])
        header["repro_version"] = "0.0.1"
        # The checksum covers only the body, so the entry is intact
        # apart from the stale stamp — exactly what an entry written
        # by older code looks like.
        path.write_bytes(
            gzip.compress(
                canonical_json(header).encode()
                + b"\n"
                + raw[header_end + 1 :],
                mtime=0,
            )
        )
        assert store.get(config) is None
        assert store.counters.corrupt == 1

    def test_recompute_after_corruption(self, run, tmp_path):
        config, result = run
        store = RunStore(tmp_path)
        store.put(config, result)
        store.path_for(config).write_bytes(b"torn")
        cache = RunCache(
            duration_s=_DURATION_S, seed=_SEED, store=store
        )
        _assert_results_identical(result, cache.get(config))
        # The write-back healed the entry.
        fresh = RunStore(tmp_path)
        loaded = fresh.get(config)
        assert loaded is not None
        _assert_results_identical(result, loaded)


def _racing_writer(root: str) -> int:
    """Worker body: repeatedly rewrite the same entry (fork-pickleable)."""
    config = _config()
    store = RunStore(root)
    result = common._simulate_config(config)
    for _ in range(3):
        store.put(config, result)
    return store.counters.writes


class TestConcurrentWriters:
    def test_racing_writers_leave_a_valid_entry(self, tmp_path):
        tasks = [
            Task(task_id=i, payload=str(tmp_path), timeout_s=120.0)
            for i in range(2)
        ]
        supervisor = Supervisor(jobs=2, faults=FaultPlan())
        writes, failures = supervisor.run(tasks, _racing_writer)
        assert failures == []
        assert [writes[0], writes[1]] == [3, 3]
        store = RunStore(tmp_path)
        config = _config()
        assert store.get(config) is not None
        assert store.counters.as_dict() == {
            "hits": 1,
            "misses": 0,
            "writes": 0,
            "corrupt": 0,
        }
        # No temp droppings from either writer.
        path = store.path_for(config)
        assert list(path.parent.iterdir()) == [path]


class TestRunCacheIntegration:
    def test_disk_hit_skips_simulation(self, run, tmp_path, monkeypatch):
        store, config = _warm_store(tmp_path, run)

        def boom(_config):
            raise AssertionError("simulated despite a warm store")

        monkeypatch.setattr(common, "_simulate_config", boom)
        cache = RunCache(
            duration_s=_DURATION_S, seed=_SEED, store=RunStore(tmp_path)
        )
        _assert_results_identical(run[1], cache.get(config))

    def test_memory_hit_skips_the_store(self, run, tmp_path):
        config, result = run
        store = RunStore(tmp_path)
        store.put(config, result)
        cache = RunCache(
            duration_s=_DURATION_S, seed=_SEED, store=store
        )
        first = cache.get(config)
        reads_after_first = store.counters.hits
        assert cache.get(config) is first
        assert store.counters.hits == reads_after_first

    def test_write_back_on_miss(self, run, tmp_path):
        config, result = run
        store = RunStore(tmp_path)
        cache = RunCache(
            duration_s=_DURATION_S, seed=_SEED, store=store
        )
        cache.get(config)
        assert store.counters.writes == 1
        assert store.path_for(config).is_file()
        loaded = RunStore(tmp_path).get(config)
        assert loaded is not None
        _assert_results_identical(result, loaded)
