"""Equivalence suite: vectorized hot paths vs their loop references.

The batched reception engine rewrote the SOVA trellis walk, the
Eq. 4/5 chunking DP, and per-reception nearest-codeword decoding as
numpy array programs.  Each rewrite keeps its original pure-Python
implementation as an executable specification; these tests pin the
vectorized paths to the references **bit-for-bit** (decisions) and
**float-for-float** (hints/costs) across randomized codes, noise
levels, and the edge cases where tie-breaking and unreachable trellis
states matter.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arq.chunking import plan_chunks, plan_chunks_reference
from repro.arq.runlength import RunLengthPacket
from repro.phy.batch import (
    BatchReceptionEngine,
    decode_samples_batch,
    decode_words_batch,
)
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.convolutional import ConvolutionalCode, SovaDecoder
from repro.phy.decoder import HardDecisionDecoder, SoftDecisionDecoder
from repro.sim.network import NetworkSimulation, SimulationConfig

# Standard generator pairs per constraint length (octal), so the
# randomized sweep exercises real codes rather than degenerate taps.
_GENERATORS = {
    3: (0o7, 0o5),
    4: (0o17, 0o13),
    5: (0o23, 0o35),
    6: (0o53, 0o75),
    7: (0o171, 0o133),
}


def _assert_sova_equal(a, b, context=""):
    assert np.array_equal(a.bits, b.bits), f"bits diverge {context}"
    assert np.array_equal(a.hints, b.hints), f"hints diverge {context}"


class TestSovaEquivalence:
    @pytest.mark.parametrize("constraint", sorted(_GENERATORS))
    def test_random_noise_sweep(self, constraint, rng):
        code = ConvolutionalCode(
            generators=_GENERATORS[constraint], constraint=constraint
        )
        decoder = SovaDecoder(code)
        for trial in range(8):
            n_bits = int(rng.integers(constraint, 150))
            coded = code.encode(rng.integers(0, 2, n_bits))
            clean = 1.0 - 2.0 * coded.astype(float)
            for noise in (0.0, 0.4, 1.0, 2.5):
                llrs = clean + rng.normal(0.0, noise, clean.size)
                _assert_sova_equal(
                    decoder.decode(llrs),
                    decoder.decode_reference(llrs),
                    f"(K={constraint}, trial={trial}, noise={noise})",
                )

    @pytest.mark.parametrize("constraint", [3, 5, 7])
    def test_random_generator_codes(self, constraint, rng):
        """Random valid generator sets, including rate 1/3."""
        limit = 1 << constraint
        for trial in range(6):
            n_gens = int(rng.integers(2, 4))
            gens = tuple(
                int(rng.integers(1, limit)) for _ in range(n_gens)
            )
            code = ConvolutionalCode(
                generators=gens, constraint=constraint
            )
            decoder = SovaDecoder(code)
            coded = code.encode(rng.integers(0, 2, 40))
            llrs = 1.0 - 2.0 * coded.astype(float) + rng.normal(
                0.0, 0.8, coded.size
            )
            _assert_sova_equal(
                decoder.decode(llrs),
                decoder.decode_reference(llrs),
                f"(gens={gens})",
            )

    @pytest.mark.parametrize("constraint", [3, 5, 7])
    def test_all_zero_llrs_maximal_ties(self, constraint):
        """Zero LLRs tie every branch; tie-breaking must match the
        reference scan exactly."""
        code = ConvolutionalCode(
            generators=_GENERATORS[constraint], constraint=constraint
        )
        decoder = SovaDecoder(code)
        llrs = np.zeros(code.rate_inverse * (constraint + 4))
        _assert_sova_equal(
            decoder.decode(llrs), decoder.decode_reference(llrs)
        )

    def test_shortest_terminated_trellis(self, rng):
        """n_steps = memory + 1: only flush steps follow the data bit,
        so most trellis states stay unreachable throughout."""
        for constraint in (3, 5, 7):
            code = ConvolutionalCode(
                generators=_GENERATORS[constraint], constraint=constraint
            )
            decoder = SovaDecoder(code)
            coded = code.encode(np.array([1]))
            llrs = 1.0 - 2.0 * coded.astype(float) + rng.normal(
                0.0, 0.5, coded.size
            )
            _assert_sova_equal(
                decoder.decode(llrs), decoder.decode_reference(llrs)
            )

    def test_final_flush_steps_impossible_ones(self, rng):
        """The last K-1 steps admit only input 0; the vectorized pass
        must keep those transitions' competitors unreachable exactly
        like the reference (margins go infinite identically)."""
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        coded = code.encode(rng.integers(0, 2, 30))
        # Heavy noise on the flush region specifically.
        llrs = 1.0 - 2.0 * coded.astype(float)
        llrs[-2 * code.rate_inverse :] += rng.normal(
            0.0, 3.0, 2 * code.rate_inverse
        )
        vec = decoder.decode(llrs)
        ref = decoder.decode_reference(llrs)
        _assert_sova_equal(vec, ref)

    def test_hard_decision_path(self, rng):
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        coded = code.encode(rng.integers(0, 2, 80))
        coded = coded ^ (rng.random(coded.size) < 0.08)
        _assert_sova_equal(
            decoder.decode_hard(coded),
            decoder.decode_reference(
                SovaDecoder.llrs_from_hard(coded)
            ),
        )

    @given(
        st.integers(3, 7),
        st.integers(0, 2**32 - 1),
        st.floats(0.0, 2.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, constraint, seed, noise):
        rng = np.random.default_rng(seed)
        code = ConvolutionalCode(
            generators=_GENERATORS[constraint], constraint=constraint
        )
        decoder = SovaDecoder(code)
        coded = code.encode(rng.integers(0, 2, int(rng.integers(constraint, 60))))
        llrs = 1.0 - 2.0 * coded.astype(float) + rng.normal(
            0.0, noise, coded.size
        )
        _assert_sova_equal(
            decoder.decode(llrs), decoder.decode_reference(llrs)
        )


class TestSovaBatch:
    def test_mixed_lengths_match_single(self, rng):
        code = ConvolutionalCode(generators=(0o23, 0o35), constraint=5)
        decoder = SovaDecoder(code)
        packets = []
        for length in (12, 40, 12, 90, 7, 40):
            coded = code.encode(rng.integers(0, 2, length))
            packets.append(
                1.0 - 2.0 * coded.astype(float)
                + rng.normal(0.0, 0.9, coded.size)
            )
        batch = decoder.decode_batch(packets)
        assert len(batch) == len(packets)
        for llrs, result in zip(packets, batch):
            _assert_sova_equal(result, decoder.decode(llrs))

    def test_empty_batch(self):
        assert SovaDecoder().decode_batch([]) == []

    def test_batch_validates_lengths(self):
        decoder = SovaDecoder()
        with pytest.raises(ValueError, match="multiple"):
            decoder.decode_batch([np.zeros(5)])
        with pytest.raises(ValueError, match="too short"):
            decoder.decode_batch([np.zeros(2)])


class TestChunkingEquivalence:
    @pytest.mark.parametrize("checksum_bits", [8, 32])
    def test_randomized_packets(self, checksum_bits, rng):
        for _ in range(40):
            n_symbols = int(rng.integers(10, 300))
            mask = rng.random(n_symbols) > rng.uniform(0.05, 0.6)
            runs = RunLengthPacket.from_labels(mask)
            vec = plan_chunks(runs, checksum_bits)
            ref = plan_chunks_reference(runs, checksum_bits)
            assert vec.chunks == ref.chunks
            assert vec.segments == ref.segments
            assert vec.cost_bits == ref.cost_bits

    def test_all_good_short_circuit(self):
        runs = RunLengthPacket.from_labels(np.ones(16, dtype=bool))
        assert plan_chunks(runs) == plan_chunks_reference(runs)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random(int(rng.integers(4, 120))) > 0.4
        runs = RunLengthPacket.from_labels(mask)
        vec = plan_chunks(runs, 8)
        ref = plan_chunks_reference(runs, 8)
        assert vec.chunks == ref.chunks
        assert vec.cost_bits == ref.cost_bits


class TestBatchedDecoders:
    def test_hard_decision_batch_matches_single(self, codebook, rng):
        decoder = HardDecisionDecoder(codebook)
        arrays = []
        for n in (0, 5, 200, 1):
            words = codebook.encode_words(rng.integers(0, 16, n))
            arrays.append(transmit_chipwords(words, 0.12, rng))
        batch = decode_words_batch(decoder, arrays)
        assert len(batch) == len(arrays)
        for words, result in zip(arrays, batch):
            single = decoder.decode_words(words)
            assert np.array_equal(result.symbols, single.symbols)
            assert np.array_equal(result.hints, single.hints)

    def test_soft_decision_batch_matches_single(self, codebook, rng):
        decoder = SoftDecisionDecoder(codebook)
        blocks = []
        for n in (3, 50, 17):
            symbols = rng.integers(0, 16, n)
            clean = codebook.encode(symbols).reshape(-1, 32) * 2.0 - 1.0
            blocks.append(clean + rng.normal(0.0, 0.7, clean.shape))
        batch = decode_samples_batch(decoder, blocks)
        for block, result in zip(blocks, batch):
            single = decoder.decode_samples(block)
            assert np.array_equal(result.symbols, single.symbols)
            assert np.array_equal(result.hints, single.hints)

    def test_soft_batch_rejects_bad_width(self, codebook):
        decoder = SoftDecisionDecoder(codebook)
        with pytest.raises(ValueError, match="block"):
            decode_samples_batch(decoder, [np.zeros((2, 8))])

    def test_engine_all_empty(self, codebook):
        engine = BatchReceptionEngine(codebook)
        out = engine.decode_hard_ragged(
            [np.zeros(0, dtype=np.uint32)] * 3
        )
        assert len(out) == 3
        for symbols, dists in out:
            assert symbols.size == 0 and dists.size == 0


class TestSimulationBatchEquivalence:
    def test_batched_run_is_bit_identical(self):
        """The fused per-trial decode must reproduce the per-packet
        simulation exactly: same records, symbols, hints, and flags."""
        config = SimulationConfig(
            load_bits_per_s_per_node=13800.0,
            payload_bytes=200,
            duration_s=2.0,
            carrier_sense=False,
            seed=11,
        )
        batched = NetworkSimulation(config).run()
        unbatched = NetworkSimulation(
            replace(config, batch_decode=False)
        ).run()
        assert len(batched.records) == len(unbatched.records)
        assert len(batched.records) > 0
        for a, b in zip(batched.records, unbatched.records):
            assert (a.tx_id, a.receiver) == (b.tx_id, b.receiver)
            assert np.array_equal(a.body_symbols, b.body_symbols)
            assert np.array_equal(a.body_hints, b.body_hints)
            assert a.preamble_detectable == b.preamble_detectable
            assert a.header_ok == b.header_ok
            assert a.postamble_detectable == b.postamble_detectable
            assert a.trailer_ok == b.trailer_ok
            assert a.acquired_preamble == b.acquired_preamble
