"""Equivalence suite: vectorized hot paths vs their loop references.

The batched reception engine rewrote the SOVA trellis walk, the
Eq. 4/5 chunking DP, and per-reception nearest-codeword decoding as
numpy array programs; the waveform engine did the same to MSK
modulation, the matched filter, and sync correlation.  Each rewrite
keeps its original pure-Python implementation as an executable
specification; these tests pin the vectorized paths to the references
**bit-for-bit** (decisions) and **float-for-float** (hints/costs/
waveforms) across randomized codes, noise levels, and the edge cases
where tie-breaking and unreachable trellis states matter.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arq.chunking import plan_chunks, plan_chunks_reference
from repro.arq.runlength import RunLengthPacket
from repro.coding.gf2 import (
    gf2_eliminate,
    gf2_eliminate_reference,
    gf2_encode,
    gf2_encode_reference,
    pack_bytes_to_words,
)
from repro.coding.gf256 import (
    gf256_eliminate,
    gf256_eliminate_reference,
    gf256_encode,
    gf256_encode_reference,
)
from repro.phy.batch import (
    BatchReceptionEngine,
    WaveformBatchEngine,
    WaveformDecodeRequest,
    decode_samples_batch,
    decode_words_batch,
)
from repro.phy.channelsim import add_awgn
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.convolutional import ConvolutionalCode, SovaDecoder
from repro.phy.decoder import HardDecisionDecoder, SoftDecisionDecoder
from repro.phy.demodulation import MskDemodulator
from repro.phy.frontend import ChipExtractRequest, ReceiverFrontend
from repro.phy.modulation import MskModulator
from repro.phy.remodulate import (
    remodulate_frame,
    remodulate_frame_reference,
)
from repro.phy.sync import CorrelationSynchronizer, sync_field_symbols
from repro.sim.network import NetworkSimulation, SimulationConfig
from repro.utils import sanitize
from repro.utils.rng import ensure_rng

# Standard generator pairs per constraint length (octal), so the
# randomized sweep exercises real codes rather than degenerate taps.
_GENERATORS = {
    3: (0o7, 0o5),
    4: (0o17, 0o13),
    5: (0o23, 0o35),
    6: (0o53, 0o75),
    7: (0o171, 0o133),
}


def _assert_sova_equal(a, b, context=""):
    assert np.array_equal(a.bits, b.bits), f"bits diverge {context}"
    assert np.array_equal(a.hints, b.hints), f"hints diverge {context}"


def _assert_twins_finite(label, vec, ref):
    """NaN/inf canary around a kernel-twin pair.

    Bit-equality alone cannot catch a bug both twins share: a
    vectorized kernel and its reference drifting into the same NaN
    would still compare equal, so float outputs are additionally
    required to be finite.  (SOVA hints are exempt — unreachable
    competitors legitimately carry infinite margins.)
    """
    sanitize.check_finite(label, vec, ref)


class TestSovaEquivalence:
    @pytest.mark.parametrize("constraint", sorted(_GENERATORS))
    def test_random_noise_sweep(self, constraint, rng):
        code = ConvolutionalCode(
            generators=_GENERATORS[constraint], constraint=constraint
        )
        decoder = SovaDecoder(code)
        for trial in range(8):
            n_bits = int(rng.integers(constraint, 150))
            coded = code.encode(rng.integers(0, 2, n_bits))
            clean = 1.0 - 2.0 * coded.astype(float)
            for noise in (0.0, 0.4, 1.0, 2.5):
                llrs = clean + rng.normal(0.0, noise, clean.size)
                _assert_sova_equal(
                    decoder.decode(llrs),
                    decoder.decode_reference(llrs),
                    f"(K={constraint}, trial={trial}, noise={noise})",
                )

    @pytest.mark.parametrize("constraint", [3, 5, 7])
    def test_random_generator_codes(self, constraint, rng):
        """Random valid generator sets, including rate 1/3."""
        limit = 1 << constraint
        for _trial in range(6):
            n_gens = int(rng.integers(2, 4))
            gens = tuple(
                int(rng.integers(1, limit)) for _ in range(n_gens)
            )
            code = ConvolutionalCode(
                generators=gens, constraint=constraint
            )
            decoder = SovaDecoder(code)
            coded = code.encode(rng.integers(0, 2, 40))
            llrs = 1.0 - 2.0 * coded.astype(float) + rng.normal(
                0.0, 0.8, coded.size
            )
            _assert_sova_equal(
                decoder.decode(llrs),
                decoder.decode_reference(llrs),
                f"(gens={gens})",
            )

    @pytest.mark.parametrize("constraint", [3, 5, 7])
    def test_all_zero_llrs_maximal_ties(self, constraint):
        """Zero LLRs tie every branch; tie-breaking must match the
        reference scan exactly."""
        code = ConvolutionalCode(
            generators=_GENERATORS[constraint], constraint=constraint
        )
        decoder = SovaDecoder(code)
        llrs = np.zeros(code.rate_inverse * (constraint + 4))
        _assert_sova_equal(
            decoder.decode(llrs), decoder.decode_reference(llrs)
        )

    def test_shortest_terminated_trellis(self, rng):
        """n_steps = memory + 1: only flush steps follow the data bit,
        so most trellis states stay unreachable throughout."""
        for constraint in (3, 5, 7):
            code = ConvolutionalCode(
                generators=_GENERATORS[constraint], constraint=constraint
            )
            decoder = SovaDecoder(code)
            coded = code.encode(np.array([1]))
            llrs = 1.0 - 2.0 * coded.astype(float) + rng.normal(
                0.0, 0.5, coded.size
            )
            _assert_sova_equal(
                decoder.decode(llrs), decoder.decode_reference(llrs)
            )

    def test_final_flush_steps_impossible_ones(self, rng):
        """The last K-1 steps admit only input 0; the vectorized pass
        must keep those transitions' competitors unreachable exactly
        like the reference (margins go infinite identically)."""
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        coded = code.encode(rng.integers(0, 2, 30))
        # Heavy noise on the flush region specifically.
        llrs = 1.0 - 2.0 * coded.astype(float)
        llrs[-2 * code.rate_inverse :] += rng.normal(
            0.0, 3.0, 2 * code.rate_inverse
        )
        vec = decoder.decode(llrs)
        ref = decoder.decode_reference(llrs)
        _assert_sova_equal(vec, ref)

    def test_hard_decision_path(self, rng):
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        coded = code.encode(rng.integers(0, 2, 80))
        coded = coded ^ (rng.random(coded.size) < 0.08)
        _assert_sova_equal(
            decoder.decode_hard(coded),
            decoder.decode_reference(
                SovaDecoder.llrs_from_hard(coded)
            ),
        )

    @given(
        st.integers(3, 7),
        st.integers(0, 2**32 - 1),
        st.floats(0.0, 2.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, constraint, seed, noise):
        rng = ensure_rng(seed)
        code = ConvolutionalCode(
            generators=_GENERATORS[constraint], constraint=constraint
        )
        decoder = SovaDecoder(code)
        coded = code.encode(rng.integers(0, 2, int(rng.integers(constraint, 60))))
        llrs = 1.0 - 2.0 * coded.astype(float) + rng.normal(
            0.0, noise, coded.size
        )
        _assert_sova_equal(
            decoder.decode(llrs), decoder.decode_reference(llrs)
        )


class TestSovaBatch:
    def test_mixed_lengths_match_single(self, rng):
        code = ConvolutionalCode(generators=(0o23, 0o35), constraint=5)
        decoder = SovaDecoder(code)
        packets = []
        for length in (12, 40, 12, 90, 7, 40):
            coded = code.encode(rng.integers(0, 2, length))
            packets.append(
                1.0 - 2.0 * coded.astype(float)
                + rng.normal(0.0, 0.9, coded.size)
            )
        batch = decoder.decode_batch(packets)
        assert len(batch) == len(packets)
        for llrs, result in zip(packets, batch, strict=True):
            _assert_sova_equal(result, decoder.decode(llrs))

    def test_empty_batch(self):
        assert SovaDecoder().decode_batch([]) == []

    def test_batch_validates_lengths(self):
        decoder = SovaDecoder()
        with pytest.raises(ValueError, match="multiple"):
            decoder.decode_batch([np.zeros(5)])
        with pytest.raises(ValueError, match="too short"):
            decoder.decode_batch([np.zeros(2)])


class TestChunkingEquivalence:
    @pytest.mark.parametrize("checksum_bits", [8, 32])
    def test_randomized_packets(self, checksum_bits, rng):
        for _ in range(40):
            n_symbols = int(rng.integers(10, 300))
            mask = rng.random(n_symbols) > rng.uniform(0.05, 0.6)
            runs = RunLengthPacket.from_labels(mask)
            vec = plan_chunks(runs, checksum_bits)
            ref = plan_chunks_reference(runs, checksum_bits)
            assert vec.chunks == ref.chunks
            assert vec.segments == ref.segments
            assert vec.cost_bits == ref.cost_bits

    def test_all_good_short_circuit(self):
        runs = RunLengthPacket.from_labels(np.ones(16, dtype=bool))
        assert plan_chunks(runs) == plan_chunks_reference(runs)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, seed):
        rng = ensure_rng(seed)
        mask = rng.random(int(rng.integers(4, 120))) > 0.4
        runs = RunLengthPacket.from_labels(mask)
        vec = plan_chunks(runs, 8)
        ref = plan_chunks_reference(runs, 8)
        assert vec.chunks == ref.chunks
        assert vec.cost_bits == ref.cost_bits


class TestBatchedDecoders:
    def test_hard_decision_batch_matches_single(self, codebook, rng):
        decoder = HardDecisionDecoder(codebook)
        arrays = []
        for n in (0, 5, 200, 1):
            words = codebook.encode_words(rng.integers(0, 16, n))
            arrays.append(transmit_chipwords(words, 0.12, rng))
        batch = decode_words_batch(decoder, arrays)
        assert len(batch) == len(arrays)
        for words, result in zip(arrays, batch, strict=True):
            single = decoder.decode_words(words)
            assert np.array_equal(result.symbols, single.symbols)
            assert np.array_equal(result.hints, single.hints)

    def test_soft_decision_batch_matches_single(self, codebook, rng):
        decoder = SoftDecisionDecoder(codebook)
        blocks = []
        for n in (3, 50, 17):
            symbols = rng.integers(0, 16, n)
            clean = codebook.encode(symbols).reshape(-1, 32) * 2.0 - 1.0
            blocks.append(clean + rng.normal(0.0, 0.7, clean.shape))
        batch = decode_samples_batch(decoder, blocks)
        for block, result in zip(blocks, batch, strict=True):
            single = decoder.decode_samples(block)
            assert np.array_equal(result.symbols, single.symbols)
            assert np.array_equal(result.hints, single.hints)

    def test_soft_batch_rejects_bad_width(self, codebook):
        decoder = SoftDecisionDecoder(codebook)
        with pytest.raises(ValueError, match="block"):
            decode_samples_batch(decoder, [np.zeros((2, 8))])

    def test_engine_all_empty(self, codebook):
        engine = BatchReceptionEngine(codebook)
        out = engine.decode_hard_ragged(
            [np.zeros(0, dtype=np.uint32)] * 3
        )
        assert len(out) == 3
        for symbols, dists in out:
            assert symbols.size == 0 and dists.size == 0


def _frame_capture(codebook, rng, n_body, sps, noise=0.08):
    """A noisy single-frame capture plus its body symbols."""
    body = rng.integers(0, 16, n_body)
    stream = np.concatenate(
        [
            sync_field_symbols("preamble"),
            body,
            sync_field_symbols("postamble"),
        ]
    )
    wave = MskModulator(sps=sps).modulate_symbols(stream, codebook)
    return body, add_awgn(wave, noise, rng)


class TestModulatorEquivalence:
    @pytest.mark.parametrize("sps", [2, 3, 4, 5, 8])
    def test_random_chips_bit_identical(self, sps, rng):
        mod = MskModulator(sps=sps, amplitude=1.3)
        for n in (0, 2, 8, 64, 1500):
            chips = rng.integers(0, 2, n)
            vec = mod.modulate_chips(chips)
            ref = mod.modulate_chips_reference(chips)
            _assert_twins_finite(f"modulate_chips(sps={sps})", vec, ref)
            assert np.array_equal(
                vec.view(np.float64), ref.view(np.float64)
            ), f"(sps={sps}, n={n})"

    def test_single_codeword(self, codebook, rng):
        mod = MskModulator(sps=3)
        chips = codebook.encode(rng.integers(0, 16, 1))
        vec = mod.modulate_chips(chips)
        ref = mod.modulate_chips_reference(chips)
        assert np.array_equal(vec.view(np.float64), ref.view(np.float64))

    def test_reference_validates_like_vectorized(self):
        mod = MskModulator(sps=4)
        for method in (mod.modulate_chips, mod.modulate_chips_reference):
            with pytest.raises(ValueError, match="even"):
                method(np.zeros(3, dtype=np.int64))
            with pytest.raises(ValueError, match="0/1"):
                method(np.array([0, 2]))

    @given(st.integers(0, 2**32 - 1), st.integers(2, 7), st.integers(0, 120))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, seed, sps, half_chips):
        rng = ensure_rng(seed)
        mod = MskModulator(sps=sps)
        chips = rng.integers(0, 2, 2 * half_chips)
        vec = mod.modulate_chips(chips)
        ref = mod.modulate_chips_reference(chips)
        _assert_twins_finite("modulate_chips(property)", vec, ref)
        assert np.array_equal(vec.view(np.float64), ref.view(np.float64))


class TestDemodulatorEquivalence:
    @pytest.mark.parametrize("sps", [2, 3, 4, 5, 8])
    def test_noisy_captures_bit_identical(self, sps, rng):
        demod = MskDemodulator(sps=sps)
        mod = MskModulator(sps=sps)
        for n in (2, 32, 500):
            chips = rng.integers(0, 2, n)
            capture = add_awgn(mod.modulate_chips(chips), 0.3, rng)
            for start in (0, 1, sps):
                m = (capture.size - start - 2 * sps) // sps + 1
                m = min(max(m, 0), n)
                vec = demod.demodulate_soft(capture, start, m)
                ref = demod.demodulate_soft_reference(capture, start, m)
                _assert_twins_finite(
                    f"demodulate_soft(sps={sps})", vec, ref
                )
                assert np.array_equal(vec, ref), (
                    f"(sps={sps}, n={n}, start={start})"
                )

    def test_zero_chips(self):
        demod = MskDemodulator(sps=5)
        capture = np.zeros(40, dtype=np.complex128)
        assert np.array_equal(
            demod.demodulate_soft(capture, 0, 0),
            demod.demodulate_soft_reference(capture, 0, 0),
        )
        assert demod.demodulate_soft(capture, 0, 0).size == 0

    def test_single_codeword(self, codebook, rng):
        sps = 3
        demod = MskDemodulator(sps=sps)
        mod = MskModulator(sps=sps)
        chips = codebook.encode(rng.integers(0, 16, 1))
        capture = add_awgn(mod.modulate_chips(chips), 0.2, rng)
        vec = demod.demodulate_soft(capture, 0, 32)
        ref = demod.demodulate_soft_reference(capture, 0, 32)
        assert np.array_equal(vec, ref)

    def test_soft_chip_matrix_inherits_vectorized_path(self, codebook, rng):
        demod = MskDemodulator(sps=4)
        mod = MskModulator(sps=4)
        symbols = rng.integers(0, 16, 12)
        capture = add_awgn(mod.modulate_symbols(symbols, codebook), 0.1, rng)
        matrix = demod.soft_chip_matrix(capture, 0, 12)
        ref = demod.demodulate_soft_reference(capture, 0, 12 * 32)
        assert np.array_equal(matrix.ravel(), ref)

    def test_batch_matches_single(self, rng):
        demod = MskDemodulator(sps=4)
        mod = MskModulator(sps=4)
        captures = [
            add_awgn(
                mod.modulate_chips(rng.integers(0, 2, n)), 0.4, rng
            )
            for n in (10, 64, 2)
        ]
        requests = [
            (captures[0], 0, 10),
            (captures[1], 4, 50),
            (captures[2], 0, 0),
            (captures[1], 0, 64),
        ]
        batch = demod.demodulate_soft_batch(requests)
        for (samples, start, n_chips), soft in zip(requests, batch, strict=True):
            assert np.array_equal(
                soft, demod.demodulate_soft(samples, start, n_chips)
            )

    @given(st.integers(0, 2**32 - 1), st.integers(2, 6), st.integers(1, 80))
    @settings(max_examples=25, deadline=None)
    def test_equivalence_property(self, seed, sps, half_chips):
        rng = ensure_rng(seed)
        demod = MskDemodulator(sps=sps)
        mod = MskModulator(sps=sps)
        chips = rng.integers(0, 2, 2 * half_chips)
        capture = add_awgn(mod.modulate_chips(chips), 0.5, rng)
        vec = demod.demodulate_soft(capture, 0, chips.size)
        ref = demod.demodulate_soft_reference(capture, 0, chips.size)
        _assert_twins_finite("demodulate_soft(property)", vec, ref)
        assert np.array_equal(vec, ref)


class TestCorrelatorEquivalence:
    # The FFT fast path reassociates the time-domain sums, so the
    # correlator twins are pinned at 1e-12 on normalised outputs in
    # [-1, 1] — the one sanctioned deviation from the bit-for-bit
    # pin (documented in repro.phy.fftcorr).  Batch-vs-single
    # consistency of the fast path itself remains bit-for-bit.
    TOL = dict(rtol=1e-12, atol=1e-12)

    def _stream(self, codebook, rng, kind="preamble", at_symbol=15):
        body = rng.integers(0, 16, 50)
        field = sync_field_symbols(kind)
        return codebook.encode(
            np.concatenate([body[:at_symbol], field, body[at_symbol:]])
        )

    def test_hard_chips_match_reference(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble")
        chips = self._stream(codebook, rng)
        np.testing.assert_allclose(
            sync.correlate(chips),
            sync.correlate_reference(chips),
            **self.TOL,
        )

    def test_soft_chips_match_reference(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "postamble")
        chips = self._stream(codebook, rng, kind="postamble")
        soft = (chips * 2.0 - 1.0) + rng.normal(0.0, 0.6, chips.size)
        vec = sync.correlate(soft)
        ref = sync.correlate_reference(soft)
        _assert_twins_finite("correlate(soft)", vec, ref)
        np.testing.assert_allclose(vec, ref, **self.TOL)

    def test_short_input(self, codebook):
        sync = CorrelationSynchronizer(codebook, "preamble")
        short = np.zeros(sync.pattern_chips - 1, dtype=np.uint8)
        assert sync.correlate(short).size == 0
        assert sync.correlate_reference(short).size == 0

    def test_correlate_many_rows_match_single(self, codebook, rng):
        """Batch-shape invariance stays bit-for-bit: stacking captures
        must not change a single bit of any row (the determinism
        contract across batching modes)."""
        sync = CorrelationSynchronizer(codebook, "preamble")
        rows = np.stack(
            [self._stream(codebook, rng, at_symbol=k) for k in (5, 20, 40)]
        )
        many = sync.correlate_many(rows)
        for row, corr in zip(rows, many, strict=True):
            assert np.array_equal(corr, sync.correlate(row))

    def test_correlate_many_rejects_1d(self, codebook):
        sync = CorrelationSynchronizer(codebook, "preamble")
        with pytest.raises(ValueError, match="2-D"):
            sync.correlate_many(np.zeros(400))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_property(self, seed):
        rng = ensure_rng(seed)
        codebook = ZigbeeCodebook()
        sync = CorrelationSynchronizer(codebook, "preamble")
        chips = rng.integers(0, 2, int(rng.integers(320, 1200))).astype(
            np.uint8
        )
        np.testing.assert_allclose(
            sync.correlate(chips),
            sync.correlate_reference(chips),
            **self.TOL,
        )

    def test_sample_domain_matches_reference(self, codebook, rng):
        """Frontend correlation (FFT fast path) vs its per-offset
        conjugate-dot loop spec ``correlation_reference``."""
        frontend = ReceiverFrontend(codebook, sps=4)
        mod = MskModulator(sps=4)
        stream = np.concatenate(
            [
                rng.integers(0, 16, 10),
                sync_field_symbols("preamble"),
                rng.integers(0, 16, 20),
            ]
        )
        capture = add_awgn(
            mod.modulate_symbols(stream, codebook), 0.3, rng
        )
        for kind in ("preamble", "postamble"):
            vec = frontend.correlation(capture, kind)
            ref = frontend.correlation_reference(capture, kind)
            _assert_twins_finite(f"correlation({kind})", vec, ref)
            np.testing.assert_allclose(vec, ref, **self.TOL)

    def test_sample_domain_batch_matches_single(self, codebook, rng):
        """Sample-domain batch-shape invariance stays bit-for-bit."""
        frontend = ReceiverFrontend(codebook, sps=4)
        mod = MskModulator(sps=4)
        rows = []
        for at in (3, 12, 25):
            stream = np.concatenate(
                [
                    rng.integers(0, 16, at),
                    sync_field_symbols("postamble"),
                    rng.integers(0, 16, 30 - at),
                ]
            )
            rows.append(
                add_awgn(mod.modulate_symbols(stream, codebook), 0.3, rng)
            )
        stacked = np.stack(rows)
        batch = frontend.correlation_batch(stacked, "postamble")
        for row, corr in zip(rows, batch, strict=True):
            assert np.array_equal(
                corr, frontend.correlation(row, "postamble")
            )


class TestRemodulateEquivalence:
    """The SIC re-synthesis kernel vs its per-chip loop spec."""

    def _stream(self, rng, n_body=40):
        return np.concatenate(
            [
                sync_field_symbols("preamble"),
                rng.integers(0, 16, n_body),
                sync_field_symbols("postamble"),
            ]
        )

    def test_unit_frame_bit_identical(self, codebook, rng):
        stream = self._stream(rng)
        vec = remodulate_frame(stream, codebook, sps=4)
        ref = remodulate_frame_reference(stream, codebook, sps=4)
        _assert_twins_finite("remodulate_frame", vec, ref)
        assert np.array_equal(
            vec.view(np.float64), ref.view(np.float64)
        )

    def test_scaled_frame_bit_identical(self, codebook, rng):
        """Gain and carrier phase go through one shared complex
        multiply, so scaling keeps the twins bit-for-bit."""
        stream = self._stream(rng, n_body=25)
        for gain, phase in [(0.37, 0.0), (1.0, -1.2), (2.5e-4, 2.9)]:
            vec = remodulate_frame(
                stream, codebook, sps=4, gain=gain, phase=phase
            )
            ref = remodulate_frame_reference(
                stream, codebook, sps=4, gain=gain, phase=phase
            )
            assert np.array_equal(
                vec.view(np.float64), ref.view(np.float64)
            )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_property(self, seed):
        rng = ensure_rng(seed)
        codebook = ZigbeeCodebook()
        stream = rng.integers(0, 16, int(rng.integers(2, 60)))
        gain = float(rng.uniform(1e-4, 3.0))
        phase = float(rng.uniform(-np.pi, np.pi))
        vec = remodulate_frame(
            stream, codebook, sps=4, gain=gain, phase=phase
        )
        ref = remodulate_frame_reference(
            stream, codebook, sps=4, gain=gain, phase=phase
        )
        assert np.array_equal(
            vec.view(np.float64), ref.view(np.float64)
        )

    def test_matches_transmitter(self, codebook, rng):
        """A unit-gain re-synthesis reproduces the transmitter's
        waveform exactly — the property cancellation relies on."""
        stream = self._stream(rng)
        mod = MskModulator(sps=4)
        assert np.array_equal(
            remodulate_frame(stream, codebook, sps=4),
            mod.modulate_symbols(stream, codebook),
        )


class TestWaveformBatchEngineEquivalence:
    SPS = 4

    @pytest.fixture()
    def engine(self, codebook):
        return WaveformBatchEngine(codebook, sps=self.SPS)

    @pytest.fixture()
    def frontend(self, codebook):
        return ReceiverFrontend(codebook, sps=self.SPS)

    def _ragged_captures(self, codebook, rng):
        """Frames of different lengths plus a pure-noise window."""
        bodies, captures = [], []
        for n_body in (30, 12, 30, 45):
            body, capture = _frame_capture(
                codebook, rng, n_body, self.SPS
            )
            bodies.append(body)
            captures.append(capture)
        captures.append(
            add_awgn(np.zeros(4000, dtype=np.complex128), 1.0, rng)
        )
        bodies.append(None)
        return bodies, captures

    @pytest.mark.parametrize("kind", ["preamble", "postamble"])
    def test_detect_batch_matches_single(
        self, engine, frontend, codebook, rng, kind
    ):
        _, captures = self._ragged_captures(codebook, rng)
        batch = engine.detect_batch(captures, kind)
        assert len(batch) == len(captures)
        for capture, detections in zip(captures, batch, strict=True):
            assert detections == frontend.detect(capture, kind)

    def test_extract_batch_matches_single(self, frontend, codebook, rng):
        _, captures = self._ragged_captures(codebook, rng)
        requests = [
            ChipExtractRequest(0, 0, 320, 64, 0.3),
            ChipExtractRequest(1, 1280, -320, 320, 0.0),
            ChipExtractRequest(2, 0, 0, 0, 0.0),
            ChipExtractRequest(0, 640, 2, 100, -1.2),
        ]
        batch = frontend.extract_batch(captures, requests)
        for request, soft in zip(requests, batch, strict=True):
            single = frontend.soft_chips_at(
                captures[request.capture],
                request.anchor_sample,
                request.chip_offset,
                request.n_chips,
                request.phase,
            )
            assert np.array_equal(soft, single)

    def test_decode_batch_matches_single(
        self, engine, frontend, codebook, rng
    ):
        bodies, captures = self._ragged_captures(codebook, rng)
        preamble_symbols = sync_field_symbols("preamble").size
        requests = []
        for i, body in enumerate(bodies):
            if body is None:
                continue
            det = frontend.detect(captures[i], "preamble")[0]
            requests.append(
                WaveformDecodeRequest(
                    capture=i,
                    anchor_sample=det.sample_offset,
                    symbol_offset=preamble_symbols,
                    n_symbols=body.size,
                    phase=det.phase,
                )
            )
        decoded = engine.decode_symbols_batch(captures, requests)
        assert len(decoded) == len(requests)
        for request, (symbols, hints) in zip(requests, decoded, strict=True):
            single_symbols, single_hints = frontend.decode_symbols_at(
                captures[request.capture],
                request.anchor_sample,
                request.symbol_offset,
                request.n_symbols,
                request.phase,
            )
            assert np.array_equal(symbols, single_symbols)
            assert np.array_equal(hints, single_hints)

    def test_decode_batch_empty_requests(self, engine, codebook, rng):
        _, captures = self._ragged_captures(codebook, rng)
        assert engine.decode_symbols_batch(captures, []) == []

    def test_receive_frames_policy(self, engine, codebook, rng):
        """Same-size frames: every clean capture decodes its body via
        the preamble; a noise capture yields an empty reception."""
        bodies, captures = [], []
        for _ in range(3):
            body, capture = _frame_capture(codebook, rng, 25, self.SPS)
            bodies.append(body)
            captures.append(capture)
        captures.append(
            add_awgn(np.zeros(6000, dtype=np.complex128), 1.0, rng)
        )
        receptions = engine.receive_frames(captures, 25)
        assert len(receptions) == 4
        for body, reception in zip(bodies, receptions[:3], strict=True):
            assert reception.acquired and not reception.via_postamble
            assert np.array_equal(reception.symbols, body)
        assert not receptions[3].acquired
        assert receptions[3].symbols.size == 0

    def test_receive_collision_pair_matches_manual(
        self, engine, frontend, codebook, rng
    ):
        """The fused two-packet collision helper equals the manual
        per-capture frontend path bit-for-bit."""
        n_body, overlap = 40, 15
        mod = MskModulator(sps=self.SPS)
        streams = []
        for _ in range(2):
            body = rng.integers(0, 16, n_body)
            streams.append(
                np.concatenate(
                    [
                        sync_field_symbols("preamble"),
                        body,
                        sync_field_symbols("postamble"),
                    ]
                )
            )
        offset = (streams[0].size - overlap) * 32 * self.SPS
        wave1 = mod.modulate_symbols(streams[0], codebook)
        wave2 = mod.modulate_symbols(streams[1], codebook)
        capture = np.zeros(offset + wave2.size, dtype=np.complex128)
        capture[: wave1.size] += wave1
        capture[offset:] += wave2
        capture = add_awgn(capture, 0.05, rng)

        pair = engine.receive_collision_pair(capture, n_body)
        det1 = frontend.detect(capture, "preamble")[0]
        det2 = max(
            frontend.detect(capture, "postamble"),
            key=lambda d: d.sample_offset,
        )
        assert pair.first.detection == det1
        assert pair.second.detection == det2
        sym1, hints1 = frontend.decode_symbols_at(
            capture, det1.sample_offset, 10, n_body, det1.phase
        )
        sym2, hints2 = frontend.decode_symbols_at(
            capture, det2.sample_offset, -n_body, n_body, det2.phase
        )
        assert np.array_equal(pair.first.symbols, sym1)
        assert np.array_equal(pair.first.hints, hints1)
        assert np.array_equal(pair.second.symbols, sym2)
        assert np.array_equal(pair.second.hints, hints2)
        assert pair.second.via_postamble

    def test_receive_frames_rollback(self, engine, codebook, rng):
        """A frame whose preamble is cut off the capture is recovered
        through its postamble (the Fig. 5 rollback at engine level)."""
        body, capture = _frame_capture(codebook, rng, 25, self.SPS)
        # Drop the preamble (10 symbols) from the front of the capture.
        cut = capture[6 * 32 * self.SPS :]
        reception = engine.receive_frames([cut], 25)[0]
        assert reception.acquired and reception.via_postamble
        assert np.array_equal(reception.symbols, body)


class TestSimulationBatchEquivalence:
    def test_batched_run_is_bit_identical(self):
        """The fused per-trial decode must reproduce the per-packet
        simulation exactly: same records, symbols, hints, and flags."""
        config = SimulationConfig(
            load_bits_per_s_per_node=13800.0,
            payload_bytes=200,
            duration_s=2.0,
            carrier_sense=False,
            seed=11,
        )
        batched = NetworkSimulation(config).run()
        unbatched = NetworkSimulation(
            replace(config, batch_decode=False)
        ).run()
        assert len(batched.records) == len(unbatched.records)
        assert len(batched.records) > 0
        for a, b in zip(batched.records, unbatched.records, strict=True):
            assert (a.tx_id, a.receiver) == (b.tx_id, b.receiver)
            assert np.array_equal(a.body_symbols, b.body_symbols)
            assert np.array_equal(a.body_hints, b.body_hints)
            assert a.preamble_detectable == b.preamble_detectable
            assert a.header_ok == b.header_ok
            assert a.postamble_detectable == b.postamble_detectable
            assert a.trailer_ok == b.trailer_ok
            assert a.acquired_preamble == b.acquired_preamble


class TestGfKernelEquivalence:
    """The coding layer's GF kernels vs their loop references.

    ``gf2_encode``/``gf2_eliminate`` operate on bit-packed uint64
    words, ``gf256_*`` on log/exp-table bytes; each keeps its
    pure-loop implementation as the executable specification.  Both
    directions are pinned bit-for-bit, including the pivot choices of
    the eliminations (same swaps, same XOR order) and the
    rank-deficient systems where only some unknowns resolve.
    """

    def test_gf2_encode_random_sweep(self, rng):
        for trial in range(25):
            k = int(rng.integers(1, 14))
            m = int(rng.integers(1, 14))
            n_bytes = int(rng.integers(1, 40))
            rows = pack_bytes_to_words(
                rng.integers(0, 256, (k, n_bytes)).astype(np.uint8)
            )
            coeffs = rng.integers(0, 2, (m, k)).astype(np.uint8)
            assert np.array_equal(
                gf2_encode(coeffs, rows),
                gf2_encode_reference(coeffs, rows),
            ), f"gf2 encode diverges (trial={trial})"

    def test_gf2_eliminate_random_sweep(self, rng):
        for trial in range(25):
            k = int(rng.integers(1, 12))
            m = int(rng.integers(1, 16))
            n_bytes = int(rng.integers(1, 24))
            coeffs = rng.integers(0, 2, (m, k)).astype(np.uint8)
            payload = pack_bytes_to_words(
                rng.integers(0, 256, (m, n_bytes)).astype(np.uint8)
            )
            rec, sol = gf2_eliminate(coeffs, payload)
            rec_ref, sol_ref = gf2_eliminate_reference(coeffs, payload)
            assert np.array_equal(rec, rec_ref), f"trial={trial}"
            assert np.array_equal(sol, sol_ref), f"trial={trial}"

    def test_gf2_eliminate_wide_coefficients(self, rng):
        """k > 64 exercises multi-word coefficient packing."""
        k, m = 100, 110
        coeffs = rng.integers(0, 2, (m, k)).astype(np.uint8)
        payload = pack_bytes_to_words(
            rng.integers(0, 256, (m, 9)).astype(np.uint8)
        )
        rec, sol = gf2_eliminate(coeffs, payload)
        rec_ref, sol_ref = gf2_eliminate_reference(coeffs, payload)
        assert np.array_equal(rec, rec_ref)
        assert np.array_equal(sol, sol_ref)

    def test_gf2_eliminate_degenerate_systems(self):
        zero = np.zeros((3, 4), dtype=np.uint8)
        payload = np.ones((3, 2), dtype=np.uint64)
        rec, sol = gf2_eliminate(zero, payload)
        rec_ref, sol_ref = gf2_eliminate_reference(zero, payload)
        assert np.array_equal(rec, rec_ref) and not rec.any()
        assert np.array_equal(sol, sol_ref)
        # Duplicate rows collapse to rank 1.
        dup = np.array([[1, 1, 0], [1, 1, 0]], dtype=np.uint8)
        payload = np.arange(2, dtype=np.uint64)[:, None]
        rec, sol = gf2_eliminate(dup, payload)
        rec_ref, sol_ref = gf2_eliminate_reference(dup, payload)
        assert np.array_equal(rec, rec_ref)
        assert np.array_equal(sol, sol_ref)

    def test_gf256_encode_random_sweep(self, rng):
        for trial in range(15):
            k = int(rng.integers(1, 10))
            m = int(rng.integers(1, 10))
            n_bytes = int(rng.integers(1, 30))
            rows = rng.integers(0, 256, (k, n_bytes)).astype(np.uint8)
            coeffs = rng.integers(0, 256, (m, k)).astype(np.uint8)
            assert np.array_equal(
                gf256_encode(coeffs, rows),
                gf256_encode_reference(coeffs, rows),
            ), f"gf256 encode diverges (trial={trial})"

    def test_gf256_eliminate_random_sweep(self, rng):
        for trial in range(15):
            k = int(rng.integers(1, 10))
            m = int(rng.integers(1, 14))
            n_bytes = int(rng.integers(1, 20))
            coeffs = rng.integers(0, 256, (m, k)).astype(np.uint8)
            payload = rng.integers(0, 256, (m, n_bytes)).astype(
                np.uint8
            )
            rec, sol = gf256_eliminate(coeffs, payload)
            rec_ref, sol_ref = gf256_eliminate_reference(
                coeffs, payload
            )
            assert np.array_equal(rec, rec_ref), f"trial={trial}"
            assert np.array_equal(sol, sol_ref), f"trial={trial}"

    def test_gf256_eliminate_singular_minor(self):
        """Linearly dependent GF(256) rows: partial recovery only,
        identical in both implementations."""
        coeffs = np.array(
            [[2, 4, 0], [4, 8, 0], [0, 0, 3]], dtype=np.uint8
        )  # row 1 = 2 * row 0
        payload = np.array(
            [[10, 20], [7, 9], [1, 2]], dtype=np.uint8
        )
        rec, sol = gf256_eliminate(coeffs, payload)
        rec_ref, sol_ref = gf256_eliminate_reference(coeffs, payload)
        assert np.array_equal(rec, rec_ref)
        assert np.array_equal(sol, sol_ref)
        assert rec.tolist() == [False, False, True]
