"""Tests for the bit-exact PP-ARQ feedback encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arq.feedback import (
    FeedbackPacket,
    RetransmissionPacket,
    SegmentData,
    decode_feedback,
    decode_retransmission,
    encode_feedback,
    encode_retransmission,
    feedback_bit_cost,
    gaps_for_segments,
    segment_checksum,
)


class TestGaps:
    def test_full_coverage_no_gaps(self):
        assert gaps_for_segments(((0, 10),), 10) == []

    def test_interior_and_edge_gaps(self):
        gaps = gaps_for_segments(((5, 8), (12, 15)), 20)
        assert gaps == [(0, 5), (8, 12), (15, 20)]

    def test_empty_segments_one_gap(self):
        assert gaps_for_segments((), 7) == [(0, 7)]

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            gaps_for_segments(((0, 5), (3, 8)), 10)

    def test_beyond_packet_rejected(self):
        with pytest.raises(ValueError, match="beyond"):
            gaps_for_segments(((0, 11),), 10)


class TestSegmentChecksum:
    def test_deterministic(self):
        symbols = np.array([1, 2, 3, 4])
        assert segment_checksum(symbols) == segment_checksum(symbols)

    def test_sensitive_to_change(self):
        a = segment_checksum(np.array([1, 2, 3, 4]))
        b = segment_checksum(np.array([1, 2, 3, 5]))
        assert a != b

    def test_odd_length_padded(self):
        assert 0 <= segment_checksum(np.array([7])) <= 255

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            segment_checksum(np.array([16]))


class TestFeedbackRoundtrip:
    def _packet(self):
        segments = ((10, 20), (50, 55))
        checksums = tuple(
            segment_checksum(np.zeros(n, dtype=np.int64))
            for n in (10, 30, 45)
        )
        return FeedbackPacket(
            seq=42, n_symbols=100, segments=segments,
            gap_checksums=checksums,
        )

    def test_roundtrip(self):
        packet = self._packet()
        assert decode_feedback(encode_feedback(packet)) == packet

    def test_ack_roundtrip(self):
        ack = FeedbackPacket(
            seq=1,
            n_symbols=50,
            segments=(),
            gap_checksums=(segment_checksum(np.zeros(50, dtype=np.int64)),),
        )
        assert ack.is_ack
        decoded = decode_feedback(encode_feedback(ack))
        assert decoded.is_ack and decoded.seq == 1

    def test_bit_cost_matches_encoding(self):
        packet = self._packet()
        cost = feedback_bit_cost(packet)
        encoded_bits = len(encode_feedback(packet)) * 8
        assert cost <= encoded_bits < cost + 8  # byte padding only

    def test_checksum_count_validated(self):
        with pytest.raises(ValueError, match="checksums"):
            FeedbackPacket(
                seq=0, n_symbols=10, segments=((0, 5),), gap_checksums=()
            )

    @given(
        st.integers(0, 0xFFFF),
        st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 30)),
            max_size=6,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seq, raw_segments):
        n_symbols = 300
        # Normalise to sorted, disjoint segments.
        segments = []
        cursor = 0
        for offset, length in sorted(raw_segments):
            start = max(cursor, offset)
            end = min(start + length, n_symbols)
            if end > start:
                segments.append((start, end))
                cursor = end
        segments = tuple(segments)
        gaps = gaps_for_segments(segments, n_symbols)
        packet = FeedbackPacket(
            seq=seq,
            n_symbols=n_symbols,
            segments=segments,
            gap_checksums=tuple(17 for _ in gaps),
        )
        assert decode_feedback(encode_feedback(packet)) == packet


class TestRetransmissionRoundtrip:
    def _packet(self, rng):
        seg1 = SegmentData(start=4, symbols=rng.integers(0, 16, 6))
        seg2 = SegmentData(start=20, symbols=rng.integers(0, 16, 3))
        spans = ((4, 10), (20, 23))
        gaps = gaps_for_segments(spans, 40)
        return RetransmissionPacket(
            seq=9,
            n_symbols=40,
            segments=(seg1, seg2),
            gap_checksums=tuple(5 for _ in gaps),
        )

    def test_roundtrip(self, rng):
        packet = self._packet(rng)
        decoded = decode_retransmission(encode_retransmission(packet))
        assert decoded.seq == packet.seq
        assert decoded.segment_spans() == packet.segment_spans()
        for a, b in zip(decoded.segments, packet.segments, strict=True):
            assert np.array_equal(a.symbols, b.symbols)
        assert decoded.gap_checksums == packet.gap_checksums

    def test_n_data_symbols(self, rng):
        assert self._packet(rng).n_data_symbols == 9

    def test_corrupted_segment_rejected_on_decode(self, rng):
        packet = self._packet(rng)
        encoded = bytearray(encode_retransmission(packet))
        # Flip a bit inside the first segment's symbol data (the field
        # layout places it after seq+len+count+offset+length+crc).
        encoded[10] ^= 0x40
        with pytest.raises(ValueError, match="checksum"):
            decode_retransmission(bytes(encoded))

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            SegmentData(start=-1, symbols=np.array([1]))
