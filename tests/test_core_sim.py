"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.core import EventScheduler


class TestEventScheduler:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(2.0, lambda: fired.append("late"))
        sched.schedule(1.0, lambda: fired.append("early"))
        sched.run(until=3.0)
        assert fired == ["early", "late"]

    def test_ties_fire_in_insertion_order(self):
        sched = EventScheduler()
        fired = []
        for name in ("a", "b", "c"):
            sched.schedule(1.0, lambda n=name: fired.append(n))
        sched.run(until=2.0)
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(0.5, lambda: seen.append(sched.now))
        sched.run(until=1.0)
        assert seen == [0.5]
        assert sched.now == 1.0

    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        fired = []

        def recurring():
            fired.append(sched.now)
            if len(fired) < 3:
                sched.schedule(1.0, recurring)

        sched.schedule(1.0, recurring)
        sched.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_events_beyond_horizon_not_fired(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(5.0, lambda: fired.append("x"))
        sched.run(until=4.0)
        assert fired == []
        assert sched.pending == 1
        sched.run(until=6.0)
        assert fired == ["x"]

    def test_event_at_horizon_fires(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(2.0, lambda: fired.append("x"))
        sched.run(until=2.0)
        assert fired == ["x"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: sched.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError, match="past"):
            sched.run(until=2.0)

    def test_run_backwards_rejected(self):
        sched = EventScheduler()
        sched.run(until=5.0)
        with pytest.raises(ValueError):
            sched.run(until=4.0)
