"""Tests for opportunistic partial forwarding and adaptive fragments."""

import numpy as np
import pytest

from repro.link.fragmentation import AdaptiveFragmentSizer
from repro.link.relay import (
    PartialForward,
    combine_forwards,
    make_partial_forward,
)
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.symbols import SoftPacket


def _reception(codebook, truth, p, rng):
    received = transmit_chipwords(codebook.encode_words(truth), p, rng)
    decoded, dist = codebook.decode_hard(received)
    return SoftPacket(
        symbols=decoded, hints=dist.astype(float), truth=truth
    )


class TestPartialForward:
    def test_threshold_selects_good_symbols(self):
        reception = SoftPacket(
            symbols=np.array([1, 2, 3, 4]),
            hints=np.array([0.0, 9.0, 2.0, 12.0]),
        )
        forward = make_partial_forward(reception, eta=6.0)
        assert forward.positions.tolist() == [0, 2]
        assert forward.symbols.tolist() == [1, 3]
        assert forward.forwarded_fraction == pytest.approx(0.5)
        assert forward.airtime_symbols == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="equal sizes"):
            PartialForward(
                n_symbols=4,
                positions=np.array([0]),
                symbols=np.array([1, 2]),
                hints=np.array([0.0]),
            )
        with pytest.raises(ValueError, match="range"):
            PartialForward(
                n_symbols=2,
                positions=np.array([5]),
                symbols=np.array([1]),
                hints=np.array([0.0]),
            )
        with pytest.raises(ValueError, match="unique"):
            PartialForward(
                n_symbols=4,
                positions=np.array([1, 1]),
                symbols=np.array([1, 2]),
                hints=np.array([0.0, 0.0]),
            )


class TestCombineForwards:
    def test_most_confident_copy_wins(self):
        a = PartialForward(
            n_symbols=3,
            positions=np.array([0, 1]),
            symbols=np.array([5, 6]),
            hints=np.array([3.0, 1.0]),
        )
        b = PartialForward(
            n_symbols=3,
            positions=np.array([0, 2]),
            symbols=np.array([9, 7]),
            hints=np.array([1.0, 2.0]),
        )
        combined = combine_forwards([a, b])
        assert combined.symbols[0] == 9  # b was more confident
        assert combined.symbols[1] == 6
        assert combined.symbols[2] == 7
        assert combined.coverage == pytest.approx(1.0)
        assert combined.missing_positions.size == 0

    def test_missing_positions_reported(self):
        a = PartialForward(
            n_symbols=5,
            positions=np.array([0, 4]),
            symbols=np.array([1, 2]),
            hints=np.array([0.0, 0.0]),
        )
        combined = combine_forwards([a])
        assert combined.missing_positions.tolist() == [1, 2, 3]
        assert combined.coverage == pytest.approx(0.4)

    def test_length_disagreement_rejected(self):
        a = PartialForward(
            n_symbols=2,
            positions=np.array([0]),
            symbols=np.array([1]),
            hints=np.array([0.0]),
        )
        b = PartialForward(
            n_symbols=3,
            positions=np.array([0]),
            symbols=np.array([1]),
            hints=np.array([0.0]),
        )
        with pytest.raises(ValueError):
            combine_forwards([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_forwards([])

    def test_two_lossy_relays_cover_more_than_one(self, codebook, rng):
        """The ExOR-ish payoff: relays hit by different bursts jointly
        cover (almost) the whole frame while each forwards only its
        good symbols."""
        truth = rng.integers(0, 16, 300)
        p1 = np.full(300, 0.002)
        p1[:120] = 0.45
        p2 = np.full(300, 0.002)
        p2[180:] = 0.45
        f1 = make_partial_forward(
            _reception(codebook, truth, p1, rng), eta=6.0
        )
        f2 = make_partial_forward(
            _reception(codebook, truth, p2, rng), eta=6.0
        )
        combined = combine_forwards([f1, f2])
        assert combined.coverage > max(
            f1.forwarded_fraction, f2.forwarded_fraction
        )
        covered = combined.covered
        assert (
            combined.symbols[covered] == truth[covered]
        ).mean() > 0.97
        # Capacity saving: airtime spent is below two full copies.
        assert f1.airtime_symbols + f2.airtime_symbols < 2 * 300


class TestAdaptiveFragmentSizer:
    def test_clean_packets_shrink_fragment_count(self):
        sizer = AdaptiveFragmentSizer(initial_fragments=30)
        for _ in range(10):
            sizer.observe_packet([True] * sizer.n_fragments)
        assert sizer.n_fragments == 1

    def test_failures_grow_fragment_count(self):
        sizer = AdaptiveFragmentSizer(initial_fragments=10)
        outcomes = [False] * 3 + [True] * 7
        sizer.observe_packet(outcomes)
        assert sizer.n_fragments == 20

    def test_rare_failures_hold_steady(self):
        sizer = AdaptiveFragmentSizer(
            initial_fragments=30, failure_threshold=0.2
        )
        outcomes = [False] + [True] * 29  # 3.3% failure rate
        assert sizer.observe_packet(outcomes) == 30

    def test_bounds_respected(self):
        sizer = AdaptiveFragmentSizer(
            initial_fragments=4, min_fragments=2, max_fragments=8
        )
        for _ in range(5):
            sizer.observe_packet([False, True])
        assert sizer.n_fragments == 8
        for _ in range(10):
            sizer.observe_packet([True] * sizer.n_fragments)
        assert sizer.n_fragments == 2

    def test_oscillation_converges_to_regime(self):
        """Alternating channel regimes keep the controller inside its
        bounds and responsive in both directions."""
        sizer = AdaptiveFragmentSizer(initial_fragments=30)
        history = []
        for round_idx in range(40):
            bursty = round_idx % 2 == 0
            n = sizer.n_fragments
            outcomes = (
                [False] * max(1, n // 3) + [True] * (n - max(1, n // 3))
                if bursty
                else [True] * n
            )
            history.append(sizer.observe_packet(outcomes))
        assert 1 <= min(history) and max(history) <= 300

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveFragmentSizer(initial_fragments=0)
        with pytest.raises(ValueError):
            AdaptiveFragmentSizer(grow_factor=1.0)
        with pytest.raises(ValueError):
            AdaptiveFragmentSizer(failure_threshold=0)
        sizer = AdaptiveFragmentSizer()
        with pytest.raises(ValueError):
            sizer.observe_packet([])
