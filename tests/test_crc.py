"""Tests for repro.utils.crc against published check values."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.crc import (
    CRC8_ATM,
    CRC16_CCITT,
    CRC32_IEEE,
    crc8,
    crc16,
    crc32,
)

CHECK_INPUT = b"123456789"


class TestKnownVectors:
    """Rocksoft catalogue check values for the standard input."""

    def test_crc32_ieee(self):
        assert crc32(CHECK_INPUT) == 0xCBF43926

    def test_crc16_ccitt_false(self):
        assert crc16(CHECK_INPUT) == 0x29B1

    def test_crc8_atm(self):
        assert crc8(CHECK_INPUT) == 0xF4

    def test_crc32_empty(self):
        # CRC-32 of the empty string is 0 (init ^ xorout).
        assert crc32(b"") == 0

    def test_crc32_matches_zlib(self):
        import zlib

        for data in (b"", b"a", b"hello world", bytes(range(256))):
            assert crc32(data) == zlib.crc32(data)


class TestProperties:
    def test_verify_accepts_own_checksum(self):
        data = b"partial packet recovery"
        assert CRC32_IEEE.verify(data, CRC32_IEEE.compute(data))

    def test_verify_rejects_wrong_checksum(self):
        assert not CRC32_IEEE.verify(b"abc", CRC32_IEEE.compute(b"abd"))

    def test_compute_bytes_width(self):
        assert len(CRC32_IEEE.compute_bytes(b"x")) == 4
        assert len(CRC16_CCITT.compute_bytes(b"x")) == 2
        assert len(CRC8_ATM.compute_bytes(b"x")) == 1

    def test_compute_bytes_big_endian(self):
        value = CRC32_IEEE.compute(CHECK_INPUT)
        assert CRC32_IEEE.compute_bytes(CHECK_INPUT) == value.to_bytes(
            4, "big"
        )

    @given(st.binary(min_size=1, max_size=100), st.integers(0, 799))
    def test_single_bit_flip_always_detected(self, data, flip):
        """A CRC detects every single-bit error by construction."""
        bit = flip % (len(data) * 8)
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 0x80 >> (bit % 8)
        if bytes(corrupted) != data:
            assert crc32(bytes(corrupted)) != crc32(data)
            assert crc16(bytes(corrupted)) != crc16(data)
            assert crc8(bytes(corrupted)) != crc8(data)

    @given(st.binary(max_size=60))
    def test_deterministic(self, data):
        assert crc32(data) == crc32(data)

    def test_different_algorithms_disagree(self):
        # Not a mathematical necessity but a sanity check that the
        # three configured algorithms are genuinely distinct.
        data = b"softphy hints"
        values = {
            crc32(data) & 0xFF,
            crc16(data) & 0xFF,
            crc8(data),
        }
        assert len(values) >= 2
