"""Tests for repro.utils.crc against published check values."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.crc import (
    CRC8_ATM,
    CRC16_CCITT,
    CRC32_IEEE,
    crc8,
    crc16,
    crc32,
)

CHECK_INPUT = b"123456789"


class TestKnownVectors:
    """Rocksoft catalogue check values for the standard input."""

    def test_crc32_ieee(self):
        assert crc32(CHECK_INPUT) == 0xCBF43926

    def test_crc16_ccitt_false(self):
        assert crc16(CHECK_INPUT) == 0x29B1

    def test_crc8_atm(self):
        assert crc8(CHECK_INPUT) == 0xF4

    def test_crc32_empty(self):
        # CRC-32 of the empty string is 0 (init ^ xorout).
        assert crc32(b"") == 0

    def test_crc32_matches_zlib(self):
        import zlib

        for data in (b"", b"a", b"hello world", bytes(range(256))):
            assert crc32(data) == zlib.crc32(data)


class TestProperties:
    def test_verify_accepts_own_checksum(self):
        data = b"partial packet recovery"
        assert CRC32_IEEE.verify(data, CRC32_IEEE.compute(data))

    def test_verify_rejects_wrong_checksum(self):
        assert not CRC32_IEEE.verify(b"abc", CRC32_IEEE.compute(b"abd"))

    def test_compute_bytes_width(self):
        assert len(CRC32_IEEE.compute_bytes(b"x")) == 4
        assert len(CRC16_CCITT.compute_bytes(b"x")) == 2
        assert len(CRC8_ATM.compute_bytes(b"x")) == 1

    def test_compute_bytes_big_endian(self):
        value = CRC32_IEEE.compute(CHECK_INPUT)
        assert CRC32_IEEE.compute_bytes(CHECK_INPUT) == value.to_bytes(
            4, "big"
        )

    @given(st.binary(min_size=1, max_size=100), st.integers(0, 799))
    def test_single_bit_flip_always_detected(self, data, flip):
        """A CRC detects every single-bit error by construction."""
        bit = flip % (len(data) * 8)
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 0x80 >> (bit % 8)
        if bytes(corrupted) != data:
            assert crc32(bytes(corrupted)) != crc32(data)
            assert crc16(bytes(corrupted)) != crc16(data)
            assert crc8(bytes(corrupted)) != crc8(data)

    @given(st.binary(max_size=60))
    def test_deterministic(self, data):
        assert crc32(data) == crc32(data)

    def test_different_algorithms_disagree(self):
        # Not a mathematical necessity but a sanity check that the
        # three configured algorithms are genuinely distinct.
        data = b"softphy hints"
        values = {
            crc32(data) & 0xFF,
            crc16(data) & 0xFF,
            crc8(data),
        }
        assert len(values) >= 2


def _bit_serial_crc(alg, data: bytes) -> int:
    """Naive bit-at-a-time CRC — an implementation-independent
    reference for the table-driven engine."""
    mask = (1 << alg.width) - 1
    top = 1 << (alg.width - 1)
    reg = alg.init
    for byte in data:
        if alg.refin:
            byte = _reflect_int(byte, 8)
        reg ^= byte << (alg.width - 8)
        reg &= mask
        for _ in range(8):
            reg = ((reg << 1) ^ alg.poly) & mask if reg & top else (
                reg << 1
            ) & mask
    if alg.refout:
        reg = _reflect_int(reg, alg.width)
    return (reg ^ alg.xorout) & mask


def _reflect_int(value: int, width: int) -> int:
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


class TestAgainstIndependentReferences:
    """Property tests pinning all three algorithms, empty message
    included, against implementations that share no code with the
    table-driven engine."""

    @given(st.binary(max_size=200))
    def test_crc32_matches_zlib_any_length(self, data):
        import zlib

        assert crc32(data) == zlib.crc32(data)

    @given(st.binary(max_size=120))
    def test_all_algorithms_match_bit_serial(self, data):
        for alg in (CRC32_IEEE, CRC16_CCITT, CRC8_ATM):
            assert alg.compute(data) == _bit_serial_crc(alg, data), (
                f"{alg.name} diverges from the bit-serial reference"
            )

    def test_known_answer_vectors(self):
        # Rocksoft catalogue check values plus hand-derivable cases.
        vectors = [
            (CRC16_CCITT, b"", 0xFFFF),  # init, no reflection, xorout 0
            (CRC16_CCITT, b"123456789", 0x29B1),
            (CRC16_CCITT, b"A", 0xB915),
            (CRC8_ATM, b"", 0x00),
            (CRC8_ATM, b"123456789", 0xF4),
            (CRC8_ATM, b"\x00", 0x00),
            (CRC8_ATM, b"A", 0xC0),
            (CRC32_IEEE, b"", 0x00000000),
            (CRC32_IEEE, b"123456789", 0xCBF43926),
        ]
        for alg, data, expected in vectors:
            assert alg.compute(data) == expected, (alg.name, data)


class TestChecksumMany:
    @given(
        st.lists(st.binary(max_size=40), min_size=1, max_size=12)
    )
    def test_matches_per_row_compute(self, messages):
        import numpy as np

        lengths = np.array([len(m) for m in messages], dtype=np.int64)
        width = int(lengths.max())
        rows = np.zeros((len(messages), width), dtype=np.uint8)
        for i, message in enumerate(messages):
            rows[i, : len(message)] = np.frombuffer(
                message, dtype=np.uint8
            )
        for alg in (CRC32_IEEE, CRC16_CCITT, CRC8_ATM):
            got = alg.checksum_many(rows, lengths)
            want = [alg.compute(m) for m in messages]
            assert got.tolist() == want, alg.name

    def test_full_width_rows_without_lengths(self):
        import numpy as np

        rows = np.frombuffer(
            b"123456789987654321", dtype=np.uint8
        ).reshape(2, 9)
        got = CRC32_IEEE.checksum_many(rows)
        assert got.tolist() == [
            crc32(b"123456789"),
            crc32(b"987654321"),
        ]

    def test_validation(self):
        import numpy as np

        with pytest.raises(ValueError, match="2-D"):
            CRC32_IEEE.checksum_many(np.zeros(4, dtype=np.uint8))
        with pytest.raises(ValueError, match="shape"):
            CRC32_IEEE.checksum_many(
                np.zeros((2, 4), dtype=np.uint8),
                np.zeros(3, dtype=np.int64),
            )
        with pytest.raises(ValueError, match="lie in"):
            CRC32_IEEE.checksum_many(
                np.zeros((2, 4), dtype=np.uint8),
                np.array([2, 5], dtype=np.int64),
            )
