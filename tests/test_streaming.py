"""Tests for the streaming (pipelined) PP-ARQ session (paper §5.2)."""

import numpy as np
import pytest

from repro.arq.streaming import StreamingPpArqSession
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.symbols import SoftPacket
from repro.utils.rng import ensure_rng


def _clean_channel(symbols):
    symbols = np.asarray(symbols, dtype=np.int64)
    return SoftPacket(
        symbols=symbols, hints=np.zeros(symbols.size), truth=symbols
    )


def _bursty_channel(codebook, rng, burst_prob=0.6):
    def channel(symbols):
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.size == 0:
            return _clean_channel(symbols)
        p = np.full(symbols.size, 0.005)
        if rng.random() < burst_prob:
            length = max(1, symbols.size // 4)
            start = rng.integers(0, max(1, symbols.size - length))
            p[start : start + length] = 0.4
        received = transmit_chipwords(
            codebook.encode_words(symbols), p, rng
        )
        decoded, dist = codebook.decode_hard(received)
        return SoftPacket(
            symbols=decoded, hints=dist.astype(float), truth=symbols
        )

    return channel


def _payloads(rng, count, size=120):
    return [
        bytes(rng.integers(0, 256, size, dtype=np.uint8))
        for _ in range(count)
    ]


class TestStreamingSession:
    def test_clean_channel_all_delivered(self, rng):
        session = StreamingPpArqSession(_clean_channel, window=3)
        log = session.transfer_stream(_payloads(rng, 8))
        assert log.packets_delivered == 8
        assert log.delivery_rate == 1.0
        assert log.retransmit_bytes == 0

    def test_payloads_recoverable(self, codebook, rng):
        channel = _bursty_channel(codebook, rng)
        session = StreamingPpArqSession(channel, window=4)
        payloads = _payloads(rng, 6)
        log = session.transfer_stream(payloads)
        assert log.packets_delivered == 6
        for seq, payload in enumerate(payloads):
            assert session.receiver.reassembled_payload(seq) == payload

    def test_concatenation_saves_transmissions(self, codebook):
        """Pipelining with window W uses far fewer reverse-link
        transmissions than W one-at-a-time sessions (the §5.2 point)."""
        rng = ensure_rng(8)
        channel = _bursty_channel(codebook, rng)
        session = StreamingPpArqSession(channel, window=6)
        payloads = _payloads(rng, 12)
        log = session.transfer_stream(payloads)
        assert log.packets_delivered == 12
        # One-at-a-time needs >= one reverse transmission per packet
        # (the final ACK), plus one per recovery round.
        sequential_reverse = 12 + sum(log.rounds_per_packet.values())
        assert log.reverse_transmissions < sequential_reverse

    def test_rounds_accounted_per_packet(self, codebook):
        rng = ensure_rng(9)
        channel = _bursty_channel(codebook, rng, burst_prob=1.0)
        session = StreamingPpArqSession(channel, window=2)
        log = session.transfer_stream(_payloads(rng, 4))
        assert set(log.rounds_per_packet) == {0, 1, 2, 3}
        assert any(r > 0 for r in log.rounds_per_packet.values())

    def test_abandons_after_round_budget(self, rng):
        def hopeless(symbols):
            symbols = np.asarray(symbols, dtype=np.int64)
            if symbols.size == 0:
                return _clean_channel(symbols)
            return SoftPacket(
                symbols=(symbols + 1) % 16,
                hints=np.full(symbols.size, 20.0),
                truth=symbols,
            )

        session = StreamingPpArqSession(
            hopeless, window=2, max_rounds_per_packet=3
        )
        log = session.transfer_stream(_payloads(rng, 2))
        assert log.packets_delivered == 0
        assert all(r == 3 for r in log.rounds_per_packet.values())

    def test_empty_stream(self):
        session = StreamingPpArqSession(_clean_channel)
        log = session.transfer_stream([])
        assert log.packets_offered == 0
        assert log.delivery_rate == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StreamingPpArqSession(_clean_channel, window=0)
        with pytest.raises(ValueError):
            StreamingPpArqSession(
                _clean_channel, max_rounds_per_packet=0
            )

    def test_feedback_uses_public_accessor(self):
        """Completion ACKs checksum the receiver's buffer through
        decoded_symbols(), not the private _states dict."""
        session = StreamingPpArqSession(_clean_channel)
        log = session.transfer_stream([b"payload one"])
        assert log.packets_delivered == 1
        assert session.receiver.reassembled_payload(0) == b"payload one"
        symbols = session.receiver.decoded_symbols(0)
        assert not symbols.flags.writeable
