"""Tests for the network-coded partial recovery subsystem."""

import numpy as np
import pytest

from repro.arq.feedback import segment_checksum
from repro.coding.gf2 import (
    gf2_coefficients,
    gf2_eliminate,
    gf2_encode,
    pack_bytes_to_words,
    unpack_words_to_bytes,
)
from repro.coding.gf256 import (
    gf256_coefficients,
    gf256_eliminate,
    gf256_encode,
    gf256_inv,
    gf256_mul,
)
from repro.coding.rlnc import SegmentedRlncCodec
from repro.coding.session import (
    CodedRepairReceiver,
    CodedRepairSender,
    CodedRepairSession,
    decode_coded_repair,
    encode_coded_repair,
)
from repro.phy.spreading import bytes_to_symbols
from repro.phy.symbols import SoftPacket
from repro.utils.crc import CRC32_IEEE


class TestPacking:
    def test_roundtrip_various_widths(self, rng):
        for n_bytes in (1, 7, 8, 9, 16, 33):
            rows = rng.integers(0, 256, (4, n_bytes)).astype(np.uint8)
            words = pack_bytes_to_words(rows)
            assert words.shape == (4, -(-n_bytes // 8))
            assert np.array_equal(
                unpack_words_to_bytes(words, n_bytes), rows
            )

    def test_byte_zero_lands_in_msb(self):
        words = pack_bytes_to_words(
            np.array([[0x80] + [0] * 7], dtype=np.uint8)
        )
        assert words[0, 0] == np.uint64(0x8000000000000000)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            pack_bytes_to_words(np.zeros(8, dtype=np.uint8))


class TestGf2Kernels:
    def test_encode_xor_semantics(self, rng):
        rows = rng.integers(0, 256, (3, 10)).astype(np.uint8)
        packed = pack_bytes_to_words(rows)
        coeffs = np.array([[1, 0, 1]], dtype=np.uint8)
        coded = unpack_words_to_bytes(gf2_encode(coeffs, packed), 10)
        assert np.array_equal(coded[0], rows[0] ^ rows[2])

    def test_eliminate_recovers_erasures(self, rng):
        k, n_bytes = 6, 20
        src = rng.integers(0, 256, (k, n_bytes)).astype(np.uint8)
        packed = pack_bytes_to_words(src)
        # Lose two source rows; supply three coded rows covering them.
        coeffs = np.concatenate(
            [
                np.eye(k, dtype=np.uint8)[2:],
                gf2_coefficients(1, "test", shape=(3, k)),
            ]
        )
        payload = np.concatenate(
            [packed[2:], gf2_encode(coeffs[k - 2 :], packed)]
        )
        recovered, solved = gf2_eliminate(coeffs, payload)
        assert recovered.all()
        assert np.array_equal(
            unpack_words_to_bytes(solved, n_bytes), src
        )

    def test_eliminate_partial_rank(self):
        # One equation over two unknowns: neither is determined,
        # but a unit equation pins its coordinate.
        coeffs = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        payload = pack_bytes_to_words(
            np.array([[3], [5]], dtype=np.uint8)
        )
        recovered, solved = gf2_eliminate(coeffs, payload)
        assert recovered.tolist() == [True, True]
        assert unpack_words_to_bytes(solved, 1)[0, 0] == 3 ^ 5
        recovered2, _ = gf2_eliminate(coeffs[:1], payload[:1])
        assert recovered2.tolist() == [False, False]

    def test_eliminate_empty_system(self):
        recovered, solved = gf2_eliminate(
            np.zeros((0, 4), dtype=np.uint8),
            np.zeros((0, 1), dtype=np.uint64),
        )
        assert not recovered.any()
        assert solved.shape == (4, 1)

    def test_coefficients_deterministic_and_nonzero(self):
        a = gf2_coefficients(7, "x", 1, 2, shape=(40, 3))
        b = gf2_coefficients(7, "x", 1, 2, shape=(40, 3))
        assert np.array_equal(a, b)
        assert a.any(axis=1).all()  # no all-zero (useless) rows
        c = gf2_coefficients(7, "x", 1, 3, shape=(40, 3))
        assert not np.array_equal(a, c)


class TestGf256Field:
    def test_mul_identities(self, rng):
        a = rng.integers(0, 256, 100).astype(np.uint8)
        assert np.array_equal(gf256_mul(a, np.uint8(1)), a)
        assert not gf256_mul(a, np.uint8(0)).any()

    def test_mul_matches_carryless_reference(self, rng):
        def slow_mul(x, y):
            out = 0
            while y:
                if y & 1:
                    out ^= x
                x <<= 1
                if x & 0x100:
                    x ^= 0x11D
                y >>= 1
            return out

        xs = rng.integers(0, 256, 60)
        ys = rng.integers(0, 256, 60)
        want = [slow_mul(int(x), int(y)) for x, y in zip(xs, ys, strict=True)]
        got = gf256_mul(
            xs.astype(np.uint8), ys.astype(np.uint8)
        ).tolist()
        assert got == want

    def test_inverses(self):
        for a in range(1, 256):
            assert gf256_mul(np.uint8(a), np.uint8(gf256_inv(a))) == 1
        with pytest.raises(ZeroDivisionError):
            gf256_inv(0)

    def test_eliminate_recovers_full_erasure(self, rng):
        # GF(256) random matrices are near-MDS: k coded rows alone
        # recover all k sources (no identity equations at all).
        k, n_bytes = 5, 12
        src = rng.integers(0, 256, (k, n_bytes)).astype(np.uint8)
        coeffs = gf256_coefficients(3, "full", shape=(k + 1, k))
        coded = gf256_encode(coeffs, src)
        recovered, solved = gf256_eliminate(coeffs, coded)
        assert recovered.all()
        assert np.array_equal(solved, src)


class TestSegmentedRlncCodec:
    @pytest.mark.parametrize("field", ["gf2", "gf256"])
    def test_clean_roundtrip(self, field, rng):
        codec = SegmentedRlncCodec(8, 3, field=field, seed=2)
        payload = bytes(rng.integers(0, 256, 101, dtype=np.uint8))
        wire = codec.encode(payload)
        assert len(wire) == codec.wire_length(len(payload))
        assert codec.payload_length(len(wire)) == len(payload)
        result = codec.decode(wire)
        assert result.complete
        assert result.payload() == payload
        assert not result.coded_recovered.any()

    @pytest.mark.parametrize("field", ["gf2", "gf256"])
    def test_recovers_corrupted_segments(self, field, rng):
        codec = SegmentedRlncCodec(10, 5, field=field, seed=4)
        payload = bytes(rng.integers(0, 256, 250, dtype=np.uint8))
        wire = bytearray(codec.encode(payload))
        for idx in (0, 4, 9):
            offset, _ = codec.data_spans(len(payload))[idx]
            wire[offset] ^= 0x55
        result = codec.decode(bytes(wire))
        assert not result.data_ok[[0, 4, 9]].any()
        assert result.data_ok.sum() == 7
        # 5 intact repair equations over 3 unknowns: GF(256) always
        # solves; GF(2) solves unless the random 5x3 minor loses rank
        # (not the case for this seed).
        assert result.complete
        assert result.payload() == payload
        assert result.coded_recovered.sum() == 3

    def test_unrecoverable_marks_segments_none(self, rng):
        codec = SegmentedRlncCodec(6, 2, field="gf2", seed=1)
        payload = bytes(rng.integers(0, 256, 120, dtype=np.uint8))
        wire = bytearray(codec.encode(payload))
        # Corrupt more segments than repair equations exist.
        for idx in range(4):
            offset, _ = codec.data_spans(len(payload))[idx]
            wire[offset] ^= 0xFF
        result = codec.decode(bytes(wire))
        assert not result.complete
        assert result.delivered.sum() < 6
        undelivered = [
            i for i, seg in enumerate(result.segments) if seg is None
        ]
        assert undelivered
        # Zero-fill keeps the delivered segments addressable.
        rebuilt = result.payload()
        for i, (lo, size) in enumerate(
            zip(
                np.cumsum([0] + codec.segment_sizes(len(payload))[:-1]),
                codec.segment_sizes(len(payload)), strict=True,
            )
        ):
            if result.delivered[i]:
                assert rebuilt[lo : lo + size] == payload[lo : lo + size]

    def test_corrupted_repair_segments_are_dropped(self, rng):
        codec = SegmentedRlncCodec(6, 3, field="gf256", seed=9)
        payload = bytes(rng.integers(0, 256, 90, dtype=np.uint8))
        wire = bytearray(codec.encode(payload))
        for offset, _ in codec.repair_spans(len(payload)):
            wire[offset] ^= 0x01
        data_offset, _ = codec.data_spans(len(payload))[2]
        wire[data_offset] ^= 0x01
        result = codec.decode(bytes(wire))
        assert not result.repair_ok.any()
        assert not result.delivered[2]

    def test_recoverable_mask_matches_decode(self, rng):
        codec = SegmentedRlncCodec(8, 4, field="gf2", seed=6)
        payload = bytes(rng.integers(0, 256, 160, dtype=np.uint8))
        for _trial in range(10):
            wire = bytearray(codec.encode(payload))
            erase = rng.random(8) < 0.4
            for idx in np.flatnonzero(erase):
                offset, _ = codec.data_spans(len(payload))[int(idx)]
                wire[offset] ^= 0xA5
            result = codec.decode(bytes(wire))
            mask = codec.recoverable_mask(
                result.data_ok, result.repair_ok
            )
            assert np.array_equal(mask, result.delivered)

    def test_wire_length_inversion_exhaustive(self):
        codec = SegmentedRlncCodec(7, 3, seed=0)
        for payload_len in range(7, 200):
            wire_len = codec.wire_length(payload_len)
            assert codec.payload_length(wire_len) == payload_len

    def test_rejects_undersized_payload(self):
        codec = SegmentedRlncCodec(10, 2)
        with pytest.raises(ValueError, match="cannot fill"):
            codec.encode(b"short")

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="n_segments"):
            SegmentedRlncCodec(0, 1)
        with pytest.raises(ValueError, match="n_repair"):
            SegmentedRlncCodec(4, 0)
        with pytest.raises(ValueError, match="field"):
            SegmentedRlncCodec(4, 2, field="gf64")
        with pytest.raises(ValueError, match="one byte"):
            SegmentedRlncCodec(300, 2)


def _clean_channel(symbols):
    symbols = np.asarray(symbols, dtype=np.int64)
    return SoftPacket(
        symbols=symbols.copy(),
        hints=np.zeros(symbols.size),
        truth=symbols.copy(),
    )


def _burst_channel(rng, error=0.3, frac=0.3):
    """Corrupt a contiguous fraction of each transmission."""

    def channel(symbols):
        symbols = np.asarray(symbols, dtype=np.int64)
        out = symbols.copy()
        hints = np.zeros(symbols.size)
        if symbols.size:
            burst = max(1, int(frac * symbols.size))
            start = int(rng.integers(0, symbols.size - burst + 1))
            flip = rng.random(burst) < error
            out[start : start + burst] ^= flip * int(
                rng.integers(1, 16)
            )
            hints[start : start + burst] = np.where(flip, 9.0, 0.0)
        return SoftPacket(symbols=out, hints=hints, truth=symbols)

    return channel


class TestCodedRepairSession:
    def test_clean_channel_single_round(self):
        session = CodedRepairSession(_clean_channel)
        payload = b"network coded partial packet recovery" * 3
        log = session.transfer(0, payload)
        assert log.delivered
        assert log.rounds == 1
        assert not log.retransmit_packet_bytes
        assert session.receiver.reassembled_payload(0) == payload

    def test_bursty_channel_delivers(self, rng):
        session = CodedRepairSession(
            _burst_channel(rng), seed=5, max_rounds=30
        )
        for seq in range(5):
            payload = bytes(
                rng.integers(0, 256, 150, dtype=np.uint8)
            )
            log = session.transfer(seq, payload)
            assert log.delivered, f"packet {seq} not delivered"
            assert session.receiver.reassembled_payload(seq) == payload

    def test_coded_rows_survive_individual_losses(self, rng):
        """Killing any one coded row per round must not stall the
        session: the redundancy absorbs it without a re-request."""
        sender = CodedRepairSender(seed=8, redundancy=1.0)
        receiver = CodedRepairReceiver(eta=6.0)
        payload = bytes(rng.integers(0, 256, 80, dtype=np.uint8))
        wire = payload + CRC32_IEEE.compute_bytes(payload)
        symbols = bytes_to_symbols(wire)
        sender.register_packet(0, symbols)
        corrupted = symbols.copy()
        corrupted[10:40] ^= 0x5
        hints = np.zeros(symbols.size)
        hints[10:40] = 9.0
        receiver.receive_data(
            0,
            SoftPacket(symbols=corrupted, hints=hints, truth=symbols),
        )
        packet = sender.handle_feedback_coded(receiver.build_feedback(0))
        assert packet is not None
        assert packet.n_coded > len(packet.spans)
        # Corrupt one whole coded row in flight.
        view_symbols = packet.rows.reshape(-1).copy()
        row_width = packet.rows.shape[1]
        view_symbols[:row_width] ^= 0x3
        view = SoftPacket(
            symbols=view_symbols,
            hints=np.zeros(view_symbols.size),
            truth=packet.rows.reshape(-1),
        )
        receiver.receive_coded_repair(packet, view)
        assert receiver.is_complete(0)
        assert receiver.reassembled_payload(0) == payload

    def test_fresh_coefficients_each_round(self, rng):
        sender = CodedRepairSender(seed=1)
        payload = bytes(rng.integers(0, 256, 60, dtype=np.uint8))
        wire = payload + CRC32_IEEE.compute_bytes(payload)
        symbols = bytes_to_symbols(wire)
        sender.register_packet(0, symbols)
        feedback_segments = ((4, 20), (40, 60))
        from repro.arq.feedback import FeedbackPacket, gaps_for_segments

        def make_feedback():
            gaps = gaps_for_segments(feedback_segments, symbols.size)
            return FeedbackPacket(
                seq=0,
                n_symbols=symbols.size,
                segments=feedback_segments,
                gap_checksums=tuple(
                    segment_checksum(symbols[s:e]) for s, e in gaps
                ),
            )

        first = sender.handle_feedback_coded(make_feedback())
        second = sender.handle_feedback_coded(make_feedback())
        assert not np.array_equal(
            first.coefficients, second.coefficients
        )

    def test_packet_serialisation_roundtrip(self, rng):
        sender = CodedRepairSender(seed=3)
        receiver = CodedRepairReceiver()
        payload = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
        wire = payload + CRC32_IEEE.compute_bytes(payload)
        symbols = bytes_to_symbols(wire)
        sender.register_packet(5, symbols)
        corrupted = symbols.copy()
        corrupted[3:9] ^= 0x7
        hints = np.zeros(symbols.size)
        hints[3:9] = 8.0
        receiver.receive_data(
            5,
            SoftPacket(symbols=corrupted, hints=hints, truth=symbols),
        )
        packet = sender.handle_feedback_coded(receiver.build_feedback(5))
        decoded = decode_coded_repair(encode_coded_repair(packet))
        assert decoded.seq == packet.seq
        assert decoded.n_symbols == packet.n_symbols
        assert decoded.spans == packet.spans
        assert np.array_equal(decoded.coefficients, packet.coefficients)
        assert np.array_equal(decoded.rows, packet.rows)
        assert decoded.row_checksums == packet.row_checksums
        assert decoded.gap_checksums == packet.gap_checksums

    def test_ack_releases_sender_state(self):
        session = CodedRepairSession(_clean_channel)
        payload = b"x" * 40
        session.transfer(3, payload)
        assert not session._sender.has_packet(3)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_rounds"):
            CodedRepairSession(_clean_channel, max_rounds=0)
        with pytest.raises(ValueError, match="redundancy"):
            CodedRepairSender(redundancy=-0.5)

    def test_many_bad_runs_keep_redundancy(self, rng):
        """A feedback round naming more bad runs than the 8-bit coded
        row count can carry must merge spans rather than silently
        clamp away the extra equations."""
        sender = CodedRepairSender(seed=2, redundancy=0.25)
        n_symbols = 2600
        truth = rng.integers(0, 16, n_symbols)
        sender.register_packet(0, truth)
        # 260 single-symbol bad runs, evenly spaced.
        segments = tuple((10 * i, 10 * i + 1) for i in range(260))
        from repro.arq.feedback import FeedbackPacket, gaps_for_segments

        gaps = gaps_for_segments(segments, n_symbols)
        feedback = FeedbackPacket(
            seq=0,
            n_symbols=n_symbols,
            segments=segments,
            gap_checksums=tuple(
                segment_checksum(truth[s:e]) for s, e in gaps
            ),
        )
        packet = sender.handle_feedback_coded(feedback)
        assert packet.n_coded <= 255
        assert packet.n_coded > len(packet.spans)  # redundancy intact
        assert len(packet.spans) < 260  # spans were merged
        # Every requested symbol is still covered by some span.
        covered = np.zeros(n_symbols, dtype=bool)
        for start, end in packet.spans:
            covered[start:end] = True
        for start, end in segments:
            assert covered[start:end].all()
        # The packet is internally consistent (round-trips).
        decoded = decode_coded_repair(encode_coded_repair(packet))
        assert decoded.spans == packet.spans
