"""Tests for the testbed layout generator and wall geometry."""

import numpy as np
import pytest

from repro.sim.testbed import (
    FEET_TO_M,
    TestbedConfig as _TestbedConfig,
    paper_testbed,
    single_link_testbed,
    wall_count_matrix,
)
from repro.utils.rng import ensure_rng


class TestPaperTestbed:
    def test_node_inventory(self):
        tb = paper_testbed(seed=0)
        assert tb.n_senders == 23
        assert tb.n_receivers == 4
        assert tb.n_nodes == 27
        assert tb.sender_ids == tuple(range(23))
        assert tb.receiver_ids == (23, 24, 25, 26)

    def test_positions_inside_floor(self):
        tb = paper_testbed(seed=3)
        width, height = 100 * FEET_TO_M, 50 * FEET_TO_M
        assert np.all(tb.positions_m[:, 0] >= -2)
        assert np.all(tb.positions_m[:, 0] <= width + 2)
        assert np.all(tb.positions_m[:, 1] >= -2)
        assert np.all(tb.positions_m[:, 1] <= height + 2)

    def test_deterministic_in_seed(self):
        a = paper_testbed(seed=7).positions_m
        b = paper_testbed(seed=7).positions_m
        c = paper_testbed(seed=8).positions_m
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_senders_cover_every_room(self):
        tb = paper_testbed(seed=0)
        width, height = tb.area_m
        room_of = (
            np.floor(tb.positions_m[:23, 0] / (width / 3)).astype(int)
            + 3 * np.floor(tb.positions_m[:23, 1] / (height / 3)).astype(int)
        )
        assert len(set(room_of.tolist())) == 9

    def test_custom_counts(self):
        tb = paper_testbed(seed=0, n_senders=5, n_receivers=2)
        assert tb.n_senders == 5 and tb.n_receivers == 2

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            paper_testbed(n_senders=0)

    def test_id_overlap_rejected(self):
        with pytest.raises(ValueError, match="not overlap"):
            _TestbedConfig(
                positions_m=np.zeros((2, 2)),
                sender_ids=(0,),
                receiver_ids=(0,),
            )

    def test_id_coverage_enforced(self):
        with pytest.raises(ValueError, match="cover"):
            _TestbedConfig(
                positions_m=np.zeros((3, 2)),
                sender_ids=(0,),
                receiver_ids=(2,),
            )


class TestWallCounts:
    def test_same_room_no_walls(self):
        positions = np.array([[1.0, 1.0], [2.0, 2.0]])
        walls = wall_count_matrix(positions, (3, 3), (30.0, 15.0))
        assert walls[0, 1] == 0

    def test_adjacent_room_one_wall(self):
        positions = np.array([[5.0, 2.0], [15.0, 2.0]])
        walls = wall_count_matrix(positions, (3, 3), (30.0, 15.0))
        assert walls[0, 1] == 1

    def test_diagonal_room_two_walls(self):
        positions = np.array([[5.0, 2.0], [15.0, 7.0]])
        walls = wall_count_matrix(positions, (3, 3), (30.0, 15.0))
        assert walls[0, 1] == 2

    def test_across_floor_four_walls(self):
        positions = np.array([[1.0, 1.0], [29.0, 14.0]])
        walls = wall_count_matrix(positions, (3, 3), (30.0, 15.0))
        assert walls[0, 1] == 4

    def test_symmetric_zero_diagonal(self):
        rng = ensure_rng(0)
        positions = rng.uniform(0, 30, size=(6, 2))
        walls = wall_count_matrix(positions, (3, 3), (30.0, 30.0))
        assert np.array_equal(walls, walls.T)
        assert np.all(np.diag(walls) == 0)


class TestSingleLink:
    def test_two_nodes(self):
        tb = single_link_testbed(distance_m=7.0)
        assert tb.n_nodes == 2
        assert np.linalg.norm(
            tb.positions_m[1] - tb.positions_m[0]
        ) == pytest.approx(7.0)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            single_link_testbed(distance_m=0)
