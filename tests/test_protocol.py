"""Tests for the PP-ARQ protocol state machines and session driver."""

import numpy as np
import pytest

from repro.arq.feedback import FeedbackPacket, segment_checksum
from repro.arq.fullarq import FullPacketArqSession
from repro.arq.protocol import (
    PpArqReceiver,
    PpArqSender,
    PpArqSession,
    _merge_ranges,
)
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.spreading import bytes_to_symbols
from repro.phy.symbols import SoftPacket
from repro.utils.crc import CRC32_IEEE
from repro.utils.rng import ensure_rng


def _soft(symbols, hints=None, truth=None):
    symbols = np.asarray(symbols, dtype=np.int64)
    return SoftPacket(
        symbols=symbols,
        hints=np.zeros(symbols.size) if hints is None else np.asarray(hints),
        truth=symbols if truth is None else truth,
    )


def _clean_channel(symbols):
    return _soft(symbols)


def _make_bursty_channel(codebook, rng, burst=(0.2, 0.5), p_burst=0.4):
    def channel(symbols):
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.size == 0:
            return _soft(symbols)
        p = np.full(symbols.size, 0.005)
        frac = rng.uniform(*burst)
        length = max(1, int(frac * symbols.size))
        start = rng.integers(0, max(1, symbols.size - length))
        p[start : start + length] = p_burst
        words = codebook.encode_words(symbols)
        received = transmit_chipwords(words, p, rng)
        decoded, dist = codebook.decode_hard(received)
        return SoftPacket(
            symbols=decoded, hints=dist.astype(float), truth=symbols
        )

    return channel


class TestSender:
    def test_ack_releases_state(self):
        sender = PpArqSender()
        wire = bytes_to_symbols(b"data" + CRC32_IEEE.compute_bytes(b"data"))
        sender.register_packet(1, wire)
        ack = FeedbackPacket(
            seq=1,
            n_symbols=wire.size,
            segments=(),
            gap_checksums=(segment_checksum(wire),),
        )
        assert sender.handle_feedback(ack) is None
        assert not sender.has_packet(1)

    def test_retransmits_requested_segment(self):
        sender = PpArqSender()
        wire = bytes_to_symbols(b"0123456789")
        sender.register_packet(2, wire)
        from repro.arq.feedback import gaps_for_segments

        segments = ((4, 8),)
        gaps = gaps_for_segments(segments, wire.size)
        fb = FeedbackPacket(
            seq=2,
            n_symbols=wire.size,
            segments=segments,
            gap_checksums=tuple(
                segment_checksum(wire[s:e]) for s, e in gaps
            ),
        )
        rt = sender.handle_feedback(fb)
        assert rt.segment_spans() == ((4, 8),)
        assert np.array_equal(rt.segments[0].symbols, wire[4:8])

    def test_mismatched_gap_checksum_widens_retransmission(self):
        """The miss-recovery path: a gap the receiver thinks is good
        but whose checksum disagrees gets retransmitted too."""
        sender = PpArqSender()
        wire = bytes_to_symbols(b"0123456789")
        sender.register_packet(3, wire)
        from repro.arq.feedback import gaps_for_segments

        segments = ((4, 8),)
        gaps = gaps_for_segments(segments, wire.size)
        checksums = [segment_checksum(wire[s:e]) for s, e in gaps]
        checksums[0] ^= 0xFF  # receiver's copy of gap 0 is wrong
        fb = FeedbackPacket(
            seq=3,
            n_symbols=wire.size,
            segments=segments,
            gap_checksums=tuple(checksums),
        )
        rt = sender.handle_feedback(fb)
        # Gap (0,4) merged with request (4,8) into one segment.
        assert rt.segment_spans() == ((0, 8),)

    def test_unknown_seq_rejected(self):
        sender = PpArqSender()
        fb = FeedbackPacket(
            seq=9, n_symbols=4, segments=(), gap_checksums=(0,)
        )
        with pytest.raises(KeyError):
            sender.handle_feedback(fb)

    def test_merge_ranges(self):
        assert _merge_ranges([(0, 3), (3, 5), (8, 9)]) == [(0, 5), (8, 9)]
        assert _merge_ranges([(2, 6), (0, 4)]) == [(0, 6)]
        assert _merge_ranges([]) == []


class TestReceiver:
    def test_complete_after_clean_reception(self):
        receiver = PpArqReceiver()
        payload = b"hello pp-arq"
        wire = payload + CRC32_IEEE.compute_bytes(payload)
        receiver.receive_data(1, _soft(bytes_to_symbols(wire)))
        assert receiver.is_complete(1)
        assert receiver.reassembled_payload(1) == payload

    def test_incomplete_with_bad_symbols(self):
        receiver = PpArqReceiver()
        payload = b"hello pp-arq"
        wire = payload + CRC32_IEEE.compute_bytes(payload)
        symbols = bytes_to_symbols(wire)
        corrupted = symbols.copy()
        corrupted[3] = (corrupted[3] + 1) % 16
        hints = np.zeros(symbols.size)
        hints[3] = 12.0
        receiver.receive_data(1, _soft(corrupted, hints, truth=symbols))
        assert not receiver.is_complete(1)
        fb = receiver.build_feedback(1)
        assert any(s <= 3 < e for s, e in fb.segments)

    def test_second_reception_improves_symbols(self):
        receiver = PpArqReceiver()
        truth = bytes_to_symbols(b"abcdef")
        bad = truth.copy()
        bad[0] = (bad[0] + 1) % 16
        hints_bad = np.zeros(truth.size)
        hints_bad[0] = 10.0
        receiver.receive_data(5, _soft(bad, hints_bad, truth=truth))
        receiver.receive_data(5, _soft(truth))
        state = receiver._states[5]
        assert state.symbols[0] == truth[0]

    def test_reassembled_payload_requires_completion(self):
        receiver = PpArqReceiver()
        with pytest.raises(KeyError):
            receiver.build_feedback(1)
        assert not receiver.is_complete(1)
        with pytest.raises(ValueError, match="not complete"):
            receiver.reassembled_payload(1)

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            PpArqReceiver(eta=-0.5)

    def test_decoded_symbols_accessor(self):
        """Public read-only view of the reassembly buffer, so sessions
        need not reach into the private per-packet state."""
        receiver = PpArqReceiver()
        truth = bytes_to_symbols(b"abcdef")
        receiver.receive_data(2, _soft(truth))
        symbols = receiver.decoded_symbols(2)
        assert np.array_equal(symbols, truth)
        assert not symbols.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            symbols[0] = 1
        with pytest.raises(KeyError):
            receiver.decoded_symbols(99)


class TestSessions:
    def test_clean_channel_single_round(self):
        session = PpArqSession(_clean_channel)
        log = session.transfer(1, b"payload bytes here")
        assert log.delivered
        assert log.rounds == 1
        assert log.total_retransmit_bytes == 0

    def test_bursty_channel_converges(self, codebook, rng):
        channel = _make_bursty_channel(codebook, rng)
        session = PpArqSession(channel, eta=6.0)
        payload = bytes(rng.integers(0, 256, 200, dtype=np.uint8))
        log = session.transfer(7, payload)
        assert log.delivered
        assert session.receiver.reassembled_payload(7) == payload

    def test_retransmissions_smaller_than_packet(self, codebook, rng):
        channel = _make_bursty_channel(codebook, rng, burst=(0.1, 0.3))
        session = PpArqSession(channel, eta=6.0)
        payload = bytes(rng.integers(0, 256, 250, dtype=np.uint8))
        total_sizes = []
        for seq in range(10):
            log = session.transfer(seq, payload)
            total_sizes.extend(log.retransmit_packet_bytes)
        assert total_sizes, "bursty channel should force retransmissions"
        assert np.median(total_sizes) < 254

    def test_max_rounds_limits_looping(self, codebook, rng):
        def hopeless_channel(symbols):
            symbols = np.asarray(symbols, dtype=np.int64)
            if symbols.size == 0:
                return _soft(symbols)
            garbage = (symbols + 1) % 16
            return SoftPacket(
                symbols=garbage,
                hints=np.zeros(symbols.size),  # all misses!
                truth=symbols,
            )

        session = PpArqSession(hopeless_channel, max_rounds=3)
        log = session.transfer(1, b"doomed")
        assert log.rounds == 3
        assert not log.delivered

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            PpArqSession(_clean_channel, max_rounds=0)


class TestFullArqBaseline:
    def test_clean_channel_one_attempt(self):
        session = FullPacketArqSession(_clean_channel)
        log = session.transfer(1, b"easy")
        assert log.delivered and log.attempts == 1
        assert log.total_retransmit_bytes == 0

    def test_retransmits_whole_packets(self, codebook, rng):
        channel = _make_bursty_channel(
            codebook, rng, burst=(0.3, 0.5), p_burst=0.45
        )
        session = FullPacketArqSession(channel, max_attempts=200)
        payload = bytes(rng.integers(0, 256, 100, dtype=np.uint8))
        log = session.transfer(1, payload)
        if log.retransmit_packet_bytes:
            assert all(
                size == 104 for size in log.retransmit_packet_bytes
            )

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            FullPacketArqSession(_clean_channel, max_attempts=0)


class TestCrossComparison:
    def test_pparq_cheaper_than_full_arq(self, codebook):
        """On the same bursty channel statistics, PP-ARQ's byte cost is
        below whole-packet ARQ's — Table 1's headline claim."""
        rng_a = ensure_rng(5)
        rng_b = ensure_rng(5)
        pp = PpArqSession(_make_bursty_channel(codebook, rng_a))
        full = FullPacketArqSession(
            _make_bursty_channel(codebook, rng_b), max_attempts=200
        )
        payload = bytes((np.arange(200) % 256).astype(np.uint8))
        pp_bytes = sum(
            pp.transfer(seq, payload).total_retransmit_bytes
            for seq in range(12)
        )
        full_bytes = sum(
            full.transfer(seq, payload).total_retransmit_bytes
            for seq in range(12)
        )
        assert pp_bytes < full_bytes
