"""Tests for the MSK waveform modulator/demodulator pair."""

import numpy as np
import pytest

from repro.phy.channelsim import add_awgn
from repro.phy.demodulation import MskDemodulator
from repro.phy.modulation import MskModulator
from repro.phy.pulse import half_sine_pulse, rectangular_pulse


class TestPulses:
    def test_half_sine_unit_energy(self):
        for sps in (2, 4, 8):
            assert np.linalg.norm(half_sine_pulse(sps)) == pytest.approx(1.0)

    def test_half_sine_length(self):
        assert half_sine_pulse(4).size == 8

    def test_half_sine_symmetric(self):
        p = half_sine_pulse(6)
        assert p == pytest.approx(p[::-1])

    def test_rectangular_unit_energy(self):
        assert np.linalg.norm(rectangular_pulse(5)) == pytest.approx(1.0)

    def test_invalid_sps(self):
        with pytest.raises(ValueError):
            half_sine_pulse(0)


class TestModulator:
    def test_output_length(self):
        mod = MskModulator(sps=4)
        chips = np.zeros(10, dtype=np.int64)
        wave = mod.modulate_chips(chips)
        assert wave.size == mod.samples_for_chips(10) == 44

    def test_even_chips_on_i_rail(self):
        mod = MskModulator(sps=4)
        chips = np.array([1, 0, 0, 0, 0, 0, 0, 0])
        wave = mod.modulate_chips(chips)
        # First pulse is purely real (I rail).
        assert np.abs(wave[:4].imag).max() == pytest.approx(0.0)
        assert wave[:4].real.max() > 0

    def test_odd_chips_on_q_rail(self):
        mod = MskModulator(sps=4)
        chips = np.array([0, 1, 0, 0, 0, 0, 0, 0])
        wave = mod.modulate_chips(chips)
        # Chip 1's pulse starts at sample 4 and is purely imaginary.
        assert wave[4:8].imag.max() > 0

    def test_odd_chip_count_rejected(self):
        with pytest.raises(ValueError, match="even"):
            MskModulator().modulate_chips(np.zeros(3, dtype=np.int64))

    def test_non_binary_chips_rejected(self):
        with pytest.raises(ValueError, match="0/1"):
            MskModulator().modulate_chips(np.array([0, 2]))

    def test_amplitude_scales_output(self):
        chips = np.ones(8, dtype=np.int64)
        quiet = MskModulator(sps=4, amplitude=1.0).modulate_chips(chips)
        loud = MskModulator(sps=4, amplitude=2.0).modulate_chips(chips)
        assert loud == pytest.approx(2.0 * quiet)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MskModulator(sps=1)
        with pytest.raises(ValueError):
            MskModulator(amplitude=0)


class TestDemodulatorRoundtrip:
    def test_noiseless_roundtrip(self, rng):
        mod = MskModulator(sps=4)
        demod = MskDemodulator(sps=4)
        chips = rng.integers(0, 2, 200)
        wave = mod.modulate_chips(chips)
        decoded = demod.demodulate_chips(wave, start=0, n_chips=200)
        assert np.array_equal(decoded, chips)

    def test_soft_outputs_near_unit(self, rng):
        mod = MskModulator(sps=4)
        demod = MskDemodulator(sps=4)
        chips = rng.integers(0, 2, 100)
        wave = mod.modulate_chips(chips)
        soft = demod.demodulate_soft(wave, start=0, n_chips=100)
        signs = chips * 2 - 1
        assert soft == pytest.approx(signs.astype(float), abs=1e-9)

    def test_noisy_roundtrip_mostly_correct(self, rng):
        mod = MskModulator(sps=4)
        demod = MskDemodulator(sps=4)
        chips = rng.integers(0, 2, 1000)
        wave = add_awgn(mod.modulate_chips(chips), 0.2, rng)
        decoded = demod.demodulate_chips(wave, start=0, n_chips=1000)
        assert (decoded == chips).mean() > 0.95

    def test_symbol_roundtrip_through_codebook(self, codebook, rng):
        mod = MskModulator(sps=4)
        demod = MskDemodulator(sps=4)
        symbols = rng.integers(0, 16, 30)
        wave = mod.modulate_symbols(symbols, codebook)
        matrix = demod.soft_chip_matrix(wave, start=0, n_symbols=30)
        decoded, _ = codebook.decode_soft(matrix)
        assert np.array_equal(decoded, symbols)

    def test_truncated_capture_rejected(self):
        demod = MskDemodulator(sps=4)
        with pytest.raises(ValueError, match="too short"):
            demod.demodulate_soft(np.zeros(10, dtype=complex), 0, 10)

    def test_negative_start_rejected(self):
        demod = MskDemodulator(sps=4)
        with pytest.raises(ValueError):
            demod.demodulate_soft(np.zeros(100, dtype=complex), -1, 2)

    def test_zero_chips(self):
        demod = MskDemodulator(sps=4)
        out = demod.demodulate_soft(np.zeros(10, dtype=complex), 0, 0)
        assert out.size == 0
