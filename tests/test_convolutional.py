"""Tests for convolutional coding and SOVA hints (paper §3.1, §8.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.convolutional import (
    ConvolutionalCode,
    SovaDecoder,
)


class TestEncoder:
    def test_rate_and_termination(self):
        code = ConvolutionalCode()
        coded = code.encode(np.zeros(10, dtype=np.int64))
        # 10 data bits + 2 flush bits, rate 1/2.
        assert coded.size == 24

    def test_known_sequence_75(self):
        """The (7,5) code's response to a single 1 is the generator
        impulse response 11 10 11."""
        code = ConvolutionalCode()
        coded = code.encode(np.array([1]), terminate=True)
        assert coded.tolist() == [1, 1, 1, 0, 1, 1]

    def test_zero_input_gives_zero_output(self):
        code = ConvolutionalCode()
        assert not code.encode(np.zeros(8, dtype=np.int64)).any()

    def test_linear_over_xor(self, rng):
        code = ConvolutionalCode()
        a = rng.integers(0, 2, 30)
        b = rng.integers(0, 2, 30)
        combined = code.encode(a ^ b)
        assert np.array_equal(
            combined, code.encode(a) ^ code.encode(b)
        )

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint=1)
        with pytest.raises(ValueError):
            ConvolutionalCode(generators=(0o7,))
        with pytest.raises(ValueError):
            ConvolutionalCode(generators=(0o7, 0o777))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionalCode().encode(np.array([2]))

    def test_transitions_consistent_with_encode(self):
        code = ConvolutionalCode()
        next_state, outputs = code.transitions()
        # Walk the tables for a known input and compare to encode().
        bits = np.array([1, 0, 1, 1, 0], dtype=np.int64)
        state = 0
        via_tables = []
        for b in np.concatenate([bits, [0, 0]]):
            via_tables.extend(outputs[state, b].tolist())
            state = next_state[state, b]
        assert via_tables == code.encode(bits).tolist()
        assert state == 0  # terminated


class TestSovaDecoder:
    def test_clean_roundtrip(self, rng):
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        bits = rng.integers(0, 2, 60)
        result = decoder.decode_hard(code.encode(bits))
        assert np.array_equal(result.bits, bits)

    def test_corrects_isolated_errors(self, rng):
        """Free distance 5: any two isolated channel errors correct."""
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        bits = rng.integers(0, 2, 60)
        coded = code.encode(bits)
        coded[10] ^= 1
        coded[60] ^= 1
        result = decoder.decode_hard(coded)
        assert np.array_equal(result.bits, bits)

    def test_hints_lower_near_errors(self, rng):
        """SOVA reliability drops around channel errors: the mean hint
        (lower = confident) near the corrupted region must exceed the
        mean hint far from it."""
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        bits = rng.integers(0, 2, 200)
        coded = code.encode(bits)
        # Burst of errors in coded bits 100..120 (data region ~50..60).
        coded[100:120] ^= 1
        result = decoder.decode_hard(coded)
        near = result.hints[45:65].mean()
        far = result.hints[120:180].mean()
        assert near > far

    def test_soft_inputs_beat_hard_inputs(self, rng):
        """Soft-decision Viterbi outperforms hard-sliced input at the
        same noise level (the classic SDD gain, paper §3.1)."""
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        errors_soft = 0
        errors_hard = 0
        for _trial in range(20):
            bits = rng.integers(0, 2, 100)
            coded = code.encode(bits)
            clean = 1.0 - 2.0 * coded.astype(float)
            noisy = clean + rng.normal(0, 1.0, clean.size)
            soft = decoder.decode(noisy)
            hard = decoder.decode_hard((noisy < 0).astype(np.int64))
            errors_soft += int((soft.bits != bits).sum())
            errors_hard += int((hard.bits != bits).sum())
        assert errors_soft < errors_hard

    def test_hint_threshold_separates_errors(self, rng):
        """Used as SoftPHY hints, SOVA outputs separate correct from
        incorrect decoded bits on a noisy channel."""
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        all_hints = []
        all_correct = []
        for _trial in range(10):
            bits = rng.integers(0, 2, 150)
            coded = code.encode(bits)
            clean = 1.0 - 2.0 * coded.astype(float)
            noisy = clean + rng.normal(0, 1.1, clean.size)
            result = decoder.decode(noisy)
            all_hints.append(result.hints)
            all_correct.append(result.bits == bits)
        hints = np.concatenate(all_hints)
        correct = np.concatenate(all_correct)
        if (~correct).any():
            assert hints[~correct].mean() > hints[correct].mean()

    def test_invalid_inputs(self):
        decoder = SovaDecoder()
        with pytest.raises(ValueError, match="multiple"):
            decoder.decode(np.zeros(5))
        with pytest.raises(ValueError, match="too short"):
            decoder.decode(np.zeros(2))
        with pytest.raises(ValueError):
            SovaDecoder(update_window=0)

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_clean_roundtrip_property(self, bit_list):
        code = ConvolutionalCode()
        decoder = SovaDecoder(code)
        bits = np.array(bit_list, dtype=np.int64)
        result = decoder.decode_hard(code.encode(bits))
        assert np.array_equal(result.bits, bits)
        # Every clean decision is maximally confident (negative hint).
        assert np.all(result.hints < 0)
