"""Tests for the 802.15.4 codebook and nearest-codeword decoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.codebook import Codebook, RandomCodebook, ZigbeeCodebook
from repro.utils.bitops import popcount32


class TestZigbeeStructure:
    def test_geometry(self, codebook):
        assert codebook.n_symbols == 16
        assert codebook.chips_per_symbol == 32
        assert codebook.bits_per_symbol == 4

    def test_codewords_distinct(self, codebook):
        assert len(set(codebook.chip_words.tolist())) == 16

    def test_min_distance(self, codebook):
        # The 802.15.4 quasi-orthogonal set has pairwise distances
        # in [12, 20]; the despreading gain comes from this margin.
        d = codebook.pairwise_distances()
        off_diag = d[~np.eye(16, dtype=bool)]
        assert off_diag.min() == 12
        assert off_diag.max() == 20
        assert codebook.min_distance() == 12

    def test_symbols_1_to_7_are_rotations(self, codebook):
        chips = codebook.chip_matrix
        for k in range(1, 8):
            assert np.array_equal(chips[k], np.roll(chips[0], 4 * k))

    def test_symbols_8_to_15_invert_odd_chips(self, codebook):
        chips = codebook.chip_matrix
        odd = np.zeros(32, dtype=np.uint8)
        odd[1::2] = 1
        for k in range(8):
            assert np.array_equal(chips[8 + k], chips[k] ^ odd)

    def test_distance_matrix_symmetric_zero_diagonal(self, codebook):
        d = codebook.pairwise_distances()
        assert np.array_equal(d, d.T)
        assert np.all(np.diag(d) == 0)


class TestEncodeDecode:
    def test_encode_shape(self, codebook):
        chips = codebook.encode(np.array([0, 1, 2]))
        assert chips.shape == (96,)

    def test_encode_rejects_out_of_range(self, codebook):
        with pytest.raises(ValueError):
            codebook.encode(np.array([16]))
        with pytest.raises(ValueError):
            codebook.encode_words(np.array([-1]))

    def test_clean_roundtrip(self, codebook, rng):
        symbols = rng.integers(0, 16, 500)
        decoded, dist = codebook.decode_hard(codebook.encode_words(symbols))
        assert np.array_equal(decoded, symbols)
        assert np.all(dist == 0)

    def test_hint_equals_flip_count_when_decode_correct(self, codebook, rng):
        """Up to 5 flips (< d_min/2) the decode is exact and the hint
        is exactly the number of flipped chips."""
        symbols = rng.integers(0, 16, 200)
        words = codebook.encode_words(symbols)
        for n_flips in (1, 3, 5):
            masks = np.zeros(words.size, dtype=np.uint32)
            for i in range(words.size):
                positions = rng.choice(32, size=n_flips, replace=False)
                mask = 0
                for p in positions:
                    mask |= 1 << int(p)
                masks[i] = mask
            decoded, dist = codebook.decode_hard(words ^ masks)
            assert np.array_equal(decoded, symbols)
            assert np.all(dist == n_flips)

    def test_beyond_half_min_distance_may_err_but_hint_is_true_distance(
        self, codebook, rng
    ):
        symbols = rng.integers(0, 16, 100)
        words = codebook.encode_words(symbols)
        flips = rng.integers(0, 2**32, 100, dtype=np.uint64).astype(np.uint32)
        received = words ^ flips
        decoded, dist = codebook.decode_hard(received)
        chosen = codebook.encode_words(decoded)
        assert np.array_equal(dist, popcount32(received ^ chosen))
        # The decoded word is never farther than the transmitted one.
        assert np.all(dist <= popcount32(received ^ words))

    def test_tie_break_deterministic(self, codebook):
        received = np.array([0x12345678, 0x12345678], dtype=np.uint32)
        d1 = codebook.decode_hard(received)
        d2 = codebook.decode_hard(received)
        assert np.array_equal(d1[0], d2[0])

    def test_decode_soft_matches_hard_on_clean_signs(self, codebook, rng):
        symbols = rng.integers(0, 16, 100)
        chips = codebook.encode(symbols).reshape(-1, 32)
        samples = chips.astype(np.float64) * 2 - 1
        decoded, corr = codebook.decode_soft(samples)
        assert np.array_equal(decoded, symbols)
        assert np.all(corr == 32.0)

    def test_decode_soft_shape_check(self, codebook):
        with pytest.raises(ValueError):
            codebook.decode_soft(np.zeros((4, 16)))

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_words_to_chips_roundtrip(self, symbol_list):
        cb = ZigbeeCodebook()
        symbols = np.array(symbol_list)
        words = cb.encode_words(symbols)
        chips = cb.words_to_chips(words)
        assert np.array_equal(
            chips.reshape(-1), cb.encode(symbols)
        )


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            Codebook(np.zeros((3, 32), dtype=np.uint8))

    def test_rejects_duplicate_codewords(self):
        chips = np.zeros((2, 32), dtype=np.uint8)
        with pytest.raises(ValueError, match="distinct"):
            Codebook(chips)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError, match="32"):
            Codebook(np.eye(16, 16, dtype=np.uint8))

    def test_random_codebook_min_distance(self):
        cb = RandomCodebook(n_symbols=16, rng=3, min_distance=8)
        assert cb.min_distance() >= 8

    def test_random_codebook_deterministic(self):
        a = RandomCodebook(rng=5).chip_words
        b = RandomCodebook(rng=5).chip_words
        assert np.array_equal(a, b)

    def test_random_codebook_impossible_distance(self):
        with pytest.raises(RuntimeError, match="could not generate"):
            RandomCodebook(n_symbols=16, rng=0, min_distance=17, max_tries=5)
