"""Tests for the PPR frame layout (paper Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.link.frame import (
    HEADER_BYTES,
    SYMBOLS_PER_BYTE,
    TRAILER_BYTES,
    FrameHeader,
    PprFrame,
    body_symbol_count,
    parse_body_symbols,
    parse_header_bytes,
    parse_trailer_bytes,
)
from repro.phy.sync import EFD_SYMBOLS, SFD_SYMBOLS


class TestFrameHeader:
    def test_pack_length(self):
        header = FrameHeader(length=100, src=1, dst=2, seq=3)
        assert len(header.pack()) == HEADER_BYTES

    def test_pack_parse_roundtrip(self):
        header = FrameHeader(length=1500, src=12, dst=26, seq=999)
        parsed, ok = parse_header_bytes(header.pack())
        assert ok
        assert parsed == header

    def test_crc_detects_corruption(self):
        data = bytearray(FrameHeader(10, 1, 2, 3).pack())
        data[0] ^= 0x01
        _, ok = parse_header_bytes(bytes(data))
        assert not ok

    def test_parse_never_raises_on_garbage(self, rng):
        for _ in range(20):
            junk = bytes(rng.integers(0, 256, HEADER_BYTES, dtype=np.uint8))
            parsed, ok = parse_header_bytes(junk)
            assert isinstance(ok, bool)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="exactly"):
            parse_header_bytes(b"short")

    def test_field_range_validated(self):
        with pytest.raises(ValueError, match="16 bits"):
            FrameHeader(length=0x10000, src=0, dst=0, seq=0)

    def test_trailer_same_layout(self):
        header = FrameHeader(5, 6, 7, 8)
        parsed, ok = parse_trailer_bytes(header.pack())
        assert ok and parsed == header


class TestPprFrame:
    def _frame(self, payload=b"hello world!"):
        return PprFrame.build(src=3, dst=24, seq=17, wire_payload=payload)

    def test_body_symbol_count(self):
        frame = self._frame()
        expected = body_symbol_count(len(frame.wire_payload))
        assert frame.body_symbols().size == expected
        assert expected == SYMBOLS_PER_BYTE * (
            HEADER_BYTES + len(frame.wire_payload) + TRAILER_BYTES
        )

    def test_on_air_includes_sync_fields(self):
        frame = self._frame()
        air = frame.on_air_symbols()
        assert air.size == frame.n_air_symbols
        assert air[:8].tolist() == [0] * 8
        assert tuple(air[8:10]) == SFD_SYMBOLS
        assert tuple(air[-2:]) == EFD_SYMBOLS

    def test_header_trailer_replicated(self):
        frame = self._frame()
        body = frame.body_bytes()
        assert body[:HEADER_BYTES] == body[-TRAILER_BYTES:]

    def test_parse_body_roundtrip(self):
        frame = self._frame(b"some payload bytes")
        parsed = parse_body_symbols(frame.body_symbols())
        assert parsed.header_ok and parsed.trailer_ok
        assert parsed.header == frame.header
        assert parsed.wire_payload == b"some payload bytes"

    def test_parse_detects_corrupt_header_keeps_trailer(self):
        frame = self._frame()
        symbols = frame.body_symbols()
        symbols[0] = (symbols[0] + 1) % 16
        parsed = parse_body_symbols(symbols)
        assert not parsed.header_ok
        assert parsed.trailer_ok  # postamble path still viable

    def test_payload_symbol_range(self):
        frame = self._frame(b"abcd")
        start, end = frame.payload_symbol_range()
        assert start == SYMBOLS_PER_BYTE * HEADER_BYTES
        assert end - start == SYMBOLS_PER_BYTE * 4
        from repro.phy.spreading import symbols_to_bytes

        assert symbols_to_bytes(frame.body_symbols()[start:end]) == b"abcd"

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            PprFrame.build(0, 1, 0, b"x" * 70000)

    def test_too_small_body_rejected(self):
        with pytest.raises(ValueError):
            parse_body_symbols(np.zeros(10, dtype=np.int64))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            body_symbol_count(-1)

    @given(st.binary(max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, payload):
        frame = PprFrame.build(src=1, dst=2, seq=3, wire_payload=payload)
        parsed = parse_body_symbols(frame.body_symbols())
        assert parsed.header_ok and parsed.trailer_ok
        assert parsed.wire_payload == payload
        assert parsed.header.length == len(payload)
