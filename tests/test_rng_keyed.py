"""Tests for the counter-based (keyed) RNG helpers.

The chip channel's fused transit and the multiprocess trial runner
both assume that :func:`philox4x32` is a pure function of ``(key,
counter)`` and that :func:`derive_key` never aliases distinct id
tuples.  These tests pin the block function against the official
Random123 known-answer vectors, an independent scalar implementation,
and the batching/sharding invariances the simulation relies on.
"""

import numpy as np
import pytest

from repro.utils import sanitize
from repro.utils.rng import derive_key, keyed_rng, keyed_uniforms, philox4x32

# Known-answer vectors from Random123's kat_vectors for philox4x32-10:
# (counter, key, expected output words).
_KAT = [
    (
        (0, 0, 0, 0),
        (0, 0),
        (0x6627E8D5, 0xE169C58D, 0xBC57AC4C, 0x9B00DBD8),
    ),
    (
        (0xFFFFFFFF,) * 4,
        (0xFFFFFFFF,) * 2,
        (0x408F276D, 0x41C83B0E, 0xA20BC7C6, 0x6D5451FD),
    ),
    (
        (0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344),
        (0xA4093822, 0x299F31D0),
        (0xD16CFE09, 0x94FDCCEB, 0x5001E420, 0x24126EA1),
    ),
]


def _scalar_philox(ctr, key, rounds=10):
    """Independent scalar Philox-4x32 (pure Python big ints)."""
    mask = 2**32
    c, k = list(ctr), list(key)
    for r in range(rounds):
        if r:
            k = [(k[0] + 0x9E3779B9) % mask, (k[1] + 0xBB67AE85) % mask]
        p0 = 0xD2511F53 * c[0]
        p1 = 0xCD9E8D57 * c[2]
        c = [
            (p1 >> 32) ^ c[1] ^ k[0],
            p1 % mask,
            (p0 >> 32) ^ c[3] ^ k[1],
            p0 % mask,
        ]
    return tuple(c)


class TestPhilox:
    @pytest.mark.parametrize("ctr,key,expected", _KAT)
    def test_known_answer_vectors(self, ctr, key, expected):
        out = philox4x32(
            np.array([ctr], dtype=np.uint32),
            np.array([key], dtype=np.uint32),
        )
        assert tuple(int(w) for w in out[0]) == expected

    def test_matches_scalar_reference(self, rng):
        ctrs = rng.integers(0, 2**32, (200, 4), dtype=np.uint32)
        keys = rng.integers(0, 2**32, (200, 2), dtype=np.uint32)
        out = philox4x32(ctrs, keys)
        for i in range(ctrs.shape[0]):
            assert tuple(int(w) for w in out[i]) == _scalar_philox(
                ctrs[i].tolist(), keys[i].tolist()
            )

    def test_batch_invariance(self, rng):
        """The same (key, counter) row yields the same words whether
        evaluated alone, in a batch, or in shuffled order — the
        property that makes fused/sharded execution bit-identical."""
        ctrs = rng.integers(0, 2**32, (64, 4), dtype=np.uint32)
        keys = rng.integers(0, 2**32, (64, 2), dtype=np.uint32)
        batched = philox4x32(ctrs, keys)
        one_at_a_time = np.vstack(
            [philox4x32(ctrs[i : i + 1], keys[i : i + 1]) for i in range(64)]
        )
        assert np.array_equal(batched, one_at_a_time)
        perm = rng.permutation(64)
        assert np.array_equal(philox4x32(ctrs[perm], keys[perm]), batched[perm])

    def test_broadcast_key(self, rng):
        ctrs = rng.integers(0, 2**32, (16, 4), dtype=np.uint32)
        key = np.array([3, 7], dtype=np.uint32)
        full = np.broadcast_to(key, (16, 2))
        assert np.array_equal(philox4x32(ctrs, key), philox4x32(ctrs, full))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="counters"):
            philox4x32(np.zeros((3, 3), np.uint32), np.zeros((3, 2), np.uint32))
        with pytest.raises(ValueError, match="keys"):
            philox4x32(np.zeros((3, 4), np.uint32), np.zeros((2, 2), np.uint32))

    def test_uniforms_in_unit_interval(self, rng):
        ctrs = rng.integers(0, 2**32, (4096, 4), dtype=np.uint32)
        u = keyed_uniforms(ctrs, np.array([1, 2], np.uint32))
        assert u.shape == (4096, 4)
        assert u.min() >= 0.0 and u.max() < 1.0
        assert abs(u.mean() - 0.5) < 0.02


class TestDeriveKey:
    def test_deterministic(self):
        # One call site, two draws: fine under REPRO_SANITIZE (only
        # distinct sites sharing a key are collisions).
        a, b = (derive_key(7, "chip-channel", 3, 24) for _ in range(2))
        assert a.dtype == np.uint64 and a.shape == (2,)
        assert np.array_equal(a, b)

    def test_disjoint_pair_keys_never_alias(self):
        """Every (tx_id, receiver) pair of a large grid — and the same
        pairs under a different seed or label — gets a distinct key."""
        seen = set()
        for seed in (0, 1):
            for tx_id in range(500):
                for receiver in (23, 24, 25, 26):
                    seen.add(
                        tuple(derive_key(seed, "chip-channel", tx_id, receiver))
                    )
        seen.add(tuple(derive_key(0, "other-label", 0, 23)))
        assert len(seen) == 2 * 500 * 4 + 1

    def test_id_boundaries_unambiguous(self):
        """(1, 23) must not collide with e.g. (12, 3) under any string
        concatenation scheme."""
        assert not np.array_equal(
            derive_key(0, "x", 1, 23), derive_key(0, "x", 12, 3)
        )


class TestKeyedRng:
    def test_deterministic_and_order_free(self):
        """A keyed stream yields the same draws no matter what other
        streams did in between — the anti-aliasing property the fused
        channel and the multiprocess runner need.  Rebuilding one
        stream at two sites is the test's point, so the REPRO_SANITIZE
        ledger is suspended."""
        with sanitize.suspended():
            a = keyed_rng(0, "chip-channel", 3, 24).random(64)
            interloper = keyed_rng(0, "chip-channel", 4, 24)
            interloper.random(1000)  # unrelated stream drains heavily
            b = keyed_rng(0, "chip-channel", 3, 24).random(64)
        assert np.array_equal(a, b)

    def test_split_draws_match_one_draw(self):
        """Drawing (n, 32) at once equals drawing row blocks in order
        — what lets the channel group pairs arbitrarily."""
        with sanitize.suspended():
            whole = keyed_rng(1, "x", 7).random((10, 32))
            gen = keyed_rng(1, "x", 7)
        parts = np.vstack([gen.random((4, 32)), gen.random((6, 32))])
        assert np.array_equal(whole, parts)

    def test_distinct_ids_distinct_streams(self):
        a = keyed_rng(0, "chip-channel", 0, 23).random(256)
        b = keyed_rng(0, "chip-channel", 0, 24).random(256)
        assert not np.array_equal(a, b)
        # Crude independence: empirical correlation near zero.
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.2

    def test_keyed_philox_streams_independent(self):
        """The spec-level check on the block function itself: matching
        counters under different keys agree no more than chance."""
        n = 1 << 12
        ctrs = np.zeros((n, 4), dtype=np.uint32)
        ctrs[:, 0] = np.arange(n, dtype=np.uint32)
        a = philox4x32(ctrs, np.array([5, 23], dtype=np.uint32))
        b = philox4x32(ctrs, np.array([5, 24], dtype=np.uint32))
        # 4n words, each matching with probability 2**-32.
        assert np.count_nonzero(a == b) == 0
        # Bitwise balance of the XOR stream (crude independence check).
        bits = np.unpackbits((a ^ b).view(np.uint8))
        assert abs(bits.mean() - 0.5) < 0.01
