"""Tests for the three SoftPHY decoder variants."""

import numpy as np
import pytest

from repro.phy.chipchannel import transmit_chipwords
from repro.phy.decoder import (
    HardDecisionDecoder,
    MatchedFilterHinter,
    SoftDecisionDecoder,
    decode_to_packet,
)
from repro.phy.symbols import SyncSource


class TestHardDecisionDecoder:
    def test_clean_decode(self, codebook, rng):
        decoder = HardDecisionDecoder(codebook)
        symbols = rng.integers(0, 16, 100)
        result = decoder.decode_words(codebook.encode_words(symbols))
        assert np.array_equal(result.symbols, symbols)
        assert np.all(result.hints == 0)

    def test_hints_rise_with_noise(self, codebook, rng):
        decoder = HardDecisionDecoder(codebook)
        symbols = rng.integers(0, 16, 500)
        words = codebook.encode_words(symbols)
        mean_hints = []
        for p in (0.01, 0.1, 0.3):
            received = transmit_chipwords(words, p, rng)
            mean_hints.append(decoder.decode_words(received).hints.mean())
        assert mean_hints[0] < mean_hints[1] < mean_hints[2]

    def test_decode_chips_matches_words(self, codebook, rng):
        decoder = HardDecisionDecoder(codebook)
        symbols = rng.integers(0, 16, 20)
        chips = codebook.encode(symbols)
        by_chips = decoder.decode_chips(chips)
        by_words = decoder.decode_words(codebook.encode_words(symbols))
        assert np.array_equal(by_chips.symbols, by_words.symbols)

    def test_decode_chips_rejects_partial_word(self, codebook):
        decoder = HardDecisionDecoder(codebook)
        with pytest.raises(ValueError, match="multiple"):
            decoder.decode_chips(np.zeros(33, dtype=np.uint8))


class TestSoftDecisionDecoder:
    def test_clean_decode(self, codebook, rng):
        decoder = SoftDecisionDecoder(codebook)
        symbols = rng.integers(0, 16, 100)
        samples = codebook.encode(symbols).reshape(-1, 32) * 2.0 - 1.0
        result = decoder.decode_samples(samples)
        assert np.array_equal(result.symbols, symbols)

    def test_hint_grows_with_noise(self, codebook, rng):
        decoder = SoftDecisionDecoder(codebook)
        symbols = rng.integers(0, 16, 300)
        clean = codebook.encode(symbols).reshape(-1, 32) * 2.0 - 1.0
        low = decoder.decode_samples(clean + rng.normal(0, 0.2, clean.shape))
        high = decoder.decode_samples(clean + rng.normal(0, 1.0, clean.shape))
        assert low.hints.mean() < high.hints.mean()

    def test_sdd_beats_hdd_in_gaussian_noise(self, codebook, rng):
        """The classic 2-3 dB soft-decision gain (paper §3.1 footnote)."""
        symbols = rng.integers(0, 16, 3000)
        clean = codebook.encode(symbols).reshape(-1, 32) * 2.0 - 1.0
        noisy = clean + rng.normal(0, 1.35, clean.shape)
        sdd = SoftDecisionDecoder(codebook).decode_samples(noisy)
        hard_chips = (noisy > 0).astype(np.uint8)
        hdd = HardDecisionDecoder(codebook).decode_chips(
            hard_chips.reshape(-1)
        )
        sdd_errors = (sdd.symbols != symbols).mean()
        hdd_errors = (hdd.symbols != symbols).mean()
        assert sdd_errors < hdd_errors

    def test_wrong_width_rejected(self, codebook):
        with pytest.raises(ValueError):
            SoftDecisionDecoder(codebook).decode_samples(np.zeros((2, 8)))

    def test_hint_range_matches_docstring(self, codebook, rng):
        """With ±1 samples the hint lands in [0, B/2]: 0 for a clean
        maximally-separated winner, B/2 for a dead tie."""
        decoder = SoftDecisionDecoder(codebook)
        symbols = rng.integers(0, 16, 50)
        clean = codebook.encode(symbols).reshape(-1, 32) * 2.0 - 1.0
        hints = decoder.decode_samples(clean).hints
        half_b = codebook.chips_per_symbol / 2.0
        assert np.all(hints >= 0.0)
        assert np.all(hints <= half_b + 1e-12)

    def test_top2_selection_matches_full_sort(self, codebook, rng):
        """The argpartition fast path must agree with a full argsort
        on which codeword wins and by what margin."""
        decoder = SoftDecisionDecoder(codebook)
        samples = rng.normal(0.0, 1.0, (500, 32))
        result = decoder.decode_samples(samples)
        corr = samples @ codebook.sign_matrix.T
        order = np.argsort(corr, axis=1)
        rows = np.arange(corr.shape[0])
        assert np.array_equal(result.symbols, order[:, -1])
        margin = corr[rows, order[:, -1]] - corr[rows, order[:, -2]]
        expected = (2.0 * codebook.chips_per_symbol - margin) / 4.0
        assert np.allclose(result.hints, expected, rtol=0, atol=1e-12)


class TestMatchedFilterHinter:
    def test_full_amplitude_zero_hint(self):
        hinter = MatchedFilterHinter(nominal_amplitude=1.0, group=4)
        hints = hinter.hints_from_samples(np.array([1.0, -1.0, 1.0, -1.0]))
        assert hints[0] == pytest.approx(0.0)

    def test_weak_signal_positive_hint(self):
        hinter = MatchedFilterHinter(nominal_amplitude=1.0, group=4)
        hints = hinter.hints_from_samples(np.full(4, 0.25))
        assert hints[0] == pytest.approx(0.75)

    def test_group_mismatch_rejected(self):
        hinter = MatchedFilterHinter(group=8)
        with pytest.raises(ValueError):
            hinter.hints_from_samples(np.zeros(12))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MatchedFilterHinter(nominal_amplitude=0.0)
        with pytest.raises(ValueError):
            MatchedFilterHinter(group=0)


class TestDecodeToPacket:
    def test_attaches_truth_and_sync(self, codebook, rng):
        decoder = HardDecisionDecoder(codebook)
        symbols = rng.integers(0, 16, 30)
        packet = decode_to_packet(
            decoder,
            codebook.encode_words(symbols),
            truth_symbols=symbols,
            sync_source=SyncSource.POSTAMBLE,
        )
        assert packet.sync_source is SyncSource.POSTAMBLE
        assert packet.correct_mask().all()
