"""Chaos tests: the sweep survives injected faults, bit for bit.

The acceptance gate for the supervised executor: a sweep run under
``REPRO_FAULTS`` — workers crashing, hanging, and flaking — produces
results byte-identical to a clean serial run, at every worker count;
a hung point is recovered within its timeout/retry budget; and an
interrupted or partially-failed sweep resumes from its store without
recomputing anything it already finished.

The fault schedule is a pure function of (config digest, attempt), so
every scenario here is deterministic: the same points crash, hang,
and flake every time, and the expected counters are exact.
"""

import pytest

import repro.experiments.common as common
from repro.exec import SweepExecutionError
from repro.experiments.common import RunCache
from repro.store import RunStore
from test_determinism_contract import _assert_results_identical

_DURATION_S = 2.0
_SEED = 5

#: transient chaos at rates high enough that this config set (see the
#: schedule below) exercises every recovery path
_CHAOS_FAULTS = "crash=0.2,hang=0.15,flaky=0.3"
#: tight budgets sized for ~0.1 s points: a hang costs 3 s, not 60
_CHAOS_EXEC = "timeout_base_s=3,timeout_scale=0,backoff_base_s=0.01"

# The deterministic fault schedule for these four configs under
# _CHAOS_FAULTS (attempts 1..; the schedule is keyed off the config
# content digest, so it reshuffles whenever SimulationConfig grows a
# field):
#   configs[0]: none                     -> clean first try
#   configs[1]: none                     -> clean first try
#   configs[2]: hang, flaky, hang, hang  -> supervised budget spent,
#                                           in-process rescue
#   configs[3]: flaky, crash, hang, none -> three retries, clean 4th
_EXPECTED_CHAOS_COUNTERS = {
    "completed": 4,
    "retries": 6,
    "timeouts": 4,
    "worker_deaths": 1,
    "rescued": 1,
    "degraded": 0,
    "failed": 0,
}


def _configs(cache):
    return [
        cache.config_for(load=load, seed=seed)
        for load in (3500.0, 13800.0)
        for seed in (5, 6)
    ]


@pytest.fixture(autouse=True)
def _clean_exec_env(monkeypatch):
    """Fault/exec knobs leak in from nothing but the test itself."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_EXEC", raising=False)


@pytest.fixture(scope="module")
def clean_runs():
    """The ground truth: the sweep run serially with no faults."""
    with pytest.MonkeyPatch.context() as mp:
        mp.delenv("REPRO_FAULTS", raising=False)
        mp.delenv("REPRO_EXEC", raising=False)
        cache = RunCache(duration_s=_DURATION_S, seed=_SEED)
        cache.prefetch(_configs(cache))
        assert not cache.exec_counters.anomalous
    return cache


class TestChaosDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_faulted_run_bit_identical_to_clean_serial(
        self, jobs, clean_runs, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", _CHAOS_FAULTS)
        monkeypatch.setenv("REPRO_EXEC", _CHAOS_EXEC)
        cache = RunCache(duration_s=_DURATION_S, seed=_SEED, jobs=jobs)
        configs = _configs(cache)
        cache.prefetch(configs)
        # The chaos actually happened — and identically at every
        # worker count, because the schedule is keyed by config.
        assert cache.exec_counters.as_dict() == _EXPECTED_CHAOS_COUNTERS
        for config in configs:
            _assert_results_identical(
                clean_runs.get(config), cache.get(config)
            )

    def test_hung_point_recovered_within_budget(
        self, clean_runs, monkeypatch
    ):
        """hang=1.0: every supervised attempt wedges; the point still
        completes — two timeout kills, then the in-process rescue."""
        monkeypatch.setenv("REPRO_FAULTS", "hang=1.0")
        monkeypatch.setenv(
            "REPRO_EXEC",
            "max_attempts=2,timeout_base_s=1,timeout_scale=0,"
            "backoff_base_s=0.01",
        )
        cache = RunCache(duration_s=_DURATION_S, seed=_SEED)
        config = _configs(cache)[0]
        result = cache.get(config)
        _assert_results_identical(clean_runs.get(config), result)
        counters = cache.exec_counters
        assert counters.timeouts == 2
        assert counters.retries == 1
        assert counters.rescued == 1
        assert counters.completed == 1


class TestWarmResume:
    def test_interrupted_sweep_resumes_without_recomputation(
        self, clean_runs, tmp_path, monkeypatch
    ):
        """A sweep killed partway resumes from the store: points the
        first run finished are loaded, never re-simulated."""
        first = RunCache(
            duration_s=_DURATION_S, seed=_SEED, store=RunStore(tmp_path)
        )
        configs = _configs(first)
        first.prefetch(configs[:2])  # ... then the run was killed

        simulated = []
        real = common._simulate_config

        def counting(config):
            simulated.append(config)
            return real(config)

        monkeypatch.setattr(common, "_simulate_config", counting)
        resumed = RunCache(
            duration_s=_DURATION_S, seed=_SEED, store=RunStore(tmp_path)
        )
        resumed.prefetch(configs)
        assert simulated == configs[2:]
        for config in configs:
            _assert_results_identical(
                clean_runs.get(config), resumed.get(config)
            )

    def test_completed_points_survive_a_poisoned_sibling(
        self, clean_runs, tmp_path, monkeypatch
    ):
        """Write-back is per point: a permanent failure loses only its
        own point, and a later clean run completes just the gap."""
        # fail=0.5 deterministically poisons exactly configs[2] (all
        # of its attempts and the rescue draw under 0.5) while the
        # other three points complete.
        monkeypatch.setenv("REPRO_FAULTS", "fail=0.5")
        monkeypatch.setenv(
            "REPRO_EXEC", "max_attempts=2,backoff_base_s=0.01"
        )
        store = RunStore(tmp_path)
        cache = RunCache(
            duration_s=_DURATION_S, seed=_SEED, store=store
        )
        configs = _configs(cache)
        with pytest.raises(SweepExecutionError) as excinfo:
            cache.prefetch(configs)
        assert len(excinfo.value.failures) == 1
        failure = excinfo.value.failures[0]
        assert failure.error_type == "InjectedFailure"
        assert failure.task.payload == configs[2]
        # Every completed point was written back before the sweep
        # raised.
        assert store.counters.writes == 3

        # The failure is negatively cached: asking again re-raises
        # immediately, without burning the retry budget.
        def boom(_config):
            raise AssertionError("re-simulated a known-bad point")

        monkeypatch.setattr(common, "_simulate_config", boom)
        with pytest.raises(SweepExecutionError):
            cache.prefetch(configs)

    def test_clean_rerun_fills_only_the_gap(
        self, clean_runs, tmp_path, monkeypatch
    ):
        """After a partially-failed faulted sweep, a clean rerun loads
        the survivors from the store and simulates only the casualty —
        and the merged sweep matches the clean ground truth bit for
        bit."""
        monkeypatch.setenv("REPRO_FAULTS", "fail=0.5")
        monkeypatch.setenv(
            "REPRO_EXEC", "max_attempts=2,backoff_base_s=0.01"
        )
        faulted = RunCache(
            duration_s=_DURATION_S, seed=_SEED, store=RunStore(tmp_path)
        )
        configs = _configs(faulted)
        with pytest.raises(SweepExecutionError):
            faulted.prefetch(configs)

        monkeypatch.delenv("REPRO_FAULTS")
        monkeypatch.delenv("REPRO_EXEC")
        store = RunStore(tmp_path)
        rerun = RunCache(
            duration_s=_DURATION_S, seed=_SEED, store=store
        )
        rerun.prefetch(configs)
        assert store.counters.hits == 3
        assert store.counters.misses == 1
        assert store.counters.writes == 1
        for config in configs:
            _assert_results_identical(
                clean_runs.get(config), rerun.get(config)
            )
