"""Tests for frame sync correlators and the rollback buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.sync import (
    EFD_SYMBOLS,
    POSTAMBLE_SYMBOLS,
    PREAMBLE_SYMBOLS,
    SFD_SYMBOLS,
    CorrelationSynchronizer,
    RollbackBuffer,
    sync_field_symbols,
)
from repro.utils.rng import ensure_rng


class TestSyncFields:
    def test_preamble_matches_802154(self):
        assert PREAMBLE_SYMBOLS == tuple([0] * 8)
        assert SFD_SYMBOLS == (7, 10)  # 0xA7 low nibble first

    def test_postamble_distinct_from_preamble(self):
        pre = sync_field_symbols("preamble")
        post = sync_field_symbols("postamble")
        assert not np.array_equal(pre, post)
        assert POSTAMBLE_SYMBOLS != PREAMBLE_SYMBOLS
        assert EFD_SYMBOLS != SFD_SYMBOLS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="preamble.*postamble"):
            sync_field_symbols("midamble")


class TestCorrelationSynchronizer:
    def _stream_with_sync(self, codebook, rng, kind, at_symbol=20):
        body = rng.integers(0, 16, 60)
        field = sync_field_symbols(kind)
        stream = np.concatenate(
            [body[:at_symbol], field, body[at_symbol:]]
        )
        return codebook.encode(stream), at_symbol * 32

    def test_detects_exact_offset(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble")
        chips, offset = self._stream_with_sync(codebook, rng, "preamble")
        assert sync.detect(chips) == [offset]

    def test_postamble_detector_ignores_preamble(self, codebook, rng):
        post_sync = CorrelationSynchronizer(
            codebook, "postamble", threshold=0.75
        )
        chips, _ = self._stream_with_sync(codebook, rng, "preamble")
        assert post_sync.detect(chips) == []

    def test_detects_despite_chip_errors(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble", threshold=0.7)
        chips, offset = self._stream_with_sync(codebook, rng, "preamble")
        corrupted = chips.copy()
        flip = rng.choice(chips.size, size=chips.size // 20, replace=False)
        corrupted[flip] ^= 1
        assert offset in sync.detect(corrupted)

    def test_no_detection_in_noise(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble", threshold=0.7)
        noise = rng.integers(0, 2, 4000).astype(np.uint8)
        assert sync.detect(noise) == []

    def test_correlate_peak_value_is_one_on_exact_match(self, codebook):
        sync = CorrelationSynchronizer(codebook, "preamble")
        pattern_chips = codebook.encode(sync_field_symbols("preamble"))
        corr = sync.correlate(pattern_chips)
        assert corr[0] == pytest.approx(1.0)

    def test_correlate_short_input(self, codebook):
        sync = CorrelationSynchronizer(codebook, "preamble")
        assert sync.correlate(np.zeros(4, dtype=np.uint8)).size == 0

    def test_multiple_detections(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble")
        field = codebook.encode(sync_field_symbols("preamble"))
        gap = codebook.encode(rng.integers(0, 16, 40))
        stream = np.concatenate([field, gap, field])
        detections = sync.detect(stream)
        assert detections == [0, field.size + gap.size]

    def test_invalid_threshold_rejected(self, codebook):
        with pytest.raises(ValueError):
            CorrelationSynchronizer(codebook, "preamble", threshold=0.0)

    def test_pattern_chips_length(self, codebook):
        sync = CorrelationSynchronizer(codebook, "preamble")
        assert sync.pattern_chips == 10 * 32

    def test_soft_chips_in_unit_interval_not_remapped(self, codebook):
        """Regression: genuine soft chips that happen to land in [0, 1]
        must not be silently remapped to ±1 (the old value-range
        heuristic did).  Floating dtype means soft."""
        sync = CorrelationSynchronizer(codebook, "preamble")
        pattern = codebook.encode(sync_field_symbols("preamble"))
        # Attenuated soft outputs: 0/1 chips mapped into [0.1, 0.9].
        soft = pattern.astype(np.float64) * 0.8 + 0.1
        corr = sync.correlate(soft)
        remapped = sync.correlate(pattern.astype(np.float64), hard=True)
        assert not np.array_equal(corr, remapped)
        # Explicit override: treating the same values as hard chips
        # reproduces the ±1 mapping exactly.
        assert np.array_equal(
            sync.correlate(pattern, hard=True), remapped
        )

    def test_hard_flag_validates_binary(self, codebook):
        sync = CorrelationSynchronizer(codebook, "preamble")
        with pytest.raises(ValueError, match="0/1"):
            sync.correlate(np.full(400, 0.5), hard=True)

    def test_hard_inferred_from_integer_dtype(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble")
        chips = codebook.encode(sync_field_symbols("preamble"))
        inferred = sync.correlate(chips)
        explicit = sync.correlate(chips, hard=True)
        assert np.array_equal(inferred, explicit)
        assert inferred[0] == pytest.approx(1.0)

    def test_detect_matches_reference_walk(self, codebook, rng):
        """The np.split non-maximum suppression must group and peak
        exactly like the original per-index walk."""
        sync = CorrelationSynchronizer(codebook, "preamble", threshold=0.7)
        field = codebook.encode(sync_field_symbols("preamble"))
        for _trial in range(5):
            pieces = [field]
            for _ in range(int(rng.integers(1, 4))):
                pieces.append(codebook.encode(rng.integers(0, 16, 30)))
                pieces.append(field)
            chips = np.concatenate(pieces)
            flip = rng.choice(
                chips.size, size=chips.size // 30, replace=False
            )
            chips = chips.copy()
            chips[flip] ^= 1
            corr = sync.correlate(chips)
            assert sync.detect(chips) == _reference_nms(
                corr, sync.threshold, sync.pattern_chips
            )


def _reference_nms(corr, threshold, min_gap):
    """The original per-index NMS walk, kept as the test's spec."""
    above = np.flatnonzero(corr >= threshold)
    if above.size == 0:
        return []
    detections = []
    group_start = above[0]
    prev = above[0]
    for idx in above[1:]:
        if idx - prev > min_gap:
            segment = corr[group_start : prev + 1]
            detections.append(int(group_start + segment.argmax()))
            group_start = idx
        prev = idx
    segment = corr[group_start : prev + 1]
    detections.append(int(group_start + segment.argmax()))
    return detections


class TestRollbackBuffer:
    def test_basic_append_and_get(self):
        buf = RollbackBuffer(capacity=10)
        buf.append(np.arange(5, dtype=complex))
        assert buf.get_last(3) == pytest.approx([2, 3, 4])

    def test_wraparound(self):
        buf = RollbackBuffer(capacity=8)
        buf.append(np.arange(6, dtype=complex))
        buf.append(np.arange(6, 12, dtype=complex))
        assert buf.get_last(8) == pytest.approx(np.arange(4, 12))

    def test_absolute_indexing(self):
        buf = RollbackBuffer(capacity=16)
        buf.append(np.arange(10, dtype=complex))
        assert buf.get_range(3, 4) == pytest.approx([3, 4, 5, 6])

    def test_evicted_range_rejected(self):
        buf = RollbackBuffer(capacity=4)
        buf.append(np.arange(10, dtype=complex))
        with pytest.raises(ValueError, match="evicted"):
            buf.get_range(0, 2)

    def test_future_range_rejected(self):
        buf = RollbackBuffer(capacity=4)
        buf.append(np.arange(2, dtype=complex))
        with pytest.raises(ValueError, match="not yet written"):
            buf.get_range(0, 5)

    def test_oversized_append_keeps_tail(self):
        buf = RollbackBuffer(capacity=4)
        buf.append(np.arange(10, dtype=complex))
        assert buf.get_last(4) == pytest.approx([6, 7, 8, 9])
        assert buf.total_written == 10
        assert buf.oldest_available == 6

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RollbackBuffer(capacity=0)

    def test_get_range_spanning_wrap_point(self):
        """A range crossing the circular wrap point is served as two
        contiguous slices; values must match the ground-truth stream."""
        buf = RollbackBuffer(capacity=8)
        buf.append(np.arange(13, dtype=complex))
        # Samples 5..12 live in the buffer; 6..11 wraps (pos 6, 7, 0..3).
        assert buf.get_range(6, 6) == pytest.approx(np.arange(6, 12))
        assert buf.get_range(5, 8) == pytest.approx(np.arange(5, 13))
        assert buf.get_range(8, 2) == pytest.approx([8, 9])
        assert buf.get_range(7, 0).size == 0

    @given(
        st.lists(
            st.integers(min_value=1, max_value=20),
            min_size=1,
            max_size=15,
        ),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_get_range_matches_reference_stream(self, chunk_sizes, seed):
        """Every retrievable (start, count) window equals the same
        window of the ground-truth concatenated stream."""
        capacity = 16
        buf = RollbackBuffer(capacity=capacity)
        stream = np.zeros(0, dtype=complex)
        value = 0
        for size in chunk_sizes:
            chunk = np.arange(value, value + size, dtype=complex)
            value += size
            buf.append(chunk)
            stream = np.concatenate([stream, chunk])
        rng = ensure_rng(seed)
        oldest = buf.oldest_available
        for _ in range(10):
            start = int(rng.integers(oldest, buf.total_written + 1))
            count = int(rng.integers(0, buf.total_written - start + 1))
            assert buf.get_range(start, count) == pytest.approx(
                stream[start : start + count]
            )

    @given(
        st.lists(
            st.integers(min_value=1, max_value=20),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_stream(self, chunk_sizes):
        """Whatever the append pattern, retained samples match the
        ground-truth concatenated stream."""
        capacity = 32
        buf = RollbackBuffer(capacity=capacity)
        stream = np.zeros(0, dtype=complex)
        value = 0
        for size in chunk_sizes:
            chunk = np.arange(value, value + size, dtype=complex)
            value += size
            buf.append(chunk)
            stream = np.concatenate([stream, chunk])
        available = min(capacity, stream.size)
        assert buf.get_last(available) == pytest.approx(
            stream[-available:]
        )
