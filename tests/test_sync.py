"""Tests for frame sync correlators and the rollback buffer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.sync import (
    EFD_SYMBOLS,
    POSTAMBLE_SYMBOLS,
    PREAMBLE_SYMBOLS,
    SFD_SYMBOLS,
    CorrelationSynchronizer,
    RollbackBuffer,
    sync_field_symbols,
)


class TestSyncFields:
    def test_preamble_matches_802154(self):
        assert PREAMBLE_SYMBOLS == tuple([0] * 8)
        assert SFD_SYMBOLS == (7, 10)  # 0xA7 low nibble first

    def test_postamble_distinct_from_preamble(self):
        pre = sync_field_symbols("preamble")
        post = sync_field_symbols("postamble")
        assert not np.array_equal(pre, post)
        assert POSTAMBLE_SYMBOLS != PREAMBLE_SYMBOLS
        assert EFD_SYMBOLS != SFD_SYMBOLS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="preamble.*postamble"):
            sync_field_symbols("midamble")


class TestCorrelationSynchronizer:
    def _stream_with_sync(self, codebook, rng, kind, at_symbol=20):
        body = rng.integers(0, 16, 60)
        field = sync_field_symbols(kind)
        stream = np.concatenate(
            [body[:at_symbol], field, body[at_symbol:]]
        )
        return codebook.encode(stream), at_symbol * 32

    def test_detects_exact_offset(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble")
        chips, offset = self._stream_with_sync(codebook, rng, "preamble")
        assert sync.detect(chips) == [offset]

    def test_postamble_detector_ignores_preamble(self, codebook, rng):
        post_sync = CorrelationSynchronizer(
            codebook, "postamble", threshold=0.75
        )
        chips, _ = self._stream_with_sync(codebook, rng, "preamble")
        assert post_sync.detect(chips) == []

    def test_detects_despite_chip_errors(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble", threshold=0.7)
        chips, offset = self._stream_with_sync(codebook, rng, "preamble")
        corrupted = chips.copy()
        flip = rng.choice(chips.size, size=chips.size // 20, replace=False)
        corrupted[flip] ^= 1
        assert offset in sync.detect(corrupted)

    def test_no_detection_in_noise(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble", threshold=0.7)
        noise = rng.integers(0, 2, 4000).astype(np.uint8)
        assert sync.detect(noise) == []

    def test_correlate_peak_value_is_one_on_exact_match(self, codebook):
        sync = CorrelationSynchronizer(codebook, "preamble")
        pattern_chips = codebook.encode(sync_field_symbols("preamble"))
        corr = sync.correlate(pattern_chips)
        assert corr[0] == pytest.approx(1.0)

    def test_correlate_short_input(self, codebook):
        sync = CorrelationSynchronizer(codebook, "preamble")
        assert sync.correlate(np.zeros(4, dtype=np.uint8)).size == 0

    def test_multiple_detections(self, codebook, rng):
        sync = CorrelationSynchronizer(codebook, "preamble")
        field = codebook.encode(sync_field_symbols("preamble"))
        gap = codebook.encode(rng.integers(0, 16, 40))
        stream = np.concatenate([field, gap, field])
        detections = sync.detect(stream)
        assert detections == [0, field.size + gap.size]

    def test_invalid_threshold_rejected(self, codebook):
        with pytest.raises(ValueError):
            CorrelationSynchronizer(codebook, "preamble", threshold=0.0)

    def test_pattern_chips_length(self, codebook):
        sync = CorrelationSynchronizer(codebook, "preamble")
        assert sync.pattern_chips == 10 * 32


class TestRollbackBuffer:
    def test_basic_append_and_get(self):
        buf = RollbackBuffer(capacity=10)
        buf.append(np.arange(5, dtype=complex))
        assert buf.get_last(3) == pytest.approx([2, 3, 4])

    def test_wraparound(self):
        buf = RollbackBuffer(capacity=8)
        buf.append(np.arange(6, dtype=complex))
        buf.append(np.arange(6, 12, dtype=complex))
        assert buf.get_last(8) == pytest.approx(np.arange(4, 12))

    def test_absolute_indexing(self):
        buf = RollbackBuffer(capacity=16)
        buf.append(np.arange(10, dtype=complex))
        assert buf.get_range(3, 4) == pytest.approx([3, 4, 5, 6])

    def test_evicted_range_rejected(self):
        buf = RollbackBuffer(capacity=4)
        buf.append(np.arange(10, dtype=complex))
        with pytest.raises(ValueError, match="evicted"):
            buf.get_range(0, 2)

    def test_future_range_rejected(self):
        buf = RollbackBuffer(capacity=4)
        buf.append(np.arange(2, dtype=complex))
        with pytest.raises(ValueError, match="not yet written"):
            buf.get_range(0, 5)

    def test_oversized_append_keeps_tail(self):
        buf = RollbackBuffer(capacity=4)
        buf.append(np.arange(10, dtype=complex))
        assert buf.get_last(4) == pytest.approx([6, 7, 8, 9])
        assert buf.total_written == 10
        assert buf.oldest_available == 6

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RollbackBuffer(capacity=0)

    @given(
        st.lists(
            st.integers(min_value=1, max_value=20),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_stream(self, chunk_sizes):
        """Whatever the append pattern, retained samples match the
        ground-truth concatenated stream."""
        capacity = 32
        buf = RollbackBuffer(capacity=capacity)
        stream = np.zeros(0, dtype=complex)
        value = 0
        for size in chunk_sizes:
            chunk = np.arange(value, value + size, dtype=complex)
            value += size
            buf.append(chunk)
            stream = np.concatenate([stream, chunk])
        available = min(capacity, stream.size)
        assert buf.get_last(available) == pytest.approx(
            stream[-available:]
        )
