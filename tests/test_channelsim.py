"""Tests for the complex-baseband channel simulator."""

import numpy as np
import pytest

from repro.phy.channelsim import (
    TransmissionInstance,
    add_awgn,
    awgn_collision_channel,
    fractional_delay,
    mix_transmissions,
)


class TestMixTransmissions:
    def test_single_at_offset(self):
        wave = np.ones(4, dtype=complex)
        out = mix_transmissions(
            [TransmissionInstance(samples=wave, offset=3)]
        )
        assert out.size == 7
        assert out[:3] == pytest.approx(np.zeros(3))
        assert out[3:] == pytest.approx(wave)

    def test_superposition_adds(self):
        wave = np.ones(4, dtype=complex)
        out = mix_transmissions(
            [
                TransmissionInstance(samples=wave, offset=0),
                TransmissionInstance(samples=wave, offset=2),
            ]
        )
        assert out.tolist() == [1, 1, 2, 2, 1, 1]

    def test_gain_applied(self):
        wave = np.ones(2, dtype=complex)
        out = mix_transmissions(
            [TransmissionInstance(samples=wave, offset=0, gain=0.5)]
        )
        assert out == pytest.approx(0.5 * wave)

    def test_window_truncates(self):
        wave = np.ones(10, dtype=complex)
        out = mix_transmissions(
            [TransmissionInstance(samples=wave, offset=5)], window_len=8
        )
        assert out.size == 8
        assert out[5:] == pytest.approx(np.ones(3))

    def test_phase_rotation(self):
        wave = np.ones(4, dtype=complex)
        out = mix_transmissions(
            [
                TransmissionInstance(
                    samples=wave, offset=0, phase=np.pi / 2
                )
            ]
        )
        assert out == pytest.approx(1j * wave)

    def test_cfo_rotates_progressively(self):
        wave = np.ones(8, dtype=complex)
        out = mix_transmissions(
            [TransmissionInstance(samples=wave, offset=0, cfo=0.25)]
        )
        # 0.25 cycles/sample: sample 2 rotated by pi.
        assert out[2] == pytest.approx(-1.0)

    def test_empty_without_window_rejected(self):
        with pytest.raises(ValueError):
            mix_transmissions([])

    def test_invalid_instances_rejected(self):
        with pytest.raises(ValueError):
            TransmissionInstance(samples=np.ones(1), offset=-1)
        with pytest.raises(ValueError):
            TransmissionInstance(samples=np.ones(1), offset=0, gain=0.0)


class TestAwgn:
    def test_zero_noise_identity(self, rng):
        wave = rng.normal(size=50) + 1j * rng.normal(size=50)
        assert add_awgn(wave, 0.0, rng) == pytest.approx(wave)

    def test_noise_power_empirical(self, rng):
        wave = np.zeros(200_000, dtype=complex)
        noisy = add_awgn(wave, 0.5, rng)
        measured = np.mean(np.abs(noisy) ** 2)
        assert measured == pytest.approx(0.5, rel=0.02)

    def test_negative_power_rejected(self, rng):
        with pytest.raises(ValueError):
            add_awgn(np.zeros(1, dtype=complex), -0.1, rng)

    def test_deterministic_under_seed(self):
        wave = np.zeros(10, dtype=complex)
        assert add_awgn(wave, 1.0, 3) == pytest.approx(add_awgn(wave, 1.0, 3))

    def test_collision_channel_combines(self, rng):
        wave = np.ones(4, dtype=complex)
        out = awgn_collision_channel(
            [TransmissionInstance(samples=wave, offset=0)],
            noise_power=0.0,
            rng=rng,
        )
        assert out == pytest.approx(wave)


class TestFractionalDelay:
    def test_integer_delay_shifts(self):
        wave = np.array([1.0, 2.0, 3.0], dtype=complex)
        out = fractional_delay(wave, 2.0)
        assert out[:2] == pytest.approx(np.zeros(2))
        assert out[2:5] == pytest.approx(wave)

    def test_half_sample_interpolates(self):
        wave = np.array([0.0, 1.0, 0.0], dtype=complex)
        out = fractional_delay(wave, 0.5)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(0.5)

    def test_energy_roughly_preserved_for_smooth_signal(self, rng):
        # Linear interpolation preserves energy only for signals smooth
        # at the sample scale (oversampled waveforms), not white noise.
        from repro.phy.modulation import MskModulator

        wave = MskModulator(sps=8).modulate_chips(rng.integers(0, 2, 50))
        out = fractional_delay(wave, 3.25)
        assert np.sum(np.abs(out) ** 2) == pytest.approx(
            np.sum(np.abs(wave) ** 2), rel=0.05
        )

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            fractional_delay(np.zeros(1, dtype=complex), -1.0)
