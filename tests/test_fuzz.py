"""Fuzz/robustness tests: corrupt inputs must fail loudly or parse
gracefully — never crash unpredictably or return garbage silently.

A receiver's parsers face adversarial bytes every time a collision
mangles a frame, so "never crashes on arbitrary symbol corruption" is a
real protocol property, not test theatre.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arq.feedback import decode_feedback, decode_retransmission
from repro.link.frame import PprFrame, parse_body_symbols
from repro.link.schemes import PprScheme, ReceivedPayload
from repro.utils.bitops import BitReader
from repro.utils.rng import ensure_rng


class TestFrameParsingFuzz:
    @given(
        st.binary(min_size=1, max_size=100),
        st.lists(
            st.tuples(st.integers(0, 300), st.integers(0, 15)),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_corrupted_body_never_crashes(self, payload, corruptions):
        """Arbitrary symbol corruption of a valid frame body parses
        without exceptions; CRC flags must reflect tampering of the
        covered fields."""
        frame = PprFrame.build(src=1, dst=2, seq=3, wire_payload=payload)
        symbols = frame.body_symbols()
        for pos, value in corruptions:
            symbols[pos % symbols.size] = value
        parsed = parse_body_symbols(symbols)
        assert isinstance(parsed.header_ok, bool)
        assert isinstance(parsed.trailer_ok, bool)
        if parsed.header_ok and parsed.trailer_ok:
            # Both CRC-16s passing after corruption is possible but
            # the parsed lengths must at least be structurally sane.
            assert parsed.header.length >= 0

    @given(st.lists(st.integers(0, 15), min_size=40, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_random_symbols_parse_or_reject(self, symbol_list):
        symbols = np.array(symbol_list, dtype=np.int64)
        if symbols.size % 2:
            symbols = symbols[:-1]
        parsed = parse_body_symbols(symbols)
        # Random bytes pass a CRC-16 with probability 2^-16 per field;
        # whatever the flags, parsing must terminate with a result.
        assert parsed.wire_payload is not None


class TestFeedbackDecodingFuzz:
    @given(st.binary(min_size=0, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bytes_never_crash_decoder(self, data):
        """Truncated or garbage feedback raises a clean error or
        decodes into a structurally valid packet."""
        try:
            packet = decode_feedback(data)
        except (EOFError, ValueError):
            return
        assert packet.n_symbols >= 0
        for start, end in packet.segments:
            assert end >= start

    @given(st.binary(min_size=0, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_bytes_never_crash_retransmission_decoder(
        self, data
    ):
        try:
            packet = decode_retransmission(data)
        except (EOFError, ValueError):
            return
        assert packet.n_data_symbols >= 0

    def test_truncated_reader_raises_eof(self):
        reader = BitReader(b"\xff")
        reader.read_uint(6)
        with pytest.raises(EOFError):
            reader.read_uint(6)


class TestSchemeFuzz:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(8, 60),
    )
    @settings(max_examples=30, deadline=None)
    def test_ppr_delivery_invariants(self, seed, n_bytes):
        """For any channel outcome: delivered ⊆ payload, accounting
        adds up, and zero hints imply full delivery of correct bits."""
        rng = ensure_rng(seed)
        scheme = PprScheme(eta=6.0)
        payload = bytes(rng.integers(0, 256, n_bytes, dtype=np.uint8))
        wire = scheme.encode_payload(payload)
        from repro.phy.spreading import bytes_to_symbols

        truth = bytes_to_symbols(wire)
        symbols = truth.copy()
        hints = np.zeros(truth.size)
        n_corrupt = int(rng.integers(0, truth.size // 2))
        if n_corrupt:
            idx = rng.choice(truth.size, n_corrupt, replace=False)
            symbols[idx] = (symbols[idx] + rng.integers(1, 16)) % 16
            hints[idx] = rng.uniform(0, 20, n_corrupt)
        rx = ReceivedPayload(symbols=symbols, hints=hints, truth=truth)
        result = scheme.deliver(rx)
        assert 0 <= result.delivered_bits <= result.payload_bits
        assert result.delivered_correct_bits >= 0
        assert result.delivered_incorrect_bits >= 0
        if n_corrupt == 0:
            assert result.frame_passed
            assert result.delivered_correct_bits == result.payload_bits
