"""The determinism contract of the sharded, batched simulation.

One config must produce bit-identical :class:`SimulationResult`s no
matter *how* the work is executed: any ``jobs`` worker count,
``batch_decode`` on or off, prefetched or lazily simulated.  The
counter-based chip channel makes this hold by construction — every
(transmission, receiver) pair's randomness is addressed by ``(seed,
tx_id, receiver, word)`` rather than by draw order — and these tests
pin the contract end to end through the :class:`RunCache`.
"""

import numpy as np
import pytest

from repro.experiments.common import RunCache

_DURATION_S = 3.0
_SEED = 21


def _assert_results_identical(a, b) -> None:
    assert len(a.transmissions) == len(b.transmissions)
    for ta, tb in zip(a.transmissions, b.transmissions, strict=True):
        assert (ta.tx_id, ta.sender, ta.dst, ta.seq) == (
            tb.tx_id,
            tb.sender,
            tb.dst,
            tb.seq,
        )
        assert ta.start == tb.start
        assert np.array_equal(ta.symbols, tb.symbols)
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records, strict=True):
        assert (ra.tx_id, ra.receiver, ra.acquired_preamble) == (
            rb.tx_id,
            rb.receiver,
            rb.acquired_preamble,
        )
        assert (
            ra.preamble_detectable,
            ra.header_ok,
            ra.postamble_detectable,
            ra.trailer_ok,
        ) == (
            rb.preamble_detectable,
            rb.header_ok,
            rb.postamble_detectable,
            rb.trailer_ok,
        )
        assert np.array_equal(ra.body_symbols, rb.body_symbols)
        assert np.array_equal(ra.body_hints, rb.body_hints)
        assert np.array_equal(ra.body_truth, rb.body_truth)


def _runs(jobs: int, **kwargs) -> RunCache:
    return RunCache(
        duration_s=_DURATION_S, seed=_SEED, jobs=jobs, **kwargs
    )


def _points(cache: RunCache):
    return [
        cache.config_for(load=9000.0, carrier_sense=False),
        cache.config_for(load=13800.0, carrier_sense=False),
    ]


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_bit_identical_across_worker_counts(self, jobs):
        sequential = _runs(jobs=1)
        sequential.prefetch(_points(sequential))
        sharded = _runs(jobs=jobs)
        sharded.prefetch(_points(sharded))
        for seq_cfg, sh_cfg in zip(
            _points(sequential), _points(sharded), strict=True
        ):
            _assert_results_identical(
                sequential.get(seq_cfg), sharded.get(sh_cfg)
            )

    def test_lazy_get_matches_prefetch(self):
        lazy = _runs(jobs=1)
        eager = _runs(jobs=2)
        eager.prefetch(_points(eager))
        for config in _points(lazy):
            _assert_results_identical(lazy.get(config), eager.get(config))

    def test_prefetch_is_idempotent_and_caches(self):
        runs = _runs(jobs=2)
        runs.prefetch(_points(runs))
        first = runs.get(_points(runs)[0])
        runs.prefetch(_points(runs))  # all cached: must not resimulate
        assert runs.get(_points(runs)[0]) is first


class TestBatchDecodeInvariance:
    def test_batch_decode_on_off_identical(self):
        on = _runs(jobs=1, batch_decode=True)
        off = _runs(jobs=1, batch_decode=False)
        _assert_results_identical(
            on.get(load=13800.0, carrier_sense=False),
            off.get(load=13800.0, carrier_sense=False),
        )

    def test_batch_decode_identical_under_sharding(self):
        on = _runs(jobs=2, batch_decode=True)
        off = _runs(jobs=2, batch_decode=False)
        on.prefetch(_points(on))
        off.prefetch(_points(off))
        for on_cfg, off_cfg in zip(_points(on), _points(off), strict=True):
            _assert_results_identical(on.get(on_cfg), off.get(off_cfg))


class TestFullConfigKey:
    """The cache key is the entire config: sweeping any axis creates
    distinct entries, and equal configs hit the same entry whichever
    cache instance or access style produced them."""

    def test_seed_axis_never_aliases(self):
        runs = _runs(jobs=1)
        a = runs.get(load=13800.0, carrier_sense=False)
        b = runs.get(load=13800.0, carrier_sense=False, seed=_SEED + 1)
        assert a is not b
        # Different seeds really are different noise realisations.
        assert len(a.records) != len(b.records) or any(
            not np.array_equal(ra.body_symbols, rb.body_symbols)
            for ra, rb in zip(a.records, b.records, strict=True)
        )

    def test_equal_configs_are_one_entry(self):
        runs = _runs(jobs=1)
        direct = runs.get(
            runs.config_for(load=13800.0, carrier_sense=False)
        )
        via_overrides = runs.get(load=13800.0, carrier_sense=False)
        assert direct is via_overrides


class TestStoreInvariance:
    """A store-backed cache stays on the contract: results loaded from
    disk are bit-identical to freshly simulated ones, for any worker
    count and whichever process wrote the entries."""

    def test_store_round_trip_matches_fresh_simulation(self, tmp_path):
        from repro.store import RunStore

        fresh = _runs(jobs=1)
        fresh.prefetch(_points(fresh))
        writer = _runs(jobs=2, store=RunStore(tmp_path))
        writer.prefetch(_points(writer))
        # A brand-new cache resolves every point from disk alone.
        reader = _runs(jobs=1, store=RunStore(tmp_path))
        reader.prefetch(_points(reader))
        assert reader.store.counters.misses == 0
        for config in _points(fresh):
            _assert_results_identical(
                fresh.get(config), reader.get(config)
            )

    def test_warm_store_identical_across_worker_counts(self, tmp_path):
        from repro.store import RunStore

        for jobs in (1, 3):
            runs = _runs(jobs=jobs, store=RunStore(tmp_path))
            runs.prefetch(_points(runs))
        baseline = _runs(jobs=1)
        baseline.prefetch(_points(baseline))
        warm = _runs(jobs=3, store=RunStore(tmp_path))
        warm.prefetch(_points(warm))
        for config in _points(baseline):
            _assert_results_identical(
                baseline.get(config), warm.get(config)
            )
