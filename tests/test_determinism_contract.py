"""The determinism contract of the sharded, batched simulation.

One seed must produce bit-identical :class:`SimulationResult`s no
matter *how* the work is executed: any ``jobs`` worker count,
``batch_decode`` on or off, prefetched or lazily simulated.  The
counter-based chip channel makes this hold by construction — every
(transmission, receiver) pair's randomness is addressed by ``(seed,
tx_id, receiver, word)`` rather than by draw order — and these tests
pin the contract end to end.
"""

import numpy as np
import pytest

from repro.experiments.common import CapacityRuns
from repro.sim.network import NetworkSimulation, SimulationConfig

_POINTS = [(9000.0, False), (13800.0, False)]
_DURATION_S = 3.0
_SEED = 21


def _assert_results_identical(a, b) -> None:
    assert len(a.transmissions) == len(b.transmissions)
    for ta, tb in zip(a.transmissions, b.transmissions):
        assert (ta.tx_id, ta.sender, ta.dst, ta.seq) == (
            tb.tx_id,
            tb.sender,
            tb.dst,
            tb.seq,
        )
        assert ta.start == tb.start
        assert np.array_equal(ta.symbols, tb.symbols)
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert (ra.tx_id, ra.receiver, ra.acquired_preamble) == (
            rb.tx_id,
            rb.receiver,
            rb.acquired_preamble,
        )
        assert (
            ra.preamble_detectable,
            ra.header_ok,
            ra.postamble_detectable,
            ra.trailer_ok,
        ) == (
            rb.preamble_detectable,
            rb.header_ok,
            rb.postamble_detectable,
            rb.trailer_ok,
        )
        assert np.array_equal(ra.body_symbols, rb.body_symbols)
        assert np.array_equal(ra.body_hints, rb.body_hints)
        assert np.array_equal(ra.body_truth, rb.body_truth)


def _runs(jobs: int, **kwargs) -> CapacityRuns:
    return CapacityRuns(
        duration_s=_DURATION_S, seed=_SEED, jobs=jobs, **kwargs
    )


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_bit_identical_across_worker_counts(self, jobs):
        sequential = _runs(jobs=1)
        sequential.prefetch(_POINTS)
        sharded = _runs(jobs=jobs)
        sharded.prefetch(_POINTS)
        for point in _POINTS:
            _assert_results_identical(
                sequential.get(*point), sharded.get(*point)
            )

    def test_lazy_get_matches_prefetch(self):
        lazy = _runs(jobs=1)
        eager = _runs(jobs=2)
        eager.prefetch(_POINTS)
        for point in _POINTS:
            _assert_results_identical(lazy.get(*point), eager.get(*point))

    def test_prefetch_is_idempotent_and_caches(self):
        runs = _runs(jobs=2)
        runs.prefetch(_POINTS)
        first = runs.get(*_POINTS[0])
        runs.prefetch(_POINTS)  # all cached: must not resimulate
        assert runs.get(*_POINTS[0]) is first

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            CapacityRuns(jobs=0)


class TestBatchDecodeInvariance:
    def test_batch_decode_on_off_identical(self):
        on = _runs(jobs=1, batch_decode=True)
        off = _runs(jobs=1, batch_decode=False)
        point = _POINTS[1]
        _assert_results_identical(on.get(*point), off.get(*point))

    def test_batch_decode_identical_under_sharding(self):
        on = _runs(jobs=2, batch_decode=True)
        off = _runs(jobs=2, batch_decode=False)
        on.prefetch(_POINTS)
        off.prefetch(_POINTS)
        for point in _POINTS:
            _assert_results_identical(on.get(*point), off.get(*point))


class TestLegacyChannelCrossCheck:
    """The deprecated shared-stream channel: same physics, different
    bits.  Reception structure (which pairs are audible, how many
    records, phase-1 traffic) must match exactly; only the chip noise
    realisation may differ, and only in distribution."""

    def test_same_structure_different_noise(self):
        config = SimulationConfig(
            load_bits_per_s_per_node=13800.0,
            payload_bytes=300,
            duration_s=3.0,
            carrier_sense=False,
            seed=_SEED,
        )
        legacy_config = SimulationConfig(
            load_bits_per_s_per_node=13800.0,
            payload_bytes=300,
            duration_s=3.0,
            carrier_sense=False,
            seed=_SEED,
            legacy_channel_rng=True,
        )
        keyed = NetworkSimulation(config).run()
        legacy = NetworkSimulation(legacy_config).run()
        # Phase 1 and audibility are channel-RNG independent.
        assert len(keyed.transmissions) == len(legacy.transmissions)
        assert len(keyed.records) == len(legacy.records)
        assert [(r.tx_id, r.receiver) for r in keyed.records] == [
            (r.tx_id, r.receiver) for r in legacy.records
        ]
        # The noise realisations differ ...
        assert any(
            not np.array_equal(ka.body_symbols, la.body_symbols)
            for ka, la in zip(keyed.records, legacy.records)
        )
        # ... but only in realisation, not in scale: overall symbol
        # error rates agree within a loose statistical tolerance.
        def symbol_error_rate(result):
            wrong = sum(
                int((r.body_symbols != r.body_truth).sum())
                for r in result.records
            )
            total = sum(r.body_symbols.size for r in result.records)
            return wrong / total

        keyed_ser = symbol_error_rate(keyed)
        legacy_ser = symbol_error_rate(legacy)
        assert keyed_ser == pytest.approx(legacy_ser, rel=0.15)
