"""Tests for repro.utils.bitops: conversions, packing, bit streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import (
    BitReader,
    BitWriter,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    int_to_bits,
    pack_bits_to_uint32,
    popcount32,
    unpack_uint32_to_bits,
)


class TestByteBitConversions:
    def test_single_byte_msb_first(self):
        assert bytes_to_bits(b"\x80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_known_pattern(self):
        bits = bytes_to_bits(b"\xa5")
        assert bits.tolist() == [1, 0, 1, 0, 0, 1, 0, 1]

    def test_roundtrip_fixed(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bits_to_bytes_rejects_partial_byte(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            bits_to_bytes(np.ones(7, dtype=np.uint8))

    def test_empty(self):
        assert bytes_to_bits(b"").size == 0
        assert bits_to_bytes(np.zeros(0, dtype=np.uint8)) == b""

    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestIntBits:
    def test_int_to_bits_big_endian(self):
        assert int_to_bits(5, 4).tolist() == [0, 1, 0, 1]

    def test_bits_to_int_inverse(self):
        assert bits_to_int(int_to_bits(1234, 16)) == 1234

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(0, 0)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            int_to_bits(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            int_to_bits(-1, 8)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_property(self, value):
        assert bits_to_int(int_to_bits(value, 32)) == value


class TestUint32Packing:
    def test_pack_msb_is_chip_zero(self):
        chips = np.zeros((1, 32), dtype=np.uint8)
        chips[0, 0] = 1
        assert pack_bits_to_uint32(chips)[0] == 1 << 31

    def test_pack_lsb_is_chip_31(self):
        chips = np.zeros((1, 32), dtype=np.uint8)
        chips[0, 31] = 1
        assert pack_bits_to_uint32(chips)[0] == 1

    def test_unpack_inverse(self, rng):
        chips = rng.integers(0, 2, size=(50, 32), dtype=np.uint8)
        words = pack_bits_to_uint32(chips)
        assert np.array_equal(unpack_uint32_to_bits(words), chips)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match=r"\(n, 32\)"):
            pack_bits_to_uint32(np.zeros((3, 16), dtype=np.uint8))

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=40))
    def test_roundtrip_from_words(self, values):
        words = np.array(values, dtype=np.uint32)
        again = pack_bits_to_uint32(unpack_uint32_to_bits(words))
        assert np.array_equal(again, words)


class TestPopcount:
    def test_zero(self):
        assert popcount32(np.array([0], dtype=np.uint32))[0] == 0

    def test_all_ones(self):
        assert popcount32(np.array([0xFFFFFFFF], dtype=np.uint32))[0] == 32

    def test_matches_python_bin(self, rng):
        words = rng.integers(0, 2**32, size=200, dtype=np.uint64).astype(
            np.uint32
        )
        expected = [bin(int(w)).count("1") for w in words]
        assert popcount32(words).tolist() == expected

    def test_2d_shape_preserved(self):
        words = np.array([[1, 3], [7, 15]], dtype=np.uint32)
        assert popcount32(words).tolist() == [[1, 2], [3, 4]]


class TestBitStream:
    def test_write_read_sequence(self):
        w = BitWriter()
        w.write_uint(5, 3).write_uint(1023, 10).write_bit(1)
        r = BitReader(w.getvalue())
        assert r.read_uint(3) == 5
        assert r.read_uint(10) == 1023
        assert r.read_bit() == 1

    def test_bit_length_tracks_writes(self):
        w = BitWriter()
        w.write_uint(0, 7)
        assert w.bit_length == 7
        w.write_bytes(b"\x00")
        assert w.bit_length == 15

    def test_getvalue_pads_to_byte(self):
        w = BitWriter()
        w.write_bit(1)
        assert w.getvalue() == b"\x80"

    def test_value_overflow_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            BitWriter().write_uint(8, 3)

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError, match="0 or 1"):
            BitWriter().write_bit(2)

    def test_reader_eof(self):
        r = BitReader(b"\x00")
        r.read_uint(8)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_reader_remaining(self):
        r = BitReader(b"\xff\x00")
        assert r.remaining == 16
        r.read_uint(5)
        assert r.remaining == 11

    def test_read_bytes(self):
        w = BitWriter()
        w.write_bytes(b"hi")
        assert BitReader(w.getvalue()).read_bytes(2) == b"hi"

    def test_to_bits_unpadded(self):
        w = BitWriter()
        w.write_uint(1, 3)
        assert w.to_bits().tolist() == [0, 0, 1]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=24),
                st.integers(min_value=0),
            ).map(lambda t: (t[0], t[1] % (1 << t[0]))),
            min_size=1,
            max_size=30,
        )
    )
    def test_arbitrary_field_roundtrip(self, fields):
        w = BitWriter()
        for width, value in fields:
            w.write_uint(value, width)
        r = BitReader(w.getvalue())
        for width, value in fields:
            assert r.read_uint(width) == value
