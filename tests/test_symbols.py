"""Tests for the SoftPHY interface containers."""

import numpy as np
import pytest

from repro.phy.symbols import SoftPacket, SoftSymbol, SyncSource


class TestSoftSymbol:
    def test_threshold_rule(self):
        assert SoftSymbol(3, 2.0).is_good(eta=6)
        assert SoftSymbol(3, 6.0).is_good(eta=6)
        assert not SoftSymbol(3, 7.0).is_good(eta=6)


class TestSoftPacket:
    def _packet(self):
        return SoftPacket(
            symbols=np.array([1, 2, 3, 4]),
            hints=np.array([0.0, 7.0, 1.0, 9.0]),
            truth=np.array([1, 5, 3, 4]),
        )

    def test_length(self):
        assert len(self._packet()) == 4
        assert self._packet().n_symbols == 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            SoftPacket(symbols=np.array([1]), hints=np.array([0.0, 1.0]))

    def test_truth_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="truth"):
            SoftPacket(
                symbols=np.array([1, 2]),
                hints=np.zeros(2),
                truth=np.array([1]),
            )

    def test_good_mask(self):
        assert self._packet().good_mask(6.0).tolist() == [
            True,
            False,
            True,
            False,
        ]

    def test_correct_mask(self):
        assert self._packet().correct_mask().tolist() == [
            True,
            False,
            True,
            True,
        ]

    def test_correct_mask_requires_truth(self):
        packet = SoftPacket(symbols=np.array([1]), hints=np.array([0.0]))
        with pytest.raises(ValueError, match="truth"):
            packet.correct_mask()

    def test_miss_mask(self):
        # Symbol 1 is incorrect; at eta=8 its hint 7.0 labels it good:
        # a miss.
        assert self._packet().miss_mask(8.0).tolist() == [
            False,
            True,
            False,
            False,
        ]

    def test_false_alarm_mask(self):
        # Symbol 3 is correct but hint 9.0 > 6: a false alarm.
        assert self._packet().false_alarm_mask(6.0).tolist() == [
            False,
            False,
            False,
            True,
        ]

    def test_miss_and_false_alarm_disjoint(self):
        packet = self._packet()
        overlap = packet.miss_mask(6.0) & packet.false_alarm_mask(6.0)
        assert not overlap.any()

    def test_to_soft_symbols(self):
        symbols = self._packet().to_soft_symbols()
        assert len(symbols) == 4
        assert symbols[1] == SoftSymbol(2, 7.0)

    def test_payload_bytes(self):
        packet = SoftPacket(
            symbols=np.array([3, 10]), hints=np.zeros(2)
        )
        assert packet.payload_bytes() == b"\xa3"

    def test_default_sync_source(self):
        packet = SoftPacket(symbols=np.array([0]), hints=np.zeros(1))
        assert packet.sync_source is SyncSource.PREAMBLE
