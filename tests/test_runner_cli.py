"""Tests for the experiment runner CLI and the public package API."""

import numpy as np
import pytest

import repro
from repro.experiments.runner import main, run_experiments


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_exports_resolve(self):
        import repro.arq
        import repro.link
        import repro.phy
        import repro.sim
        import repro.utils

        for module in (
            repro.arq,
            repro.link,
            repro.phy,
            repro.sim,
            repro.utils,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (
                    f"{module.__name__} missing export {name}"
                )


class TestRunnerCli:
    def test_single_fast_experiment(self, capsys):
        code = main(["--experiment", "fig13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig13" in out
        assert "shape checks passed" in out

    def test_requires_selection(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_errors(self):
        with pytest.raises(ValueError):
            run_experiments(["nonsense"])

    def test_run_experiments_returns_results(self):
        results = run_experiments(["fig16"], duration_s=2.0)
        assert len(results) == 1
        assert results[0].experiment_id == "fig16"
        assert "elapsed_s" in results[0].series

    def test_experiment_points_map_matches_reality(self):
        """EXPERIMENT_POINTS must list exactly the (load, carrier
        sense) points each experiment requests: a missing point
        silently loses --jobs parallelism, a stale one wastes a whole
        simulation.  Recorded against tiny-duration runs."""
        from repro.experiments.common import CapacityRuns
        from repro.experiments.runner import EXPERIMENTS, EXPERIMENT_POINTS

        assert set(EXPERIMENT_POINTS) == set(EXPERIMENTS)
        runs = CapacityRuns(duration_s=2.0, seed=5)
        requested: set[tuple[float, bool]] = set()
        original_get = CapacityRuns.get

        def recording_get(self, load_bps, carrier_sense):
            requested.add((float(load_bps), bool(carrier_sense)))
            return original_get(self, load_bps, carrier_sense)

        for name, experiment in EXPERIMENTS.items():
            requested.clear()
            CapacityRuns.get = recording_get
            try:
                experiment(runs)
            finally:
                CapacityRuns.get = original_get
            declared = {
                (float(load), bool(cs))
                for load, cs in EXPERIMENT_POINTS[name]
            }
            assert declared == requested, (
                f"{name}: declared {sorted(declared)} but the "
                f"experiment requested {sorted(requested)}"
            )

    def test_tiny_capacity_experiment_end_to_end(self):
        """A minimal-duration delivery experiment exercises the whole
        simulate-evaluate-check pipeline (statistics too thin for shape
        guarantees, so only structure is asserted)."""
        from repro.experiments.common import CapacityRuns
        from repro.experiments.exp_delivery import run_fig10

        runs = CapacityRuns(duration_s=3.0, seed=5)
        result = run_fig10(runs)
        assert result.experiment_id == "fig10"
        assert len(result.shape_checks) >= 3
        assert "ppr, postamble" in result.series
        assert isinstance(
            result.series["ppr, postamble"], np.ndarray
        )
