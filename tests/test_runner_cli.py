"""Tests for the experiment runner CLI, registry, and public API.

The registry contracts pinned here replace the old hand-maintained
``EXPERIMENT_POINTS`` map and its drift test: every ``exp_*`` module
registers exactly one spec, every simulation point an experiment
requests is declared on its spec (verified with a recording cache),
and every result round-trips through the JSON schema.
"""

import json
import pkgutil

import numpy as np
import pytest

import repro
import repro.experiments
from repro.experiments import registry
from repro.experiments.common import ExperimentResult, RunCache
from repro.experiments.runner import main, run_experiments

EXPECTED_IDS = {
    "table1",
    "table2",
    "fig3",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "sweep_load",
    "waveform_capture",
    "coded_recovery",
    "sic_collision",
}


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_exports_resolve(self):
        import repro.arq
        import repro.coding
        import repro.experiments
        import repro.link
        import repro.phy
        import repro.sim
        import repro.utils

        for module in (
            repro.arq,
            repro.coding,
            repro.experiments,
            repro.link,
            repro.phy,
            repro.sim,
            repro.utils,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (
                    f"{module.__name__} missing export {name}"
                )


class _RecordingCache(RunCache):
    """RunCache that records every requested config.

    Shares the wrapped cache's store, so many recorders can audit many
    experiments while each simulation point runs at most once.
    """

    def __init__(self, inner: RunCache) -> None:
        super().__init__(inner.base, jobs=inner.jobs)
        self._cache = inner._cache
        self.requested = set()

    def get(self, config=None, **overrides):
        if config is None:
            config = self.config_for(**overrides)
        self.requested.add(config)
        return super().get(config)


@pytest.fixture(scope="module")
def spec_runs():
    """Every registered experiment run once against one shared store.

    Yields ``{experiment_id: (spec, requested_configs, result)}`` at
    tiny duration — structure-only statistics, but full pipelines.
    """
    shared = RunCache(duration_s=2.0, seed=5)
    out = {}
    for spec in registry.all_specs():
        recorder = _RecordingCache(shared)
        result = spec.run(recorder)
        out[spec.experiment_id] = (spec, recorder.requested, result)
    return out


class TestRegistry:
    def test_every_paper_result_has_an_experiment(self):
        specs = registry.all_specs()
        assert {s.experiment_id for s in specs} == EXPECTED_IDS

    def test_every_module_registers_exactly_once(self):
        """One exp_* module, one spec — completeness both ways."""
        registry.discover()
        modules = {
            f"repro.experiments.{info.name}"
            for info in pkgutil.iter_modules(repro.experiments.__path__)
            if info.name.startswith("exp_")
        }
        registered = [s.run.__module__ for s in registry.all_specs()]
        assert sorted(registered) == sorted(modules)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            registry.register(
                "fig3",
                title="imposter",
                paper_expectation="none",
            )(lambda cache: None)

    def test_get_spec_unknown_id(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            registry.get_spec("fig99")

    def test_specs_carry_identity(self):
        spec = registry.get_spec("fig3")
        assert spec.title
        assert spec.paper_expectation
        assert len(spec.points) == 3

    def test_declared_points_match_requests(self, spec_runs):
        """Every point an experiment requests is declared on its spec,
        and nothing declared goes unrequested: a missing declaration
        silently loses --jobs parallelism, a stale one wastes a whole
        simulation."""
        for experiment_id, (spec, requested, _) in spec_runs.items():
            declared = set(spec.configs(RunCache(
                duration_s=2.0, seed=5
            ).base))
            assert declared == requested, (
                f"{experiment_id}: declared {len(declared)} configs "
                f"but the experiment requested {len(requested)}"
            )

    def test_results_well_formed(self, spec_runs):
        for experiment_id, (spec, _, result) in spec_runs.items():
            assert result.experiment_id == experiment_id
            assert result.title == spec.title
            assert result.paper_expectation == spec.paper_expectation
            assert result.rendered
            assert "=== " in result.summary()


class TestJsonSchema:
    def test_round_trip_every_experiment(self, spec_runs):
        """to_dict() is valid JSON and from_dict() inverts it."""
        for experiment_id, (_, _, result) in spec_runs.items():
            data = result.to_dict()
            encoded = json.dumps(data, sort_keys=True)
            decoded = json.loads(encoded)
            rebuilt = ExperimentResult.from_dict(decoded)
            assert rebuilt.to_dict() == decoded, experiment_id
            assert rebuilt.experiment_id == experiment_id
            assert rebuilt.all_passed == result.all_passed

    def test_numpy_series_coerced(self):
        result = ExperimentResult(
            experiment_id="t",
            title="T",
            paper_expectation="E",
            rendered="plot",
            series={
                "arr": np.arange(3),
                "scalar": np.float64(1.5),
                "nested": {(1, 2): np.ones(2), 4: "x"},
            },
        )
        data = result.to_dict()["series"]
        assert data == {
            "arr": [0, 1, 2],
            "scalar": 1.5,
            "nested": {"1-2": [1.0, 1.0], "4": "x"},
        }

    def test_unsupported_series_value_rejected(self):
        result = ExperimentResult(
            experiment_id="t",
            title="T",
            paper_expectation="E",
            rendered="plot",
            series={"bad": object()},
        )
        with pytest.raises(TypeError, match="JSON"):
            result.to_dict()

    def test_schema_version_checked(self):
        with pytest.raises(ValueError, match="schema version"):
            ExperimentResult.from_dict({"schema_version": 99})

    def test_elapsed_excluded(self):
        result = ExperimentResult(
            experiment_id="t",
            title="T",
            paper_expectation="E",
            rendered="plot",
            elapsed_s=1.23,
        )
        assert "elapsed_s" not in json.dumps(result.to_dict())


class TestRunnerCli:
    def test_list(self, capsys):
        code = main(["--list"])
        out = capsys.readouterr().out
        assert code == 0
        for experiment_id in EXPECTED_IDS:
            assert experiment_id in out

    def test_single_fast_experiment(self, capsys):
        code = main(["--experiment", "fig13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig13" in out
        assert "shape checks passed" in out

    def test_requires_selection(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_errors(self):
        with pytest.raises(ValueError):
            run_experiments(["nonsense"])

    def test_run_experiments_returns_results(self):
        outcome = run_experiments(["fig16"], duration_s=2.0)
        assert len(outcome.results) == 1
        assert outcome.results[0].experiment_id == "fig16"
        assert outcome.results[0].elapsed_s is not None
        assert outcome.failures == []

    def test_format_json(self, capsys):
        code = main(["--experiment", "fig13", "--format", "json"])
        captured = capsys.readouterr()
        assert code == 0
        document = json.loads(captured.out)
        assert document["schema_version"] == 1
        assert [r["experiment_id"] for r in document["results"]] == [
            "fig13"
        ]
        assert "shape checks passed" in captured.err

    def test_out_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = main(["--experiment", "fig13", "--out", str(out_dir)])
        capsys.readouterr()
        assert code == 0
        data = json.loads((out_dir / "fig13.json").read_text())
        assert data["experiment_id"] == "fig13"
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["experiments"]["fig13"]["file"] == "fig13.json"
        assert isinstance(
            manifest["experiments"]["fig13"]["all_passed"], bool
        )


class TestRunnerStore:
    def test_store_counters_in_manifest_and_summary(
        self, tmp_path, capsys
    ):
        store_dir = tmp_path / "store"
        out_dir = tmp_path / "artifacts"
        code = main(
            [
                "--experiment",
                "fig13",
                "--store",
                str(store_dir),
                "--out",
                str(out_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"store {store_dir}:" in out
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert set(manifest["store"]) == {
            "hits",
            "misses",
            "writes",
            "corrupt",
        }
        assert manifest["repro_version"] == repro.__version__

    def test_repro_store_env_is_the_default(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        code = main(["--experiment", "fig13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "env-store:" in out

    def test_no_store_by_default(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        code = main(["--experiment", "fig13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "store " not in out

    def test_warm_store_rerun_simulates_nothing(self, tmp_path):
        from repro.store import RunStore

        cold = RunStore(tmp_path)
        run_experiments(["table2"], duration_s=2.0, store=cold)
        assert cold.counters.writes == cold.counters.misses > 0
        warm = RunStore(tmp_path)
        warm_results = run_experiments(
            ["table2"], duration_s=2.0, store=warm
        ).results
        assert warm.counters.misses == 0
        assert warm.counters.writes == 0
        assert warm.counters.hits == cold.counters.misses
        cold_results = run_experiments(["table2"], duration_s=2.0).results
        assert [r.to_dict() for r in warm_results] == [
            r.to_dict() for r in cold_results
        ]


class TestRunnerFailures:
    """The structured failure path and its exit-code contract."""

    @pytest.fixture(autouse=True)
    def _poison(self, monkeypatch):
        """Poison every simulated point; keep attempts cheap."""
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.setenv("REPRO_FAULTS", "fail=1.0")
        monkeypatch.setenv(
            "REPRO_EXEC", "max_attempts=2,backoff_base_s=0.001"
        )

    def test_poisoned_experiment_exits_3_without_aborting(
        self, tmp_path, capsys
    ):
        # table2 needs a simulation point (poisoned); fig16 declares
        # none, so it must still run to completion.
        out_dir = tmp_path / "artifacts"
        code = main(
            [
                "--experiment",
                "table2",
                "fig16",
                "--quick",
                "--out",
                str(out_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "EXECUTION FAILED" in out
        assert "InjectedFailure" in out
        assert "1 failed to execute" in out
        assert (out_dir / "fig16.json").is_file()
        assert not (out_dir / "table2.json").exists()
        manifest = json.loads((out_dir / "manifest.json").read_text())
        failure = manifest["failures"]["table2"]
        assert failure["error_type"] == "InjectedFailure"
        # max_attempts supervised tries plus the in-process rescue.
        assert failure["attempts"] == 3
        assert "InjectedFailure" in failure["traceback"]
        assert manifest["exec"]["failed"] == 1

    def test_failures_in_json_document(self, capsys):
        code = main(
            ["--experiment", "table2", "fig16", "--quick", "--format", "json"]
        )
        captured = capsys.readouterr()
        assert code == 3
        document = json.loads(captured.out)
        assert [r["experiment_id"] for r in document["results"]] == [
            "fig16"
        ]
        assert [f["experiment_id"] for f in document["failures"]] == [
            "table2"
        ]
        assert "1 failed to execute" in captured.err

    def test_run_experiments_records_failures(self):
        outcome = run_experiments(["table2"], duration_s=2.0)
        assert outcome.results == []
        assert len(outcome.failures) == 1
        failure = outcome.failures[0]
        assert failure.experiment_id == "table2"
        assert failure.error_type == "InjectedFailure"
        assert failure.attempts == 3
        assert outcome.exec_counters.failed >= 1
