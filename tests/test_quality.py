"""Tests for per-link delivery bookkeeping."""

import pytest

from repro.link.quality import LinkObservation, LinkStats
from repro.link.schemes import DeliveryResult


def _result(correct=400, incorrect=0, payload=800, passed=False):
    return DeliveryResult(
        scheme="test",
        payload_bits=payload,
        delivered_correct_bits=correct,
        delivered_incorrect_bits=incorrect,
        overhead_bits=32,
        frame_passed=passed,
    )


class TestLinkObservation:
    def test_delivery_rate_per_sent_bit(self):
        obs = LinkObservation()
        obs.record_sent(800)
        obs.record_sent(800)
        obs.record_acquired(_result(correct=400))
        # Only one of two frames acquired, half its bits delivered.
        assert obs.equivalent_frame_delivery_rate == pytest.approx(0.25)

    def test_conditional_rate_per_acquired_bit(self):
        obs = LinkObservation()
        obs.record_sent(800)
        obs.record_sent(800)
        obs.record_acquired(_result(correct=400))
        assert obs.conditional_delivery_rate == pytest.approx(0.5)

    def test_acquisition_rate(self):
        obs = LinkObservation()
        for _ in range(4):
            obs.record_sent(100)
        obs.record_acquired(_result(payload=100, correct=100))
        assert obs.acquisition_rate == pytest.approx(0.25)

    def test_frames_passed_counted(self):
        obs = LinkObservation()
        obs.record_sent(800)
        obs.record_acquired(_result(passed=True))
        assert obs.frames_passed == 1

    def test_zero_division_guards(self):
        obs = LinkObservation()
        assert obs.equivalent_frame_delivery_rate == 0.0
        assert obs.conditional_delivery_rate == 0.0
        assert obs.acquisition_rate == 0.0

    def test_throughput(self):
        obs = LinkObservation()
        obs.record_sent(1000)
        obs.record_acquired(_result(correct=5000, payload=5000))
        assert obs.throughput_bits_per_s(10.0) == pytest.approx(500.0)

    def test_throughput_invalid_duration(self):
        with pytest.raises(ValueError):
            LinkObservation().throughput_bits_per_s(0.0)


class TestLinkStats:
    def test_links_sorted(self):
        stats = LinkStats()
        stats[(5, 1)].record_sent(8)
        stats[(2, 1)].record_sent(8)
        assert stats.links() == [(2, 1), (5, 1)]

    def test_active_links_by_sent(self):
        stats = LinkStats()
        stats[(0, 1)].record_sent(8)
        stats[(2, 3)]  # touched but nothing sent
        assert stats.active_links() == [(0, 1)]

    def test_delivery_rates_cover_zero_links(self):
        stats = LinkStats()
        stats[(0, 1)].record_sent(800)  # never acquired
        stats[(2, 3)].record_sent(800)
        stats[(2, 3)].record_acquired(_result(correct=800, payload=800))
        rates = stats.delivery_rates()
        assert sorted(rates) == [0.0, 1.0]

    def test_throughputs_keyed_by_link(self):
        stats = LinkStats()
        stats[(0, 1)].record_sent(100)
        stats[(0, 1)].record_acquired(_result(correct=100, payload=100))
        tputs = stats.throughputs(duration_s=2.0)
        assert tputs == {(0, 1): pytest.approx(50.0)}

    def test_contains_and_len(self):
        stats = LinkStats()
        stats[(1, 2)].record_sent(8)
        assert (1, 2) in stats
        assert len(stats) == 1
