"""Tests for the radio medium: path loss, shadowing, interference."""

import numpy as np
import pytest

from repro.sim.medium import PathLossModel, RadioMedium, Transmission


def _medium(positions, **kwargs):
    return RadioMedium(positions_m=np.array(positions, dtype=float), **kwargs)


def _tx(tx_id, sender, start, n_symbols=100, period=16e-6):
    return Transmission(
        tx_id=tx_id,
        sender=sender,
        dst=0,
        start=start,
        symbols=np.zeros(n_symbols, dtype=np.int64),
        symbol_period=period,
    )


class TestPathLossModel:
    def test_reference_loss_at_d0(self):
        model = PathLossModel(pl0_db=40, exponent=3.0)
        assert model.mean_loss_db(1.0) == pytest.approx(40.0)

    def test_exponent_slope(self):
        model = PathLossModel(pl0_db=40, exponent=3.0)
        assert model.mean_loss_db(10.0) == pytest.approx(70.0)
        assert model.mean_loss_db(100.0) == pytest.approx(100.0)

    def test_below_d0_clamped(self):
        model = PathLossModel(pl0_db=40)
        assert model.mean_loss_db(0.01) == pytest.approx(40.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PathLossModel(d0_m=0)
        with pytest.raises(ValueError):
            PathLossModel(exponent=0)
        with pytest.raises(ValueError):
            PathLossModel(shadowing_sigma_db=-1)


class TestRadioMedium:
    def test_closer_is_stronger(self):
        medium = _medium(
            [[0, 0], [5, 0], [20, 0]],
            path_loss=PathLossModel(shadowing_sigma_db=0),
        )
        assert medium.rx_power_mw(1, 0) > medium.rx_power_mw(2, 0)

    def test_shadowing_reciprocal(self):
        medium = _medium([[0, 0], [10, 0], [3, 7]], seed=5)
        for a in range(3):
            for b in range(a + 1, 3):
                assert medium.rx_power_mw(a, b) == pytest.approx(
                    medium.rx_power_mw(b, a)
                )

    def test_shadowing_deterministic_in_seed(self):
        a = _medium([[0, 0], [10, 0]], seed=1).rx_power_mw(0, 1)
        b = _medium([[0, 0], [10, 0]], seed=1).rx_power_mw(0, 1)
        c = _medium([[0, 0], [10, 0]], seed=2).rx_power_mw(0, 1)
        assert a == b
        assert a != c

    def test_extra_loss_applied(self):
        quiet = _medium(
            [[0, 0], [10, 0]],
            path_loss=PathLossModel(shadowing_sigma_db=0),
        )
        walled = _medium(
            [[0, 0], [10, 0]],
            path_loss=PathLossModel(shadowing_sigma_db=0),
            extra_loss_db=np.array([[0.0, 10.0], [10.0, 0.0]]),
        )
        ratio = quiet.rx_power_mw(0, 1) / walled.rx_power_mw(0, 1)
        assert ratio == pytest.approx(10.0)

    def test_extra_loss_shape_validated(self):
        with pytest.raises(ValueError):
            _medium([[0, 0], [1, 0]], extra_loss_db=np.zeros((3, 3)))

    def test_self_reception_rejected(self):
        medium = _medium([[0, 0], [1, 0]])
        with pytest.raises(ValueError):
            medium.rx_power_mw(0, 0)

    def test_snr_definition(self):
        medium = _medium(
            [[0, 0], [10, 0]],
            path_loss=PathLossModel(shadowing_sigma_db=0),
            noise_floor_dbm=-90.0,
        )
        expected = medium.rx_power_mw(0, 1) / medium.noise_mw
        assert medium.snr(0, 1) == pytest.approx(expected)

    def test_positions_validated(self):
        with pytest.raises(ValueError):
            RadioMedium(positions_m=np.zeros((3,)))

    def test_carrier_sense_sums_active_powers(self):
        medium = _medium(
            [[0, 0], [5, 0], [10, 0]],
            path_loss=PathLossModel(shadowing_sigma_db=0),
        )
        t1, t2 = _tx(0, 1, 0.0), _tx(1, 2, 0.0)
        sensed = medium.carrier_sensed_power_mw(0, [t1, t2])
        expected = medium.rx_power_mw(1, 0) + medium.rx_power_mw(2, 0)
        assert sensed == pytest.approx(expected)

    def test_carrier_sense_ignores_own_transmission(self):
        medium = _medium([[0, 0], [5, 0]])
        own = _tx(0, 0, 0.0)
        assert medium.carrier_sensed_power_mw(0, [own]) == 0.0


class TestInterferenceTimeline:
    def _simple_medium(self):
        return _medium(
            [[0, 0], [5, 0], [10, 0]],
            path_loss=PathLossModel(shadowing_sigma_db=0),
        )

    def test_no_overlap_no_interference(self):
        medium = self._simple_medium()
        rx = _tx(0, 1, start=0.0, n_symbols=100)
        other = _tx(1, 2, start=1.0)
        timeline = medium.interference_timeline_mw(rx, 0, [other])
        assert np.all(timeline == 0)

    def test_partial_overlap_hits_exact_symbols(self):
        medium = self._simple_medium()
        period = 16e-6
        rx = _tx(0, 1, start=0.0, n_symbols=100, period=period)
        # Interferer covers symbols 50..80 exactly.
        other = _tx(
            1, 2, start=50 * period, n_symbols=30, period=period
        )
        timeline = medium.interference_timeline_mw(rx, 0, [other])
        power = medium.rx_power_mw(2, 0)
        assert np.all(timeline[:50] == 0)
        assert timeline[50:80] == pytest.approx(np.full(30, power))
        assert np.all(timeline[80:] == 0)

    def test_overlapping_interferers_add(self):
        medium = self._simple_medium()
        rx = _tx(0, 1, start=0.0, n_symbols=10)
        o1 = _tx(1, 2, start=0.0, n_symbols=10)
        o2 = _tx(2, 2, start=0.0, n_symbols=10)
        timeline = medium.interference_timeline_mw(rx, 0, [o1, o2])
        assert timeline[0] == pytest.approx(2 * medium.rx_power_mw(2, 0))

    def test_receiver_transmitting_is_infinite_interference(self):
        medium = self._simple_medium()
        rx = _tx(0, 1, start=0.0, n_symbols=10)
        own = _tx(1, 0, start=0.0, n_symbols=5)
        timeline = medium.interference_timeline_mw(rx, 0, [own])
        assert np.isinf(timeline[:5]).all()
        assert np.all(timeline[5:] == 0)

    def test_power_scale_applied(self):
        medium = self._simple_medium()
        rx = _tx(0, 1, start=0.0, n_symbols=10)
        other = _tx(1, 2, start=0.0, n_symbols=10)
        base = medium.interference_timeline_mw(rx, 0, [other])[0]
        scaled = medium.interference_timeline_mw(
            rx, 0, [other], power_scale={1: 0.5}
        )[0]
        assert scaled == pytest.approx(0.5 * base)

    def test_transmission_properties(self):
        tx = _tx(0, 1, start=1.0, n_symbols=100, period=16e-6)
        assert tx.duration == pytest.approx(1.6e-3)
        assert tx.end == pytest.approx(1.0016)
        assert tx.overlaps(_tx(1, 2, start=1.001))
        assert not tx.overlaps(_tx(2, 2, start=1.01))
