"""Unit tests for the supervised executor (``repro.exec``).

Covers the policy/fault-plan data layer (strict spec parsing,
deterministic keyed decisions and backoff schedules), serial and
process-supervised execution, every injected fault kind, the rescue
and degradation ladders, and the per-result sanitizer-ledger merge.

Timings here are deliberately tiny (millisecond backoffs, sub-second
timeouts); the realistic chaos scenarios live in ``test_chaos.py``.
"""

import hashlib
import time

import pytest

from repro.exec import (
    ExecCounters,
    ExecPolicy,
    FaultPlan,
    InjectedFailure,
    Supervisor,
    Task,
    parse_spec,
    preferred_mp_context,
)
from repro.utils import sanitize
from repro.utils.rng import keyed_rng

#: fast schedules so retry-heavy tests stay quick
_FAST = ExecPolicy(max_attempts=2, backoff_base_s=0.001)
_NO_FAULTS = FaultPlan()


def _double(x):
    return 2 * x


def _fail_on_two(x):
    if x == 2:
        raise ValueError("payload two is poisoned")
    return x


def _ledger_worker(x):
    """Mint a stream key, then fail for one payload (fork-pickleable)."""
    keyed_rng(7, "test/exec-ledger", x)
    if x == 4:
        time.sleep(0.2)
        raise RuntimeError("boom after minting a key")
    return x


def _tasks(payloads, *, timeout_s=60.0):
    return [
        Task(task_id=i, payload=p, timeout_s=timeout_s)
        for i, p in enumerate(payloads)
    ]


class TestParseSpec:
    def test_parses_and_strips(self):
        parsed = parse_spec(
            " a = 1 , b=2.5 ,", what="X", fields={"a", "b"}
        )
        assert parsed == {"a": 1.0, "b": 2.5}

    def test_empty_spec(self):
        assert parse_spec("", what="X", fields={"a"}) == {}

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="unknown X field 'c'"):
            parse_spec("c=1", what="X", fields={"a"})

    def test_duplicate_field_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_spec("a=1,a=2", what="X", fields={"a"})

    def test_malformed_entry_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_spec("a", what="X", fields={"a"})

    def test_non_numeric_value_raises(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_spec("a=fast", what="X", fields={"a"})


class TestExecPolicy:
    def test_timeout_scales_with_duration(self):
        policy = ExecPolicy(timeout_base_s=10.0, timeout_scale=3.0)
        assert policy.timeout_for(40.0) == 10.0 + 3.0 * 40.0

    def test_backoff_deterministic_and_bounded(self):
        policy = ExecPolicy(
            backoff_base_s=0.1, backoff_multiplier=2.0, backoff_jitter=0.5
        )
        key = b"\x01" * 32
        for attempt in (1, 2, 3):
            base = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.backoff_s(key, attempt)
            assert delay == policy.backoff_s(key, attempt)
            assert base <= delay <= base * 1.5

    def test_backoff_without_jitter_is_exact(self):
        policy = ExecPolicy(
            backoff_base_s=0.2, backoff_multiplier=3.0, backoff_jitter=0.0
        )
        assert policy.backoff_s(b"", 1) == 0.2
        assert policy.backoff_s(b"", 3) == 0.2 * 9.0

    def test_from_spec_coerces_integer_knobs(self):
        policy = ExecPolicy.from_spec("max_attempts=2,timeout_base_s=5")
        assert policy.max_attempts == 2
        assert isinstance(policy.max_attempts, int)
        assert policy.timeout_base_s == 5.0

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "max_attempts=7")
        assert ExecPolicy.from_env().max_attempts == 7
        monkeypatch.delenv("REPRO_EXEC")
        assert ExecPolicy.from_env() == ExecPolicy()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ExecPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="max_spawn_failures"):
            ExecPolicy(max_spawn_failures=0)


class TestFaultPlan:
    def test_inactive_by_default(self):
        plan = FaultPlan()
        assert not plan.active
        assert plan.decide(b"k", 1) is None

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="outside"):
            FaultPlan(crash=1.5)
        with pytest.raises(ValueError, match="outside"):
            FaultPlan(flaky=-0.1)
        with pytest.raises(ValueError, match="sum"):
            FaultPlan(crash=0.6, hang=0.6)

    def test_decide_is_deterministic(self):
        plan = FaultPlan(crash=0.25, hang=0.25, flaky=0.25, fail=0.25)
        decisions = [plan.decide(bytes([i]) * 32, 1) for i in range(32)]
        assert decisions == [
            plan.decide(bytes([i]) * 32, 1) for i in range(32)
        ]
        # Every kind shows up across enough keys at these rates.
        assert {"crash", "hang", "flaky", "fail"} <= set(decisions)

    def test_certain_kinds(self):
        assert FaultPlan(crash=1.0).decide(b"k", 3) == "crash"
        assert FaultPlan(fail=1.0).decide(b"k", 3) == "fail"

    def test_transient_suspension_keeps_fail(self):
        plan = FaultPlan(crash=1.0)
        assert plan.decide(b"k", 1, transient=False) is None
        persistent = FaultPlan(fail=1.0)
        assert persistent.decide(b"k", 1, transient=False) == "fail"

    def test_needs_processes(self):
        assert FaultPlan(crash=0.1).needs_processes
        assert FaultPlan(hang=0.1).needs_processes
        assert not FaultPlan(flaky=1.0).needs_processes
        assert not FaultPlan(fail=1.0).needs_processes

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "flaky=0.5")
        assert FaultPlan.from_env() == FaultPlan(flaky=0.5)
        monkeypatch.delenv("REPRO_FAULTS")
        assert not FaultPlan.from_env().active


class TestSupervisorSerial:
    def test_empty_task_list(self):
        results, failures = Supervisor(faults=_NO_FAULTS).run([], _double)
        assert results == {}
        assert failures == []

    def test_success_and_emit_order(self):
        emitted = []
        supervisor = Supervisor(faults=_NO_FAULTS)
        results, failures = supervisor.run(
            _tasks([10, 20, 30]),
            _double,
            on_result=lambda task, result: emitted.append(
                (task.task_id, result)
            ),
        )
        assert failures == []
        assert results == {0: 20, 1: 40, 2: 60}
        assert emitted == [(0, 20), (1, 40), (2, 60)]
        assert supervisor.counters.completed == 3
        assert not supervisor.counters.anomalous

    def test_flaky_injection_retries_then_rescues(self):
        supervisor = Supervisor(
            policy=ExecPolicy(max_attempts=3, backoff_base_s=0.001),
            faults=FaultPlan(flaky=1.0),
        )
        results, failures = supervisor.run(_tasks([5]), _double)
        assert failures == []
        assert results == {0: 10}
        counters = supervisor.counters
        assert counters.retries == 2  # attempts 1 and 2 flaked
        assert counters.rescued == 1  # attempt 3 flaked too; rescue ran
        assert counters.completed == 1

    def test_real_error_fails_after_all_attempts(self):
        supervisor = Supervisor(policy=_FAST, faults=_NO_FAULTS)
        results, failures = supervisor.run(_tasks([1, 2, 3]), _fail_on_two)
        assert results == {0: 1, 2: 3}
        assert len(failures) == 1
        failure = failures[0]
        assert failure.task.task_id == 1
        assert failure.error_type == "ValueError"
        assert "poisoned" in failure.error
        assert "ValueError" in failure.traceback
        assert failure.attempts == _FAST.max_attempts + 1
        assert supervisor.counters.failed == 1
        assert supervisor.counters.completed == 2

    def test_persistent_injection_fails(self):
        supervisor = Supervisor(policy=_FAST, faults=FaultPlan(fail=1.0))
        results, failures = supervisor.run(_tasks([5]), _double)
        assert results == {}
        assert [f.error_type for f in failures] == ["InjectedFailure"]

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            Supervisor(jobs=0)


class TestSupervisorProcesses:
    """Process supervision: crash isolation, timeouts, real pipes."""

    def test_parallel_success(self):
        supervisor = Supervisor(jobs=4, faults=_NO_FAULTS)
        results, failures = supervisor.run(_tasks(range(8)), _double)
        assert failures == []
        assert results == {i: 2 * i for i in range(8)}
        assert supervisor.counters.completed == 8
        assert not supervisor.counters.anomalous

    def test_crash_isolation_and_rescue(self):
        supervisor = Supervisor(
            jobs=2, policy=_FAST, faults=FaultPlan(crash=1.0)
        )
        results, failures = supervisor.run(_tasks([1, 2]), _double)
        assert failures == []
        assert results == {0: 2, 1: 4}
        counters = supervisor.counters
        assert counters.worker_deaths == 4  # 2 tasks x 2 attempts
        assert counters.retries == 2
        assert counters.rescued == 2
        assert counters.completed == 2

    def test_hang_timeout_and_rescue(self):
        supervisor = Supervisor(
            jobs=1,  # hang plan forces processes even at jobs=1
            policy=ExecPolicy(max_attempts=2, backoff_base_s=0.001),
            faults=FaultPlan(hang=1.0),
        )
        start = time.monotonic()
        results, failures = supervisor.run(
            _tasks([3], timeout_s=0.5), _double
        )
        elapsed = time.monotonic() - start
        assert failures == []
        assert results == {0: 6}
        counters = supervisor.counters
        assert counters.timeouts == 2
        assert counters.rescued == 1
        # Two 0.5 s deadlines plus backoff and kill grace, nowhere
        # near the 3600 s the injected hang sleeps for.
        assert elapsed < 30.0

    def test_persistent_injection_fails_in_process_mode(self):
        supervisor = Supervisor(
            jobs=2, policy=_FAST, faults=FaultPlan(fail=1.0)
        )
        results, failures = supervisor.run(_tasks([1, 2]), _double)
        assert results == {}
        assert sorted(f.task.task_id for f in failures) == [0, 1]
        assert {f.error_type for f in failures} == {"InjectedFailure"}
        assert all(f.attempts == 3 for f in failures)

    def test_worker_ledgers_merge_per_result(self, monkeypatch):
        """A late failure cannot drop an earlier success's ledger."""
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        supervisor = Supervisor(
            jobs=2,
            policy=ExecPolicy(max_attempts=1, backoff_base_s=0.001),
            faults=_NO_FAULTS,
        )
        results, failures = supervisor.run(
            _tasks([3, 4]), _ledger_worker
        )
        assert results == {0: 3}
        assert [f.error_type for f in failures] == ["RuntimeError"]
        # The key minted inside the *successful* worker (payload 3)
        # reached the parent ledger even though a sibling later failed.
        digest = hashlib.sha256(b"7:test/exec-ledger:3").digest()
        assert digest[:16] in sanitize.ledger_snapshot()


class _RefusingContext:
    """A multiprocessing context whose spawns always fail."""

    def __init__(self):
        self._real = preferred_mp_context()

    def Pipe(self, duplex=True):
        return self._real.Pipe(duplex)

    def Process(self, *args, **kwargs):
        raise OSError("fork refused (injected)")


class TestDegradation:
    def test_spawn_failures_degrade_to_serial(self):
        supervisor = Supervisor(
            jobs=2,
            policy=ExecPolicy(
                max_spawn_failures=2, backoff_base_s=0.001
            ),
            faults=_NO_FAULTS,
            context=_RefusingContext(),
        )
        results, failures = supervisor.run(_tasks([1, 2, 3]), _double)
        assert failures == []
        assert results == {0: 2, 1: 4, 2: 6}
        counters = supervisor.counters
        assert counters.degraded == 3
        assert counters.completed == 3

    def test_degraded_mode_suspends_transient_faults(self):
        """crash=1.0 with no workers must not kill the caller."""
        supervisor = Supervisor(
            jobs=2,
            policy=ExecPolicy(
                max_spawn_failures=1, backoff_base_s=0.001
            ),
            faults=FaultPlan(crash=1.0),
            context=_RefusingContext(),
        )
        results, failures = supervisor.run(_tasks([9]), _double)
        assert failures == []
        assert results == {0: 18}
        assert supervisor.counters.degraded == 1

    def test_degraded_mode_keeps_persistent_failures(self):
        supervisor = Supervisor(
            jobs=2,
            policy=ExecPolicy(
                max_spawn_failures=1,
                max_attempts=2,
                backoff_base_s=0.001,
            ),
            faults=FaultPlan(fail=1.0),
            context=_RefusingContext(),
        )
        results, failures = supervisor.run(_tasks([9]), _double)
        assert results == {}
        assert [f.error_type for f in failures] == ["InjectedFailure"]


class TestExecCounters:
    def test_dict_and_summary(self):
        counters = ExecCounters(completed=3, retries=1)
        assert counters.as_dict()["completed"] == 3
        assert counters.as_dict()["retries"] == 1
        assert "3 completed" in counters.summary()
        assert "1 retries" in counters.summary()

    def test_anomalous(self):
        assert not ExecCounters(completed=100).anomalous
        assert ExecCounters(retries=1).anomalous
        assert ExecCounters(failed=1).anomalous


def test_injected_failure_is_runtime_error():
    assert issubclass(InjectedFailure, RuntimeError)
