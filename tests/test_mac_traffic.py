"""Tests for the CSMA MAC and traffic sources."""

import numpy as np
import pytest

from repro.sim.mac import CsmaConfig, CsmaMac
from repro.sim.traffic import CbrSource, PoissonSource
from repro.utils.units import dbm_to_mw
from repro.utils.rng import ensure_rng


class TestCsmaConfig:
    def test_threshold_conversion(self):
        cfg = CsmaConfig(cs_threshold_dbm=-75.0)
        assert cfg.cs_threshold_mw == pytest.approx(dbm_to_mw(-75.0))

    def test_invalid_backoffs(self):
        with pytest.raises(ValueError):
            CsmaConfig(initial_backoff_s=0)
        with pytest.raises(ValueError):
            CsmaConfig(initial_backoff_s=0.1, max_backoff_s=0.05)
        with pytest.raises(ValueError):
            CsmaConfig(max_attempts=0)


class TestCsmaMac:
    def _mac(self, **kwargs):
        cfg = CsmaConfig(**kwargs)
        return CsmaMac(cfg, ensure_rng(0)), cfg

    def test_disabled_always_transmits(self):
        mac, _ = self._mac(enabled=False)
        go, delay = mac.attempt(sensed_power_mw=1e9)
        assert go and delay == 0.0

    def test_clear_channel_transmits(self):
        mac, cfg = self._mac(enabled=True)
        go, _ = mac.attempt(sensed_power_mw=cfg.cs_threshold_mw / 10)
        assert go

    def test_busy_channel_backs_off(self):
        mac, cfg = self._mac(enabled=True)
        go, delay = mac.attempt(sensed_power_mw=cfg.cs_threshold_mw * 10)
        assert not go
        assert 0 <= delay <= cfg.initial_backoff_s

    def test_backoff_window_grows(self):
        mac, cfg = self._mac(enabled=True, max_attempts=10)
        busy = cfg.cs_threshold_mw * 10
        delays = []
        for _ in range(6):
            go, delay = mac.attempt(busy)
            if not go:
                delays.append(delay)
        # Windows double, so later delays *can* exceed the first window.
        assert mac.attempts_so_far == 6
        assert max(delays) <= cfg.max_backoff_s

    def test_sends_anyway_after_max_attempts(self):
        mac, cfg = self._mac(enabled=True, max_attempts=3)
        busy = cfg.cs_threshold_mw * 10
        outcomes = [mac.attempt(busy)[0] for _ in range(3)]
        assert outcomes == [False, False, True]

    def test_backoff_state_resets_after_send(self):
        mac, cfg = self._mac(enabled=True, max_attempts=3)
        busy = cfg.cs_threshold_mw * 10
        mac.attempt(busy)
        mac.attempt(cfg.cs_threshold_mw / 10)  # clear -> sends
        assert mac.attempts_so_far == 0


class TestTrafficSources:
    def test_poisson_mean_interval(self):
        source = PoissonSource(
            load_bits_per_s=3500.0,
            payload_bytes=1500,
            rng=ensure_rng(1),
        )
        assert source.mean_interval_s == pytest.approx(1500 * 8 / 3500)
        draws = [source.next_interval() for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(
            source.mean_interval_s, rel=0.05
        )

    def test_poisson_validation(self):
        rng = ensure_rng(0)
        with pytest.raises(ValueError):
            PoissonSource(0, 100, rng)
        with pytest.raises(ValueError):
            PoissonSource(100, 0, rng)

    def test_cbr_without_jitter_constant(self):
        source = CbrSource(
            load_bits_per_s=1000.0,
            payload_bytes=125,
            rng=ensure_rng(0),
            jitter_fraction=0.0,
        )
        assert source.next_interval() == source.next_interval() == 1.0

    def test_cbr_jitter_bounds(self):
        source = CbrSource(
            load_bits_per_s=1000.0,
            payload_bytes=125,
            rng=ensure_rng(0),
            jitter_fraction=0.2,
        )
        draws = [source.next_interval() for _ in range(200)]
        assert min(draws) >= 0.8
        assert max(draws) <= 1.2

    def test_cbr_validation(self):
        rng = ensure_rng(0)
        with pytest.raises(ValueError):
            CbrSource(1000, 125, rng, jitter_fraction=1.0)
