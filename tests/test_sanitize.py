"""Tests for the REPRO_SANITIZE runtime determinism sanitizer.

The sanitizer is the dynamic mirror of the static RP007 rule: it
ledgers every 128-bit Philox key :func:`derive_key` mints against the
call site that drew it, and fails the moment two *distinct* sites
produce one key — even when the colliding labels or ids only exist at
runtime.  These tests provoke a collision on purpose and pin the
contract details the experiment runner relies on: same-site repeats
pass, shard merging is idempotent, and :func:`suspended` disarms the
ledger for stream-identity tests.
"""

import numpy as np
import pytest

from repro.utils import sanitize
from repro.utils.rng import derive_key


@pytest.fixture()
def armed(monkeypatch):
    """Arm the sanitizer for one test (the suite may run unarmed)."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")


class TestCollisionDetection:
    def test_duplicate_key_names_both_sites(self, armed):
        """Two distinct lines deriving one key fail, and the error
        names both call sites so the collision is actionable."""
        derive_key(3, "collide", 7)  # first site
        with pytest.raises(sanitize.StreamKeyCollisionError) as excinfo:
            derive_key(3, "collide", 7)  # second site
        message = str(excinfo.value)
        first_line = excinfo.value.first_site.rsplit(":", 1)[1]
        second_line = excinfo.value.second_site.rsplit(":", 1)[1]
        assert excinfo.value.first_site != excinfo.value.second_site
        assert __file__ in excinfo.value.first_site
        assert __file__ in excinfo.value.second_site
        # Both sites appear verbatim in the message, in draw order.
        assert f":{first_line}" in message and f":{second_line}" in message
        assert int(second_line) > int(first_line)
        assert "RP007" in message

    def test_same_site_repeat_passes(self, armed):
        """Paired configs re-deriving one key from one line is fine."""
        keys = [derive_key(0, "stable", 1, 2) for _ in range(3)]
        assert all(np.array_equal(keys[0], k) for k in keys[1:])

    def test_distinct_keys_never_collide(self, armed):
        for i in range(20):
            derive_key(0, "fan-out", i)
        derive_key(1, "fan-out", 0)  # distinct seed -> distinct key

    def test_disarmed_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        derive_key(5, "unarmed")
        derive_key(5, "unarmed")  # second site: no ledger, no error
        assert not sanitize.enabled()
        assert sanitize.ledger_snapshot() == {}

    def test_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize.enabled()

    def test_suspended_disarms_and_restores(self, armed):
        assert sanitize.enabled()
        with sanitize.suspended():
            assert not sanitize.enabled()
            derive_key(9, "identity")
            derive_key(9, "identity")  # would collide if armed
        assert sanitize.enabled()
        assert sanitize.ledger_snapshot() == {}


class TestShardMerge:
    """The --jobs path: workers return ledger snapshots, the parent
    folds them in and catches collisions that only exist across
    shards."""

    def test_merge_same_site_is_idempotent(self, armed):
        key = b"\x01" * 16
        shard = {key: "worker.py:10"}
        sanitize.merge(shard)
        sanitize.merge(shard)  # a second worker ran the same config
        assert sanitize.ledger_snapshot() == shard

    def test_merge_cross_shard_collision_raises(self, armed):
        key = b"\x02" * 16
        sanitize.merge({key: "alpha.py:3"})
        with pytest.raises(sanitize.StreamKeyCollisionError) as excinfo:
            sanitize.merge({key: "beta.py:8"})
        assert "alpha.py:3" in str(excinfo.value)
        assert "beta.py:8" in str(excinfo.value)

    def test_snapshot_is_a_copy(self, armed):
        derive_key(0, "snapshot")
        snap = sanitize.ledger_snapshot()
        sanitize.reset()
        assert snap and sanitize.ledger_snapshot() == {}

    def test_reset_clears_ledger(self, armed):
        derive_key(0, "reset-me")
        sanitize.reset()
        assert sanitize.ledger_snapshot() == {}
        # After reset the same key from a new site is a fresh entry.
        derive_key(0, "reset-me")


class TestCallSite:
    def test_reports_this_file(self):
        site = sanitize.call_site(())
        path, line = site.rsplit(":", 1)
        assert path == __file__
        assert int(line) > 0

    def test_skips_listed_files(self):
        # Skipping this very file walks up to the pytest machinery.
        site = sanitize.call_site((__file__,))
        assert not site.startswith(f"{__file__}:")


class TestCheckFinite:
    def test_finite_arrays_pass(self):
        sanitize.check_finite(
            "ok",
            np.zeros(4),
            np.ones((2, 3), dtype=np.complex128),
            np.arange(5),
        )

    def test_nan_raises_with_label(self):
        bad = np.array([0.0, np.nan, 1.0])
        with pytest.raises(sanitize.NonFiniteError, match="kernel-x"):
            sanitize.check_finite("kernel-x", bad)

    def test_inf_raises(self):
        with pytest.raises(sanitize.NonFiniteError, match="output 1"):
            sanitize.check_finite("y", np.zeros(2), np.array([np.inf]))

    def test_complex_nan_raises(self):
        bad = np.array([1.0 + 0j, complex(np.nan, 0.0)])
        with pytest.raises(sanitize.NonFiniteError):
            sanitize.check_finite("z", bad)

    def test_integer_and_bool_pass_trivially(self):
        # No float interpretation: huge ints are not "inf".
        sanitize.check_finite(
            "ints", np.array([2**62]), np.array([True, False])
        )

    def test_counts_nonfinite_values(self):
        bad = np.array([np.nan, np.inf, 0.0, -np.inf])
        with pytest.raises(sanitize.NonFiniteError, match="3 non-finite"):
            sanitize.check_finite("count", bad)
