"""Tests for repro.utils.rng, units, and validation."""

import numpy as np
import pytest

from repro.utils import sanitize
from repro.utils.rng import (
    derive_key,
    derive_rng,
    ensure_rng,
    keyed_rng,
    rng_from_key,
    spawn_rngs,
)
from repro.utils.units import (
    db_to_linear,
    dbm_to_mw,
    dbm_to_watts,
    linear_to_db,
    mw_to_dbm,
    watts_to_dbm,
)
from repro.utils.validation import (
    check_in_range,
    check_nonneg_int,
    check_positive,
    check_probability,
)


class TestRng:
    def test_ensure_passes_generator_through(self):
        gen = ensure_rng(1)
        assert ensure_rng(gen) is gen

    def test_ensure_seeds_from_int(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_derive_deterministic(self):
        a = derive_rng(7, "noise").random(4)
        b = derive_rng(7, "noise").random(4)
        assert np.array_equal(a, b)

    def test_derive_labels_independent(self):
        a = derive_rng(7, "noise").random(4)
        b = derive_rng(7, "traffic").random(4)
        assert not np.array_equal(a, b)

    def test_derive_seeds_independent(self):
        a = derive_rng(7, "noise").random(4)
        b = derive_rng(8, "noise").random(4)
        assert not np.array_equal(a, b)

    def test_spawn_count(self):
        children = spawn_rngs(ensure_rng(0), 5)
        assert len(children) == 5
        draws = {float(c.random()) for c in children}
        assert len(draws) == 5  # streams differ

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(ensure_rng(0), -1)

    def test_spawn_zero_is_empty(self):
        assert spawn_rngs(ensure_rng(0), 0) == []

    def test_ensure_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestKeyedStreams:
    def test_derive_key_shape_and_stability(self):
        # One call site deriving twice: REPRO_SANITIZE allows a key to
        # repeat from one site, only two *distinct* sites collide.
        first, second = (derive_key(7, "channel", 3, 9) for _ in range(2))
        assert first.shape == (2,) and first.dtype == np.dtype("<u8")
        assert np.array_equal(first, second)

    def test_derive_key_pinned_value(self):
        # Frozen forever: keys address persisted per-pair streams, so
        # a change here is a determinism break, not a refactor.
        key = derive_key(0, "pin")
        assert [int(k) for k in key] == [
            8470707281523931788,
            16924226012717884954,
        ]

    def test_derive_key_id_widths_do_not_alias(self):
        # (1, 2) must not collide with (12,) or ("1:2" vs "12") style
        # concatenation bugs.
        base = derive_key(0, "s", 1, 2)
        assert not np.array_equal(base, derive_key(0, "s", 12))
        assert not np.array_equal(base, derive_key(0, "s", 1, 2, 0))

    def test_keyed_rng_matches_rng_from_key(self):
        # Two construction paths for one stream is this test's point;
        # the sanitizer would (correctly) read it as a collision.
        with sanitize.suspended():
            a = keyed_rng(5, "noise", 1, 2).random(8)
            b = rng_from_key(derive_key(5, "noise", 1, 2)).random(8)
        assert np.array_equal(a, b)

    def test_keyed_streams_independent_across_ids(self):
        a = keyed_rng(5, "noise", 0).random(8)
        b = keyed_rng(5, "noise", 1).random(8)
        assert not np.array_equal(a, b)


class TestUnits:
    def test_db_linear_roundtrip(self):
        for db in (-30.0, 0.0, 3.0, 20.0):
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_known_values(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(3.0) == pytest.approx(1.995, rel=1e-3)
        assert dbm_to_mw(0.0) == pytest.approx(1.0)
        assert dbm_to_mw(30.0) == pytest.approx(1000.0)
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_dbm_roundtrip(self):
        for dbm in (-95.0, -30.0, 0.0, 20.0):
            assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm)
            assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_array_support(self):
        out = dbm_to_mw(np.array([0.0, 10.0]))
        assert out.tolist() == pytest.approx([1.0, 10.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            mw_to_dbm(-1.0)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_nonneg_int(self):
        assert check_nonneg_int("n", 3) == 3
        with pytest.raises(ValueError):
            check_nonneg_int("n", -1)
        with pytest.raises(ValueError):
            check_nonneg_int("n", 1.5)
        with pytest.raises(ValueError):
            check_nonneg_int("n", True)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        assert check_probability("p", 0) == 0.0
        with pytest.raises(ValueError):
            check_probability("p", 1.1)

    def test_check_in_range(self):
        check_in_range("v", 5, 0, 10)
        with pytest.raises(ValueError, match=r"\[0, 10\]"):
            check_in_range("v", 11, 0, 10)
