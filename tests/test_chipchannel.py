"""Tests for the chip-level channel and its error-probability models."""

import numpy as np
import pytest

from repro.phy.chipchannel import (
    chip_error_probability,
    chip_error_probability_interference,
    sinr_timeline_to_chip_probs,
    transmit_chipwords,
    transmit_chipwords_batch,
)
from repro.utils.bitops import popcount32
from repro.utils.rng import derive_key


class TestChipErrorProbability:
    def test_zero_sinr_is_coin_flip(self):
        assert chip_error_probability(0.0) == pytest.approx(0.5)

    def test_high_sinr_is_negligible(self):
        assert chip_error_probability(100.0) < 1e-10

    def test_monotone_decreasing(self):
        sinrs = np.logspace(-2, 2, 30)
        p = chip_error_probability(sinrs)
        assert np.all(np.diff(p) < 0)

    def test_known_value(self):
        # p = Q(sqrt(2)) at SINR = 1 (0 dB) ~ 0.0786.
        assert chip_error_probability(1.0) == pytest.approx(0.0786, abs=2e-3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chip_error_probability(-0.1)


class TestInterferenceModel:
    def test_reduces_to_noise_only_without_interference(self):
        snr = np.array([0.5, 1.0, 10.0])
        a = chip_error_probability_interference(snr, np.zeros(3))
        b = chip_error_probability(snr)
        assert a == pytest.approx(b)

    def test_equal_power_collision_approaches_quarter(self):
        # At high SNR with I = S, half the interferer chips oppose and
        # cancel the signal entirely: p -> 0.25.
        p = chip_error_probability_interference(1e4, 1.0)
        assert p == pytest.approx(0.25, abs=0.01)

    def test_dominant_interferer_approaches_half(self):
        p = chip_error_probability_interference(1e4, 100.0)
        assert p == pytest.approx(0.5, abs=0.01)

    def test_weak_interferer_captured_through(self):
        # Interferer 10 dB down at 20 dB SNR: essentially error-free.
        p = chip_error_probability_interference(100.0, 0.1)
        assert p < 1e-3

    def test_infinite_interference_is_half(self):
        p = chip_error_probability_interference(
            np.array([100.0]), np.array([np.inf])
        )
        assert p[0] == pytest.approx(0.5)

    def test_monotone_in_interference(self):
        isrs = np.linspace(0, 4, 40)
        p = chip_error_probability_interference(
            np.full(40, 100.0), isrs
        )
        assert np.all(np.diff(p) >= -1e-12)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            chip_error_probability_interference(-1.0, 0.0)
        with pytest.raises(ValueError):
            chip_error_probability_interference(1.0, -1.0)


class TestTransmitChipwords:
    def test_p_zero_identity(self, codebook, rng):
        words = codebook.encode_words(rng.integers(0, 16, 100))
        assert np.array_equal(transmit_chipwords(words, 0.0, rng), words)

    def test_p_one_inverts_everything(self, codebook, rng):
        words = codebook.encode_words(rng.integers(0, 16, 100))
        received = transmit_chipwords(words, 1.0, rng)
        assert np.array_equal(received, words ^ np.uint32(0xFFFFFFFF))

    def test_empirical_flip_rate(self, rng):
        words = np.zeros(2000, dtype=np.uint32)
        received = transmit_chipwords(words, 0.1, rng)
        rate = popcount32(received).sum() / (2000 * 32)
        assert rate == pytest.approx(0.1, abs=0.01)

    def test_per_symbol_probabilities(self, rng):
        words = np.zeros(1000, dtype=np.uint32)
        p = np.concatenate([np.zeros(500), np.full(500, 0.5)])
        received = transmit_chipwords(words, p, rng)
        assert popcount32(received[:500]).sum() == 0
        noisy_rate = popcount32(received[500:]).sum() / (500 * 32)
        assert noisy_rate == pytest.approx(0.5, abs=0.03)

    def test_deterministic_under_seed(self, codebook):
        words = codebook.encode_words(np.arange(16))
        a = transmit_chipwords(words, 0.2, 77)
        b = transmit_chipwords(words, 0.2, 77)
        assert np.array_equal(a, b)

    def test_empty_input(self, rng):
        out = transmit_chipwords(np.zeros(0, dtype=np.uint32), 0.3, rng)
        assert out.size == 0

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            transmit_chipwords(np.zeros(1, dtype=np.uint32), 1.5, rng)

    def test_nan_probability_rejected(self, rng):
        """NaN compares false to both range bounds, so the old check
        let it through and the channel silently produced no flips."""
        words = np.zeros(4, dtype=np.uint32)
        with pytest.raises(ValueError, match="finite"):
            transmit_chipwords(words, np.nan, rng)
        p = np.array([0.1, np.nan, 0.2, 0.0])
        with pytest.raises(ValueError, match="finite"):
            transmit_chipwords(words, p, rng)

    def test_infinite_probability_rejected(self, rng):
        with pytest.raises(ValueError, match="finite"):
            transmit_chipwords(
                np.zeros(2, dtype=np.uint32), np.inf, rng
            )


def _one_key(seed, *ids):
    """A (1, 2) key matrix for single-pair batch calls."""
    return derive_key(seed, "chip-channel", *ids)[None, :]


class TestTransmitChipwordsBatch:
    """The keyed-stream channel: randomness addressed by the pair."""

    def test_p_zero_identity(self, codebook, rng):
        words = codebook.encode_words(rng.integers(0, 16, 64))
        out = transmit_chipwords_batch(words, 0.0, [64], _one_key(0, 0, 1))
        assert np.array_equal(out, words)

    def test_p_one_inverts_everything(self, codebook, rng):
        words = codebook.encode_words(rng.integers(0, 16, 64))
        out = transmit_chipwords_batch(words, 1.0, [64], _one_key(0, 0, 1))
        assert np.array_equal(out, words ^ np.uint32(0xFFFFFFFF))

    def test_empirical_flip_rate(self):
        n = 4000
        out = transmit_chipwords_batch(
            np.zeros(n, dtype=np.uint32), 0.1, [n], _one_key(3, 5, 24)
        )
        rate = popcount32(out).sum() / (n * 32)
        assert rate == pytest.approx(0.1, abs=0.01)

    def test_fused_equals_per_pair(self, rng):
        """Concatenating many pairs' words into one call must equal
        transiting each pair separately — the invariance the network
        simulation's fused phase 2 and the multiprocess sharding rest
        on."""
        per_pair, flat_words, flat_p, sizes, keys = [], [], [], [], []
        for pair in range(7):
            n = int(rng.integers(0, 40))  # zero-size pairs included
            words = rng.integers(0, 2**32, n, dtype=np.uint32)
            p = rng.uniform(0.0, 0.4, n)
            key = derive_key(11, "chip-channel", pair, 23)
            per_pair.append(
                transmit_chipwords_batch(words, p, [n], key[None, :])
            )
            flat_words.append(words)
            flat_p.append(p)
            sizes.append(n)
            keys.append(key)
        fused = transmit_chipwords_batch(
            np.concatenate(flat_words),
            np.concatenate(flat_p),
            sizes,
            np.stack(keys),
        )
        assert np.array_equal(fused, np.concatenate(per_pair))

    def test_grouping_invariant(self, rng, monkeypatch):
        """The internal memory-bounding group width must not affect
        results (groups always hold whole pairs)."""
        import repro.phy.chipchannel as cc

        sizes = [40, 1, 73, 20, 55]
        n = sum(sizes)
        words = rng.integers(0, 2**32, n, dtype=np.uint32)
        p = rng.uniform(0, 0.5, n)
        keys = np.stack(
            [derive_key(1, "chip-channel", i, 3) for i in range(len(sizes))]
        )
        full = transmit_chipwords_batch(words, p, sizes, keys)
        monkeypatch.setattr(cc, "_BATCH_GROUP_WORDS", 16)
        assert np.array_equal(
            transmit_chipwords_batch(words, p, sizes, keys), full
        )

    def test_different_keys_different_corruption(self):
        n = 200
        words = np.zeros(n, dtype=np.uint32)
        p = np.full(n, 0.5)
        a = transmit_chipwords_batch(words, p, [n], _one_key(0, 0, 23))
        b = transmit_chipwords_batch(words, p, [n], _one_key(0, 0, 24))
        assert not np.array_equal(a, b)

    def test_empty_input(self):
        out = transmit_chipwords_batch(
            np.zeros(0, dtype=np.uint32),
            0.3,
            np.zeros(0, dtype=np.int64),
            np.zeros((0, 2), dtype=np.uint64),
        )
        assert out.size == 0

    def test_invalid_inputs_rejected(self):
        words = np.zeros(4, dtype=np.uint32)
        key = _one_key(0, 0)
        with pytest.raises(ValueError, match="finite"):
            transmit_chipwords_batch(words, np.nan, [4], key)
        with pytest.raises(ValueError):
            transmit_chipwords_batch(words, 1.5, [4], key)
        with pytest.raises(ValueError, match="sizes"):
            transmit_chipwords_batch(words, 0.1, [3], key)
        with pytest.raises(ValueError, match="keys"):
            transmit_chipwords_batch(
                words, 0.1, [2, 2], np.zeros((3, 2), np.uint64)
            )


class TestSinrTimeline:
    def test_interference_raises_error_probability(self):
        probs = sinr_timeline_to_chip_probs(
            signal_mw=1.0,
            noise_mw=0.01,
            interference_mw=np.array([0.0, 1.0, 10.0]),
        )
        assert np.all(np.diff(probs) > 0)
        assert probs[0] < 1e-10

    def test_invalid_powers_rejected(self):
        with pytest.raises(ValueError):
            sinr_timeline_to_chip_probs(0.0, 1.0, np.zeros(1))
        with pytest.raises(ValueError):
            sinr_timeline_to_chip_probs(1.0, 0.0, np.zeros(1))
        with pytest.raises(ValueError):
            sinr_timeline_to_chip_probs(1.0, 1.0, np.array([-1.0]))
