"""Tests for the chip-level channel and its error-probability models."""

import numpy as np
import pytest

from repro.phy.chipchannel import (
    chip_error_probability,
    chip_error_probability_interference,
    sinr_timeline_to_chip_probs,
    transmit_chipwords,
)
from repro.utils.bitops import popcount32


class TestChipErrorProbability:
    def test_zero_sinr_is_coin_flip(self):
        assert chip_error_probability(0.0) == pytest.approx(0.5)

    def test_high_sinr_is_negligible(self):
        assert chip_error_probability(100.0) < 1e-10

    def test_monotone_decreasing(self):
        sinrs = np.logspace(-2, 2, 30)
        p = chip_error_probability(sinrs)
        assert np.all(np.diff(p) < 0)

    def test_known_value(self):
        # p = Q(sqrt(2)) at SINR = 1 (0 dB) ~ 0.0786.
        assert chip_error_probability(1.0) == pytest.approx(0.0786, abs=2e-3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chip_error_probability(-0.1)


class TestInterferenceModel:
    def test_reduces_to_noise_only_without_interference(self):
        snr = np.array([0.5, 1.0, 10.0])
        a = chip_error_probability_interference(snr, np.zeros(3))
        b = chip_error_probability(snr)
        assert a == pytest.approx(b)

    def test_equal_power_collision_approaches_quarter(self):
        # At high SNR with I = S, half the interferer chips oppose and
        # cancel the signal entirely: p -> 0.25.
        p = chip_error_probability_interference(1e4, 1.0)
        assert p == pytest.approx(0.25, abs=0.01)

    def test_dominant_interferer_approaches_half(self):
        p = chip_error_probability_interference(1e4, 100.0)
        assert p == pytest.approx(0.5, abs=0.01)

    def test_weak_interferer_captured_through(self):
        # Interferer 10 dB down at 20 dB SNR: essentially error-free.
        p = chip_error_probability_interference(100.0, 0.1)
        assert p < 1e-3

    def test_infinite_interference_is_half(self):
        p = chip_error_probability_interference(
            np.array([100.0]), np.array([np.inf])
        )
        assert p[0] == pytest.approx(0.5)

    def test_monotone_in_interference(self):
        isrs = np.linspace(0, 4, 40)
        p = chip_error_probability_interference(
            np.full(40, 100.0), isrs
        )
        assert np.all(np.diff(p) >= -1e-12)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            chip_error_probability_interference(-1.0, 0.0)
        with pytest.raises(ValueError):
            chip_error_probability_interference(1.0, -1.0)


class TestTransmitChipwords:
    def test_p_zero_identity(self, codebook, rng):
        words = codebook.encode_words(rng.integers(0, 16, 100))
        assert np.array_equal(transmit_chipwords(words, 0.0, rng), words)

    def test_p_one_inverts_everything(self, codebook, rng):
        words = codebook.encode_words(rng.integers(0, 16, 100))
        received = transmit_chipwords(words, 1.0, rng)
        assert np.array_equal(received, words ^ np.uint32(0xFFFFFFFF))

    def test_empirical_flip_rate(self, rng):
        words = np.zeros(2000, dtype=np.uint32)
        received = transmit_chipwords(words, 0.1, rng)
        rate = popcount32(received).sum() / (2000 * 32)
        assert rate == pytest.approx(0.1, abs=0.01)

    def test_per_symbol_probabilities(self, rng):
        words = np.zeros(1000, dtype=np.uint32)
        p = np.concatenate([np.zeros(500), np.full(500, 0.5)])
        received = transmit_chipwords(words, p, rng)
        assert popcount32(received[:500]).sum() == 0
        noisy_rate = popcount32(received[500:]).sum() / (500 * 32)
        assert noisy_rate == pytest.approx(0.5, abs=0.03)

    def test_deterministic_under_seed(self, codebook):
        words = codebook.encode_words(np.arange(16))
        a = transmit_chipwords(words, 0.2, 77)
        b = transmit_chipwords(words, 0.2, 77)
        assert np.array_equal(a, b)

    def test_empty_input(self, rng):
        out = transmit_chipwords(np.zeros(0, dtype=np.uint32), 0.3, rng)
        assert out.size == 0

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            transmit_chipwords(np.zeros(1, dtype=np.uint32), 1.5, rng)

    def test_nan_probability_rejected(self, rng):
        """NaN compares false to both range bounds, so the old check
        let it through and the channel silently produced no flips."""
        words = np.zeros(4, dtype=np.uint32)
        with pytest.raises(ValueError, match="finite"):
            transmit_chipwords(words, np.nan, rng)
        p = np.array([0.1, np.nan, 0.2, 0.0])
        with pytest.raises(ValueError, match="finite"):
            transmit_chipwords(words, p, rng)

    def test_infinite_probability_rejected(self, rng):
        with pytest.raises(ValueError, match="finite"):
            transmit_chipwords(
                np.zeros(2, dtype=np.uint32), np.inf, rng
            )


class TestSinrTimeline:
    def test_interference_raises_error_probability(self):
        probs = sinr_timeline_to_chip_probs(
            signal_mw=1.0,
            noise_mw=0.01,
            interference_mw=np.array([0.0, 1.0, 10.0]),
        )
        assert np.all(np.diff(probs) > 0)
        assert probs[0] < 1e-10

    def test_invalid_powers_rejected(self):
        with pytest.raises(ValueError):
            sinr_timeline_to_chip_probs(0.0, 1.0, np.zeros(1))
        with pytest.raises(ValueError):
            sinr_timeline_to_chip_probs(1.0, 0.0, np.zeros(1))
        with pytest.raises(ValueError):
            sinr_timeline_to_chip_probs(1.0, 1.0, np.array([-1.0]))
