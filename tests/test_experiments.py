"""Tests for the experiment harness infrastructure.

The full-duration experiments run in the benchmark suite; here we
verify the run cache, the scenario/sweep API, the shared default
caches, and the fast experiments end-to-end.
"""

import numpy as np
import pytest

from repro.experiments import exp_fig13, exp_fig16
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentResult,
    RunCache,
    Scenario,
    ShapeCheck,
    default_runs,
    grid,
    labelled_evaluations,
    paper_schemes,
    sweep,
)
from repro.sim.network import SimulationConfig
from repro.utils.rng import ensure_rng


class TestShapeCheck:
    def test_rendering(self):
        check = ShapeCheck(name="x", passed=True, detail="d")
        assert str(check) == "[PASS] x (d)"
        assert str(ShapeCheck(name="y", passed=False)) == "[FAIL] y"

    def test_result_summary(self):
        result = ExperimentResult(
            experiment_id="t",
            title="T",
            paper_expectation="E",
            rendered="plot",
            shape_checks=[ShapeCheck(name="a", passed=True)],
        )
        assert result.all_passed
        assert "=== t: T ===" in result.summary()
        assert "[PASS] a" in result.summary()


class TestRunCache:
    def test_caching(self):
        runs = RunCache(duration_s=2.0, seed=1)
        a = runs.get(load=13800.0, carrier_sense=False)
        b = runs.get(load=13800.0, carrier_sense=False)
        assert a is b
        runs.clear()
        c = runs.get(load=13800.0, carrier_sense=False)
        assert c is not a

    def test_full_config_and_overrides_agree(self):
        runs = RunCache(duration_s=2.0, seed=1)
        config = runs.config_for(load=13800.0, carrier_sense=False)
        assert runs.get(config) is runs.get(
            load=13800.0, carrier_sense=False
        )

    def test_different_conditions_different_runs(self):
        runs = RunCache(duration_s=2.0, seed=1)
        a = runs.get(load=13800.0, carrier_sense=False)
        b = runs.get(load=13800.0, carrier_sense=True)
        assert a is not b

    def test_any_axis_keys_the_cache(self):
        """Seed, payload, and duration are part of the key — no axis
        can alias (the old (load, carrier-sense) tuple key would)."""
        runs = RunCache(duration_s=2.0, seed=1)
        base = runs.get(load=13800.0, carrier_sense=False)
        for overrides in (
            {"seed": 2},
            {"payload_bytes": 300},
            {"duration_s": 3.0},
        ):
            other = runs.get(
                load=13800.0, carrier_sense=False, **overrides
            )
            assert other is not base

    def test_base_overrides_via_constructor(self):
        runs = RunCache(duration_s=2.0, seed=7, payload=400)
        assert runs.base.duration_s == 2.0
        assert runs.base.seed == 7
        assert runs.base.payload_bytes == 400

    def test_unknown_field_rejected(self):
        runs = RunCache(duration_s=2.0)
        with pytest.raises(ValueError, match="unknown SimulationConfig"):
            runs.config_for(lode=13800.0)

    def test_config_with_overrides_rejected(self):
        runs = RunCache(duration_s=2.0)
        with pytest.raises(TypeError, match="not both"):
            runs.get(runs.base, load=13800.0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            RunCache(duration_s=0)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            RunCache(jobs=0)


class TestScenarioGrid:
    def test_grid_cross_product(self):
        scenarios = grid(load=(1000.0, 2000.0), seed=(1, 2))
        assert len(scenarios) == 4
        axes = [
            (dict(s.overrides)["load_bits_per_s_per_node"],
             dict(s.overrides)["seed"])
            for s in scenarios
        ]
        assert axes == [
            (1000.0, 1), (1000.0, 2), (2000.0, 1), (2000.0, 2)
        ]

    def test_scalar_axes_and_params(self):
        scenarios = grid(load=1000.0, eta=(2, 6))
        assert len(scenarios) == 2
        assert scenarios[0].param("eta") == 2
        assert scenarios[1].param("eta") == 6
        assert dict(scenarios[0].overrides) == {
            "load_bits_per_s_per_node": 1000.0
        }

    def test_near_miss_axis_names_rejected(self):
        """A typo'd config field must not silently become an inert
        evaluation parameter (the simulation would run with the base
        value while the scenario label claims otherwise)."""
        for typo in ("carier_sense", "laod", "seeed"):
            with pytest.raises(ValueError, match="suspiciously close"):
                grid(**{typo: True})

    def test_scenario_config_resolution(self):
        base = SimulationConfig(seed=9)
        scenario = Scenario(
            overrides=(("load_bits_per_s_per_node", 9999.0),)
        )
        config = scenario.config(base)
        assert config.load_bits_per_s_per_node == 9999.0
        assert config.seed == 9

    def test_label(self):
        scenario = grid(load=1000.0, seed=3, eta=6)[0]
        assert scenario.label() == "load=1000.0, seed=3, eta=6"
        assert Scenario().label() == "base"

    def test_sweep_runs_through_cache(self):
        cache = RunCache(duration_s=2.0, seed=1)
        pairs = sweep(
            loads=(9000.0, 13800.0), carrier_sense=False
        ).run(cache)
        assert len(pairs) == 2
        for scenario, result in pairs:
            expected = scenario.config(cache.base)
            assert result.config == expected
            assert cache.get(expected) is result


class TestDefaultRuns:
    def test_same_parameters_share_a_cache(self):
        a = default_runs(duration_s=2.5, seed=3)
        b = default_runs(duration_s=2.5, seed=3)
        assert a is b

    def test_parameters_honoured(self):
        """The old singleton silently ignored caller parameters; the
        shared caches are keyed by their base config."""
        configured = default_runs(duration_s=2.5, seed=3)
        assert configured.base.duration_s == 2.5
        assert configured.base.seed == 3
        assert configured is not default_runs()
        assert default_runs().base.seed == DEFAULT_SEED

    def test_jobs_is_part_of_the_key(self):
        """Requesting a worker count yields a dedicated cache; it no
        longer mutates ``jobs`` on the shared instance, so one
        caller's setting cannot leak into other callers of the same
        base config."""
        parallel = default_runs(duration_s=2.5, seed=3, jobs=2)
        assert parallel.jobs == 2
        assert parallel is default_runs(duration_s=2.5, seed=3, jobs=2)
        serial = default_runs(duration_s=2.5, seed=3)
        assert serial.jobs == 1
        assert serial is not parallel

    def test_store_is_part_of_the_key(self, tmp_path):
        from repro.store import RunStore

        backed = default_runs(
            duration_s=2.5, seed=3, store=RunStore(tmp_path / "a")
        )
        assert backed.store is not None
        # Same root: same cache (a fresh RunStore handle is fine).
        assert backed is default_runs(
            duration_s=2.5, seed=3, store=RunStore(tmp_path / "a")
        )
        # Different root or no store: different cache.
        other = default_runs(
            duration_s=2.5, seed=3, store=RunStore(tmp_path / "b")
        )
        assert other is not backed
        assert default_runs(duration_s=2.5, seed=3).store is None


class TestEvaluationHelpers:
    def test_paper_schemes_parameters(self):
        schemes = paper_schemes()
        assert schemes[1].n_fragments == 30
        assert schemes[2].eta == 6.0

    def test_labelled_evaluations_keys(self):
        runs = RunCache(duration_s=2.0, seed=1)
        result = runs.get(load=13800.0, carrier_sense=False)
        evals = labelled_evaluations(result)
        assert set(evals) == {
            "packet_crc, no postamble",
            "fragmented_crc, no postamble",
            "ppr, no postamble",
            "packet_crc, postamble",
            "fragmented_crc, postamble",
            "ppr, postamble",
        }
        postamble_only = labelled_evaluations(
            result, postamble_options=(True,)
        )
        assert set(postamble_only) == {
            "packet_crc, postamble",
            "fragmented_crc, postamble",
            "ppr, postamble",
        }


class TestFastExperiments:
    def test_fig13_collision_anatomy(self):
        result = exp_fig13.run()
        assert result.all_passed, result.summary()
        assert result.series["packet1_hints"].size == 120
        # The rendered plot names both packets.
        assert "packet 1" in result.rendered

    def test_fig13_parameter_validation(self):
        with pytest.raises(ValueError):
            exp_fig13.run(n_body_symbols=10, overlap_symbols=20)

    def test_fig13_deterministic(self):
        a = exp_fig13.run(seed=3)
        b = exp_fig13.run(seed=3)
        assert np.array_equal(
            a.series["packet1_hints"], b.series["packet1_hints"]
        )

    def test_fig16_pparq_sizes(self):
        result = exp_fig16.run(n_packets=20, seed=2)
        assert result.all_passed, result.summary()
        sizes = result.series["retransmit_sizes"]
        assert sizes.size > 0
        assert result.series["savings"] > 0

    def test_fig16_bursty_channel_validation(self):
        from repro.experiments.exp_fig16 import BurstyLinkChannel
        from repro.phy.codebook import ZigbeeCodebook

        with pytest.raises(ValueError):
            BurstyLinkChannel(
                ZigbeeCodebook(),
                ensure_rng(0),
                burst_prob=1.5,
            )
        with pytest.raises(ValueError):
            BurstyLinkChannel(
                ZigbeeCodebook(),
                ensure_rng(0),
                burst_frac_range=(0.5, 0.2),
            )
