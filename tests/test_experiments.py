"""Tests for the experiment harness.

The full-duration experiments run in the benchmark suite; here we
verify harness structure, the fast experiments end-to-end, and that the
shared run cache behaves.
"""

import numpy as np
import pytest

from repro.experiments import exp_fig13, exp_fig16
from repro.experiments.common import (
    CapacityRuns,
    ExperimentResult,
    ShapeCheck,
    paper_schemes,
)
from repro.experiments.runner import EXPERIMENTS, run_experiments


class TestShapeCheck:
    def test_rendering(self):
        check = ShapeCheck(name="x", passed=True, detail="d")
        assert str(check) == "[PASS] x (d)"
        assert str(ShapeCheck(name="y", passed=False)) == "[FAIL] y"

    def test_result_summary(self):
        result = ExperimentResult(
            experiment_id="t",
            title="T",
            paper_expectation="E",
            rendered="plot",
            shape_checks=[ShapeCheck(name="a", passed=True)],
        )
        assert result.all_passed
        assert "=== t: T ===" in result.summary()
        assert "[PASS] a" in result.summary()


class TestCapacityRuns:
    def test_caching(self):
        runs = CapacityRuns(duration_s=2.0, seed=1)
        a = runs.get(13800.0, carrier_sense=False)
        b = runs.get(13800.0, carrier_sense=False)
        assert a is b
        runs.clear()
        c = runs.get(13800.0, carrier_sense=False)
        assert c is not a

    def test_different_conditions_different_runs(self):
        runs = CapacityRuns(duration_s=2.0, seed=1)
        a = runs.get(13800.0, carrier_sense=False)
        b = runs.get(13800.0, carrier_sense=True)
        assert a is not b

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            CapacityRuns(duration_s=0)

    def test_paper_schemes_parameters(self):
        schemes = paper_schemes()
        assert schemes[1].n_fragments == 30
        assert schemes[2].eta == 6.0


class TestRegistry:
    def test_every_paper_result_has_an_experiment(self):
        expected = {
            "table1",
            "table2",
            "fig3",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            run_experiments(["fig99"], duration_s=1.0)


class TestFastExperiments:
    def test_fig13_collision_anatomy(self):
        result = exp_fig13.run()
        assert result.all_passed, result.summary()
        assert result.series["packet1_hints"].size == 120
        # The rendered plot names both packets.
        assert "packet 1" in result.rendered

    def test_fig13_parameter_validation(self):
        with pytest.raises(ValueError):
            exp_fig13.run(n_body_symbols=10, overlap_symbols=20)

    def test_fig13_deterministic(self):
        a = exp_fig13.run(seed=3)
        b = exp_fig13.run(seed=3)
        assert np.array_equal(
            a.series["packet1_hints"], b.series["packet1_hints"]
        )

    def test_fig16_pparq_sizes(self):
        result = exp_fig16.run(n_packets=20, seed=2)
        assert result.all_passed, result.summary()
        sizes = result.series["retransmit_sizes"]
        assert sizes.size > 0
        assert result.series["savings"] > 0

    def test_fig16_bursty_channel_validation(self):
        from repro.experiments.exp_fig16 import BurstyLinkChannel
        from repro.phy.codebook import ZigbeeCodebook

        with pytest.raises(ValueError):
            BurstyLinkChannel(
                ZigbeeCodebook(),
                np.random.default_rng(0),
                burst_prob=1.5,
            )
        with pytest.raises(ValueError):
            BurstyLinkChannel(
                ZigbeeCodebook(),
                np.random.default_rng(0),
                burst_frac_range=(0.5, 0.2),
            )
