"""Tests for multi-receiver diversity combining (paper §8.4)."""

import numpy as np
import pytest

from repro.link.diversity import combine_soft_packets, diversity_gain
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.symbols import SoftPacket


def _reception(codebook, truth, p, rng):
    words = codebook.encode_words(truth)
    received = transmit_chipwords(words, p, rng)
    decoded, dist = codebook.decode_hard(received)
    return SoftPacket(
        symbols=decoded, hints=dist.astype(float), truth=truth
    )


class TestCombining:
    def test_min_hint_wins(self):
        a = SoftPacket(
            symbols=np.array([1, 2]), hints=np.array([0.0, 9.0])
        )
        b = SoftPacket(
            symbols=np.array([5, 6]), hints=np.array([4.0, 1.0])
        )
        result = combine_soft_packets([a, b])
        assert result.combined.symbols.tolist() == [1, 6]
        assert result.combined.hints.tolist() == [0.0, 1.0]
        assert result.chosen_source.tolist() == [0, 1]

    def test_tie_goes_to_earlier_packet(self):
        a = SoftPacket(symbols=np.array([1]), hints=np.array([2.0]))
        b = SoftPacket(symbols=np.array([9]), hints=np.array([2.0]))
        result = combine_soft_packets([a, b])
        assert result.combined.symbols[0] == 1

    def test_single_packet_identity(self):
        a = SoftPacket(
            symbols=np.array([3, 4]), hints=np.array([1.0, 2.0])
        )
        result = combine_soft_packets([a])
        assert np.array_equal(result.combined.symbols, a.symbols)
        assert result.source_share(0) == 1.0

    def test_length_mismatch_rejected(self):
        a = SoftPacket(symbols=np.array([1]), hints=np.array([0.0]))
        b = SoftPacket(symbols=np.array([1, 2]), hints=np.zeros(2))
        with pytest.raises(ValueError, match="same symbol count"):
            combine_soft_packets([a, b])

    def test_truth_disagreement_rejected(self):
        a = SoftPacket(
            symbols=np.array([1]),
            hints=np.array([0.0]),
            truth=np.array([1]),
        )
        b = SoftPacket(
            symbols=np.array([1]),
            hints=np.array([0.0]),
            truth=np.array([2]),
        )
        with pytest.raises(ValueError, match="ground truth"):
            combine_soft_packets([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_soft_packets([])


class TestDiversityGain:
    def test_complementary_bursts_fully_recovered(self, codebook, rng):
        """Two receivers hit by different collision bursts: combining
        recovers essentially the whole packet."""
        truth = rng.integers(0, 16, 400)
        p1 = np.full(400, 0.002)
        p1[:150] = 0.45  # burst at receiver 1's head
        p2 = np.full(400, 0.002)
        p2[250:] = 0.45  # burst at receiver 2's tail
        rx1 = _reception(codebook, truth, p1, rng)
        rx2 = _reception(codebook, truth, p2, rng)
        gains = diversity_gain([rx1, rx2], eta=6.0)
        assert gains["combined"] > gains["best_single"]
        assert gains["combined"] > 0.95
        assert gains["combined_miss_fraction"] < 0.02

    def test_identical_receptions_no_gain(self, codebook, rng):
        truth = rng.integers(0, 16, 200)
        p = np.full(200, 0.002)
        p[50:100] = 0.45
        words = codebook.encode_words(truth)
        received = transmit_chipwords(words, p, 3)
        decoded, dist = codebook.decode_hard(received)
        rx = SoftPacket(
            symbols=decoded, hints=dist.astype(float), truth=truth
        )
        gains = diversity_gain([rx, rx], eta=6.0)
        assert gains["combined"] == pytest.approx(gains["best_single"])

    def test_gain_on_simulated_testbed_records(self, small_sim_result):
        """Receptions of the same transmission at different testbed
        receivers combine to at least the best individual delivery."""
        from collections import defaultdict

        by_tx = defaultdict(list)
        for rec in small_sim_result.records:
            if rec.acquired(True):
                by_tx[rec.tx_id].append(rec)
        multi = [recs for recs in by_tx.values() if len(recs) >= 2]
        assert multi, "testbed run must have multi-receiver receptions"
        checked = 0
        for recs in multi[:20]:
            packets = [
                SoftPacket(
                    symbols=r.body_symbols.astype(np.int64),
                    hints=r.body_hints.astype(np.float64),
                    truth=r.body_truth.astype(np.int64),
                )
                for r in recs
            ]
            gains = diversity_gain(packets, eta=6.0)
            assert gains["combined"] >= gains["best_single"] - 1e-12
            checked += 1
        assert checked > 0
