"""Tests for the three delivery schemes of paper §7.2."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.link.schemes import (
    FragmentedCrcScheme,
    PacketCrcScheme,
    PprScheme,
    ReceivedPayload,
    SpracScheme,
    default_schemes,
)
from repro.phy.spreading import bytes_to_symbols


def _clean_rx(scheme, payload):
    wire = scheme.encode_payload(payload)
    symbols = bytes_to_symbols(wire)
    return ReceivedPayload(
        symbols=symbols, hints=np.zeros(symbols.size), truth=symbols
    )


def _corrupt_rx(scheme, payload, sym_lo, sym_hi, hint=10.0):
    """Corrupt symbols in [sym_lo, sym_hi) with high hints."""
    wire = scheme.encode_payload(payload)
    truth = bytes_to_symbols(wire)
    symbols = truth.copy()
    symbols[sym_lo:sym_hi] = (symbols[sym_lo:sym_hi] + 1) % 16
    hints = np.zeros(truth.size)
    hints[sym_lo:sym_hi] = hint
    return ReceivedPayload(symbols=symbols, hints=hints, truth=truth)


PAYLOAD = bytes(range(120))


class TestPacketCrc:
    def test_clean_delivers_everything(self):
        scheme = PacketCrcScheme()
        result = scheme.deliver(_clean_rx(scheme, PAYLOAD))
        assert result.frame_passed
        assert result.delivered_correct_bits == 8 * len(PAYLOAD)
        assert result.delivered_incorrect_bits == 0
        assert result.delivery_fraction == 1.0

    def test_single_corrupt_symbol_kills_packet(self):
        scheme = PacketCrcScheme()
        result = scheme.deliver(_corrupt_rx(scheme, PAYLOAD, 5, 6))
        assert not result.frame_passed
        assert result.delivered_bits == 0

    def test_overhead_is_one_crc(self):
        assert PacketCrcScheme().wire_overhead_bytes(1500) == 4

    def test_short_wire_rejected(self):
        scheme = PacketCrcScheme()
        rx = ReceivedPayload(
            symbols=np.zeros(2, dtype=np.int64),
            hints=np.zeros(2),
            truth=np.zeros(2, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="shorter"):
            scheme.deliver(rx)


class TestFragmentedCrc:
    def test_clean_delivers_everything(self):
        scheme = FragmentedCrcScheme(n_fragments=10)
        result = scheme.deliver(_clean_rx(scheme, PAYLOAD))
        assert result.frame_passed
        assert result.delivered_correct_bits == 8 * len(PAYLOAD)

    def test_corrupt_fragment_loses_only_that_fragment(self):
        scheme = FragmentedCrcScheme(n_fragments=10)
        # 120-byte payload, 10 fragments of 12 bytes (24 symbols) + CRC.
        result = scheme.deliver(_corrupt_rx(scheme, PAYLOAD, 0, 2))
        assert not result.frame_passed
        assert result.delivered_correct_bits == 8 * (len(PAYLOAD) - 12)

    def test_corrupt_crc_field_loses_fragment(self):
        scheme = FragmentedCrcScheme(n_fragments=10)
        # Symbols 24..31 are the first fragment's CRC.
        result = scheme.deliver(_corrupt_rx(scheme, PAYLOAD, 24, 25))
        assert result.delivered_correct_bits == 8 * (len(PAYLOAD) - 12)

    def test_overhead_scales_with_fragments(self):
        assert FragmentedCrcScheme(30).wire_overhead_bytes(1500) == 120
        assert FragmentedCrcScheme(30).wire_overhead_bytes(10) == 40

    def test_encode_layout(self):
        scheme = FragmentedCrcScheme(n_fragments=2)
        wire = scheme.encode_payload(b"abcdef")
        assert len(wire) == 6 + 8
        from repro.utils.crc import CRC32_IEEE

        assert wire[3:7] == CRC32_IEEE.compute_bytes(b"abc")
        assert wire[7:10] == b"def"
        assert wire[10:] == CRC32_IEEE.compute_bytes(b"def")

    def test_invalid_fragment_count(self):
        with pytest.raises(ValueError):
            FragmentedCrcScheme(n_fragments=0)

    def test_payload_shorter_than_fragments(self):
        scheme = FragmentedCrcScheme(n_fragments=30)
        result = scheme.deliver(_clean_rx(scheme, b"abc"))
        assert result.frame_passed
        assert result.delivered_correct_bits == 24


class TestPpr:
    def test_clean_delivers_everything(self):
        scheme = PprScheme(eta=6)
        result = scheme.deliver(_clean_rx(scheme, PAYLOAD))
        assert result.frame_passed
        assert result.delivered_correct_bits == 8 * len(PAYLOAD)

    def test_partial_delivery_around_burst(self):
        scheme = PprScheme(eta=6)
        result = scheme.deliver(_corrupt_rx(scheme, PAYLOAD, 10, 50))
        assert not result.frame_passed
        # 40 corrupt symbols excluded, everything else delivered.
        assert result.delivered_correct_bits == 4 * (240 - 40)
        assert result.delivered_incorrect_bits == 0

    def test_miss_counts_as_incorrect_delivery(self):
        scheme = PprScheme(eta=6)
        # Corrupt symbols with LOW hints: SoftPHY misses.
        rx = _corrupt_rx(scheme, PAYLOAD, 10, 12, hint=2.0)
        result = scheme.deliver(rx)
        assert result.delivered_incorrect_bits == 8
        assert result.delivered_correct_bits == 4 * 238

    def test_false_alarm_withholds_correct_bits(self):
        scheme = PprScheme(eta=6)
        wire = scheme.encode_payload(PAYLOAD)
        truth = bytes_to_symbols(wire)
        hints = np.zeros(truth.size)
        hints[:4] = 9.0  # correct symbols, bad hints
        rx = ReceivedPayload(symbols=truth, hints=hints, truth=truth)
        result = scheme.deliver(rx)
        assert result.delivered_correct_bits == 4 * (240 - 4)
        assert result.frame_passed  # CRC still verifies

    def test_same_wire_format_as_packet_crc(self):
        assert PprScheme().encode_payload(PAYLOAD) == PacketCrcScheme(
        ).encode_payload(PAYLOAD)

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            PprScheme(eta=-1)


class TestCommon:
    def test_default_schemes_composition(self):
        schemes = default_schemes()
        names = [s.name for s in schemes]
        assert names == ["packet_crc", "fragmented_crc", "ppr"]

    def test_wire_length(self):
        for scheme in default_schemes():
            assert scheme.wire_length(100) == 100 + (
                scheme.wire_overhead_bytes(100)
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="identical"):
            ReceivedPayload(
                symbols=np.zeros(4, dtype=np.int64),
                hints=np.zeros(3),
                truth=np.zeros(4, dtype=np.int64),
            )

    @given(
        st.binary(min_size=8, max_size=200),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_ppr_never_delivers_more_than_payload(self, payload, start):
        scheme = PprScheme(eta=6)
        n_payload_syms = 2 * len(payload)
        lo = min(start, n_payload_syms - 1)
        rx = _corrupt_rx(scheme, payload, lo, lo + 3)
        result = scheme.deliver(rx)
        assert 0 <= result.delivered_bits <= result.payload_bits
        assert (
            result.delivered_correct_bits + result.delivered_incorrect_bits
            == result.delivered_bits
        )


class TestSprac:
    def test_clean_delivers_everything(self):
        scheme = SpracScheme(n_segments=6, n_repair=3)
        result = scheme.deliver(_clean_rx(scheme, PAYLOAD))
        assert result.payload_bits == 8 * len(PAYLOAD)
        assert result.delivered_correct_bits == result.payload_bits
        assert result.delivered_incorrect_bits == 0
        assert result.frame_passed

    def test_corrupt_segment_recovered_by_coding(self):
        scheme = SpracScheme(n_segments=6, n_repair=3, field="gf256")
        # Segment 0 occupies bytes [0, 20) -> symbols [0, 40).
        rx = _corrupt_rx(scheme, PAYLOAD, 0, 4)
        result = scheme.deliver(rx)
        assert result.frame_passed
        assert result.delivered_correct_bits == 8 * len(PAYLOAD)
        assert result.delivered_incorrect_bits == 0

    def test_losses_beyond_repair_stay_lost(self):
        scheme = SpracScheme(n_segments=6, n_repair=1, field="gf256")
        wire = scheme.encode_payload(PAYLOAD)
        truth = bytes_to_symbols(wire)
        symbols = truth.copy()
        # Corrupt the first symbol of three different data segments.
        for offset, _ in scheme.codec.data_spans(len(PAYLOAD))[:3]:
            symbols[2 * offset] = (symbols[2 * offset] + 1) % 16
        rx = ReceivedPayload(
            symbols=symbols,
            hints=np.zeros(truth.size),
            truth=truth,
        )
        result = scheme.deliver(rx)
        assert not result.frame_passed
        # Three intact segments deliver; one repair row cannot cover
        # three erasures.
        assert result.delivered_correct_bits == 8 * (len(PAYLOAD) // 2)

    def test_corrupt_repair_rows_do_not_poison_delivery(self):
        scheme = SpracScheme(n_segments=6, n_repair=2)
        wire = scheme.encode_payload(PAYLOAD)
        truth = bytes_to_symbols(wire)
        symbols = truth.copy()
        for offset, _ in scheme.codec.repair_spans(len(PAYLOAD)):
            symbols[2 * offset] = (symbols[2 * offset] + 1) % 16
        rx = ReceivedPayload(
            symbols=symbols,
            hints=np.zeros(truth.size),
            truth=truth,
        )
        result = scheme.deliver(rx)
        assert result.frame_passed
        assert result.delivered_correct_bits == 8 * len(PAYLOAD)

    def test_overhead_includes_repair_payload(self):
        scheme = SpracScheme(n_segments=10, n_repair=5)
        overhead = scheme.wire_overhead_bytes(1500)
        # 15 CRCs plus 5 repair segments of ceil(1500/10) bytes.
        assert overhead == 4 * 15 + 5 * 150

    def test_default_repair_count(self):
        assert SpracScheme(n_segments=30).n_repair == 8
        assert SpracScheme(n_segments=3).n_repair == 1
