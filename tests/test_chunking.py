"""Tests for the PP-ARQ chunking DP (paper Eqs. 4-5).

The DP is checked against a brute-force enumeration of every partition
of the bad runs into consecutive groups, evaluating the paper's cost
model directly — the strongest possible correctness check for the
optimal-substructure recursion.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arq.chunking import (
    chunk_cost_naive,
    merged_single_chunk_cost,
    plan_chunks,
)
from repro.arq.runlength import RunLengthPacket
from repro.utils.rng import ensure_rng


def _partition_cost(runs, groups, checksum_bits):
    """Cost of an explicit partition, straight from Eqs. 4-5."""
    log_syms = math.log2(max(runs.n_symbols, 2))
    total = 0.0
    for i, j in groups:
        if i == j:
            total += (
                log_syms
                + math.log2(max(runs.bad[i], 2))
                + min(4 * runs.good[i], checksum_bits)
            )
        else:
            total += 2 * log_syms + 4 * sum(runs.good[i:j])
    return total


def _all_partitions(n):
    """Every partition of 0..n-1 into consecutive groups."""
    if n == 0:
        yield []
        return
    for cut_mask in itertools.product([0, 1], repeat=n - 1):
        groups = []
        start = 0
        for k, cut in enumerate(cut_mask):
            if cut:
                groups.append((start, k))
                start = k + 1
        groups.append((start, n - 1))
        yield groups


def _random_runs(rng, n_bad_runs, n_symbols=256):
    """A random RunLengthPacket with the requested number of bad runs."""
    while True:
        mask = np.ones(n_symbols, dtype=bool)
        starts = sorted(
            rng.choice(n_symbols - 10, size=n_bad_runs, replace=False)
        )
        for s in starts:
            length = int(rng.integers(1, 5))
            mask[s : s + length] = False
        runs = RunLengthPacket.from_labels(mask)
        if runs.n_bad_runs == n_bad_runs:
            return runs


class TestAgainstBruteForce:
    @pytest.mark.parametrize("n_bad", [1, 2, 3, 4, 5, 6])
    def test_dp_matches_exhaustive_search(self, rng, n_bad):
        for _ in range(10):
            runs = _random_runs(rng, n_bad)
            plan = plan_chunks(runs, checksum_bits=8)
            best = min(
                _partition_cost(runs, groups, 8)
                for groups in _all_partitions(n_bad)
            )
            assert plan.cost_bits == pytest.approx(best)

    def test_reconstructed_chunks_cost_matches(self, rng):
        runs = _random_runs(rng, 5)
        plan = plan_chunks(runs, checksum_bits=8)
        assert _partition_cost(
            runs, list(plan.chunks), 8
        ) == pytest.approx(plan.cost_bits)


class TestPlanStructure:
    def test_all_good_plan_empty(self):
        runs = RunLengthPacket.from_labels(np.ones(50, dtype=bool))
        plan = plan_chunks(runs)
        assert plan.chunks == () and plan.cost_bits == 0.0

    def test_segments_cover_every_bad_symbol(self, rng):
        runs = _random_runs(rng, 6)
        plan = plan_chunks(runs)
        covered = np.zeros(runs.n_symbols, dtype=bool)
        for start, end in plan.segments:
            covered[start:end] = True
        assert np.all(covered[~runs.good_mask()])

    def test_segments_sorted_disjoint(self, rng):
        runs = _random_runs(rng, 6)
        plan = plan_chunks(runs)
        for (_s1, e1), (s2, _e2) in zip(plan.segments, plan.segments[1:], strict=False):
            assert e1 <= s2

    def test_segments_start_end_with_bad_runs(self, rng):
        runs = _random_runs(rng, 5)
        good = runs.good_mask()
        plan = plan_chunks(runs)
        for start, end in plan.segments:
            assert not good[start]
            assert not good[end - 1]

    def test_short_good_runs_get_merged(self):
        # Two bad runs separated by one good symbol: describing two
        # chunks costs more than resending one good symbol.
        mask = np.ones(1024, dtype=bool)
        mask[100:110] = False
        mask[111:120] = False
        runs = RunLengthPacket.from_labels(mask)
        plan = plan_chunks(runs, checksum_bits=32)
        assert plan.chunks == ((0, 1),)
        assert plan.segments == ((100, 120),)

    def test_long_good_runs_stay_split(self):
        mask = np.ones(1024, dtype=bool)
        mask[100:110] = False
        mask[500:510] = False
        runs = RunLengthPacket.from_labels(mask)
        plan = plan_chunks(runs, checksum_bits=32)
        assert plan.chunks == ((0, 0), (1, 1))

    def test_requested_symbols_counted(self):
        mask = np.ones(64, dtype=bool)
        mask[10:20] = False
        runs = RunLengthPacket.from_labels(mask)
        plan = plan_chunks(runs)
        assert plan.n_requested_symbols == 10

    def test_invalid_checksum_bits(self):
        runs = RunLengthPacket.from_labels(np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            plan_chunks(runs, checksum_bits=0)


class TestCostBounds:
    @given(st.integers(1, 7), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_dp_no_worse_than_either_extreme(self, n_bad, seed):
        rng = ensure_rng(seed)
        runs = _random_runs(rng, n_bad)
        plan = plan_chunks(runs, checksum_bits=8)
        assert plan.cost_bits <= chunk_cost_naive(runs, 8) + 1e-9
        assert (
            plan.cost_bits <= merged_single_chunk_cost(runs, 8) + 1e-9
        )

    def test_naive_cost_zero_when_clean(self):
        runs = RunLengthPacket.from_labels(np.ones(10, dtype=bool))
        assert chunk_cost_naive(runs) == 0.0
        assert merged_single_chunk_cost(runs) == 0.0


class TestLargeRunReconstruction:
    def test_many_bad_runs_no_recursion_limit(self):
        """Packets with hundreds of bad runs used to blow Python's
        recursion limit during chunk reconstruction (one frame per
        split).  The iterative unfold must survive a split chain far
        deeper than any recursion budget."""
        import sys

        n_bad = 300
        mask = np.ones(n_bad * 40, dtype=bool)
        mask[::40] = False  # singleton bad runs, huge good gaps
        runs = RunLengthPacket.from_labels(mask)
        assert runs.n_bad_runs == n_bad

        frame, depth = sys._getframe(), 0
        while frame is not None:
            depth += 1
            frame = frame.f_back
        limit = sys.getrecursionlimit()
        try:
            # Tight budget above the frames already on the stack: a
            # per-split recursive reconstruction would need ~n_bad
            # more frames and die here.
            sys.setrecursionlimit(depth + 60)
            plan = plan_chunks(runs, checksum_bits=8)
        finally:
            sys.setrecursionlimit(limit)
        # Huge interior good runs make merging hopeless: every bad run
        # stays its own chunk, the worst case for reconstruction depth.
        assert len(plan.chunks) == n_bad
        assert plan.chunks[0] == (0, 0)
        assert plan.chunks[-1] == (n_bad - 1, n_bad - 1)
        assert plan.n_requested_symbols == n_bad
