"""Tests for bit/symbol/byte conversions (DSSS spreading maps)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy.spreading import (
    bits_msb_to_symbols,
    bits_to_symbols,
    bytes_to_symbols,
    symbols_to_bits,
    symbols_to_bits_msb,
    symbols_to_bytes,
)


class TestNibbleOrder:
    def test_low_nibble_first(self):
        # 802.15.4 sends the low nibble of each byte first.
        assert bytes_to_symbols(b"\xa3").tolist() == [3, 10]

    def test_symbols_to_bytes_inverse(self):
        assert symbols_to_bytes(np.array([3, 10])) == b"\xa3"

    def test_multi_byte(self):
        assert bytes_to_symbols(b"\x12\x34").tolist() == [2, 1, 4, 3]


class TestBitSymbolConversions:
    def test_lsb_first_within_symbol(self):
        # bits [1,0,0,0] -> value 1 (LSB first).
        assert bits_to_symbols(np.array([1, 0, 0, 0])).tolist() == [1]
        assert bits_to_symbols(np.array([0, 0, 0, 1])).tolist() == [8]

    def test_symbols_to_bits_inverse(self, rng):
        symbols = rng.integers(0, 16, 40)
        assert np.array_equal(
            bits_to_symbols(symbols_to_bits(symbols)), symbols
        )

    def test_rejects_partial_symbol(self):
        with pytest.raises(ValueError, match="multiple"):
            bits_to_symbols(np.ones(7, dtype=np.uint8))

    def test_rejects_out_of_range_symbols(self):
        with pytest.raises(ValueError):
            symbols_to_bits(np.array([16]))

    def test_other_symbol_widths(self):
        bits = np.array([1, 0, 1, 1, 0, 0], dtype=np.uint8)
        symbols = bits_to_symbols(bits, bits_per_symbol=2)
        assert symbols.tolist() == [1, 3, 0]
        assert np.array_equal(
            symbols_to_bits(symbols, bits_per_symbol=2), bits
        )


class TestByteRoundtrips:
    @given(st.binary(max_size=120))
    def test_bytes_symbols_roundtrip(self, data):
        assert symbols_to_bytes(bytes_to_symbols(data)) == data

    @given(st.binary(max_size=60))
    def test_msb_bit_roundtrip(self, data):
        from repro.utils.bitops import bytes_to_bits

        bits = bytes_to_bits(data)
        symbols = bits_msb_to_symbols(bits)
        assert np.array_equal(symbols_to_bits_msb(symbols), bits)

    def test_odd_symbol_count_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            symbols_to_bytes(np.array([1, 2, 3]))

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError, match="divide 8"):
            bytes_to_symbols(b"ab", bits_per_symbol=3)
