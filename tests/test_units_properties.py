"""Property tests for the unit-conversion helpers.

The RP006 dataflow rule trusts ``utils/units.py`` as the ground truth
for moving between log-scale and linear power; these hypothesis
round-trips pin that the conversions actually are inverses across the
full dynamic range the simulation uses (thermal floor near -100 dBm up
to strong transmitters), elementwise over arrays, and mutually
consistent (W is exactly mW / 1e3).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.utils.units import (
    db_to_linear,
    dbm_to_mw,
    dbm_to_watts,
    linear_to_db,
    mw_to_dbm,
    watts_to_dbm,
)

# Conversions overflow only far outside physics: +/-250 dB spans 1e-25
# to 1e25, generously past any link budget in the reproduction.
_DB = st.floats(
    min_value=-250.0, max_value=250.0, allow_nan=False, allow_infinity=False
)
_LIN = st.floats(
    min_value=1e-25, max_value=1e25, allow_nan=False, allow_infinity=False
)


class TestRoundTrips:
    @given(_DB)
    @settings(max_examples=200, deadline=None)
    def test_db_linear_db(self, db):
        assert np.isclose(linear_to_db(db_to_linear(db)), db, atol=1e-9)

    @given(_LIN)
    @settings(max_examples=200, deadline=None)
    def test_linear_db_linear(self, ratio):
        assert np.isclose(
            db_to_linear(linear_to_db(ratio)), ratio, rtol=1e-12
        )

    @given(_DB)
    @settings(max_examples=200, deadline=None)
    def test_dbm_mw_dbm(self, dbm):
        assert np.isclose(mw_to_dbm(dbm_to_mw(dbm)), dbm, atol=1e-9)

    @given(_LIN)
    @settings(max_examples=200, deadline=None)
    def test_mw_dbm_mw(self, mw):
        assert np.isclose(dbm_to_mw(mw_to_dbm(mw)), mw, rtol=1e-12)

    @given(_DB)
    @settings(max_examples=200, deadline=None)
    def test_dbm_watts_dbm(self, dbm):
        assert np.isclose(watts_to_dbm(dbm_to_watts(dbm)), dbm, atol=1e-9)


class TestMutualConsistency:
    @given(_DB)
    @settings(max_examples=200, deadline=None)
    def test_watts_is_exactly_milliwatts_scaled(self, dbm):
        # dbm_to_watts is defined as dbm_to_mw / 1e3; pin it bitwise so
        # the two absolute-power paths can never drift apart.
        assert dbm_to_watts(dbm) == dbm_to_mw(dbm) / 1e3

    @given(_DB)
    @settings(max_examples=200, deadline=None)
    def test_db_and_dbm_share_one_log_rule(self, value):
        # A dB ratio and a dBm absolute level use the same 10*log10
        # mapping; only the reference (unity ratio vs 1 mW) differs.
        assert np.isclose(
            db_to_linear(value), dbm_to_mw(value), rtol=1e-12
        )

    @given(_DB, _DB)
    @settings(max_examples=200, deadline=None)
    def test_log_addition_is_linear_multiplication(self, dbm, db):
        # Applying a dB gain to a dBm level: add in log, multiply in
        # linear — the identity RP006's `dbm + db -> dbm` rule encodes.
        assert np.isclose(
            dbm_to_mw(dbm + db),
            dbm_to_mw(dbm) * db_to_linear(db),
            rtol=1e-9,
        )

    @given(_DB)
    @settings(max_examples=200, deadline=None)
    def test_monotone(self, dbm):
        assert dbm_to_mw(dbm + 1.0) > dbm_to_mw(dbm)


class TestArraySupport:
    @given(st.lists(_DB, min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_elementwise_matches_scalar(self, values):
        arr = np.array(values)
        out = dbm_to_mw(arr)
        assert out.shape == arr.shape
        assert np.allclose(
            out, [dbm_to_mw(v) for v in values], rtol=1e-12
        )

    @given(st.lists(_LIN, min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_preserves_shape(self, values):
        arr = np.array(values).reshape(1, -1)
        back = dbm_to_mw(mw_to_dbm(arr))
        assert back.shape == arr.shape
        assert np.allclose(back, arr, rtol=1e-12)
