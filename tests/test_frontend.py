"""Tests for the waveform receiver front end."""

import numpy as np
import pytest

from repro.phy.channelsim import (
    TransmissionInstance,
    add_awgn,
    awgn_collision_channel,
)
from repro.phy.frontend import ReceiverFrontend
from repro.phy.modulation import MskModulator
from repro.phy.sync import sync_field_symbols


@pytest.fixture()
def frontend(codebook):
    return ReceiverFrontend(codebook, sps=4)


def _make_frame(codebook, rng, n_body=40, sps=4):
    body = rng.integers(0, 16, n_body)
    stream = np.concatenate(
        [
            sync_field_symbols("preamble"),
            body,
            sync_field_symbols("postamble"),
        ]
    )
    wave = MskModulator(sps=sps).modulate_symbols(stream, codebook)
    return body, wave


class TestDetection:
    def test_detects_both_sync_fields(self, frontend, codebook, rng):
        body, wave = _make_frame(codebook, rng)
        noisy = add_awgn(wave, 0.05, rng)
        pre = frontend.detect(noisy, "preamble")
        post = frontend.detect(noisy, "postamble")
        assert len(pre) == 1 and pre[0].sample_offset == 0
        expected_post = (10 + body.size) * 32 * 4
        assert len(post) == 1 and post[0].sample_offset == expected_post

    def test_detection_score_reasonable(self, frontend, codebook, rng):
        _, wave = _make_frame(codebook, rng)
        det = frontend.detect(wave, "preamble")[0]
        assert det.score > 0.95  # noiseless

    def test_no_detection_in_pure_noise(self, frontend, rng):
        noise = add_awgn(np.zeros(8000, dtype=complex), 1.0, rng)
        assert frontend.detect(noise, "preamble") == []

    def test_phase_estimated(self, frontend, codebook, rng):
        _, wave = _make_frame(codebook, rng)
        rotated = wave * np.exp(1j * 0.7)
        det = frontend.detect(rotated, "preamble")[0]
        assert det.phase == pytest.approx(0.7, abs=0.1)


class TestDecoding:
    def test_forward_decode_from_preamble(self, frontend, codebook, rng):
        body, wave = _make_frame(codebook, rng)
        noisy = add_awgn(wave, 0.1, rng)
        det = frontend.detect(noisy, "preamble")[0]
        symbols, hints = frontend.decode_symbols_at(
            noisy, det.sample_offset, 10, body.size, det.phase
        )
        assert np.array_equal(symbols, body)
        assert hints.mean() < 1.0

    def test_rollback_decode_from_postamble(self, frontend, codebook, rng):
        body, wave = _make_frame(codebook, rng)
        noisy = add_awgn(wave, 0.1, rng)
        det = frontend.detect(noisy, "postamble")[0]
        symbols, _ = frontend.decode_symbols_at(
            noisy, det.sample_offset, -body.size, body.size, det.phase
        )
        assert np.array_equal(symbols, body)

    def test_decode_with_phase_offset(self, frontend, codebook, rng):
        body, wave = _make_frame(codebook, rng)
        rotated = wave * np.exp(1j * 1.1)
        det = frontend.detect(rotated, "preamble")[0]
        symbols, _ = frontend.decode_symbols_at(
            rotated, det.sample_offset, 10, body.size, det.phase
        )
        assert np.array_equal(symbols, body)

    def test_collision_recovery_both_packets(self, frontend, codebook, rng):
        """The Fig. 5 scenario: overlapping packets, each recovered
        through the sync field that survived."""
        body1, wave1 = _make_frame(codebook, rng, n_body=60)
        body2, wave2 = _make_frame(codebook, rng, n_body=60)
        overlap_symbols = 25
        offset = (70 - overlap_symbols) * 32 * 4
        capture = awgn_collision_channel(
            [
                TransmissionInstance(samples=wave1, offset=0),
                TransmissionInstance(samples=wave2, offset=offset),
            ],
            noise_power=0.02,
            rng=rng,
        )
        pre = frontend.detect(capture, "preamble")
        assert pre and pre[0].sample_offset == 0
        sym1, hints1 = frontend.decode_symbols_at(
            capture, pre[0].sample_offset, 10, 60, pre[0].phase
        )
        clean_region = 60 - overlap_symbols
        assert np.array_equal(sym1[:clean_region], body1[:clean_region])
        assert hints1[:clean_region].mean() < hints1[clean_region:].mean()

        post = frontend.detect(capture, "postamble")
        last = max(post, key=lambda d: d.sample_offset)
        sym2, _ = frontend.decode_symbols_at(
            capture, last.sample_offset, -60, 60, last.phase
        )
        # Packet 2's tail (clear of the collision) decodes perfectly.
        assert np.array_equal(sym2[overlap_symbols:], body2[overlap_symbols:])

    def test_odd_chip_offset_rejected(self, frontend):
        with pytest.raises(ValueError, match="even"):
            frontend.soft_chips_at(
                np.zeros(1000, dtype=complex), 0, 3, 10
            )

    def test_before_capture_rejected(self, frontend):
        with pytest.raises(ValueError, match="before the capture"):
            frontend.soft_chips_at(
                np.zeros(1000, dtype=complex), 0, -2, 2
            )

    def test_invalid_threshold(self, codebook):
        with pytest.raises(ValueError):
            ReceiverFrontend(codebook, threshold=1.5)

    def test_sync_pattern_chips(self, frontend):
        assert frontend.sync_pattern_chips("preamble") == 320


class TestBatchApi:
    def test_detect_batch_ragged_matches_single(
        self, frontend, codebook, rng
    ):
        captures = []
        for n_body in (20, 45, 20):
            _, wave = _make_frame(codebook, rng, n_body=n_body)
            captures.append(add_awgn(wave, 0.08, rng))
        captures.append(add_awgn(np.zeros(5000, dtype=complex), 1.0, rng))
        for kind in ("preamble", "postamble"):
            batch = frontend.detect_batch(captures, kind)
            assert len(batch) == len(captures)
            for capture, detections in zip(captures, batch, strict=True):
                assert detections == frontend.detect(capture, kind)

    def test_detect_batch_empty_list(self, frontend):
        assert frontend.detect_batch([], "preamble") == []

    def test_correlation_batch_single_row(self, frontend, codebook, rng):
        _, wave = _make_frame(codebook, rng)
        noisy = add_awgn(wave, 0.1, rng)
        rows = frontend.correlation_batch(noisy[None, :], "preamble")
        assert np.array_equal(
            rows[0], frontend.correlation(noisy, "preamble")
        )

    def test_correlation_batch_rejects_1d(self, frontend):
        with pytest.raises(ValueError, match="2-D"):
            frontend.correlation_batch(
                np.zeros(4000, dtype=complex), "preamble"
            )

    def test_extract_batch_matches_soft_chips_at(
        self, frontend, codebook, rng
    ):
        from repro.phy.frontend import ChipExtractRequest

        _, wave1 = _make_frame(codebook, rng, n_body=30)
        _, wave2 = _make_frame(codebook, rng, n_body=50)
        captures = [add_awgn(wave1, 0.1, rng), add_awgn(wave2, 0.1, rng)]
        requests = [
            ChipExtractRequest(0, 320, 0, 96, 0.4),
            ChipExtractRequest(1, 7680, -640, 640, 0.0),
            ChipExtractRequest(0, 0, 320, 32, -0.9),
        ]
        batch = frontend.extract_batch(captures, requests)
        for request, soft in zip(requests, batch, strict=True):
            single = frontend.soft_chips_at(
                captures[request.capture],
                request.anchor_sample,
                request.chip_offset,
                request.n_chips,
                request.phase,
            )
            assert np.array_equal(soft, single)

    def test_extract_batch_validates_requests(self, frontend):
        from repro.phy.frontend import ChipExtractRequest

        captures = [np.zeros(1000, dtype=complex)]
        with pytest.raises(ValueError, match="even"):
            frontend.extract_batch(
                captures, [ChipExtractRequest(0, 0, 3, 10)]
            )
        with pytest.raises(ValueError, match="before the capture"):
            frontend.extract_batch(
                captures, [ChipExtractRequest(0, 0, -2, 2)]
            )
