"""Tests for the run-length representation (paper Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arq.runlength import Run, RunLengthPacket


class TestFromLabels:
    def test_paper_form(self):
        # bad(2) good(3) bad(1) good(4)
        mask = np.array([0, 0, 1, 1, 1, 0, 1, 1, 1, 1], dtype=bool)
        runs = RunLengthPacket.from_labels(mask)
        assert runs.leading_good == 0
        assert runs.bad == (2, 1)
        assert runs.good == (3, 4)

    def test_leading_good_run(self):
        mask = np.array([1, 1, 0, 0, 1], dtype=bool)
        runs = RunLengthPacket.from_labels(mask)
        assert runs.leading_good == 2
        assert runs.bad == (2,)
        assert runs.good == (1,)

    def test_trailing_bad_run(self):
        mask = np.array([1, 0, 0], dtype=bool)
        runs = RunLengthPacket.from_labels(mask)
        assert runs.bad == (2,)
        assert runs.good == (0,)

    def test_all_good(self):
        runs = RunLengthPacket.from_labels(np.ones(5, dtype=bool))
        assert runs.all_good
        assert runs.leading_good == 5
        assert runs.n_bad_runs == 0

    def test_all_bad(self):
        runs = RunLengthPacket.from_labels(np.zeros(5, dtype=bool))
        assert runs.bad == (5,)
        assert runs.good == (0,)
        assert runs.n_bad_symbols == 5

    def test_alternating(self):
        mask = np.array([0, 1, 0, 1, 0], dtype=bool)
        runs = RunLengthPacket.from_labels(mask)
        assert runs.bad == (1, 1, 1)
        assert runs.good == (1, 1, 0)

    def test_empty(self):
        runs = RunLengthPacket.from_labels(np.zeros(0, dtype=bool))
        assert runs.n_symbols == 0 and runs.all_good

    def test_from_hints_threshold(self):
        hints = np.array([0.0, 7.0, 6.0, 8.0])
        runs = RunLengthPacket.from_hints(hints, eta=6)
        assert runs.leading_good == 1
        assert runs.bad == (1,) + (1,)
        assert runs.good == (1, 0)


class TestGeometry:
    def test_bad_run_start(self):
        mask = np.array([1, 1, 0, 0, 1, 1, 1, 0, 1], dtype=bool)
        runs = RunLengthPacket.from_labels(mask)
        assert runs.bad_run_start(0) == 2
        assert runs.bad_run_start(1) == 7

    def test_bad_run_start_out_of_range(self):
        runs = RunLengthPacket.from_labels(np.array([0], dtype=bool))
        with pytest.raises(IndexError):
            runs.bad_run_start(1)

    def test_chunk_span_single(self):
        mask = np.array([1, 0, 0, 1, 1, 0, 1], dtype=bool)
        runs = RunLengthPacket.from_labels(mask)
        assert runs.chunk_span(0, 0) == (1, 3)
        assert runs.chunk_span(1, 1) == (5, 6)

    def test_chunk_span_merged_includes_interior_good(self):
        mask = np.array([1, 0, 0, 1, 1, 0, 1], dtype=bool)
        runs = RunLengthPacket.from_labels(mask)
        assert runs.chunk_span(0, 1) == (1, 6)

    def test_chunk_span_invalid(self):
        runs = RunLengthPacket.from_labels(np.array([0], dtype=bool))
        with pytest.raises(IndexError):
            runs.chunk_span(0, 1)

    def test_runs_reconstruction(self):
        mask = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=bool)
        runs = RunLengthPacket.from_labels(mask)
        rebuilt = np.zeros(mask.size, dtype=bool)
        for run in runs.runs():
            assert isinstance(run, Run)
            rebuilt[run.start : run.end] = run.good
        assert np.array_equal(rebuilt, mask)


class TestValidation:
    def test_zero_interior_good_rejected(self):
        with pytest.raises(ValueError, match="final good run"):
            RunLengthPacket(
                n_symbols=4, leading_good=0, bad=(2, 2), good=(0, 0)
            )

    def test_sum_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            RunLengthPacket(
                n_symbols=10, leading_good=0, bad=(2,), good=(3,)
            )

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="counts must match"):
            RunLengthPacket(
                n_symbols=5, leading_good=0, bad=(2, 3), good=(0,)
            )

    def test_nonpositive_bad_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            RunLengthPacket(
                n_symbols=2, leading_good=0, bad=(0,), good=(2,)
            )

    def test_run_validation(self):
        with pytest.raises(ValueError):
            Run(good=True, start=0, length=0)
        with pytest.raises(ValueError):
            Run(good=True, start=-1, length=1)


@given(st.lists(st.booleans(), min_size=0, max_size=200))
@settings(max_examples=80, deadline=None)
def test_good_mask_roundtrip(labels):
    mask = np.array(labels, dtype=bool)
    runs = RunLengthPacket.from_labels(mask)
    assert np.array_equal(runs.good_mask(), mask)
    # Structural invariants of the Eq. 2 form.
    total = runs.leading_good + sum(runs.bad) + sum(runs.good)
    assert total == mask.size
    assert all(b > 0 for b in runs.bad)
    assert all(g > 0 for g in runs.good[:-1])
