"""The SIC recovery pipeline on synthetic collided captures.

Every capture here is constructed sample-by-sample from known symbol
streams, gains, and offsets, so the tests can assert exact recovery:
the strong frame decodes through the interference (capture effect),
the cancellation estimate lands near the true complex gain, and the
weak frame decodes from the residual.  The chunk fallback and the
:class:`SicScheme` trace evaluation are pinned on hand-built hints.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.link.schemes import PprScheme, SicScheme
from repro.phy.channelsim import add_awgn
from repro.phy.modulation import MskModulator
from repro.phy.remodulate import (
    estimate_complex_scale,
    remodulate_frame,
    subtract_frame,
)
from repro.phy.sync import sync_field_symbols
from repro.recovery import SicDecoder, plan_chunk_recovery
from repro.sim.metrics import trace_deliver

SPS = 4
N_BODY = 30


def _frame_symbols(rng, n_body=N_BODY):
    return np.concatenate(
        [
            sync_field_symbols("preamble"),
            rng.integers(0, 16, n_body),
            sync_field_symbols("postamble"),
        ]
    )


def _collision(
    codebook,
    rng,
    weak_gain=0.45,
    weak_phase=0.9,
    offset=20 * 32 * SPS,
    noise=0.02,
):
    """A two-frame capture: unit-gain strong + scaled, offset weak."""
    modulator = MskModulator(sps=SPS)
    strong_syms = _frame_symbols(rng)
    weak_syms = _frame_symbols(rng)
    strong = modulator.modulate_symbols(strong_syms, codebook)
    weak = modulator.modulate_symbols(weak_syms, codebook)
    capture = np.zeros(
        max(strong.size, offset + weak.size), dtype=np.complex128
    )
    capture[: strong.size] += strong
    capture[offset : offset + weak.size] += (
        weak_gain * np.exp(1j * weak_phase) * weak
    )
    capture = add_awgn(capture, noise, rng)
    return capture, strong_syms, weak_syms


class TestComplexScaleEstimate:
    def test_recovers_known_gain_and_phase(self, codebook, rng):
        stream = _frame_symbols(rng, n_body=10)
        unit = remodulate_frame(stream, codebook, sps=SPS)
        true = 0.62 * np.exp(1j * 1.1)
        capture = np.zeros(unit.size + 500, dtype=np.complex128)
        capture[37 : 37 + unit.size] = true * unit
        est = estimate_complex_scale(capture, unit, 37)
        assert abs(est - true) < 1e-12

    def test_noise_perturbs_estimate_mildly(self, codebook, rng):
        stream = _frame_symbols(rng, n_body=10)
        unit = remodulate_frame(stream, codebook, sps=SPS)
        capture = add_awgn(0.5 * unit, 0.05, rng)
        est = estimate_complex_scale(capture, unit, 0)
        assert abs(est - 0.5) < 0.05

    def test_partial_overlap_uses_clipped_window(self, codebook, rng):
        """A frame hanging off the capture edge is estimated from the
        overlapping samples only."""
        stream = _frame_symbols(rng, n_body=10)
        unit = remodulate_frame(stream, codebook, sps=SPS)
        half = unit.size // 2
        capture = 0.8 * unit[:half].copy()
        est = estimate_complex_scale(capture, unit, 0)
        assert abs(est - 0.8) < 1e-12

    def test_no_overlap_is_zero(self, codebook, rng):
        stream = _frame_symbols(rng, n_body=5)
        unit = remodulate_frame(stream, codebook, sps=SPS)
        capture = np.zeros(100, dtype=np.complex128)
        assert estimate_complex_scale(capture, unit, 100) == 0j
        assert estimate_complex_scale(capture, unit, -unit.size) == 0j


class TestSubtractFrame:
    def test_exact_cancellation(self, codebook, rng):
        stream = _frame_symbols(rng, n_body=8)
        frame = remodulate_frame(stream, codebook, sps=SPS)
        capture = np.zeros(frame.size + 200, dtype=np.complex128)
        capture[60 : 60 + frame.size] = frame
        residual = subtract_frame(capture, frame, 60)
        assert np.allclose(residual, 0.0)

    def test_input_capture_untouched(self, codebook, rng):
        stream = _frame_symbols(rng, n_body=8)
        frame = remodulate_frame(stream, codebook, sps=SPS)
        capture = add_awgn(
            np.zeros(frame.size, dtype=np.complex128), 1.0, rng
        )
        before = capture.copy()
        subtract_frame(capture, frame, 0)
        assert np.array_equal(capture, before)

    def test_offsets_past_either_edge_clip(self, codebook, rng):
        stream = _frame_symbols(rng, n_body=8)
        frame = remodulate_frame(stream, codebook, sps=SPS)
        capture = np.ones(frame.size, dtype=np.complex128)
        # Hanging off the tail: only the head of the frame lands.
        tail = subtract_frame(capture, frame, capture.size - 10)
        assert np.array_equal(tail[:-10], capture[:-10])
        assert np.array_equal(
            tail[-10:], capture[-10:] - frame[:10]
        )
        # Hanging off the head: only the tail of the frame lands.
        head = subtract_frame(capture, frame, -(frame.size - 10))
        assert np.array_equal(head[10:], capture[10:])
        assert np.array_equal(
            head[:10], capture[:10] - frame[-10:]
        )


class TestSicDecodePair:
    def test_recovers_both_frames_of_an_offset_collision(
        self, codebook, rng
    ):
        capture, strong_syms, weak_syms = _collision(codebook, rng)
        decoder = SicDecoder(codebook, sps=SPS)
        result = decoder.decode_pair(capture, N_BODY)
        assert result.cancelled
        assert result.strong is not None
        assert result.weak is not None
        assert result.weak.via_residual
        assert np.array_equal(
            result.strong.reception.symbols,
            strong_syms[10:-10],
        )
        assert np.array_equal(
            result.weak.reception.symbols, weak_syms[10:-10]
        )
        assert result.n_clean == 2
        # The gain estimates land on the true channel scales.
        assert abs(result.strong.scale - 1.0) < 0.02
        assert abs(abs(result.weak.scale) - 0.45) < 0.03

    def test_recovers_an_aligned_collision(self, codebook, rng):
        """Frame starts one symbol apart — the capture-effect blind
        spot where a plain receiver never sees the weak preamble."""
        capture, strong_syms, weak_syms = _collision(
            codebook, rng, offset=2 * 32 * SPS
        )
        decoder = SicDecoder(codebook, sps=SPS)
        result = decoder.decode_pair(capture, N_BODY)
        assert result.cancelled
        assert result.weak is not None
        assert np.array_equal(
            result.weak.reception.symbols, weak_syms[10:-10]
        )

    def test_empty_capture_acquires_nothing(self, codebook, rng):
        noise = add_awgn(
            np.zeros(4000, dtype=np.complex128), 0.02, rng
        )
        result = SicDecoder(codebook, sps=SPS).decode_pair(
            noise, N_BODY
        )
        assert not result.cancelled
        assert result.frames == []
        assert np.array_equal(result.residual, noise)

    def test_lone_frame_yields_no_phantom_weak(self, codebook, rng):
        """Cancelling the only frame must not re-detect its own
        remnant as a second transmission."""
        modulator = MskModulator(sps=SPS)
        stream = _frame_symbols(rng)
        capture = add_awgn(
            modulator.modulate_symbols(stream, codebook), 0.02, rng
        )
        result = SicDecoder(codebook, sps=SPS).decode_pair(
            capture, N_BODY
        )
        assert result.cancelled
        assert result.strong is not None
        assert result.weak is None

    def test_residual_energy_drops_where_strong_stood(
        self, codebook, rng
    ):
        capture, _, _ = _collision(codebook, rng)
        decoder = SicDecoder(codebook, sps=SPS)
        result = decoder.decode_pair(capture, N_BODY)
        strong_span = slice(0, 5 * 32 * SPS)  # weak-free head
        before = float(np.sum(np.abs(capture[strong_span]) ** 2))
        after = float(
            np.sum(np.abs(result.residual[strong_span]) ** 2)
        )
        # What's left is the injected noise (power 0.02/sample); the
        # strong frame itself (unit power) is gone.
        noise_energy = 0.02 * (strong_span.stop - strong_span.start)
        assert after < 2.0 * noise_energy
        assert after < 0.15 * before

    def test_rejects_negative_eta(self, codebook):
        with pytest.raises(ValueError):
            SicDecoder(codebook, eta=-1.0)


class TestChunkFallback:
    def test_clean_hints_need_no_plan(self):
        recovery = plan_chunk_recovery(np.zeros(40), eta=6.0)
        assert recovery.clean
        assert recovery.n_bad_symbols == 0
        assert not recovery.cost_bits > 0

    def test_bad_run_yields_a_costed_plan(self):
        hints = np.zeros(60)
        hints[20:30] = 9.0
        recovery = plan_chunk_recovery(hints, eta=6.0)
        assert not recovery.clean
        assert recovery.n_bad_symbols == 10
        assert recovery.cost_bits > 0
        assert recovery.plan is not None

    def test_threshold_rule_is_inclusive(self):
        hints = np.full(10, 6.0)
        assert plan_chunk_recovery(hints, eta=6.0).clean

    def test_rejects_negative_eta(self):
        with pytest.raises(ValueError):
            plan_chunk_recovery(np.zeros(4), eta=-0.5)

    def test_noisy_weak_frame_falls_back_to_chunks(
        self, codebook, rng
    ):
        """Heavy noise leaves the residual decode with bad symbols;
        the SicFrame then carries a chunk plan instead of claiming a
        clean recovery."""
        capture, _, _ = _collision(codebook, rng, noise=0.2)
        decoder = SicDecoder(codebook, sps=SPS, threshold=0.4)
        result = decoder.decode_pair(capture, N_BODY)
        assert result.weak is not None
        assert not result.weak.clean
        assert result.weak.fallback.n_bad_symbols > 0
        assert result.weak.fallback.cost_bits > 0
        assert result.weak.fallback.plan is not None
        # The strong frame sailed through untouched.
        assert result.strong is not None and result.strong.clean


class TestSicScheme:
    def test_wire_format_matches_ppr(self):
        sic = SicScheme()
        ppr = PprScheme()
        payload = bytes(range(24))
        assert sic.encode_payload(payload) == ppr.encode_payload(
            payload
        )
        assert sic.name == "sic"
        assert "eta=" in repr(sic)

    def test_trace_deliver_dispatches_like_ppr(self, rng):
        correct = rng.random(48) < 0.9
        hints = rng.random(48) * 12.0
        sic = trace_deliver(SicScheme(), correct, hints)
        ppr = trace_deliver(PprScheme(), correct, hints)
        assert sic.scheme == "sic"
        assert sic.delivered_correct_bits == ppr.delivered_correct_bits
        assert (
            sic.delivered_incorrect_bits == ppr.delivered_incorrect_bits
        )
        assert sic.frame_passed == ppr.frame_passed
