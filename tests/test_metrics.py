"""Tests for trace post-processing metrics.

The crucial one: ``trace_deliver`` (the CRC-oracle fast path used on
recorded traces) must agree with the real byte-level scheme
implementations on identical channel realisations.
"""

import numpy as np
import pytest

from repro.link.schemes import (
    FragmentedCrcScheme,
    PacketCrcScheme,
    PprScheme,
    ReceivedPayload,
    SpracScheme,
)
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.spreading import bytes_to_symbols
from repro.sim.metrics import (
    evaluate_schemes,
    false_alarm_rates,
    hint_histograms,
    miss_rates,
    miss_run_length_counts,
    trace_deliver,
)
from repro.utils.rng import ensure_rng


def _channel_realisation(codebook, scheme, payload, rng, burst=True):
    """One reception of scheme-encoded payload over a bursty channel."""
    wire = scheme.encode_payload(payload)
    truth = bytes_to_symbols(wire)
    p = np.full(truth.size, 0.01)
    if burst:
        start = rng.integers(0, truth.size // 2)
        p[start : start + truth.size // 4] = 0.4
    words = codebook.encode_words(truth)
    received = transmit_chipwords(words, p, rng)
    decoded, dist = codebook.decode_hard(received)
    return ReceivedPayload(
        symbols=decoded, hints=dist.astype(float), truth=truth
    )


class TestTraceDeliverEquivalence:
    """trace_deliver's CRC oracle vs the real CRC arithmetic."""

    @pytest.mark.parametrize(
        "scheme",
        [PacketCrcScheme(), PprScheme(eta=6.0)],
        ids=["packet", "ppr"],
    )
    def test_packet_and_ppr_match_real_schemes(self, codebook, scheme):
        rng = ensure_rng(0)
        payload = bytes(rng.integers(0, 256, 200, dtype=np.uint8))
        for _trial in range(10):
            rx = _channel_realisation(codebook, scheme, payload, rng)
            real = scheme.deliver(rx)
            n_payload_syms = 2 * len(payload)
            trace = trace_deliver(
                scheme,
                rx.correct_mask()[:n_payload_syms],
                rx.hints[:n_payload_syms],
            )
            assert trace.frame_passed == real.frame_passed
            assert (
                trace.delivered_correct_bits
                == real.delivered_correct_bits
            )
            assert (
                trace.delivered_incorrect_bits
                == real.delivered_incorrect_bits
            )

    def test_fragmented_matches_on_payload_region(self, codebook):
        """Fragment boundaries differ slightly between the on-wire
        encoding (CRCs interleaved) and the trace evaluation (payload
        only), so compare against a payload-only reference."""
        rng = ensure_rng(1)
        scheme = FragmentedCrcScheme(n_fragments=10)
        payload = bytes(rng.integers(0, 256, 200, dtype=np.uint8))
        truth = bytes_to_symbols(payload)
        for _ in range(5):
            p = np.full(truth.size, 0.02)
            start = rng.integers(0, truth.size // 2)
            p[start : start + 40] = 0.4
            words = codebook.encode_words(truth)
            received = transmit_chipwords(words, p, rng)
            decoded, dist = codebook.decode_hard(received)
            correct = decoded == truth
            result = trace_deliver(scheme, correct, dist.astype(float))
            # Reference: fragments over the payload symbol array.
            bounds = np.linspace(0, truth.size, 11).astype(int)
            expected = sum(
                (hi - lo) * 4
                for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
                if correct[lo:hi].all()
            )
            assert result.delivered_correct_bits == expected

    def test_unknown_scheme_rejected(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            trace_deliver(Weird(), np.ones(2, dtype=bool), np.zeros(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            trace_deliver(
                PprScheme(), np.ones(3, dtype=bool), np.zeros(2)
            )


class TestEvaluateSchemes:
    def test_variants_cover_schemes_and_postamble(self, small_sim_result):
        evals = evaluate_schemes(
            small_sim_result, [PacketCrcScheme(), PprScheme()]
        )
        labels = {e.label for e in evals}
        assert labels == {
            "packet_crc, no postamble",
            "packet_crc, postamble",
            "ppr, no postamble",
            "ppr, postamble",
        }

    def test_postamble_never_reduces_delivery(self, small_sim_result):
        evals = evaluate_schemes(small_sim_result, [PprScheme()])
        by_post = {e.postamble_enabled: e for e in evals}
        for link in by_post[True].stats.links():
            with_post = by_post[True].stats[link].delivered_correct_bits
            without = by_post[False].stats[link].delivered_correct_bits
            assert with_post >= without

    def test_ppr_dominates_packet_crc_per_link(self, small_sim_result):
        evals = evaluate_schemes(
            small_sim_result,
            [PacketCrcScheme(), PprScheme(eta=6.0)],
            postamble_options=(True,),
        )
        by_name = {e.scheme.name: e for e in evals}
        for link in by_name["packet_crc"].stats.links():
            pkt = by_name["packet_crc"].stats[link]
            ppr = by_name["ppr"].stats[link]
            # PPR delivers every bit a passing packet CRC delivers,
            # minus only false-alarmed codewords — but it also delivers
            # on failed frames.  At the link level with eta=6 false
            # alarms are rare enough that PPR >= 95% of packet CRC.
            assert (
                ppr.delivered_correct_bits
                >= 0.95 * pkt.delivered_correct_bits
            )


class TestHintStatistics:
    def test_histogram_totals_match_payload_symbols(self, small_sim_result):
        correct, incorrect = hint_histograms(small_sim_result)
        total = correct.sum() + incorrect.sum()
        expected = sum(
            rec.payload_end - rec.payload_start
            for rec in small_sim_result.records
            if rec.acquired(True)
        )
        assert total == expected

    def test_rates_monotonic(self, small_sim_result):
        correct, incorrect = hint_histograms(small_sim_result)
        fa = false_alarm_rates(correct)
        miss = miss_rates(incorrect)
        assert np.all(np.diff(fa) <= 1e-12)
        assert np.all(np.diff(miss) >= -1e-12)
        assert fa[-1] == pytest.approx(0.0)
        assert miss[-1] == pytest.approx(1.0)

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            false_alarm_rates(np.zeros(33))
        with pytest.raises(ValueError):
            miss_rates(np.zeros(33))

    def test_miss_run_lengths_manual(self):
        from repro.sim.metrics import _run_lengths

        mask = np.array(
            [False, True, True, False, True, False, False], dtype=bool
        )
        assert _run_lengths(mask) == [2, 1]
        assert _run_lengths(np.zeros(3, dtype=bool)) == []
        assert _run_lengths(np.ones(4, dtype=bool)) == [4]

    def test_miss_runs_respect_threshold_ordering(self, small_sim_result):
        counts = miss_run_length_counts(small_sim_result, etas=(1, 4))
        # A miss at eta=1 is also a miss at eta=4.
        total_1 = sum(k * v for k, v in counts[1].items())
        total_4 = sum(k * v for k, v in counts[4].items())
        assert total_4 >= total_1


class TestTraceDeliverSprac:
    def test_clean_trace_delivers_everything(self):
        scheme = SpracScheme(n_segments=10, n_repair=5)
        result = trace_deliver(
            scheme, np.ones(600, dtype=bool), np.zeros(600)
        )
        assert result.delivered_correct_bits == result.payload_bits
        assert result.frame_passed
        # Overhead charges every CRC plus the repair airtime.
        assert result.overhead_bits == 32 * 15 + 5 * 60 * 4

    def test_burst_recovered_via_repair_windows(self):
        scheme = SpracScheme(n_segments=10, n_repair=5, field="gf256")
        correct = np.ones(600, dtype=bool)
        correct[0:55] = False  # erases segment 0 (symbols 0..59)
        result = trace_deliver(scheme, correct, np.zeros(600))
        assert result.frame_passed
        assert result.delivered_correct_bits == result.payload_bits
        assert result.delivered_incorrect_bits == 0

    def test_more_erasures_than_equations_fail_closed(self):
        scheme = SpracScheme(n_segments=10, n_repair=1, field="gf256")
        correct = np.zeros(600, dtype=bool)  # everything wrong
        result = trace_deliver(scheme, correct, np.zeros(600))
        assert not result.frame_passed
        assert result.delivered_correct_bits == 0

    def test_sprac_never_below_equivalent_fragmented(
        self, small_sim_result
    ):
        """Coded repair can only add to what the fragments deliver."""
        k = 20
        frag_eval, sprac_eval = evaluate_schemes(
            small_sim_result,
            [
                FragmentedCrcScheme(n_fragments=k),
                SpracScheme(n_segments=k, n_repair=k // 2),
            ],
            postamble_options=(True,),
        )
        for link in frag_eval.stats.links():
            assert (
                sprac_eval.stats[link].delivered_correct_bits
                >= frag_eval.stats[link].delivered_correct_bits
            )

    def test_empty_trace(self):
        scheme = SpracScheme(n_segments=4, n_repair=2)
        result = trace_deliver(
            scheme,
            np.zeros(0, dtype=bool),
            np.zeros(0),
        )
        assert result.payload_bits == 0
        assert result.frame_passed
