"""Tests for the network simulation's structural invariants."""

import numpy as np
import pytest

from repro.link.frame import (
    HEADER_BYTES,
    SYMBOLS_PER_BYTE,
    TRAILER_BYTES,
    parse_header_bytes,
)
from repro.phy.spreading import symbols_to_bytes
from repro.sim.medium import PathLossModel
from repro.sim.network import (
    SYNC_SYMBOLS,
    NetworkSimulation,
    SimulationConfig,
)
from repro.sim.testbed import TestbedConfig as _TestbedConfig


class TestConfigValidation:
    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            SimulationConfig(load_bits_per_s_per_node=0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            SimulationConfig(duration_s=0)

    def test_rejects_bad_sync_threshold(self):
        with pytest.raises(ValueError, match="0.5"):
            SimulationConfig(sync_error_threshold=0.6)

    @pytest.mark.parametrize("period", [0.0, -1e-6, np.nan, np.inf])
    def test_rejects_bad_symbol_period(self, period):
        """Zero/non-finite periods used to reach division-by-zero/NaN
        timelines deep inside interference_timeline_mw."""
        with pytest.raises(ValueError, match="symbol_period_s"):
            SimulationConfig(symbol_period_s=period)

    @pytest.mark.parametrize("snr", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite_min_rx_snr(self, snr):
        with pytest.raises(ValueError, match="min_rx_snr_db"):
            SimulationConfig(min_rx_snr_db=snr)

    @pytest.mark.parametrize("power", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite_tx_power(self, power):
        with pytest.raises(ValueError, match="tx_power_dbm"):
            SimulationConfig(tx_power_dbm=power)


class TestRunStructure:
    def test_transmissions_generated(self, small_sim_result):
        assert len(small_sim_result.transmissions) > 20

    def test_offered_load_approximates_config(self, small_sim_result):
        cfg = small_sim_result.config
        expected = (
            cfg.duration_s
            * cfg.load_bits_per_s_per_node
            / (8 * cfg.payload_bytes)
            * 23
        )
        actual = len(small_sim_result.transmissions)
        assert actual == pytest.approx(expected, rel=0.3)

    def test_records_only_at_receivers(self, small_sim_result):
        receivers = set(small_sim_result.testbed.receiver_ids)
        assert all(
            r.receiver in receivers for r in small_sim_result.records
        )

    def test_body_regions_consistent(self, small_sim_result):
        cfg = small_sim_result.config
        for rec in small_sim_result.records[:50]:
            n_body = rec.body_symbols.size
            assert n_body == SYMBOLS_PER_BYTE * (
                HEADER_BYTES + cfg.payload_bytes + TRAILER_BYTES
            )
            assert rec.payload_start == SYMBOLS_PER_BYTE * HEADER_BYTES
            assert (
                rec.payload_end
                == n_body - SYMBOLS_PER_BYTE * TRAILER_BYTES
            )

    def test_hints_zero_implies_correct(self, small_sim_result):
        """A Hamming hint of 0 means the received chips exactly matched
        the decoded codeword; with the transmitted word at distance 0
        the decode must be correct."""
        for rec in small_sim_result.records[:100]:
            zero_hint = rec.body_hints == 0
            correct = rec.body_symbols == rec.body_truth
            assert np.all(correct[zero_hint])

    def test_acquisition_flags_consistent(self, small_sim_result):
        for rec in small_sim_result.records:
            assert rec.acquired(True) or not rec.acquired_preamble
            if rec.acquired(False):
                assert rec.acquired_preamble

    def test_postamble_recoveries_exist_under_load(self, small_sim_result):
        extra = [
            r
            for r in small_sim_result.records
            if not r.acquired_preamble and r.acquired(True)
        ]
        assert extra, "heavy load should produce postamble-only recoveries"

    def test_determinism(self):
        config = SimulationConfig(
            load_bits_per_s_per_node=13800.0,
            payload_bytes=200,
            duration_s=4.0,
            carrier_sense=False,
            seed=17,
        )
        a = NetworkSimulation(config).run()
        b = NetworkSimulation(config).run()
        assert len(a.records) == len(b.records)
        for ra, rb in zip(a.records, b.records, strict=True):
            assert ra.tx_id == rb.tx_id
            assert np.array_equal(ra.body_symbols, rb.body_symbols)
            assert np.array_equal(ra.body_hints, rb.body_hints)


class TestLockArbitration:
    def test_no_overlapping_preamble_acquisitions(self, small_sim_result):
        """The single-radio lock: at any receiver, preamble-acquired
        frames must not overlap in time."""
        period = small_sim_result.config.symbol_period_s
        for receiver in small_sim_result.testbed.receiver_ids:
            acquired = [
                r
                for r in small_sim_result.records_for_receiver(receiver)
                if r.acquired_preamble
            ]
            for first, second in zip(acquired, acquired[1:], strict=False):
                n_air = first.body_symbols.size + 2 * SYNC_SYMBOLS
                first_end = first.start + n_air * period
                assert second.start >= first_end - 1e-12


class TestSequenceNumbers:
    def test_seq_unique_and_header_consistent_under_backoff(self):
        """Frames deferred by CSMA backoff or a busy sender used to
        capture a stale counter at build time, giving duplicate seq
        values and headers disagreeing with the eventual tx_id.  seq is
        now assigned by a build-time counter and carried into the
        Transmission, so it stays unique and header-consistent even
        when the tx_id order diverges from the build order."""
        positions = np.array([[0.0, 0.0], [4.0, 0.0], [2.0, 0.0]])
        testbed = _TestbedConfig(
            positions_m=positions,
            sender_ids=(0, 1),
            receiver_ids=(2,),
            room_grid=(1, 1),
            area_m=(4.0, 1.0),
        )
        config = SimulationConfig(
            load_bits_per_s_per_node=60_000.0,
            payload_bytes=300,
            duration_s=4.0,
            carrier_sense=True,  # close senders: forces backoff
            seed=6,
            wall_loss_db=0.0,
            fading_sigma_db=0.0,
        )
        sim = NetworkSimulation(
            config,
            testbed=testbed,
            path_loss=PathLossModel(shadowing_sigma_db=0),
        )
        result = sim.run()
        txs = result.transmissions
        assert len(txs) > 10
        # The scenario must actually exercise deferral: with the two
        # counters in lockstep (no deferrals) seq always equals tx_id.
        assert any(t.seq != t.tx_id for t in txs), (
            "scenario failed to force a backoff/busy deferral"
        )
        seqs = [t.seq for t in txs]
        assert len(set(seqs)) == len(seqs), "duplicate seq values"
        # The seq on the wire (in the frame header symbols) must agree
        # with the Transmission's seq for every frame.  The wire field
        # is 16 bits and wraps; Transmission.seq never does.
        for t in txs:
            body = t.symbols[SYNC_SYMBOLS : t.symbols.size - SYNC_SYMBOLS]
            header_syms = body[: SYMBOLS_PER_BYTE * HEADER_BYTES]
            header, ok = parse_header_bytes(symbols_to_bytes(header_syms))
            assert ok
            assert header.seq == t.seq & 0xFFFF
            assert header.src == t.sender


class TestActiveSetInvariants:
    def test_transmissions_sorted_with_dense_tx_ids(self, small_sim_result):
        """The pruned active set relies on start-ordered appends and
        air-order tx_ids."""
        txs = small_sim_result.transmissions
        starts = [t.start for t in txs]
        assert starts == sorted(starts)
        assert [t.tx_id for t in txs] == list(range(len(txs)))


class TestForcedCollision:
    def test_two_synchronized_senders_corrupt_each_other(self):
        """A deliberate 3-node layout: two equidistant senders at high
        power around one receiver; no carrier sense.  Their Poisson
        streams overlap often, and overlapped receptions must show
        corrupted codewords with high hints."""
        positions = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 0.0]])
        testbed = _TestbedConfig(
            positions_m=positions,
            sender_ids=(0, 1),
            receiver_ids=(2,),
            room_grid=(1, 1),
            area_m=(10.0, 1.0),
        )
        config = SimulationConfig(
            load_bits_per_s_per_node=60_000.0,
            payload_bytes=400,
            duration_s=5.0,
            carrier_sense=False,
            seed=4,
            wall_loss_db=0.0,
            fading_sigma_db=0.0,
        )
        sim = NetworkSimulation(
            config,
            testbed=testbed,
            path_loss=PathLossModel(shadowing_sigma_db=0),
        )
        result = sim.run()
        corrupted = [
            r
            for r in result.records
            if not np.array_equal(r.body_symbols, r.body_truth)
        ]
        assert corrupted, "equal-power collisions must corrupt symbols"
        rec = max(
            corrupted,
            key=lambda r: (r.body_symbols != r.body_truth).sum(),
        )
        wrong = rec.body_symbols != rec.body_truth
        assert rec.body_hints[wrong].mean() > rec.body_hints[~wrong].mean()
