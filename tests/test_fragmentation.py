"""Tests for fragmentation helpers and the post-facto optimal size."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.link.fragmentation import (
    delivered_bits_for_fragmentation,
    fragment_payload,
    optimal_fragment_size,
    reassemble_fragments,
)


class TestFragmentPayload:
    def test_even_split(self):
        frags = fragment_payload(b"abcdef", 3)
        assert frags == [b"ab", b"cd", b"ef"]

    def test_remainder_goes_to_leading_fragments(self):
        frags = fragment_payload(b"abcdefg", 3)
        assert frags == [b"abc", b"de", b"fg"]

    def test_more_fragments_than_bytes(self):
        frags = fragment_payload(b"ab", 5)
        assert frags == [b"a", b"b"]

    def test_empty_payload(self):
        assert fragment_payload(b"", 4) == [b""]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            fragment_payload(b"abc", 0)

    @given(st.binary(max_size=300), st.integers(1, 40))
    def test_concatenation_reconstructs(self, payload, n):
        assert b"".join(fragment_payload(payload, n)) == payload


class TestReassemble:
    def test_all_present(self):
        data, missing = reassemble_fragments([b"ab", b"cd"])
        assert data == b"abcd" and missing == []

    def test_missing_marked(self):
        data, missing = reassemble_fragments([b"ab", None, b"ef"])
        assert data == b"abef"
        assert missing == [1]


class TestDeliveredBits:
    def test_clean_trace_delivers_all(self):
        mask = np.zeros(100, dtype=bool)
        delivered, overhead = delivered_bits_for_fragmentation(mask, 10)
        assert delivered == 400
        assert overhead == 320

    def test_one_error_loses_one_fragment(self):
        mask = np.zeros(100, dtype=bool)
        mask[5] = True
        delivered, _ = delivered_bits_for_fragmentation(mask, 10)
        assert delivered == 4 * 90

    def test_all_errors_deliver_nothing(self):
        mask = np.ones(50, dtype=bool)
        delivered, _ = delivered_bits_for_fragmentation(mask, 5)
        assert delivered == 0

    def test_single_fragment_all_or_nothing(self):
        mask = np.zeros(80, dtype=bool)
        assert delivered_bits_for_fragmentation(mask, 1)[0] == 320
        mask[0] = True
        assert delivered_bits_for_fragmentation(mask, 1)[0] == 0

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            delivered_bits_for_fragmentation(np.zeros(4, dtype=bool), 0)


class TestOptimalFragmentSize:
    def test_clean_traces_prefer_one_fragment(self):
        masks = [np.zeros(600, dtype=bool) for _ in range(10)]
        best, scores = optimal_fragment_size(masks)
        assert best == 1
        assert scores[1] >= scores[300]

    def test_bursty_traces_prefer_intermediate(self, rng):
        masks = []
        for _ in range(30):
            mask = np.zeros(600, dtype=bool)
            start = rng.integers(0, 500)
            mask[start : start + 60] = True
            masks.append(mask)
        best, scores = optimal_fragment_size(
            masks, candidates=[1, 10, 100, 300]
        )
        assert best in (10, 100)
        assert scores[best] > scores[1]
        assert scores[best] > scores[300]

    def test_custom_candidates_respected(self):
        masks = [np.zeros(100, dtype=bool)]
        best, scores = optimal_fragment_size(masks, candidates=[2, 4])
        assert set(scores) == {2, 4}
        assert best in (2, 4)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            optimal_fragment_size([])
