"""Tests for adaptive SoftPHY threshold selection (paper §3.3)."""

import numpy as np
import pytest

from repro.link.adaptive import AdaptiveThreshold


def _observe_separated(adapt, rng, n=4000, boundary=6):
    """Correct codewords cluster at low hints, incorrect at high."""
    correct_hints = rng.poisson(0.5, n).clip(0, boundary - 2)
    incorrect_hints = rng.integers(boundary + 3, 16, n)
    adapt.observe(correct_hints, np.ones(n, dtype=bool))
    adapt.observe(incorrect_hints, np.zeros(n, dtype=bool))


class TestThresholdLearning:
    def test_learns_separating_threshold(self, rng):
        adapt = AdaptiveThreshold()
        _observe_separated(adapt, rng, boundary=6)
        eta = adapt.best_threshold()
        # Any threshold between the clusters separates; what matters is
        # that the chosen one actually does.
        assert adapt.miss_rate(eta) == pytest.approx(0.0, abs=0.01)
        assert adapt.false_alarm_rate(eta) == pytest.approx(0.0, abs=0.01)

    def test_miss_rate_estimates(self, rng):
        adapt = AdaptiveThreshold(prior_count=0.0)
        adapt.observe(np.array([2, 3, 10, 12]), np.zeros(4, dtype=bool))
        assert adapt.miss_rate(6) == pytest.approx(0.5)
        assert adapt.miss_rate(1) == pytest.approx(0.0)
        assert adapt.miss_rate(32) == pytest.approx(1.0)

    def test_false_alarm_estimates(self, rng):
        adapt = AdaptiveThreshold(prior_count=0.0)
        adapt.observe(np.array([0, 1, 7, 9]), np.ones(4, dtype=bool))
        assert adapt.false_alarm_rate(6) == pytest.approx(0.5)
        assert adapt.false_alarm_rate(9) == pytest.approx(0.0)

    def test_miss_cost_pushes_threshold_down(self, rng):
        """A higher miss cost must never raise the chosen threshold."""
        lenient = AdaptiveThreshold(miss_cost=1.0)
        strict = AdaptiveThreshold(miss_cost=100.0)
        # Overlapping distributions so the trade-off is real.
        correct = rng.poisson(2.0, 3000).clip(0, 12)
        incorrect = rng.poisson(8.0, 3000).clip(0, 20)
        for adapt in (lenient, strict):
            adapt.observe(correct, np.ones(3000, dtype=bool))
            adapt.observe(incorrect, np.zeros(3000, dtype=bool))
        assert strict.best_threshold() <= lenient.best_threshold()

    def test_observations_counter(self):
        adapt = AdaptiveThreshold()
        assert adapt.observations == 0
        adapt.observe(np.array([1, 2]), np.array([True, False]))
        assert adapt.observations == 2

    def test_hints_clipped_to_range(self):
        adapt = AdaptiveThreshold(max_hint=8)
        adapt.observe(np.array([100.0]), np.array([False]))
        assert adapt.miss_rate(8) > 0  # landed in the top bin

    def test_expected_costs_shape(self):
        adapt = AdaptiveThreshold(max_hint=16)
        assert adapt.expected_costs().shape == (17,)

    def test_shape_mismatch_rejected(self):
        adapt = AdaptiveThreshold()
        with pytest.raises(ValueError):
            adapt.observe(np.zeros(3), np.zeros(2, dtype=bool))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AdaptiveThreshold(max_hint=0)
        with pytest.raises(ValueError):
            AdaptiveThreshold(miss_cost=0)
        with pytest.raises(ValueError):
            AdaptiveThreshold(prior_count=-1)

    def test_monotonicity_contract_only(self, rng):
        """The learner never inspects hint *semantics*: shifting every
        hint by a constant shifts the threshold accordingly."""
        a = AdaptiveThreshold(max_hint=32)
        b = AdaptiveThreshold(max_hint=32)
        correct = rng.poisson(1.0, 2000).clip(0, 10)
        incorrect = rng.poisson(9.0, 2000).clip(0, 20)
        a.observe(correct, np.ones(2000, dtype=bool))
        a.observe(incorrect, np.zeros(2000, dtype=bool))
        b.observe(correct + 5, np.ones(2000, dtype=bool))
        b.observe(incorrect + 5, np.zeros(2000, dtype=bool))
        assert b.best_threshold() == pytest.approx(
            a.best_threshold() + 5, abs=1
        )
