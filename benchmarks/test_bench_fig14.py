"""Benchmark regenerating paper Fig. 14 (miss-length CCDF).

Paper: most SoftPHY misses are short (~30% of length 1) and the length
distribution decays faster than exponential.
"""

from conftest import assert_and_report

from repro.experiments import exp_fig14


def test_bench_fig14(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_fig14.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
