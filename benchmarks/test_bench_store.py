"""Benchmarks for the durable run store.

The store only earns its place if a warm hit is *much* cheaper than
simulating the point — otherwise the memory → disk → simulate ladder
would be pointless.  The gate below requires a >= 20x advantage at the
benchmark's simulation scale (the measured ratio grows with duration:
simulation cost is superlinear in offered load x time, while a warm
read is one gunzip + buffer reslice).
"""

import time

import numpy as np

from repro.experiments.common import RunCache, _simulate_config
from repro.store import RunStore

_STORE_DURATION_S = 15.0
_STORE_SEED = 7


def _store_point():
    cache = RunCache(duration_s=_STORE_DURATION_S, seed=_STORE_SEED)
    return cache.config_for(load=13800.0, carrier_sense=False)


def test_bench_store_warm_hit(benchmark, tmp_path):
    """Warm store hit vs simulating the same point (>= 20x gate)."""
    config = _store_point()
    start = time.perf_counter()
    result = _simulate_config(config)
    simulate_s = time.perf_counter() - start
    store = RunStore(tmp_path)
    store.put(config, result)

    loaded = benchmark(store.get, config)
    assert loaded is not None
    assert loaded.config == config
    assert len(loaded.records) == len(result.records)
    assert all(
        np.array_equal(a.body_symbols, b.body_symbols)
        for a, b in zip(loaded.records, result.records, strict=True)
    )

    start = time.perf_counter()
    warm = store.get(config)
    warm_s = time.perf_counter() - start
    assert warm is not None
    if benchmark.enabled:
        # Wall-clock gates only when actually benchmarking; under
        # --benchmark-disable (CI) a contended runner would flake.
        advantage = simulate_s / warm_s
        assert advantage >= 20.0, (
            f"warm store hit only {advantage:.1f}x cheaper than "
            f"simulating ({warm_s:.4f}s vs {simulate_s:.4f}s)"
        )


def test_bench_store_put(benchmark, tmp_path):
    """Entry write cost (atomic temp-file + rename, level-1 gzip)."""
    config = _store_point()
    result = _simulate_config(config)
    store = RunStore(tmp_path)

    path = benchmark(store.put, config, result)
    assert path.is_file()
    if benchmark.enabled:
        start = time.perf_counter()
        store.put(config, result)
        put_s = time.perf_counter() - start
        # Writing must stay a small fraction of simulating, or the
        # cold pass of a warm-store workflow would not be worth it.
        assert put_s < 1.0, f"store write took {put_s:.2f}s"
