"""Benchmark regenerating paper Table 2 (fragmented-CRC chunk sweep).

Paper shape: aggregate throughput peaks at an intermediate chunk count
(26 / 85 / 96 / 80 / 15 Kbit/s at 1 / 10 / 30 / 100 / 300 chunks).
"""

from conftest import assert_and_report

from repro.experiments import exp_table2


def test_bench_table2(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_table2.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
