"""Benchmark regenerating paper Fig. 13 (anatomy of a collision).

Paper: Hamming distance near zero over cleanly-received codeword runs,
high across the collision; the second packet is recovered through its
postamble.  This is the one waveform-level experiment: MSK modulation,
superposition, matched filtering, correlation sync, rollback.
"""

from conftest import assert_and_report

from repro.experiments import exp_fig13


def test_bench_fig13(benchmark):
    result = benchmark.pedantic(
        lambda: exp_fig13.run(), rounds=1, iterations=1
    )
    assert_and_report(result)
