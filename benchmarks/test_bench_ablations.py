"""Ablation benchmarks for PPR's design choices.

Each ablation isolates one decision the paper makes and measures its
effect on the same traces the figure benchmarks use:

* the threshold η = 6 (paper §3.2 / §7.2),
* hard-decision Hamming hints vs soft-decision correlation (§3.2),
* the 802.15.4 codebook's distance structure vs a random codebook,
* the chunking DP vs naive per-run feedback (§5.1),
* multi-receiver hint combining (§8.4),
* the conclusion's claim that PPR lets a PHY run at a BER one or two
  orders of magnitude higher.
"""

import numpy as np

from repro.arq.chunking import chunk_cost_naive, plan_chunks
from repro.arq.runlength import RunLengthPacket
from repro.link.diversity import diversity_gain
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.decoder import HardDecisionDecoder, SoftDecisionDecoder
from repro.phy.symbols import SoftPacket


def test_bench_ablation_eta_sweep(benchmark, shared_runs):
    """Net goodput vs η: the paper's η = 6 sits on the plateau.

    Net goodput counts delivered-correct bits minus a 10x penalty per
    delivered-incorrect bit (a miss corrupts data and costs recovery).
    Too-small η withholds good codewords; too-large η leaks misses.
    """
    result = shared_runs.get(load=13800.0, carrier_sense=False)
    records = [r for r in result.records if r.acquired(True)]

    def sweep():
        etas = np.arange(0, 17, 2)
        net = {}
        for eta in etas:
            delivered = 0
            leaked = 0
            for rec in records:
                good = rec.payload_hints() <= eta
                correct = rec.payload_correct()
                delivered += int((good & correct).sum())
                leaked += int((good & ~correct).sum())
            net[int(eta)] = delivered - 10 * leaked
        return net

    net = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nnet goodput (symbols) by eta:", net)
    best = max(net, key=net.get)
    # eta = 6 within 1% of the best candidate's net goodput.
    assert net[6] >= 0.99 * net[best], (
        f"paper's eta=6 far from optimum {best}"
    )
    # Extremes are worse than the plateau.
    assert net[0] < net[6]


def test_bench_ablation_hdd_vs_sdd(benchmark, codebook_fixture=None):
    """Soft-decision decoding beats hard-decision in Gaussian noise
    (the 2-3 dB of §3.1), while both hint styles separate errors.

    The paper used HDD because its errors were collision-dominated;
    this ablation quantifies what SDD would have bought in noise.
    """
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(0)
    hdd = HardDecisionDecoder(codebook)
    sdd = SoftDecisionDecoder(codebook)

    def run():
        symbols = rng.integers(0, 16, 4000)
        clean = codebook.encode(symbols).reshape(-1, 32) * 2.0 - 1.0
        noisy = clean + rng.normal(0, 1.3, clean.shape)
        soft_result = sdd.decode_samples(noisy)
        hard_chips = (noisy > 0).astype(np.uint8).reshape(-1)
        hard_result = hdd.decode_chips(hard_chips)
        return {
            "sdd_ser": float((soft_result.symbols != symbols).mean()),
            "hdd_ser": float((hard_result.symbols != symbols).mean()),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nsymbol error rates:", stats)
    assert stats["sdd_ser"] < stats["hdd_ser"]


def test_bench_ablation_codebook_distance(benchmark):
    """Codebook distance structure matters: degrade the 802.15.4
    codebook by moving two codewords to Hamming distance 4 of each
    other and watch the symbol error rate climb.

    (A *random* 16x32 codebook is nearly as good as the standard one —
    expected, since random spreading codes concentrate around distance
    16 — so the ablation builds a deliberately weak codebook.)
    """
    from repro.phy.codebook import Codebook

    rng = np.random.default_rng(1)
    zigbee = ZigbeeCodebook()
    chips = zigbee.chip_matrix
    # Make codeword 1 a distance-4 neighbour of codeword 0.
    chips[1] = chips[0].copy()
    chips[1, :4] ^= 1
    weak = Codebook(chips)

    def run():
        out = {}
        for name, cb in (("zigbee", zigbee), ("weakened_d4", weak)):
            symbols = rng.integers(0, 16, 5000)
            received = transmit_chipwords(
                cb.encode_words(symbols), 0.10, rng
            )
            decoded, hints = cb.decode_hard(received)
            correct = decoded == symbols
            out[name] = {
                "ser": float((~correct).mean()),
                "min_distance": cb.min_distance(),
            }
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncodebook ablation:", stats)
    assert stats["zigbee"]["min_distance"] > stats["weakened_d4"][
        "min_distance"
    ]
    assert stats["zigbee"]["ser"] < stats["weakened_d4"]["ser"]


def test_bench_ablation_dp_vs_naive_feedback(benchmark, shared_runs):
    """The §5.1 DP vs naive per-bad-run feedback on real run-length
    patterns from the heavy-load traces."""
    result = shared_runs.get(load=13800.0, carrier_sense=False)
    patterns = []
    for rec in result.records:
        if not rec.acquired(True):
            continue
        runs = RunLengthPacket.from_hints(rec.payload_hints(), eta=6.0)
        if 0 < runs.n_bad_runs <= 60:
            patterns.append(runs)
    assert patterns, "need damaged receptions for this ablation"

    def run():
        savings = []
        for runs in patterns:
            dp = plan_chunks(runs, checksum_bits=8).cost_bits
            naive = chunk_cost_naive(runs, checksum_bits=8)
            savings.append(1.0 - dp / naive if naive else 0.0)
        return {
            "n_packets": len(savings),
            "mean_saving": float(np.mean(savings)),
            "max_saving": float(np.max(savings)),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nDP feedback savings vs naive:", stats)
    assert stats["mean_saving"] >= 0.0  # DP never loses
    assert stats["max_saving"] > 0.0  # and sometimes wins outright


def test_bench_ablation_diversity_combining(benchmark, shared_runs):
    """Min-hint combining across the four testbed receivers (paper
    §8.4): combined delivery never falls below the best single
    receiver and strictly improves on some transmissions."""
    from collections import defaultdict

    result = shared_runs.get(load=13800.0, carrier_sense=False)
    by_tx = defaultdict(list)
    for rec in result.records:
        if rec.acquired(True):
            by_tx[rec.tx_id].append(rec)
    groups = [recs for recs in by_tx.values() if len(recs) >= 2]
    assert groups

    def run():
        total = 0
        vs_best = []
        vs_mean = []
        for recs in groups:
            packets = [
                SoftPacket(
                    symbols=r.body_symbols.astype(np.int64),
                    hints=r.body_hints.astype(np.float64),
                    truth=r.body_truth.astype(np.int64),
                )
                for r in recs
            ]
            g = diversity_gain(packets, eta=6.0)
            total += 1
            vs_best.append(g["combined"] - g["best_single"])
            vs_mean.append(g["combined"] - g["mean_single"])
        return {
            "transmissions": total,
            "gain_vs_best_single": float(np.mean(vs_best)),
            "gain_vs_mean_single": float(np.mean(vs_mean)),
            "min_gain_vs_best": float(np.min(vs_best)),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ndiversity combining:", stats)
    # Combining essentially never loses to the best single receiver.
    # Strict dominance is not a theorem: a copy decoded to the *wrong*
    # codeword at a *lower* Hamming distance (a confident miss) can
    # displace another receiver's correct symbol, so under genuinely
    # colliding traffic a rare transmission may lose a symbol or two;
    # allow that slack while gating out any systematic loss.
    assert stats["min_gain_vs_best"] >= -0.005
    assert stats["gain_vs_best_single"] >= 0.0
    # ...and beats being stuck with a randomly-assigned receiver (what
    # a node without MRD gets).  Most transmissions arrive clean at
    # someone, so the mean gain is a fraction of a percent of *all*
    # payload bits — concentrated entirely on the damaged receptions.
    assert stats["gain_vs_mean_single"] > 0.003


def test_bench_ablation_higher_ber_operating_point(benchmark):
    """The conclusion's claim: with PPR, a PHY can run at a BER one or
    two orders of magnitude higher.  Sweep channel quality and find the
    worst chip error rate at which each scheme still achieves 90% of
    its clean-channel goodput — PPR's operating point tolerates a far
    higher error rate than whole-packet CRC."""
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(3)
    n_symbols = 3000  # ~1500-byte packets

    def sweep_point(p_chip, eta=6.0, n_packets=8):
        """Goodput fractions and the *data* symbol error rate at one
        channel quality."""
        pkt_bits = 0
        ppr_bits = 0
        symbol_errors = 0
        total = 0
        for _ in range(n_packets):
            symbols = rng.integers(0, 16, n_symbols)
            received = transmit_chipwords(
                codebook.encode_words(symbols),
                p_chip,
                rng,
            )
            decoded, hints = codebook.decode_hard(received)
            correct = decoded == symbols
            total += n_symbols
            symbol_errors += int((~correct).sum())
            if correct.all():
                pkt_bits += n_symbols
            good = hints <= eta
            ppr_bits += int((good & correct).sum())
        return {
            "pkt": pkt_bits / total,
            "ppr": ppr_bits / total,
            "ser": symbol_errors / total,
        }

    def run():
        ps = [1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.15, 0.2]
        table = {p: sweep_point(p) for p in ps}
        floor = 1.0 / (8 * n_symbols * 8)  # one error over the sweep

        def limit_ser(key):
            ok = [p for p in ps if table[p][key] >= 0.9]
            return max(table[max(ok)]["ser"], floor) if ok else floor

        return {
            "table": table,
            "pkt_limit_ser": limit_ser("pkt"),
            "ppr_limit_ser": limit_ser("ppr"),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ndata symbol error rate tolerated at 90% goodput:")
    print(f"  packet CRC: {stats['pkt_limit_ser']:.2e}")
    print(f"  PPR       : {stats['ppr_limit_ser']:.2e}")
    # "a BER that is one or even two orders-of-magnitude higher"
    # (paper conclusion) — measured on the data error rate each scheme
    # can absorb while keeping 90% goodput.
    assert stats["ppr_limit_ser"] >= 10 * stats["pkt_limit_ser"]
