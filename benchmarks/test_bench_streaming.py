"""Benchmark: streaming PP-ARQ vs one-at-a-time PP-ARQ (paper §5.2).

The paper's streaming-ACK protocol concatenates "multiple forward-link
data packets and reverse-link feedback packets ... in each
transmission, to save per-packet overhead."  This bench moves the same
packet stream both ways over the same channel statistics and compares
transmission counts.
"""

import numpy as np

from repro.arq.protocol import PpArqSession
from repro.arq.streaming import StreamingPpArqSession
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.symbols import SoftPacket

N_PACKETS = 24
PACKET_BYTES = 150


def _make_channel(seed):
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(seed)

    def channel(symbols):
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.size == 0:
            return SoftPacket(
                symbols=symbols, hints=np.zeros(0), truth=symbols
            )
        p = np.full(symbols.size, 0.005)
        if rng.random() < 0.5:
            length = max(1, symbols.size // 4)
            start = rng.integers(0, max(1, symbols.size - length))
            p[start : start + length] = 0.4
        received = transmit_chipwords(
            codebook.encode_words(symbols), p, rng
        )
        decoded, dist = codebook.decode_hard(received)
        return SoftPacket(
            symbols=decoded, hints=dist.astype(float), truth=symbols
        )

    return channel


def _payloads(seed):
    rng = np.random.default_rng(seed)
    return [
        bytes(rng.integers(0, 256, PACKET_BYTES, dtype=np.uint8))
        for _ in range(N_PACKETS)
    ]


def test_bench_streaming_vs_sequential(benchmark):
    payloads = _payloads(99)

    def run():
        streaming = StreamingPpArqSession(
            _make_channel(1), window=6
        )
        stream_log = streaming.transfer_stream(payloads)

        sequential = PpArqSession(_make_channel(1))
        seq_reverse = 0
        seq_delivered = 0
        for seq, payload in enumerate(payloads):
            log = sequential.transfer(seq, payload)
            seq_reverse += len(log.feedback_bits)
            seq_delivered += int(log.delivered)
        return {
            "streaming_delivered": stream_log.packets_delivered,
            "sequential_delivered": seq_delivered,
            "streaming_reverse_tx": stream_log.reverse_transmissions,
            "sequential_reverse_tx": seq_reverse,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nstreaming vs sequential PP-ARQ:", stats)
    assert stats["streaming_delivered"] == N_PACKETS
    assert stats["sequential_delivered"] == N_PACKETS
    # The §5.2 point: concatenation collapses reverse-link overhead.
    assert (
        stats["streaming_reverse_tx"] < stats["sequential_reverse_tx"]
    )
