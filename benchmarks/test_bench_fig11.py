"""Benchmark regenerating paper Fig. 11 (per-link throughput CDF).

Paper: at 6.9 Kbit/s/node (near saturation) PPR delivers the most
throughput per link, then fragmented CRC, then packet CRC.
"""

from conftest import assert_and_report

from repro.experiments import exp_fig11


def test_bench_fig11(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_fig11.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
