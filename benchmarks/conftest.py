"""Shared fixtures for the benchmark suite.

Every figure/table benchmark draws on the same cached capacity runs,
exactly like the paper post-processing one trace set per load point.
The first benchmark touching a load point pays its simulation cost;
the cache makes the full suite affordable.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import RunCache

BENCH_DURATION_S = 30.0
BENCH_SEED = 2007


@pytest.fixture(scope="session")
def shared_runs() -> RunCache:
    """Session-wide capacity-run cache for the figure benchmarks."""
    return RunCache(duration_s=BENCH_DURATION_S, seed=BENCH_SEED)


def assert_and_report(result):
    """Common epilogue: print the reproduction and gate on its checks."""
    print()
    print(result.summary())
    assert result.all_passed, (
        f"shape checks failed for {result.experiment_id}:\n"
        + result.summary()
    )
    return result
