"""Benchmark regenerating paper Fig. 10 (delivery CDF, heavy load).

Paper: packet CRC collapses at 13.8 Kbit/s/node; PPR's frame delivery
rate remains high.
"""

from conftest import assert_and_report

from repro.experiments import exp_fig10


def test_bench_fig10(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_fig10.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
