"""Benchmarks for the GF coding kernels (network-coded recovery).

The acceptance bar mirrors ``test_bench_sova.py`` and
``test_bench_waveform.py``: each vectorized kernel must beat its
retained loop reference by at least 5x on a realistic problem size
while agreeing bit-for-bit (the equivalence suite proves the latter;
spot checks here keep the bench honest).  Sizes match the segmented
RLNC use: tens of segments of a 1500-byte payload.
"""

import time

import numpy as np

from repro.coding.gf2 import (
    gf2_eliminate,
    gf2_eliminate_reference,
    gf2_encode,
    gf2_encode_reference,
    pack_bytes_to_words,
)
from repro.coding.gf256 import (
    gf256_eliminate,
    gf256_eliminate_reference,
    gf256_encode,
    gf256_encode_reference,
)
from repro.coding.rlnc import SegmentedRlncCodec

K_SEGMENTS = 60
N_CODED = 90
SEGMENT_BYTES = 64  # ~a 60-way split of a 1500+ byte payload, padded


def _gf2_problem(seed):
    rng = np.random.default_rng(seed)
    rows = pack_bytes_to_words(
        rng.integers(0, 256, (K_SEGMENTS, SEGMENT_BYTES)).astype(
            np.uint8
        )
    )
    coeffs = rng.integers(0, 2, (N_CODED, K_SEGMENTS)).astype(np.uint8)
    return coeffs, rows


def _speedup_gate(benchmark, fast, slow, label):
    start = time.perf_counter()
    fast_result = fast()
    fast_s = time.perf_counter() - start
    start = time.perf_counter()
    slow_result = slow()
    slow_s = time.perf_counter() - start
    if isinstance(fast_result, tuple):
        for a, b in zip(fast_result, slow_result, strict=True):
            assert np.array_equal(a, b)
    else:
        assert np.array_equal(fast_result, slow_result)
    if benchmark.enabled:
        # Wall-clock gates only when actually benchmarking; under
        # --benchmark-disable (CI) a contended runner would flake.
        speedup = slow_s / fast_s
        assert speedup >= 5.0, (
            f"vectorized {label} only {speedup:.1f}x faster than the "
            f"loop reference ({fast_s:.4f}s vs {slow_s:.4f}s)"
        )


def test_bench_gf2_encode(benchmark):
    """90 coded combinations of 60 packed segments, with the >= 5x
    gate against the per-row XOR loop reference."""
    coeffs, rows = _gf2_problem(seed=0)
    coded = benchmark(gf2_encode, coeffs, rows)
    assert coded.shape == (N_CODED, rows.shape[1])
    _speedup_gate(
        benchmark,
        lambda: gf2_encode(coeffs, rows),
        lambda: gf2_encode_reference(coeffs, rows),
        "gf2_encode",
    )


def test_bench_gf2_eliminate(benchmark):
    """Batched GF(2) Gaussian elimination of a 90x60 coded system,
    with the >= 5x gate against the bit-list loop reference."""
    coeffs, rows = _gf2_problem(seed=1)
    payload = gf2_encode(coeffs, rows)
    recovered, _ = benchmark(gf2_eliminate, coeffs, payload)
    assert recovered.all()
    _speedup_gate(
        benchmark,
        lambda: gf2_eliminate(coeffs, payload),
        lambda: gf2_eliminate_reference(coeffs, payload),
        "gf2_eliminate",
    )


def test_bench_gf256_encode(benchmark):
    """90 GF(256) combinations of 60 byte segments, with the >= 5x
    gate against the scalar log/exp loop reference."""
    rng = np.random.default_rng(2)
    rows = rng.integers(0, 256, (K_SEGMENTS, SEGMENT_BYTES)).astype(
        np.uint8
    )
    coeffs = rng.integers(0, 256, (N_CODED, K_SEGMENTS)).astype(
        np.uint8
    )
    coded = benchmark(gf256_encode, coeffs, rows)
    assert coded.shape == (N_CODED, SEGMENT_BYTES)
    _speedup_gate(
        benchmark,
        lambda: gf256_encode(coeffs, rows),
        lambda: gf256_encode_reference(coeffs, rows),
        "gf256_encode",
    )


def test_bench_gf256_eliminate(benchmark):
    """GF(256) elimination of a 90x60 coded system, with the >= 5x
    gate against the scalar loop reference."""
    rng = np.random.default_rng(3)
    rows = rng.integers(0, 256, (K_SEGMENTS, SEGMENT_BYTES)).astype(
        np.uint8
    )
    coeffs = rng.integers(0, 256, (N_CODED, K_SEGMENTS)).astype(
        np.uint8
    )
    payload = gf256_encode(coeffs, rows)
    recovered, _ = benchmark(gf256_eliminate, coeffs, payload)
    assert recovered.all()
    _speedup_gate(
        benchmark,
        lambda: gf256_eliminate(coeffs, payload),
        lambda: gf256_eliminate_reference(coeffs, payload),
        "gf256_eliminate",
    )


def test_bench_rlnc_codec_roundtrip(benchmark):
    """Encode + corrupt + decode of a 1500-byte payload at k=30,
    r=15 — the full coded-recovery path one reception costs."""
    codec = SegmentedRlncCodec(30, 15, field="gf2", seed=4)
    rng = np.random.default_rng(5)
    payload = bytes(rng.integers(0, 256, 1500, dtype=np.uint8))
    wire = codec.encode(payload)
    corrupt = bytearray(wire)
    for idx in (2, 9, 17, 25):
        offset, _ = codec.data_spans(1500)[idx]
        corrupt[offset] ^= 0xFF
    corrupt = bytes(corrupt)

    result = benchmark(codec.decode, corrupt)
    assert result.complete
    assert result.payload() == payload
