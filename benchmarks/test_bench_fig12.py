"""Benchmark regenerating paper Fig. 12 (throughput scatter).

Paper: PPR sits above fragmented CRC by a roughly constant factor;
packet CRC scatters far below; link-quality spread shrinks with finer
recovery granularity.
"""

from conftest import assert_and_report

from repro.experiments import exp_fig12


def test_bench_fig12(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_fig12.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
