"""Benchmark regenerating paper Fig. 16 (PP-ARQ retransmission sizes).

Paper: median partial retransmission is roughly half the 250-byte
packet; PP-ARQ roughly halves total retransmission cost vs whole-packet
ARQ (Table 1).
"""

from conftest import assert_and_report

from repro.experiments import exp_fig16


def test_bench_fig16(benchmark):
    result = benchmark.pedantic(
        lambda: exp_fig16.run(), rounds=1, iterations=1
    )
    assert_and_report(result)
