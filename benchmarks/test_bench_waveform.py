"""Benchmarks for the vectorized waveform pipeline (paper §4/§6).

The acceptance bar for the waveform batch engine, mirroring
``test_bench_sova.py``: on a 1500-chip capture the vectorized MSK
matched filter and modulator must beat their retained per-chip loop
references by at least 5x while staying bit-exact (the equivalence
suite proves the latter; spot checks here keep the bench honest).
"""

import time

import numpy as np

from repro.phy.batch import WaveformBatchEngine
from repro.phy.channelsim import add_awgn
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.demodulation import MskDemodulator
from repro.phy.modulation import MskModulator
from repro.phy.sync import CorrelationSynchronizer, sync_field_symbols

CAPTURE_CHIPS = 1500
SPS = 4


def _capture(seed, n_chips=CAPTURE_CHIPS, noise=0.2):
    rng = np.random.default_rng(seed)
    chips = rng.integers(0, 2, n_chips)
    wave = MskModulator(sps=SPS).modulate_chips(chips)
    return chips, add_awgn(wave, noise, rng)


def test_bench_msk_demodulator_1500_chips(benchmark):
    """Vectorized matched filter on a 1500-chip capture, with the
    >= 5x speedup gate against the per-chip loop reference."""
    demod = MskDemodulator(sps=SPS)
    _, capture = _capture(seed=0)

    soft = benchmark(demod.demodulate_soft, capture, 0, CAPTURE_CHIPS)
    assert soft.size == CAPTURE_CHIPS

    start = time.perf_counter()
    vec = demod.demodulate_soft(capture, 0, CAPTURE_CHIPS)
    vectorized_s = time.perf_counter() - start
    start = time.perf_counter()
    ref = demod.demodulate_soft_reference(capture, 0, CAPTURE_CHIPS)
    reference_s = time.perf_counter() - start

    assert np.array_equal(vec, ref)
    if benchmark.enabled:
        # Wall-clock gates only when actually benchmarking; under
        # --benchmark-disable (CI) a contended runner would flake.
        speedup = reference_s / vectorized_s
        assert speedup >= 5.0, (
            f"vectorized matched filter only {speedup:.1f}x faster "
            f"than the loop reference ({vectorized_s:.4f}s vs "
            f"{reference_s:.4f}s)"
        )


def test_bench_msk_modulator_1500_chips(benchmark):
    """Vectorized rail-split modulator on 1500 chips, with the >= 5x
    speedup gate against the per-chip loop reference."""
    modulator = MskModulator(sps=SPS)
    rng = np.random.default_rng(1)
    chips = rng.integers(0, 2, CAPTURE_CHIPS)

    wave = benchmark(modulator.modulate_chips, chips)
    assert wave.size == modulator.samples_for_chips(CAPTURE_CHIPS)

    start = time.perf_counter()
    vec = modulator.modulate_chips(chips)
    vectorized_s = time.perf_counter() - start
    start = time.perf_counter()
    ref = modulator.modulate_chips_reference(chips)
    reference_s = time.perf_counter() - start

    assert np.array_equal(vec.view(np.float64), ref.view(np.float64))
    if benchmark.enabled:
        speedup = reference_s / vectorized_s
        assert speedup >= 5.0, (
            f"vectorized modulator only {speedup:.1f}x faster than "
            f"the loop reference ({vectorized_s:.4f}s vs "
            f"{reference_s:.4f}s)"
        )


def test_bench_sync_correlate_4000_chips(benchmark):
    """Chip-domain sync correlation over a 4000-chip stream (the
    rollback scan): FFT correlation + cumulative-energy normalisation
    vs the retained per-offset loop reference, with the >= 5x gate.
    The FFT path reassociates the sums, so the spot check pins at
    1e-12 rather than bit-for-bit (see repro.phy.fftcorr)."""
    codebook = ZigbeeCodebook()
    sync = CorrelationSynchronizer(codebook, "postamble")
    rng = np.random.default_rng(2)
    chips = rng.integers(0, 2, 4000).astype(np.uint8)

    corr = benchmark(sync.correlate, chips)
    assert corr.size == 4000 - sync.pattern_chips + 1
    np.testing.assert_allclose(
        corr, sync.correlate_reference(chips), rtol=1e-12, atol=1e-12
    )

    start = time.perf_counter()
    sync.correlate(chips)
    vectorized_s = time.perf_counter() - start
    start = time.perf_counter()
    sync.correlate_reference(chips)
    reference_s = time.perf_counter() - start
    if benchmark.enabled:
        speedup = reference_s / vectorized_s
        assert speedup >= 5.0, (
            f"FFT sync correlation only {speedup:.1f}x faster than "
            f"the loop reference ({vectorized_s:.4f}s vs "
            f"{reference_s:.4f}s)"
        )


def test_bench_waveform_engine_16_captures(benchmark):
    """Full fused reception (sync + matched filter + decode) of 16
    single-frame captures — the capture-level batching pattern."""
    codebook = ZigbeeCodebook()
    engine = WaveformBatchEngine(codebook, sps=SPS)
    modulator = MskModulator(sps=SPS)
    rng = np.random.default_rng(3)
    n_body = 40
    captures = []
    bodies = []
    for _ in range(16):
        body = rng.integers(0, 16, n_body)
        stream = np.concatenate(
            [
                sync_field_symbols("preamble"),
                body,
                sync_field_symbols("postamble"),
            ]
        )
        wave = modulator.modulate_symbols(stream, codebook)
        captures.append(add_awgn(wave, 0.05, rng))
        bodies.append(body)

    receptions = benchmark(engine.receive_frames, captures, n_body)
    assert len(receptions) == 16
    assert all(r.acquired for r in receptions)
    assert all(
        np.array_equal(r.symbols, body)
        for r, body in zip(receptions, bodies, strict=True)
    )
