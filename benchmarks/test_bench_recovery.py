"""Benchmarks for the collision-recovery hot paths.

The SIC pipeline leans on two kernels hard enough to gate: frame
re-synthesis (one :func:`remodulate_frame` per cancellation) and the
sample-domain sync correlation (re-run on every residual).  Both must
beat their retained loop references by at least 5x, mirroring the
waveform-pipeline gates in ``test_bench_waveform.py``.  The end-to-end
``SicDecoder.decode_pair`` is benchmarked without a gate — it is a
composition, not a kernel.
"""

import time

import numpy as np

from repro.phy.channelsim import add_awgn
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.frontend import ReceiverFrontend
from repro.phy.modulation import MskModulator
from repro.phy.remodulate import (
    remodulate_frame,
    remodulate_frame_reference,
)
from repro.phy.sync import sync_field_symbols
from repro.recovery.sic import SicDecoder

SPS = 4
N_BODY = 60


def _frame_symbols(rng, n_body=N_BODY):
    return np.concatenate(
        [
            sync_field_symbols("preamble"),
            rng.integers(0, 16, n_body),
            sync_field_symbols("postamble"),
        ]
    )


def test_bench_remodulate_frame_80_symbols(benchmark):
    """Frame re-synthesis (spread + MSK + complex gain), with the
    >= 5x gate against the per-chip loop reference."""
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(0)
    stream = _frame_symbols(rng)

    wave = benchmark(
        remodulate_frame, stream, codebook, SPS, 0.7, 0.3
    )
    assert wave.size == (stream.size * 32 + 1) * SPS

    start = time.perf_counter()
    vec = remodulate_frame(stream, codebook, SPS, 0.7, 0.3)
    vectorized_s = time.perf_counter() - start
    start = time.perf_counter()
    ref = remodulate_frame_reference(stream, codebook, SPS, 0.7, 0.3)
    reference_s = time.perf_counter() - start

    assert np.array_equal(vec.view(np.float64), ref.view(np.float64))
    if benchmark.enabled:
        speedup = reference_s / vectorized_s
        assert speedup >= 5.0, (
            f"vectorized re-synthesis only {speedup:.1f}x faster than "
            f"the loop reference ({vectorized_s:.4f}s vs "
            f"{reference_s:.4f}s)"
        )


def test_bench_sample_correlation_one_frame(benchmark):
    """Sample-domain sync correlation over one frame-sized capture
    (the SIC residual re-scan), with the >= 5x gate against the
    per-offset loop reference.  The FFT path reassociates the sums,
    so the spot check pins at 1e-12 (see repro.phy.fftcorr)."""
    codebook = ZigbeeCodebook()
    frontend = ReceiverFrontend(codebook, sps=SPS)
    modulator = MskModulator(sps=SPS)
    rng = np.random.default_rng(1)
    capture = add_awgn(
        modulator.modulate_symbols(_frame_symbols(rng), codebook),
        0.1,
        rng,
    )

    corr = benchmark(frontend.correlation, capture, "preamble")
    np.testing.assert_allclose(
        corr,
        frontend.correlation_reference(capture, "preamble"),
        rtol=1e-12,
        atol=1e-12,
    )

    start = time.perf_counter()
    frontend.correlation(capture, "preamble")
    vectorized_s = time.perf_counter() - start
    start = time.perf_counter()
    frontend.correlation_reference(capture, "preamble")
    reference_s = time.perf_counter() - start
    if benchmark.enabled:
        speedup = reference_s / vectorized_s
        assert speedup >= 5.0, (
            f"FFT sample correlation only {speedup:.1f}x faster than "
            f"the loop reference ({vectorized_s:.4f}s vs "
            f"{reference_s:.4f}s)"
        )


def test_bench_sic_decode_pair(benchmark):
    """End-to-end SIC over a two-frame collision: strong decode,
    re-synthesis, cancellation, residual decode."""
    codebook = ZigbeeCodebook()
    modulator = MskModulator(sps=SPS)
    rng = np.random.default_rng(2)
    strong = modulator.modulate_symbols(_frame_symbols(rng), codebook)
    weak = modulator.modulate_symbols(_frame_symbols(rng), codebook)
    offset = 40 * 32 * SPS
    capture = np.zeros(offset + weak.size, dtype=np.complex128)
    capture[: strong.size] += strong
    capture[offset : offset + weak.size] += 0.4 * weak
    capture = add_awgn(capture, 0.01, rng)
    decoder = SicDecoder(codebook, sps=SPS)

    result = benchmark(decoder.decode_pair, capture, N_BODY)
    assert result.cancelled
    assert result.strong is not None
    assert result.weak is not None
