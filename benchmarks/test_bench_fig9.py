"""Benchmark regenerating paper Fig. 9 (delivery CDF, carrier sense off).

Paper: packet CRC becomes very poor without carrier sense; PPR and
fragmented CRC remain roughly unchanged.
"""

from conftest import assert_and_report

from repro.experiments import exp_fig9


def test_bench_fig9(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_fig9.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
