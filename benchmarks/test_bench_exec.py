"""Benchmarks for the supervised executor.

Supervision only earns its keep if its bookkeeping is invisible next
to real simulation work: the in-process path must add microseconds of
overhead per task, and a fork-per-task worker must cost low
milliseconds — small against even the cheapest (~0.1 s) simulation
point, let alone the 40 s capacity runs the harness actually fans
out.
"""

import time

from repro.exec import ExecPolicy, FaultPlan, Supervisor, Task

_POLICY = ExecPolicy()
_NO_FAULTS = FaultPlan()


def _identity(x):
    return x


def _tasks(n):
    return [Task(task_id=i, payload=i, timeout_s=60.0) for i in range(n)]


def test_bench_exec_serial_overhead(benchmark):
    """Per-task bookkeeping of the in-process path (no faults)."""
    tasks = _tasks(200)
    supervisor = Supervisor(policy=_POLICY, faults=_NO_FAULTS)

    def run():
        results, failures = supervisor.run(tasks, _identity)
        assert failures == []
        return results

    results = benchmark(run)
    assert results == {i: i for i in range(200)}
    assert not supervisor.counters.anomalous
    if benchmark.enabled:
        # Wall-clock gates only when actually benchmarking; under
        # --benchmark-disable (CI) a contended runner would flake.
        start = time.perf_counter()
        run()
        per_task_s = (time.perf_counter() - start) / len(tasks)
        assert per_task_s < 1e-3, (
            f"serial supervision costs {per_task_s * 1e6:.0f} us/task"
        )


def test_bench_exec_process_fanout(benchmark):
    """Fork + pipe + join cost of one supervised worker per task."""
    tasks = _tasks(8)
    supervisor = Supervisor(jobs=4, policy=_POLICY, faults=_NO_FAULTS)

    def run():
        results, failures = supervisor.run(tasks, _identity)
        assert failures == []
        return results

    results = benchmark(run)
    assert results == {i: i for i in range(8)}
    assert not supervisor.counters.anomalous
    if benchmark.enabled:
        start = time.perf_counter()
        run()
        per_task_s = (time.perf_counter() - start) / len(tasks)
        assert per_task_s < 0.1, (
            f"process supervision costs {per_task_s * 1e3:.0f} ms/task"
        )
