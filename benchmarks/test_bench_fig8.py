"""Benchmark regenerating paper Fig. 8 (delivery CDF, carrier sense on).

Paper: postamble decoding roughly doubles median frame delivery;
PPR > fragmented CRC > packet CRC at 3.5 Kbit/s/node.
"""

from conftest import assert_and_report

from repro.experiments import exp_fig8


def test_bench_fig8(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_fig8.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
