"""Benchmarks for the sender-side generation phase.

Carrier-sense queries used to rescan the full, ever-growing
transmission history on every attempt, making phase 1 O(n^2) in
offered load x duration.  The simulation now keeps an end-time-pruned
active set; the guard here replays a recorded query workload through
both strategies and gates on the asymptotic win, so a regression back
to history scans fails loudly rather than just slowing experiments.
"""

import heapq
import time

import numpy as np

from repro.sim.network import NetworkSimulation, SimulationConfig


def _synthetic_workload(n: int, seed: int = 0):
    """Start-ordered (start, end) windows plus time-ordered queries."""
    rng = np.random.default_rng(seed)
    starts = np.cumsum(rng.exponential(0.002, n))
    ends = starts + rng.uniform(0.005, 0.012, n)
    queries = np.sort(rng.uniform(0.0, starts[-1], n))
    return starts, ends, queries


def _replay_naive(starts, ends, queries) -> int:
    """The old strategy: filter the whole history per query."""
    total = 0
    for q in queries:
        total += sum(
            1 for s, e in zip(starts, ends, strict=True) if s <= q < e
        )
    return total


def _replay_pruned(starts, ends, queries) -> int:
    """The new strategy: end-time-pruned heap, O(active) per query."""
    total = 0
    heap: list[tuple[float, int]] = []
    i = 0
    for q in queries:
        while i < starts.size and starts[i] <= q:
            heapq.heappush(heap, (float(ends[i]), i))
            i += 1
        while heap and heap[0][0] <= q:
            heapq.heappop(heap)
        total += len(heap)
    return total


def test_bench_carrier_sense_active_set(benchmark):
    """Pruned active-set replay of 4000 queries over 4000 windows,
    gated >= 5x over the full-history rescan it replaced."""
    starts, ends, queries = _synthetic_workload(4000)

    pruned_total = benchmark(_replay_pruned, starts, ends, queries)

    t0 = time.perf_counter()
    naive_total = _replay_naive(starts, ends, queries)
    naive_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    again = _replay_pruned(starts, ends, queries)
    pruned_s = time.perf_counter() - t0

    assert pruned_total == naive_total == again
    if benchmark.enabled:
        speedup = naive_s / pruned_s
        assert speedup >= 5.0, (
            f"pruned active set only {speedup:.1f}x faster than the "
            f"history rescan ({pruned_s:.3f}s vs {naive_s:.3f}s)"
        )


def test_bench_generate_transmissions_heavy(benchmark):
    """Absolute cost of phase 1 at heavy load (the regime where the
    O(n^2) rescan used to dominate)."""
    config = SimulationConfig(
        load_bits_per_s_per_node=13800.0,
        payload_bytes=400,
        duration_s=8.0,
        carrier_sense=True,
        seed=5,
    )

    def generate():
        return NetworkSimulation(config)._generate_transmissions()

    txs = benchmark(generate)
    assert len(txs) > 100
