"""Benchmark regenerating paper Fig. 15 (false-alarm rate vs eta).

Paper: false-alarm rate on the order of 5e-3 at eta = 6, varying only
slightly with offered load.
"""

from conftest import assert_and_report

from repro.experiments import exp_fig15


def test_bench_fig15(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_fig15.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
