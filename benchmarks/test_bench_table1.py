"""Benchmark regenerating paper Table 1 (headline summary).

Paper: PPR/fragmented CRC improve per-link throughput >7x under high
load and ~2x under moderate load; PP-ARQ cuts retransmission cost ~50%.
"""

from conftest import assert_and_report

from repro.experiments import exp_table1


def test_bench_table1(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_table1.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
