"""Benchmarks for the vectorized SOVA decoder (the §3.1 hint kernel).

The acceptance bar for the batched reception engine: on a 1500-bit
packet through the constraint-7 (171, 133) code, the vectorized
``decode`` must beat the retained pure-Python reference by at least
5x, while staying bit- and hint-exact (the equivalence suite proves
the latter; a spot check here keeps the bench honest).
"""

import time

import numpy as np

from repro.phy.convolutional import ConvolutionalCode, SovaDecoder

PACKET_BITS = 1500


def _packet_llrs(code, n_bits, seed, noise=0.7):
    rng = np.random.default_rng(seed)
    coded = code.encode(rng.integers(0, 2, n_bits))
    return 1.0 - 2.0 * coded.astype(float) + rng.normal(
        0.0, noise, coded.size
    )


def test_bench_sova_vectorized_1500bit_k7(benchmark):
    """Vectorized SOVA on a 1500-bit constraint-7 packet, with the
    >= 5x speedup gate against the loop reference."""
    code = ConvolutionalCode(generators=(0o171, 0o133), constraint=7)
    decoder = SovaDecoder(code)
    llrs = _packet_llrs(code, PACKET_BITS, seed=0)

    result = benchmark(decoder.decode, llrs)
    assert result.bits.size == PACKET_BITS

    # One timed reference run (it is far too slow to benchmark
    # properly) against the vectorized path's own wall clock.
    start = time.perf_counter()
    vec = decoder.decode(llrs)
    vectorized_s = time.perf_counter() - start
    start = time.perf_counter()
    ref = decoder.decode_reference(llrs)
    reference_s = time.perf_counter() - start

    assert np.array_equal(vec.bits, ref.bits)
    assert np.array_equal(vec.hints, ref.hints)
    if benchmark.enabled:
        # Wall-clock gates only when actually benchmarking; under
        # --benchmark-disable (CI) a contended runner would flake.
        speedup = reference_s / vectorized_s
        assert speedup >= 5.0, (
            f"vectorized SOVA only {speedup:.1f}x faster than the "
            f"loop reference ({vectorized_s:.3f}s vs {reference_s:.3f}s)"
        )


def test_bench_sova_vectorized_k3(benchmark):
    """The default (7, 5) code on the same packet size — the small
    trellis where per-step numpy dispatch overhead bites hardest."""
    code = ConvolutionalCode()
    decoder = SovaDecoder(code)
    llrs = _packet_llrs(code, PACKET_BITS, seed=1)
    result = benchmark(decoder.decode, llrs)
    assert result.bits.size == PACKET_BITS


def test_bench_sova_batch_32_packets(benchmark):
    """decode_batch fuses equal-length packets into one trellis pass;
    32 x 300-bit packets measure the amortised per-packet cost."""
    code = ConvolutionalCode(generators=(0o23, 0o35), constraint=5)
    decoder = SovaDecoder(code)
    packets = [
        _packet_llrs(code, 300, seed=seed) for seed in range(32)
    ]
    results = benchmark(decoder.decode_batch, packets)
    assert len(results) == 32
    assert all(r.bits.size == 300 for r in results)


def test_bench_sova_batch_beats_per_packet_loop(benchmark):
    """The batch API's whole point: decoding N packets in one fused
    call must not be slower than N vectorized calls."""
    code = ConvolutionalCode(generators=(0o23, 0o35), constraint=5)
    decoder = SovaDecoder(code)
    packets = [
        _packet_llrs(code, 200, seed=100 + seed) for seed in range(16)
    ]

    batch_results = benchmark(decoder.decode_batch, packets)

    start = time.perf_counter()
    single_results = [decoder.decode(p) for p in packets]
    per_packet_s = time.perf_counter() - start
    start = time.perf_counter()
    decoder.decode_batch(packets)
    batch_s = time.perf_counter() - start

    for one, many in zip(single_results, batch_results, strict=True):
        assert np.array_equal(one.bits, many.bits)
        assert np.array_equal(one.hints, many.hints)
    if benchmark.enabled:
        # Generous bound: the fused pass should win clearly, but the
        # timing comparison would flake on a contended CI runner, so
        # it only gates real benchmark runs.
        assert batch_s < per_packet_s * 1.5, (
            f"batched decode ({batch_s:.3f}s) slower than per-packet "
            f"({per_packet_s:.3f}s)"
        )
