"""Benchmarks for the counter-based chip channel and trial sharding.

The counter-based channel removes the shared sequential RNG stream
that forced pair-by-pair transit, so a whole trial's corruption runs
as one fused array program; sharding then fans independent simulation
points across worker processes.  Both must stay bit-identical to
their unfused/unsharded equivalents — asserted here alongside the
timings, so the benchmarks double as equivalence guards.
"""

import os
import time

import numpy as np

from repro.experiments.common import RunCache
from repro.phy.chipchannel import transmit_chipwords_batch
from repro.phy.codebook import ZigbeeCodebook
from repro.utils.rng import derive_key

N_PAIRS = 1500
WORDS_PER_PAIR = 40


def _pair_workload(seed: int = 7):
    """N_PAIRS receptions' hot words with per-pair keys, pre-flattened."""
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(seed)
    per_pair = []
    for pair in range(N_PAIRS):
        words = codebook.encode_words(
            rng.integers(0, 16, WORDS_PER_PAIR)
        )
        p = rng.uniform(0.0, 0.3, WORDS_PER_PAIR)
        key = derive_key(0, "chip-channel", pair, 23)
        per_pair.append((words, p, key))
    flat = (
        np.concatenate([w for w, _, _ in per_pair]),
        np.concatenate([p for _, p, _ in per_pair]),
        [WORDS_PER_PAIR] * N_PAIRS,
        np.stack([k for _, _, k in per_pair]),
    )
    return per_pair, flat


def test_bench_fused_chip_channel(benchmark):
    """One fused transit of 1500 pairs' words, gated >= 1.5x over
    per-pair calls (the python dispatch and per-call pack/XOR overhead
    the fusion removes) and asserted bit-identical to them."""
    per_pair, flat = _pair_workload()

    fused = benchmark(transmit_chipwords_batch, *flat)

    t0 = time.perf_counter()
    unfused = np.concatenate(
        [
            transmit_chipwords_batch(w, p, [w.size], k[None, :])
            for w, p, k in per_pair
        ]
    )
    per_pair_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    again = transmit_chipwords_batch(*flat)
    fused_s = time.perf_counter() - t0

    assert np.array_equal(fused, unfused)
    assert np.array_equal(fused, again)
    if benchmark.enabled:
        speedup = per_pair_s / fused_s
        assert speedup >= 1.5, (
            f"fused transit only {speedup:.1f}x faster than per-pair "
            f"calls ({fused_s:.3f}s vs {per_pair_s:.3f}s)"
        )


def test_bench_sharded_capacity_points(benchmark):
    """Two capacity points prefetched with jobs=2 vs sequentially:
    always bit-identical; wall-clock gated only on multi-core hosts
    (workers cannot beat one process on a single core)."""
    duration_s, seed = 6.0, 2007

    def points(cache: RunCache):
        return [
            cache.config_for(load=13800.0, carrier_sense=False),
            cache.config_for(load=13800.0, carrier_sense=True),
        ]

    def sharded():
        runs = RunCache(duration_s=duration_s, seed=seed, jobs=2)
        runs.prefetch(points(runs))
        return runs

    par = benchmark.pedantic(sharded, rounds=1, iterations=1)

    t0 = time.perf_counter()
    seq = RunCache(duration_s=duration_s, seed=seed, jobs=1)
    seq.prefetch(points(seq))
    sequential_s = time.perf_counter() - t0

    for config in points(seq):
        a, b = seq.get(config), par.get(config)
        assert len(a.records) == len(b.records)
        for ra, rb in zip(a.records, b.records, strict=True):
            assert ra.tx_id == rb.tx_id
            assert np.array_equal(ra.body_symbols, rb.body_symbols)
            assert np.array_equal(ra.body_hints, rb.body_hints)

    if benchmark.enabled and (os.cpu_count() or 1) >= 2:
        t0 = time.perf_counter()
        again = RunCache(duration_s=duration_s, seed=seed, jobs=2)
        again.prefetch(points(again))
        sharded_s = time.perf_counter() - t0
        assert sharded_s < sequential_s, (
            f"jobs=2 ({sharded_s:.1f}s) not faster than sequential "
            f"({sequential_s:.1f}s) on a {os.cpu_count()}-core host"
        )
