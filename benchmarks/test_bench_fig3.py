"""Benchmark regenerating paper Fig. 3 (Hamming distance CDFs).

Paper: >=96% of correct codewords at distance <= 1; only ~10% of
incorrect codewords at distance <= 6.
"""

from conftest import assert_and_report

from repro.experiments import exp_fig3


def test_bench_fig3(benchmark, shared_runs):
    result = benchmark.pedantic(
        lambda: exp_fig3.run(shared_runs), rounds=1, iterations=1
    )
    assert_and_report(result)
