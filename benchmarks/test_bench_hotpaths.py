"""Microbenchmarks of the library's hot paths.

These measure the kernels every experiment leans on: vectorised
nearest-codeword decoding, the chip channel, the PP-ARQ dynamic
program, and feedback encoding.  Regressions here multiply directly
into experiment wall-clock time.
"""

import numpy as np

from repro.arq.chunking import plan_chunks
from repro.arq.feedback import (
    FeedbackPacket,
    decode_feedback,
    encode_feedback,
    gaps_for_segments,
)
from repro.arq.runlength import RunLengthPacket
from repro.phy.batch import BatchReceptionEngine, decode_samples_batch
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.decoder import SoftDecisionDecoder
from repro.phy.modulation import MskModulator
from repro.phy.sync import RollbackBuffer
from repro.utils.crc import CRC32_IEEE


def test_bench_decode_hard_throughput(benchmark):
    """Nearest-codeword decode of 10k codewords (the per-reception cost)."""
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(0)
    words = codebook.encode_words(rng.integers(0, 16, 10_000))
    received = transmit_chipwords(words, 0.1, rng)
    symbols, hints = benchmark(codebook.decode_hard, received)
    assert symbols.size == 10_000
    assert hints.mean() > 0


def test_bench_chip_channel(benchmark):
    """BSC transit of 10k codewords with per-symbol probabilities."""
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(1)
    words = codebook.encode_words(rng.integers(0, 16, 10_000))
    p = rng.uniform(0.0, 0.3, 10_000)

    received = benchmark(
        lambda: transmit_chipwords(words, p, np.random.default_rng(2))
    )
    assert received.size == 10_000


def test_bench_chunking_dp(benchmark):
    """The O(L^3) DP on a packet with 40 bad runs."""
    rng = np.random.default_rng(3)
    mask = np.ones(3000, dtype=bool)
    starts = np.sort(rng.choice(2900, size=40, replace=False))
    for s in starts:
        mask[s : s + int(rng.integers(1, 8))] = False
    runs = RunLengthPacket.from_labels(mask)
    plan = benchmark(plan_chunks, runs)
    assert plan.n_requested_symbols >= (~mask).sum()


def test_bench_chunking_dp_dense(benchmark):
    """The per-diagonal vectorized DP on a packet with 120 bad runs —
    the regime where the old O(L^3) Python loops dominated."""
    rng = np.random.default_rng(30)
    mask = np.ones(6000, dtype=bool)
    starts = np.sort(rng.choice(5800, size=120, replace=False))
    for s in starts:
        mask[s : s + int(rng.integers(1, 6))] = False
    runs = RunLengthPacket.from_labels(mask)
    plan = benchmark(plan_chunks, runs)
    assert plan.n_requested_symbols >= (~mask).sum()


def test_bench_batched_reception(benchmark):
    """Fused nearest-codeword decode of 200 receptions' corrupted
    words in one BatchReceptionEngine call (the per-trial pattern)."""
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(31)
    arrays = []
    for _ in range(200):
        words = codebook.encode_words(
            rng.integers(0, 16, int(rng.integers(20, 120)))
        )
        arrays.append(transmit_chipwords(words, 0.15, rng))
    engine = BatchReceptionEngine(codebook)
    decoded = benchmark(engine.decode_hard_ragged, arrays)
    assert len(decoded) == 200


def test_bench_soft_decision_batch(benchmark):
    """Fused soft-decision decode of 64 stacked receptions."""
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(32)
    decoder = SoftDecisionDecoder(codebook)
    blocks = []
    for _ in range(64):
        symbols = rng.integers(0, 16, 60)
        clean = codebook.encode(symbols).reshape(-1, 32) * 2.0 - 1.0
        blocks.append(clean + rng.normal(0.0, 0.6, clean.shape))
    results = benchmark(decode_samples_batch, decoder, blocks)
    assert len(results) == 64


def test_bench_feedback_roundtrip(benchmark):
    """Encode + decode of a 12-segment feedback packet."""
    n_symbols = 3000
    segments = tuple((i * 200, i * 200 + 40) for i in range(12))
    gaps = gaps_for_segments(segments, n_symbols)
    packet = FeedbackPacket(
        seq=1,
        n_symbols=n_symbols,
        segments=segments,
        gap_checksums=tuple(7 for _ in gaps),
    )

    def roundtrip():
        return decode_feedback(encode_feedback(packet))

    decoded = benchmark(roundtrip)
    assert decoded.segments == segments


def test_bench_rollback_get_range(benchmark):
    """Rollback retrieval from a wrapped circular buffer: 200 window
    reads per call, most spanning the wrap point (served as at most
    two contiguous slices, not a per-sample fancy index)."""
    capacity = 1 << 16
    buf = RollbackBuffer(capacity=capacity)
    rng = np.random.default_rng(5)
    buf.append(rng.normal(size=3 * capacity // 2) * (1 + 1j))
    window = 4096
    starts = rng.integers(
        buf.oldest_available, buf.total_written - window, size=200
    )

    def read_windows():
        total = 0
        for start in starts:
            total += buf.get_range(int(start), window).size
        return total

    assert benchmark(read_windows) == 200 * window


def test_bench_msk_modulation(benchmark):
    """Waveform synthesis of a 100-symbol frame at 4 samples/chip."""
    codebook = ZigbeeCodebook()
    rng = np.random.default_rng(4)
    symbols = rng.integers(0, 16, 100)
    modulator = MskModulator(sps=4)
    wave = benchmark(modulator.modulate_symbols, symbols, codebook)
    assert wave.size > 0


def test_bench_checksum_many(benchmark):
    """Batched CRC-32 of 64 segment rows (~50 B each) in one pass —
    the per-fragment / per-segment pattern of FragmentedCrcScheme and
    SpracScheme — spot-checked against per-row compute()."""
    rng = np.random.default_rng(6)
    rows = rng.integers(0, 256, (64, 50)).astype(np.uint8)
    lengths = rng.integers(32, 51, 64)

    crcs = benchmark(CRC32_IEEE.checksum_many, rows, lengths)
    assert crcs.shape == (64,)
    spot = rng.integers(0, 64, 8)
    for i in spot:
        assert int(crcs[i]) == CRC32_IEEE.compute(
            rows[i, : lengths[i]].tobytes()
        )
