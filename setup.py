"""Setup shim for environments without PEP 517 wheel support.

``pip install -e .`` in this offline environment lacks the ``wheel``
package, so ``python setup.py develop`` (or the .pth fallback) is the
supported editable-install path.

The version is read textually from ``src/repro/_version.py`` — the
package's single source of truth — rather than imported, so installing
does not require the package's dependencies to be importable.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_VERSION_FILE = Path(__file__).parent / "src" / "repro" / "_version.py"


def _read_version() -> str:
    match = re.search(
        r'^__version__\s*=\s*"([^"]+)"',
        _VERSION_FILE.read_text(),
        re.MULTILINE,
    )
    if match is None:
        raise RuntimeError(f"no __version__ in {_VERSION_FILE}")
    return match.group(1)


setup(
    name="repro",
    version=_read_version(),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
