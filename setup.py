"""Setup shim for environments without PEP 517 wheel support.

``pip install -e .`` in this offline environment lacks the ``wheel``
package, so ``python setup.py develop`` (or the .pth fallback) is the
supported editable-install path.  Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
