"""Single source of the package version.

Read by ``repro/__init__.py`` (the public ``repro.__version__``), by
``setup.py`` (textually, so packaging needs no imports), and by the
artifact layer: the runner stamps it into JSON manifests/artifacts and
:mod:`repro.store` folds it into every content-addressed key, so a
version bump invalidates durable cache entries instead of silently
reusing results computed by older code.
"""

__version__ = "1.1.0"
