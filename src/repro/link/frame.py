"""PPR frame layout (paper Fig. 2).

On-air structure::

    preamble(8 sym) SFD(2 sym) | header | wire payload | trailer |
    postamble(8 sym) EFD(2 sym)

* **Header** (10 bytes): length(2) src(2) dst(2) seq(2) crc16(2).  The
  CRC-16 covers the first eight header bytes so the header verifies on
  its own — a preamble-path receiver needs a trustworthy length field
  before the rest of the frame arrives.
* **Wire payload**: produced by the active delivery scheme; for the
  packet-CRC and PPR schemes this is ``payload + CRC-32(payload)``, for
  fragmented CRC it is per-fragment CRCs (see
  :mod:`repro.link.schemes`).  ``length`` in the header/trailer is the
  *wire payload* byte count.
* **Trailer** (10 bytes): the same fields replicated with their own
  CRC-16, so a postamble-path receiver can recover frame boundaries by
  rolling back (paper §4).

Every field is a whole number of bytes, hence a whole number of 4-bit
symbols, keeping codeword alignment trivial.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.phy.spreading import bytes_to_symbols, symbols_to_bytes
from repro.phy.sync import (
    EFD_SYMBOLS,
    POSTAMBLE_SYMBOLS,
    PREAMBLE_SYMBOLS,
    SFD_SYMBOLS,
)
from repro.utils.crc import crc16

HEADER_BYTES = 10
TRAILER_BYTES = 10
CRC32_BYTES = 4
SYMBOLS_PER_BYTE = 2
MAX_WIRE_PAYLOAD = 0xFFFF

_HEADER_STRUCT = struct.Struct(">HHHHH")


@dataclass(frozen=True)
class FrameHeader:
    """Header/trailer fields: wire-payload length, addresses, sequence."""

    length: int
    src: int
    dst: int
    seq: int

    def __post_init__(self) -> None:
        for name in ("length", "src", "dst", "seq"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(
                    f"{name} must fit in 16 bits, got {value}"
                )

    def pack(self) -> bytes:
        """Serialise to 10 bytes with a CRC-16 over the first eight."""
        body = struct.pack(">HHHH", self.length, self.src, self.dst, self.seq)
        return body + struct.pack(">H", crc16(body))


def parse_header_bytes(data: bytes) -> tuple[FrameHeader, bool]:
    """Parse 10 header bytes; returns ``(header, crc_ok)``.

    Parsing never raises on corrupt content — a receiver must be able
    to look at a damaged header and judge it by its CRC.
    """
    if len(data) != HEADER_BYTES:
        raise ValueError(
            f"header must be exactly {HEADER_BYTES} bytes, got {len(data)}"
        )
    length, src, dst, seq, crc = _HEADER_STRUCT.unpack(data)
    ok = crc16(data[:8]) == crc
    return FrameHeader(length=length, src=src, dst=dst, seq=seq), ok


def parse_trailer_bytes(data: bytes) -> tuple[FrameHeader, bool]:
    """Parse 10 trailer bytes (same layout as the header)."""
    if len(data) != TRAILER_BYTES:
        raise ValueError(
            f"trailer must be exactly {TRAILER_BYTES} bytes, got {len(data)}"
        )
    return parse_header_bytes(data)


def body_symbol_count(wire_payload_len: int) -> int:
    """Symbols in the frame body for a wire payload of given bytes."""
    if wire_payload_len < 0:
        raise ValueError(
            f"wire_payload_len must be non-negative, got {wire_payload_len}"
        )
    return SYMBOLS_PER_BYTE * (HEADER_BYTES + wire_payload_len + TRAILER_BYTES)


@dataclass(frozen=True)
class PprFrame:
    """A fully-formed PPR frame ready for (simulated) transmission."""

    header: FrameHeader
    wire_payload: bytes

    @classmethod
    def build(
        cls, src: int, dst: int, seq: int, wire_payload: bytes
    ) -> "PprFrame":
        """Construct a frame around an already-scheme-encoded payload."""
        if len(wire_payload) > MAX_WIRE_PAYLOAD:
            raise ValueError(
                f"wire payload too large: {len(wire_payload)} bytes"
            )
        header = FrameHeader(
            length=len(wire_payload), src=src, dst=dst, seq=seq
        )
        return cls(header=header, wire_payload=bytes(wire_payload))

    # -- symbol-domain views -------------------------------------------------

    def body_bytes(self) -> bytes:
        """Header + wire payload + trailer as bytes."""
        h = self.header.pack()
        return h + self.wire_payload + h

    def body_symbols(self) -> np.ndarray:
        """The frame body as 4-bit symbol indices."""
        return bytes_to_symbols(self.body_bytes())

    def on_air_symbols(self) -> np.ndarray:
        """Complete on-air symbol stream including sync fields."""
        return np.concatenate(
            [
                np.array(PREAMBLE_SYMBOLS + SFD_SYMBOLS, dtype=np.int64),
                self.body_symbols(),
                np.array(POSTAMBLE_SYMBOLS + EFD_SYMBOLS, dtype=np.int64),
            ]
        )

    @property
    def n_body_symbols(self) -> int:
        """Symbols in the body region."""
        return body_symbol_count(len(self.wire_payload))

    @property
    def n_air_symbols(self) -> int:
        """Total on-air symbols including both sync fields."""
        return self.n_body_symbols + 2 * 10

    def payload_symbol_range(self) -> tuple[int, int]:
        """(start, end) symbol indices of the wire payload in the body."""
        start = SYMBOLS_PER_BYTE * HEADER_BYTES
        end = start + SYMBOLS_PER_BYTE * len(self.wire_payload)
        return start, end


@dataclass(frozen=True)
class ParsedBody:
    """Result of parsing a decoded frame body."""

    header: FrameHeader
    header_ok: bool
    trailer: FrameHeader
    trailer_ok: bool
    wire_payload: bytes


def parse_body_symbols(symbols: np.ndarray) -> ParsedBody:
    """Parse a decoded body symbol array back into frame fields.

    The symbol count must equal :func:`body_symbol_count` for the
    payload length implied by the array size; corrupt field *contents*
    are fine (flagged by the CRCs), but a structurally impossible size
    raises.
    """
    symbols = np.asarray(symbols, dtype=np.int64)
    n_overhead = SYMBOLS_PER_BYTE * (HEADER_BYTES + TRAILER_BYTES)
    if symbols.size < n_overhead or symbols.size % SYMBOLS_PER_BYTE:
        raise ValueError(
            f"body of {symbols.size} symbols cannot hold header + trailer"
        )
    data = symbols_to_bytes(symbols)
    header, header_ok = parse_header_bytes(data[:HEADER_BYTES])
    trailer, trailer_ok = parse_trailer_bytes(data[-TRAILER_BYTES:])
    wire_payload = data[HEADER_BYTES : len(data) - TRAILER_BYTES]
    return ParsedBody(
        header=header,
        header_ok=header_ok,
        trailer=trailer,
        trailer_ok=trailer_ok,
        wire_payload=wire_payload,
    )
