"""Payload fragmentation helpers and the post-facto optimal fragment size.

Supports the fragmented-CRC baseline (paper §3.4) and the paper's
"best case" analysis: *"we investigate the 'best case' for CRC
fragments, finding post facto from traces of errored and error-free
symbols what the optimal fragment size is and using that value."*
"""

from __future__ import annotations

import numpy as np


def fragment_payload(payload: bytes, n_fragments: int) -> list[bytes]:
    """Split ``payload`` into ``n_fragments`` nearly-equal pieces.

    Leading fragments get the remainder bytes, matching
    :class:`repro.link.schemes.FragmentedCrcScheme`.  If the payload is
    shorter than the fragment count, one byte per fragment is used and
    the count shrinks; an empty payload yields one empty fragment.
    """
    if n_fragments < 1:
        raise ValueError(f"n_fragments must be >= 1, got {n_fragments}")
    if len(payload) == 0:
        return [b""]
    n = min(n_fragments, len(payload))
    base, extra = divmod(len(payload), n)
    out = []
    offset = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        out.append(payload[offset : offset + size])
        offset += size
    return out


def reassemble_fragments(fragments: list[bytes | None]) -> tuple[bytes, list[int]]:
    """Join delivered fragments, zero-filling the missing ones.

    ``None`` marks a fragment whose CRC failed.  Returns the
    reassembled byte string and the list of missing fragment indices.
    Zero-fill keeps byte offsets stable so higher layers can request
    exactly the missing ranges.
    """
    missing = [i for i, frag in enumerate(fragments) if frag is None]
    placeholder = [
        frag if frag is not None else b"" for frag in fragments
    ]
    return b"".join(placeholder), missing


def delivered_bits_for_fragmentation(
    symbol_error_mask: np.ndarray,
    n_fragments: int,
    bits_per_symbol: int = 4,
    crc_bits: int = 32,
) -> tuple[int, int]:
    """Payload bits a fragmented-CRC scheme would deliver on this trace.

    ``symbol_error_mask`` marks the *payload* symbols that decoded
    incorrectly.  Returns ``(delivered_bits, overhead_bits)``: a
    fragment delivers iff none of its symbols errored, and each
    fragment costs one CRC of overhead.
    """
    mask = np.asarray(symbol_error_mask, dtype=bool)
    n_symbols = mask.size
    if n_fragments < 1:
        raise ValueError(f"n_fragments must be >= 1, got {n_fragments}")
    n = min(n_fragments, n_symbols) if n_symbols else 1
    bounds = np.linspace(0, n_symbols, n + 1).astype(int)
    delivered = 0
    for lo, hi in zip(bounds[:-1], bounds[1:], strict=True):
        if hi > lo and not mask[lo:hi].any():
            delivered += (hi - lo) * bits_per_symbol
    return delivered, crc_bits * n


class AdaptiveFragmentSizer:
    """Time-varying fragment count (paper §3.4).

    *"In an implementation, one might place a CRC every c bits, where c
    varies in time.  If the current value leads to a large number of
    contiguous error-free fragments, then c should be increased;
    otherwise, it should be reduced (or remain the same)."*

    This controller adjusts the fragments-per-packet count after each
    packet: when every fragment verified, fragments grow (fewer,
    larger); when a meaningful share failed, they shrink (more,
    smaller).  Multiplicative-increase/multiplicative-decrease keeps
    the controller stable across load shifts.
    """

    def __init__(
        self,
        initial_fragments: int = 30,
        min_fragments: int = 1,
        max_fragments: int = 300,
        grow_factor: float = 1.5,
        shrink_factor: float = 2.0,
        failure_threshold: float = 0.1,
    ) -> None:
        if not 1 <= min_fragments <= initial_fragments <= max_fragments:
            raise ValueError(
                "need min_fragments <= initial_fragments <= max_fragments"
            )
        if grow_factor <= 1.0 or shrink_factor <= 1.0:
            raise ValueError("grow/shrink factors must exceed 1.0")
        if not 0 < failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be in (0, 1), got "
                f"{failure_threshold}"
            )
        self._current = int(initial_fragments)
        self._min = int(min_fragments)
        self._max = int(max_fragments)
        self._grow = float(grow_factor)
        self._shrink = float(shrink_factor)
        self._threshold = float(failure_threshold)

    @property
    def n_fragments(self) -> int:
        """Fragments per packet to use for the next transmission."""
        return self._current

    def observe_packet(self, fragment_ok: list[bool]) -> int:
        """Update from one packet's per-fragment outcomes.

        Fewer fragments = less overhead, so an all-clean packet
        *decreases* the count; failures above the threshold *increase*
        it so each loss costs fewer bytes.  Returns the new count.
        """
        if not fragment_ok:
            raise ValueError("need at least one fragment outcome")
        failed = sum(1 for ok in fragment_ok if not ok)
        failure_rate = failed / len(fragment_ok)
        if failed == 0:
            proposed = int(self._current / self._grow)
        elif failure_rate >= self._threshold:
            proposed = int(np.ceil(self._current * self._shrink))
        else:
            proposed = self._current
        self._current = int(np.clip(proposed, self._min, self._max))
        return self._current


def optimal_fragment_size(
    symbol_error_masks: list[np.ndarray],
    candidates: list[int] | None = None,
    bits_per_symbol: int = 4,
    crc_bits: int = 32,
) -> tuple[int, dict[int, float]]:
    """Post-facto optimal fragments-per-packet over a trace corpus.

    For each candidate fragment count, computes net goodput —
    delivered payload bits minus CRC overhead, summed over all traces —
    and returns ``(best_candidate, scores)``.  This is the paper's
    "best case" fragmented CRC: the fragment size an oracle would pick
    for the observed error pattern.
    """
    if not symbol_error_masks:
        raise ValueError("need at least one trace")
    if candidates is None:
        candidates = [1, 2, 5, 10, 20, 30, 50, 100, 200, 300]
    scores: dict[int, float] = {}
    for cand in candidates:
        net = 0
        for mask in symbol_error_masks:
            delivered, overhead = delivered_bits_for_fragmentation(
                mask, cand, bits_per_symbol, crc_bits
            )
            net += delivered - overhead
        scores[cand] = float(net)
    best = max(scores, key=lambda c: (scores[c], -c))
    return best, scores
