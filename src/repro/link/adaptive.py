"""Adaptive SoftPHY threshold selection (paper §3.3).

The architectural contract between PHY and link layer is monotonicity
only: lower hint means higher confidence.  The link layer must *learn*
the threshold η by observing how hints correlate with verified
correctness (it learns correctness post-hoc, e.g. from PP-ARQ CRC
verification of runs).  :class:`AdaptiveThreshold` keeps hint
histograms for verified-correct and verified-incorrect codewords and
picks the η minimising expected mislabelling cost.
"""

from __future__ import annotations

import numpy as np


class AdaptiveThreshold:
    """Online η selection from (hint, verified-correctness) feedback.

    Parameters
    ----------
    max_hint:
        Upper bound on hint values tracked (inclusive); the Hamming
        hint of a 32-chip codebook never exceeds 32.
    miss_cost:
        Relative cost of a *miss* — labelling an incorrect codeword
        good.  Misses corrupt delivered data and force extra recovery
        rounds, so this outweighs false alarms by default (paper §7.4:
        "the overhead of a false alarm is low — just one unnecessarily
        transmitted codeword").
    false_alarm_cost:
        Relative cost of labelling a correct codeword bad (one codeword
        of needless retransmission).
    prior_count:
        Laplace smoothing added to each histogram bin, so early
        decisions are conservative rather than degenerate.
    """

    def __init__(
        self,
        max_hint: int = 32,
        miss_cost: float = 10.0,
        false_alarm_cost: float = 1.0,
        prior_count: float = 1.0,
    ) -> None:
        if max_hint < 1:
            raise ValueError(f"max_hint must be >= 1, got {max_hint}")
        if miss_cost <= 0 or false_alarm_cost <= 0:
            raise ValueError("costs must be positive")
        if prior_count < 0:
            raise ValueError(
                f"prior_count must be non-negative, got {prior_count}"
            )
        self._max_hint = int(max_hint)
        self._miss_cost = float(miss_cost)
        self._fa_cost = float(false_alarm_cost)
        self._prior_count = float(prior_count)
        self._correct = np.full(self._max_hint + 1, self._prior_count)
        self._incorrect = np.full(self._max_hint + 1, self._prior_count)

    @property
    def max_hint(self) -> int:
        """Largest hint value tracked."""
        return self._max_hint

    @property
    def observations(self) -> int:
        """Number of verified codewords observed (excluding the prior)."""
        total = self._correct.sum() + self._incorrect.sum()
        prior_mass = 2 * (self._max_hint + 1) * self._prior_count
        return int(round(total - prior_mass))

    def observe(self, hints: np.ndarray, correct: np.ndarray) -> None:
        """Record verified codewords: ``correct[i]`` for ``hints[i]``."""
        hints = np.clip(
            np.asarray(hints, dtype=np.float64).round().astype(int),
            0,
            self._max_hint,
        )
        correct = np.asarray(correct, dtype=bool)
        if hints.shape != correct.shape:
            raise ValueError("hints and correct must have the same shape")
        np.add.at(self._correct, hints[correct], 1.0)
        np.add.at(self._incorrect, hints[~correct], 1.0)

    def expected_costs(self) -> np.ndarray:
        """Expected mislabelling cost for every candidate η in [0, max].

        ``cost(η) = miss_cost * P(incorrect, hint <= η)
        + fa_cost * P(correct, hint > η)``
        """
        total = self._correct.sum() + self._incorrect.sum()
        cum_incorrect = np.cumsum(self._incorrect)
        tail_correct = self._correct.sum() - np.cumsum(self._correct)
        return (
            self._miss_cost * cum_incorrect + self._fa_cost * tail_correct
        ) / total

    def best_threshold(self) -> int:
        """The η minimising expected cost (ties go to the smaller η)."""
        return int(self.expected_costs().argmin())

    def miss_rate(self, eta: float) -> float:
        """Estimated P(hint <= η | incorrect) — the §7.4.1 miss rate."""
        idx = int(min(max(eta, 0), self._max_hint))
        total = self._incorrect.sum()
        return float(self._incorrect[: idx + 1].sum() / total)

    def false_alarm_rate(self, eta: float) -> float:
        """Estimated P(hint > η | correct) — the §7.4.2 false-alarm rate."""
        idx = int(min(max(eta, 0), self._max_hint))
        total = self._correct.sum()
        return float(self._correct[idx + 1 :].sum() / total)
