"""Per-link delivery bookkeeping for the evaluation metrics.

Accumulates per-(sender, receiver) statistics in the terms the paper's
evaluation uses:

* **equivalent frame delivery rate** (§7.2.2) — correct payload bits
  delivered divided by payload bits of *acquired* frames ("once the PHY
  layer synchronizes on a packet").
* **end-to-end throughput** (§7.2.3) — correct payload bits delivered
  per unit time, which folds in acquisition failures and overhead.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.link.schemes import DeliveryResult


@dataclass
class LinkObservation:
    """Counters for one directed link under one scheme."""

    frames_sent: int = 0
    frames_acquired: int = 0
    frames_passed: int = 0
    payload_bits_sent: int = 0
    payload_bits_acquired: int = 0
    delivered_correct_bits: int = 0
    delivered_incorrect_bits: int = 0
    overhead_bits: int = 0

    def record_sent(self, payload_bits: int) -> None:
        """A frame destined for this link was transmitted."""
        self.frames_sent += 1
        self.payload_bits_sent += payload_bits

    def record_acquired(self, result: DeliveryResult) -> None:
        """The receiver synchronised on the frame and ran delivery."""
        self.frames_acquired += 1
        self.payload_bits_acquired += result.payload_bits
        self.delivered_correct_bits += result.delivered_correct_bits
        self.delivered_incorrect_bits += result.delivered_incorrect_bits
        self.overhead_bits += result.overhead_bits
        if result.frame_passed:
            self.frames_passed += 1

    @property
    def acquisition_rate(self) -> float:
        """Fraction of sent frames the receiver synchronised on."""
        if self.frames_sent == 0:
            return 0.0
        return self.frames_acquired / self.frames_sent

    @property
    def equivalent_frame_delivery_rate(self) -> float:
        """Correct payload bits delivered per sent payload bit (§7.2.2).

        Partial deliveries count as equivalent fractions of frames;
        frames the receiver never synchronised on (no preamble, and no
        postamble when postamble decoding is off) deliver nothing, which
        is how postamble decoding lifts this metric — it creates more
        opportunities to synchronise.
        """
        if self.payload_bits_sent == 0:
            return 0.0
        return self.delivered_correct_bits / self.payload_bits_sent

    @property
    def conditional_delivery_rate(self) -> float:
        """Correct payload bits per *acquired* payload bit.

        The per-synchronised-frame efficiency, independent of how many
        sync opportunities were missed.
        """
        if self.payload_bits_acquired == 0:
            return 0.0
        return self.delivered_correct_bits / self.payload_bits_acquired

    def throughput_bits_per_s(self, duration_s: float) -> float:
        """Correct delivered payload bits per second (§7.2.3)."""
        if duration_s <= 0:
            raise ValueError(
                f"duration_s must be positive, got {duration_s}"
            )
        return self.delivered_correct_bits / duration_s


class LinkStats:
    """Statistics for every directed link, keyed by (src, dst)."""

    def __init__(self) -> None:
        self._links: dict[tuple[int, int], LinkObservation] = defaultdict(
            LinkObservation
        )

    def __getitem__(self, link: tuple[int, int]) -> LinkObservation:
        return self._links[link]

    def __contains__(self, link: tuple[int, int]) -> bool:
        return link in self._links

    def __len__(self) -> int:
        return len(self._links)

    def links(self) -> list[tuple[int, int]]:
        """All observed links, sorted for deterministic iteration."""
        return sorted(self._links)

    def active_links(self, min_sent: int = 1) -> list[tuple[int, int]]:
        """Links where at least ``min_sent`` frames were audible —
        the per-link populations the paper's CDFs are over.  A link a
        receiver never synchronised on still belongs to the population
        (its delivery rate is simply zero)."""
        return [
            link
            for link in self.links()
            if self._links[link].frames_sent >= min_sent
        ]

    def delivery_rates(self, min_sent: int = 1) -> list[float]:
        """Per-link equivalent frame delivery rates (for CDF plots)."""
        return [
            self._links[link].equivalent_frame_delivery_rate
            for link in self.active_links(min_sent)
        ]

    def throughputs(
        self, duration_s: float, min_acquired: int = 0
    ) -> dict[tuple[int, int], float]:
        """Per-link throughput in bits/s."""
        links = (
            self.links()
            if min_acquired == 0
            else self.active_links(min_acquired)
        )
        return {
            link: self._links[link].throughput_bits_per_s(duration_s)
            for link in links
        }
