"""Delivery schemes: packet CRC, fragmented CRC, and PPR (paper §7.2).

Each scheme answers two questions behind one interface:

1. *What goes on the air?* — ``encode_payload`` turns application
   payload bytes into the wire payload (adding whatever checksums the
   scheme needs).
2. *What reaches the higher layer?* — ``deliver`` consumes the decoded
   wire-payload region of a reception (symbols + SoftPHY hints +
   simulation ground truth) and reports exactly which payload bits were
   handed up, split into genuinely-correct and incorrect bits.

The three schemes mirror the paper:

* :class:`PacketCrcScheme` — one CRC-32 over the payload; all-or-nothing.
* :class:`FragmentedCrcScheme` — a CRC-32 per fragment (§3.4);
  fragments pass or fail independently.
* :class:`PprScheme` — SoftPHY threshold rule: deliver the bits of
  every codeword whose hint is at most η (§7.2: "PPR delivers exactly
  those bits in the packet whose codewords had a Hamming distance less
  than η. Here we choose η = 6.").

Beyond the paper, :class:`SpracScheme` adds the S-PRAC contender
(PAPERS.md): fragmented CRCs plus random-linear-network-coded repair
segments, the very-noisy-channel scheme the coded-recovery experiment
pits against the paper's three.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.coding.rlnc import SegmentedRlncCodec
from repro.link.fragmentation import fragment_payload
from repro.phy.spreading import symbols_to_bytes
from repro.utils.crc import CRC32_IEEE

_BITS_PER_SYMBOL = 4
_SYMBOLS_PER_BYTE = 2
_CRC_BYTES = 4


def _crc32_rows(chunks: list[bytes]) -> np.ndarray:
    """CRC-32 of each byte chunk, via one batched ``checksum_many``."""
    lengths = np.array([len(c) for c in chunks], dtype=np.int64)
    width = int(lengths.max()) if lengths.size else 0
    rows = np.zeros((len(chunks), width), dtype=np.uint8)
    for i, chunk in enumerate(chunks):
        rows[i, : len(chunk)] = np.frombuffer(chunk, dtype=np.uint8)
    return CRC32_IEEE.checksum_many(rows, lengths)


@dataclass
class ReceivedPayload:
    """The decoded wire-payload region of one reception.

    ``symbols``/``hints`` cover exactly the wire payload;  ``truth``
    carries the transmitted symbols (simulation ground truth) so
    delivery accounting can distinguish correct from incorrect bits.
    """

    symbols: np.ndarray
    hints: np.ndarray
    truth: np.ndarray

    def __post_init__(self) -> None:
        self.symbols = np.asarray(self.symbols, dtype=np.int64)
        self.hints = np.asarray(self.hints, dtype=np.float64)
        self.truth = np.asarray(self.truth, dtype=np.int64)
        if (
            self.symbols.shape != self.hints.shape
            or self.hints.shape != self.truth.shape
        ):
            raise ValueError(
                "symbols, hints and truth must have identical shapes"
            )

    @property
    def n_symbols(self) -> int:
        """Number of wire-payload codewords."""
        return int(self.symbols.size)

    def decoded_bytes(self) -> bytes:
        """Wire payload as decoded bytes."""
        return symbols_to_bytes(self.symbols)

    def correct_mask(self) -> np.ndarray:
        """Per-symbol correctness against ground truth."""
        return self.symbols == self.truth


@dataclass(frozen=True)
class DeliveryResult:
    """Accounting for one reception under one scheme.

    All counts are *application payload* bits (checksum overhead is
    excluded from delivery but reported separately).
    """

    scheme: str
    payload_bits: int
    delivered_correct_bits: int
    delivered_incorrect_bits: int
    overhead_bits: int
    frame_passed: bool

    @property
    def delivered_bits(self) -> int:
        """Total bits handed to the higher layer."""
        return self.delivered_correct_bits + self.delivered_incorrect_bits

    @property
    def delivery_fraction(self) -> float:
        """Fraction of payload bits delivered correctly."""
        if self.payload_bits == 0:
            return 0.0
        return self.delivered_correct_bits / self.payload_bits


class DeliveryScheme(ABC):
    """Common interface of the three §7.2 delivery schemes."""

    name: str = "abstract"

    @abstractmethod
    def encode_payload(self, payload: bytes) -> bytes:
        """Application payload -> wire payload (adds checksums)."""

    @abstractmethod
    def wire_overhead_bytes(self, payload_len: int) -> int:
        """Checksum bytes added to a payload of the given length."""

    @abstractmethod
    def deliver(self, rx: ReceivedPayload) -> DeliveryResult:
        """Decide which payload bits reach the higher layer."""

    def wire_length(self, payload_len: int) -> int:
        """Total wire-payload bytes for an application payload."""
        return payload_len + self.wire_overhead_bytes(payload_len)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PacketCrcScheme(DeliveryScheme):
    """Status quo: one CRC-32 over the whole payload, all-or-nothing."""

    name = "packet_crc"

    def encode_payload(self, payload: bytes) -> bytes:
        return payload + CRC32_IEEE.compute_bytes(payload)

    def wire_overhead_bytes(self, payload_len: int) -> int:
        return _CRC_BYTES

    def deliver(self, rx: ReceivedPayload) -> DeliveryResult:
        wire = rx.decoded_bytes()
        if len(wire) < _CRC_BYTES:
            raise ValueError("wire payload shorter than its CRC")
        payload, crc_field = wire[:-_CRC_BYTES], wire[-_CRC_BYTES:]
        passed = CRC32_IEEE.compute_bytes(payload) == crc_field
        payload_bits = 8 * len(payload)
        if not passed:
            return DeliveryResult(
                scheme=self.name,
                payload_bits=payload_bits,
                delivered_correct_bits=0,
                delivered_incorrect_bits=0,
                overhead_bits=8 * _CRC_BYTES,
                frame_passed=False,
            )
        # CRC passed: with a 32-bit CRC the chance of an undetected
        # error is negligible; account delivered bits against truth
        # anyway so a (vanishingly rare) collision shows up as errors.
        correct = rx.correct_mask()[: _SYMBOLS_PER_BYTE * len(payload)]
        correct_bits = int(correct.sum()) * _BITS_PER_SYMBOL
        return DeliveryResult(
            scheme=self.name,
            payload_bits=payload_bits,
            delivered_correct_bits=correct_bits,
            delivered_incorrect_bits=payload_bits - correct_bits,
            overhead_bits=8 * _CRC_BYTES,
            frame_passed=True,
        )


class FragmentedCrcScheme(DeliveryScheme):
    """Per-fragment CRC-32s (paper §3.4, Fig. 4).

    The payload is cut into ``n_fragments`` nearly-equal pieces, each
    followed by its own CRC-32.  Fragments deliver independently.
    """

    name = "fragmented_crc"

    def __init__(self, n_fragments: int = 30) -> None:
        if n_fragments < 1:
            raise ValueError(
                f"n_fragments must be >= 1, got {n_fragments}"
            )
        self.n_fragments = int(n_fragments)

    def __repr__(self) -> str:
        return f"FragmentedCrcScheme(n_fragments={self.n_fragments})"

    def encode_payload(self, payload: bytes) -> bytes:
        fragments = fragment_payload(payload, self.n_fragments)
        # One batched CRC pass over all fragments instead of one
        # Python call (and byte loop) per fragment.
        crcs = _crc32_rows(fragments)
        pieces = []
        for frag, crc in zip(fragments, crcs, strict=True):
            pieces.append(frag)
            pieces.append(int(crc).to_bytes(_CRC_BYTES, "big"))
        return b"".join(pieces)

    def wire_overhead_bytes(self, payload_len: int) -> int:
        n = min(self.n_fragments, payload_len) if payload_len else 1
        return _CRC_BYTES * n

    def deliver(self, rx: ReceivedPayload) -> DeliveryResult:
        wire = rx.decoded_bytes()
        correct_sym = rx.correct_mask()
        n_frags = self._fragment_count(len(wire))
        payload_len = len(wire) - _CRC_BYTES * n_frags
        sizes = self._fragment_sizes(payload_len, n_frags)
        payload_bits = 8 * payload_len
        delivered_correct = 0
        delivered_incorrect = 0
        passed_all = True
        offsets = np.cumsum([0] + [s + _CRC_BYTES for s in sizes[:-1]])
        computed = _crc32_rows(
            [wire[o : o + s] for o, s in zip(offsets, sizes, strict=True)]
        )
        declared = [
            int.from_bytes(wire[o + s : o + s + _CRC_BYTES], "big")
            for o, s in zip(offsets, sizes, strict=True)
        ]
        for offset, size, crc, want in zip(
            offsets, sizes, computed, declared, strict=True
        ):
            ok = int(crc) == want
            if ok:
                sym_lo = _SYMBOLS_PER_BYTE * offset
                sym_hi = _SYMBOLS_PER_BYTE * (offset + size)
                good = int(correct_sym[sym_lo:sym_hi].sum())
                delivered_correct += good * _BITS_PER_SYMBOL
                delivered_incorrect += (
                    (sym_hi - sym_lo) - good
                ) * _BITS_PER_SYMBOL
            else:
                passed_all = False
        return DeliveryResult(
            scheme=self.name,
            payload_bits=payload_bits,
            delivered_correct_bits=delivered_correct,
            delivered_incorrect_bits=delivered_incorrect,
            overhead_bits=8 * _CRC_BYTES * n_frags,
            frame_passed=passed_all,
        )

    def _fragment_count(self, wire_len: int) -> int:
        # Invert wire_length: wire = payload + 4 * n, n = min(n_frags, payload).
        for n in range(min(self.n_fragments, wire_len), 0, -1):
            payload_len = wire_len - _CRC_BYTES * n
            if payload_len >= 0 and self._expected_frag_count(
                payload_len
            ) == n:
                return n
        raise ValueError(
            f"wire length {wire_len} inconsistent with "
            f"{self.n_fragments} fragments"
        )

    def _expected_frag_count(self, payload_len: int) -> int:
        if payload_len == 0:
            return 1
        return min(self.n_fragments, payload_len)

    @staticmethod
    def _fragment_sizes(payload_len: int, n_frags: int) -> list[int]:
        base, extra = divmod(payload_len, n_frags)
        return [base + (1 if i < extra else 0) for i in range(n_frags)]


class PprScheme(DeliveryScheme):
    """PPR delivery: the SoftPHY threshold rule (paper §3.2, §7.2).

    The wire format matches :class:`PacketCrcScheme` (PPR needs no
    extra on-air redundancy); delivery hands up the bits of every
    codeword whose hint is at most ``eta``.
    """

    name = "ppr"

    def __init__(self, eta: float = 6.0) -> None:
        if eta < 0:
            raise ValueError(f"eta must be non-negative, got {eta}")
        self.eta = float(eta)

    def __repr__(self) -> str:
        return f"PprScheme(eta={self.eta})"

    def encode_payload(self, payload: bytes) -> bytes:
        return payload + CRC32_IEEE.compute_bytes(payload)

    def wire_overhead_bytes(self, payload_len: int) -> int:
        return _CRC_BYTES

    def deliver(self, rx: ReceivedPayload) -> DeliveryResult:
        wire = rx.decoded_bytes()
        if len(wire) < _CRC_BYTES:
            raise ValueError("wire payload shorter than its CRC")
        payload_len = len(wire) - _CRC_BYTES
        payload_bits = 8 * payload_len
        n_payload_syms = _SYMBOLS_PER_BYTE * payload_len
        good = rx.hints[:n_payload_syms] <= self.eta
        correct = rx.correct_mask()[:n_payload_syms]
        delivered_correct = int((good & correct).sum()) * _BITS_PER_SYMBOL
        delivered_incorrect = int((good & ~correct).sum()) * _BITS_PER_SYMBOL
        passed = (
            CRC32_IEEE.compute_bytes(wire[:payload_len])
            == wire[payload_len:]
        )
        return DeliveryResult(
            scheme=self.name,
            payload_bits=payload_bits,
            delivered_correct_bits=delivered_correct,
            delivered_incorrect_bits=delivered_incorrect,
            overhead_bits=8 * _CRC_BYTES,
            frame_passed=passed,
        )


class SicScheme(PprScheme):
    """PPR delivery over SIC-recovered receptions (paper §6).

    The wire format and the SoftPHY threshold rule are exactly
    :class:`PprScheme` — what changes is *upstream*: receptions handed
    to this scheme have been through successive interference
    cancellation (:mod:`repro.recovery`), so a collided frame arrives
    with its interferer's reconstruction already subtracted
    (``SimulationConfig.sic_recovery`` in the network simulation, or
    :class:`~repro.recovery.sic.SicDecoder` directly at waveform
    level).  Keeping delivery identical isolates the collision-recovery
    gain: any metric difference between ``ppr`` and ``sic`` traces is
    attributable to cancellation alone.
    """

    name = "sic"

    def __repr__(self) -> str:
        return f"SicScheme(eta={self.eta})"


class SpracScheme(DeliveryScheme):
    """Segmented RLNC delivery (S-PRAC, PAPERS.md) — beyond the paper.

    The wire format is the fragmented-CRC baseline *plus* coded
    repair: ``n_segments`` CRC-32-protected data segments followed by
    ``n_repair`` CRC-32-protected random linear combinations of them
    (:class:`repro.coding.rlnc.SegmentedRlncCodec`).  Delivery keeps
    every segment whose CRC verifies and reconstructs erased segments
    from the surviving repair equations by Gaussian elimination — in
    very noisy channels the repair overhead buys back far more than
    the fragments alone deliver.
    """

    name = "sprac"

    def __init__(
        self,
        n_segments: int = 30,
        n_repair: int | None = None,
        field: str = "gf2",
        seed: int = 0,
    ) -> None:
        if n_repair is None:
            n_repair = max(1, -(-n_segments // 4))
        self.codec = SegmentedRlncCodec(
            n_segments=n_segments,
            n_repair=n_repair,
            field=field,
            seed=seed,
        )

    @property
    def n_segments(self) -> int:
        """Data segment count k."""
        return self.codec.n_segments

    @property
    def n_repair(self) -> int:
        """Coded repair segment count r."""
        return self.codec.n_repair

    def __repr__(self) -> str:
        return (
            f"SpracScheme(n_segments={self.n_segments}, "
            f"n_repair={self.n_repair}, field={self.codec.field!r})"
        )

    def encode_payload(self, payload: bytes) -> bytes:
        return self.codec.encode(payload)

    def wire_overhead_bytes(self, payload_len: int) -> int:
        return self.codec.wire_length(payload_len) - payload_len

    def deliver(self, rx: ReceivedPayload) -> DeliveryResult:
        wire = rx.decoded_bytes()
        payload_len = self.codec.payload_length(len(wire))
        result = self.codec.decode(wire)
        truth = symbols_to_bytes(rx.truth)
        correct_sym = rx.correct_mask()
        payload_bits = 8 * payload_len
        delivered_correct = 0
        delivered_incorrect = 0
        for i, (offset, size) in enumerate(
            self.codec.data_spans(payload_len)
        ):
            seg_bits = 8 * size
            if result.data_ok[i]:
                # Delivered on its own CRC: account against truth so
                # a CRC collision shows up, as the other schemes do.
                sym_lo = _SYMBOLS_PER_BYTE * offset
                sym_hi = _SYMBOLS_PER_BYTE * (offset + size)
                good = int(correct_sym[sym_lo:sym_hi].sum())
                delivered_correct += good * _BITS_PER_SYMBOL
                delivered_incorrect += (
                    (sym_hi - sym_lo) - good
                ) * _BITS_PER_SYMBOL
            elif result.coded_recovered[i]:
                exact = (
                    result.segments[i]
                    == truth[offset : offset + size]
                )
                if exact:
                    delivered_correct += seg_bits
                else:
                    delivered_incorrect += seg_bits
        return DeliveryResult(
            scheme=self.name,
            payload_bits=payload_bits,
            delivered_correct_bits=delivered_correct,
            delivered_incorrect_bits=delivered_incorrect,
            overhead_bits=8 * self.wire_overhead_bytes(payload_len),
            frame_passed=result.complete,
        )


def default_schemes(eta: float = 6.0, n_fragments: int = 30):
    """The paper's three contenders with its §7.2 parameters."""
    return [
        PacketCrcScheme(),
        FragmentedCrcScheme(n_fragments=n_fragments),
        PprScheme(eta=eta),
    ]
