"""Multi-receiver diversity combining on SoftPHY hints (paper §8.4).

The paper points out that PPR's hints give multi-radio diversity (MRD)
schemes a PHY-independent combining rule: when several access points
hear the same transmission, each reports its decoded symbols *with
hints*, and the combiner keeps, per codeword, the copy whose hint shows
the highest confidence — "the simpler design and PHY-independence of
the block-based combining of [20], while also achieving the
performance gains of using PHY information."

:func:`combine_soft_packets` implements exactly that rule, plus the
accounting the diversity experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.symbols import SoftPacket, SyncSource


@dataclass(frozen=True)
class DiversityResult:
    """Combined reception plus per-source usage accounting."""

    combined: SoftPacket
    chosen_source: np.ndarray  # index of the packet each symbol came from

    def source_share(self, index: int) -> float:
        """Fraction of symbols taken from source ``index``."""
        if self.chosen_source.size == 0:
            return 0.0
        return float((self.chosen_source == index).mean())


def combine_soft_packets(packets: list[SoftPacket]) -> DiversityResult:
    """Min-hint combining of multiple receptions of the same frame.

    All packets must cover the same symbol count.  For each position
    the symbol with the lowest hint wins (ties go to the earlier
    packet, matching a combiner that processes reports in arrival
    order).  Ground truth, when attached to every input, carries over.
    """
    if not packets:
        raise ValueError("need at least one reception to combine")
    n = packets[0].n_symbols
    if any(p.n_symbols != n for p in packets):
        raise ValueError("all receptions must have the same symbol count")

    hint_matrix = np.stack([p.hints for p in packets])
    symbol_matrix = np.stack([p.symbols for p in packets])
    chosen = hint_matrix.argmin(axis=0)
    cols = np.arange(n)
    combined_symbols = symbol_matrix[chosen, cols]
    combined_hints = hint_matrix[chosen, cols]

    truth = None
    if all(p.truth is not None for p in packets):
        truth = packets[0].truth
        for p in packets[1:]:
            if not np.array_equal(p.truth, truth):
                raise ValueError(
                    "receptions disagree on ground truth; they are not "
                    "copies of the same transmission"
                )
    combined = SoftPacket(
        symbols=combined_symbols,
        hints=combined_hints,
        truth=truth,
        sync_source=SyncSource.PREAMBLE,
    )
    return DiversityResult(
        combined=combined, chosen_source=chosen.astype(np.int64)
    )


def diversity_gain(
    packets: list[SoftPacket], eta: float
) -> dict[str, float]:
    """Delivered-correct fractions: best single receiver vs combined.

    Requires ground truth on every packet.  Returns the three numbers
    a diversity evaluation wants: best individual receiver's delivery,
    the combiner's delivery, and the miss fraction of the combined
    stream.
    """
    if not packets:
        raise ValueError("need at least one reception")
    per_receiver = []
    for p in packets:
        good = p.good_mask(eta)
        correct = p.correct_mask()
        per_receiver.append(float((good & correct).mean()))
    result = combine_soft_packets(packets)
    combined = result.combined
    good = combined.good_mask(eta)
    correct = combined.correct_mask()
    return {
        "best_single": max(per_receiver),
        "mean_single": float(np.mean(per_receiver)),
        "combined": float((good & correct).mean()),
        "combined_miss_fraction": float((good & ~correct).mean()),
    }
