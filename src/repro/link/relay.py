"""Opportunistic partial forwarding on SoftPHY hints (paper §2, §8.4).

The paper sketches how forwarding protocols could consume SoftPHY
directly: *"Other ways to use SoftPHY information include integrating
it with forwarding protocols or opportunistic routing protocols,
forwarding only the bits likely to be correct"*, and for mesh protocols
like ExOR, *"nodes need only forward or combine ... symbols (groups of
bits) that are likely to be correct, and avoid wasting network capacity
on incorrect data."*

:class:`PartialForward` is a relay's output: the symbols it believed
good, with their positions.  :func:`combine_forwards` merges partial
forwards from several relays at the destination, preferring the most
confident copy per position and reporting which positions remain
missing (to be recovered by PP-ARQ "in the background", as §8.4 puts
it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.symbols import SoftPacket


@dataclass(frozen=True)
class PartialForward:
    """Symbols a relay chose to forward.

    ``positions`` are indices into the original frame; ``symbols`` and
    ``hints`` are the relay's decoded values and confidences at those
    positions; ``n_symbols`` is the full frame length.
    """

    n_symbols: int
    positions: np.ndarray
    symbols: np.ndarray
    hints: np.ndarray

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions, dtype=np.int64)
        symbols = np.asarray(self.symbols, dtype=np.int64)
        hints = np.asarray(self.hints, dtype=np.float64)
        if positions.size != symbols.size or symbols.size != hints.size:
            raise ValueError(
                "positions, symbols and hints must have equal sizes"
            )
        if positions.size and (
            positions.min() < 0 or positions.max() >= self.n_symbols
        ):
            raise ValueError("positions out of frame range")
        if positions.size and np.any(np.diff(np.sort(positions)) == 0):
            raise ValueError("positions must be unique")
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "symbols", symbols)
        object.__setattr__(self, "hints", hints)

    @property
    def forwarded_fraction(self) -> float:
        """Share of the frame this relay forwarded."""
        if self.n_symbols == 0:
            return 0.0
        return self.positions.size / self.n_symbols

    @property
    def airtime_symbols(self) -> int:
        """Symbols of relay airtime spent (the §8.4 capacity saving:
        only the good symbols travel)."""
        return int(self.positions.size)


def make_partial_forward(
    reception: SoftPacket, eta: float
) -> PartialForward:
    """Apply the threshold rule and keep only the good symbols."""
    good = reception.good_mask(eta)
    positions = np.flatnonzero(good)
    return PartialForward(
        n_symbols=reception.n_symbols,
        positions=positions,
        symbols=reception.symbols[positions],
        hints=reception.hints[positions],
    )


@dataclass(frozen=True)
class CombinedForward:
    """Destination-side merge of partial forwards."""

    symbols: np.ndarray
    hints: np.ndarray
    covered: np.ndarray  # bool: position received from some relay

    @property
    def missing_positions(self) -> np.ndarray:
        """Positions no relay forwarded (left for PP-ARQ recovery)."""
        return np.flatnonzero(~self.covered)

    @property
    def coverage(self) -> float:
        """Fraction of the frame covered by at least one relay."""
        if self.covered.size == 0:
            return 0.0
        return float(self.covered.mean())


def combine_forwards(forwards: list[PartialForward]) -> CombinedForward:
    """Merge relays' partial forwards, most confident copy per symbol."""
    if not forwards:
        raise ValueError("need at least one partial forward")
    n = forwards[0].n_symbols
    if any(f.n_symbols != n for f in forwards):
        raise ValueError("forwards disagree on frame length")
    symbols = np.zeros(n, dtype=np.int64)
    hints = np.full(n, np.inf)
    covered = np.zeros(n, dtype=bool)
    for forward in forwards:
        better = forward.hints < hints[forward.positions]
        pos = forward.positions[better]
        symbols[pos] = forward.symbols[better]
        hints[pos] = forward.hints[better]
        covered[forward.positions] = True
    return CombinedForward(symbols=symbols, hints=hints, covered=covered)
