"""Link layer: PPR framing, delivery schemes, and hint thresholding.

The frame layout mirrors paper Fig. 2 (header + payload + packet CRC +
trailer, bracketed by preamble and postamble).  Delivery schemes
implement the three contenders of §7.2 — whole-packet CRC, fragmented
CRC, and PPR with SoftPHY hints — behind one interface so the
experiment harness treats them uniformly.  Beyond the paper,
:class:`SpracScheme` adds segmented-RLNC coded repair (S-PRAC) on top
of the fragmented-CRC wire format.
"""

from repro.link.frame import (
    CRC32_BYTES,
    HEADER_BYTES,
    SYMBOLS_PER_BYTE,
    TRAILER_BYTES,
    FrameHeader,
    PprFrame,
    body_symbol_count,
    parse_header_bytes,
    parse_trailer_bytes,
)
from repro.link.schemes import (
    DeliveryResult,
    DeliveryScheme,
    FragmentedCrcScheme,
    PacketCrcScheme,
    PprScheme,
    ReceivedPayload,
    SicScheme,
    SpracScheme,
)
from repro.link.fragmentation import (
    AdaptiveFragmentSizer,
    fragment_payload,
    optimal_fragment_size,
    reassemble_fragments,
)
from repro.link.relay import (
    CombinedForward,
    PartialForward,
    combine_forwards,
    make_partial_forward,
)
from repro.link.adaptive import AdaptiveThreshold
from repro.link.diversity import (
    DiversityResult,
    combine_soft_packets,
    diversity_gain,
)
from repro.link.quality import LinkObservation, LinkStats

__all__ = [
    "CRC32_BYTES",
    "HEADER_BYTES",
    "SYMBOLS_PER_BYTE",
    "TRAILER_BYTES",
    "FrameHeader",
    "PprFrame",
    "body_symbol_count",
    "parse_header_bytes",
    "parse_trailer_bytes",
    "DeliveryResult",
    "DeliveryScheme",
    "FragmentedCrcScheme",
    "PacketCrcScheme",
    "PprScheme",
    "ReceivedPayload",
    "SicScheme",
    "SpracScheme",
    "AdaptiveFragmentSizer",
    "fragment_payload",
    "optimal_fragment_size",
    "reassemble_fragments",
    "CombinedForward",
    "PartialForward",
    "combine_forwards",
    "make_partial_forward",
    "AdaptiveThreshold",
    "DiversityResult",
    "combine_soft_packets",
    "diversity_gain",
    "LinkObservation",
    "LinkStats",
]
