"""Fault-tolerant supervised execution for simulation sweeps.

The execution half of throughput-as-a-service: where ``repro.store``
makes completed work durable, this package makes in-flight work
survivable.  :class:`Supervisor` runs tasks in per-task worker
processes with crash isolation, duration-scaled timeouts, bounded
retries under deterministic keyed backoff, and graceful degradation to
serial execution; :class:`~repro.exec.policy.ExecPolicy` carries the
knobs (``REPRO_EXEC``); :mod:`repro.exec.faults` injects deterministic
chaos (``REPRO_FAULTS``) so CI can prove that results under crashes,
hangs, and transient errors are bit-identical to a clean run.

Parallel code elsewhere in the repository goes through this package —
reprolint RP008 flags bare process pools outside it.
"""

from repro.exec.faults import (
    FaultPlan,
    InjectedFailure,
    InjectedFault,
    inject,
)
from repro.exec.policy import ExecPolicy, parse_spec
from repro.exec.supervisor import (
    ExecCounters,
    Supervisor,
    SweepExecutionError,
    Task,
    TaskFailure,
    preferred_mp_context,
)

__all__ = [
    "ExecCounters",
    "ExecPolicy",
    "FaultPlan",
    "InjectedFailure",
    "InjectedFault",
    "Supervisor",
    "SweepExecutionError",
    "Task",
    "TaskFailure",
    "inject",
    "parse_spec",
    "preferred_mp_context",
]
