"""Supervised task execution: per-task processes, timeouts, retries.

The executor behind :meth:`repro.experiments.common.RunCache.prefetch`.
Where a bare ``Pool.map`` loses the whole batch to one bad worker,
this supervisor gives every task its own process and result pipe, so
failures are isolated to the point that hit them:

* a worker that **dies** (segfault, OOM kill, injected crash) is
  detected by EOF on its pipe; only its in-flight task is retried;
* a worker that **hangs** is killed when its per-task deadline — scaled
  from the simulated duration by the :class:`~repro.exec.policy.
  ExecPolicy` — expires, and the task is reassigned;
* a task that **raises** is retried up to ``max_attempts`` times with
  keyed-jitter exponential backoff (deterministic schedules);
* a task that exhausts its attempts gets one final in-process *rescue*
  attempt with transient injected faults suspended, so chaos runs
  complete even under ``flaky=1.0``; only a rescue failure becomes a
  :class:`TaskFailure`;
* repeated **spawn failures** (fork refusing outright) degrade the
  whole run to in-process serial execution rather than aborting.

Completed results are delivered through ``on_result`` the moment they
arrive — the run cache uses that to write every point back to its
store immediately, so an interrupted sweep resumes warm.  Worker
sanitizer ledgers ride along with each result message and are merged
per result, never per batch.

Pipe lifetime is the one subtle invariant: the parent closes its copy
of each task's writer end immediately after the fork and before any
subsequent launch, so the only process holding a task's writer is its
own worker — EOF on the reader therefore means exactly "this worker is
gone", regardless of how many other children are alive.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
import traceback
from dataclasses import dataclass, fields
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Iterable

from repro.exec.faults import FaultPlan, inject
from repro.exec.policy import ExecPolicy
from repro.utils import sanitize

#: grace period between SIGTERM and SIGKILL for a timed-out worker
_TERM_GRACE_S = 5.0


def preferred_mp_context() -> multiprocessing.context.BaseContext:
    """``fork`` on Linux (cheap; no re-import), else ``spawn``.

    macOS also *offers* fork, but forking a process with initialised
    BLAS/framework state is unsafe there (the reason CPython switched
    the macOS default to spawn), so only Linux takes the fast path.
    """
    use_fork = sys.platform == "linux" and (
        "fork" in multiprocessing.get_all_start_methods()
    )
    return multiprocessing.get_context("fork" if use_fork else "spawn")


@dataclass(frozen=True)
class Task:
    """One supervised unit of work."""

    task_id: int
    payload: Any
    #: stable identity bytes keying fault/backoff streams (the run
    #: cache passes the config's content digest); may be empty
    key: bytes = b""
    #: per-attempt wall-clock budget
    timeout_s: float = 60.0
    label: str = ""

    def describe(self) -> str:
        return self.label or f"task {self.task_id}"


@dataclass(frozen=True)
class TaskFailure:
    """A task that failed permanently (every attempt plus the rescue)."""

    task: Task
    error_type: str
    error: str
    traceback: str
    attempts: int


@dataclass
class ExecCounters:
    """Observability counters, mirroring ``StoreCounters``."""

    completed: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    rescued: int = 0
    degraded: int = 0
    failed: int = 0

    @property
    def anomalous(self) -> bool:
        """Whether anything other than clean completions happened."""
        return any(
            getattr(self, f.name) for f in fields(self) if f.name != "completed"
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        return ", ".join(
            f"{getattr(self, f.name)} {f.name}" for f in fields(self)
        )


class SweepExecutionError(RuntimeError):
    """A sweep had tasks that failed permanently."""

    def __init__(self, failures: Iterable[TaskFailure]) -> None:
        self.failures = list(failures)
        first = self.failures[0]
        names = ", ".join(f.task.describe() for f in self.failures)
        super().__init__(
            f"{len(self.failures)} task(s) failed permanently ({names}); "
            f"first error after {first.attempts} attempts: "
            f"{first.error_type}: {first.error}"
        )


def _safe_send(conn: mp_connection.Connection, message: Any) -> None:
    """Send, tolerating a parent that already gave up on us."""
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):
        pass
    finally:
        conn.close()


def _worker_entry(
    conn: mp_connection.Connection,
    fn: Callable[[Any], Any],
    payload: Any,
    key: bytes,
    attempt: int,
    plan: FaultPlan | None,
) -> None:
    """Worker body: inject any scheduled fault, run the task, report.

    The sanitizer ledger snapshot rides along with *both* outcomes, so
    the parent merges shard ledgers per result — an error on one task
    cannot drop the keys a previous success in this process minted.
    """
    try:
        if plan is not None:
            inject(plan.decide(key, attempt))
        result = fn(payload)
    except Exception as exc:
        _safe_send(
            conn,
            (
                "error",
                type(exc).__name__,
                str(exc),
                sanitize.ledger_snapshot(),
            ),
        )
        return
    _safe_send(conn, ("ok", result, sanitize.ledger_snapshot()))


def _kill(proc: Any) -> None:
    """Terminate a worker, escalating to SIGKILL after a grace period."""
    proc.terminate()
    proc.join(_TERM_GRACE_S)
    if proc.is_alive():
        proc.kill()
        proc.join()


@dataclass
class _Running:
    proc: Any
    reader: mp_connection.Connection
    task: Task
    attempt: int
    deadline: float


class Supervisor:
    """Run tasks under supervision, serially or across processes.

    ``jobs`` bounds worker concurrency.  Process supervision is used
    when ``jobs > 1`` *or* the fault plan injects crashes/hangs (which
    must not take down the caller); otherwise tasks run in-process.
    ``policy``/``faults`` default to the ``REPRO_EXEC``/``REPRO_FAULTS``
    environment; ``counters`` lets callers accumulate across runs, and
    ``context`` is injectable for tests (e.g. a context whose spawns
    fail).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        policy: ExecPolicy | None = None,
        faults: FaultPlan | None = None,
        counters: ExecCounters | None = None,
        context: Any | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.policy = policy if policy is not None else ExecPolicy.from_env()
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.counters = counters if counters is not None else ExecCounters()
        self._context = context

    def run(
        self,
        tasks: Iterable[Task],
        fn: Callable[[Any], Any],
        *,
        on_result: Callable[[Task, Any], None] | None = None,
    ) -> tuple[dict[int, Any], list[TaskFailure]]:
        """Execute every task; return ``(results, failures)``.

        ``results`` maps ``task_id`` to the task's return value;
        ``failures`` lists tasks that failed permanently.  The run
        always drains — one poisoned task never aborts the rest —
        and ``on_result`` fires the moment each result exists.
        """
        tasks = list(tasks)
        results: dict[int, Any] = {}
        failures: list[TaskFailure] = []
        if not tasks:
            return results, failures
        emit = on_result if on_result is not None else (lambda t, r: None)
        use_processes = self.jobs > 1 or (
            self.faults.active and self.faults.needs_processes
        )
        if use_processes:
            self._run_pool(tasks, fn, emit, results, failures)
        else:
            for task in tasks:
                self._run_one_serial(
                    task, fn, emit, results, failures, degraded=False
                )
        return results, failures

    # -- serial execution ----------------------------------------------

    def _run_one_serial(
        self,
        task: Task,
        fn: Callable[[Any], Any],
        emit: Callable[[Task, Any], None],
        results: dict[int, Any],
        failures: list[TaskFailure],
        *,
        degraded: bool,
    ) -> None:
        """All of one task's attempts, in-process.

        In degraded mode (the pool gave up spawning workers) transient
        fault kinds are suspended — a crash or hang injected in-process
        would defeat the point of degrading — while persistent ``fail``
        injections still apply, identically to every other mode.
        """
        for attempt in range(1, self.policy.max_attempts + 1):
            try:
                if self.faults.active:
                    inject(
                        self.faults.decide(
                            task.key, attempt, transient=not degraded
                        )
                    )
                result = fn(task.payload)
            except Exception:
                if attempt < self.policy.max_attempts:
                    self.counters.retries += 1
                    time.sleep(self.policy.backoff_s(task.key, attempt))
                    continue
                self._rescue(task, fn, emit, results, failures)
                return
            self._complete(task, result, emit, results, degraded=degraded)
            return

    def _rescue(
        self,
        task: Task,
        fn: Callable[[Any], Any],
        emit: Callable[[Task, Any], None],
        results: dict[int, Any],
        failures: list[TaskFailure],
    ) -> None:
        """Final in-process attempt after supervision gave up.

        Transient injected faults are suspended here — this is the
        graceful-degradation backstop that guarantees completion under
        arbitrarily high transient fault rates — so only persistent
        injections and real (reproducible) errors can still fail.
        """
        attempts = self.policy.max_attempts + 1
        try:
            if self.faults.active:
                inject(
                    self.faults.decide(task.key, attempts, transient=False)
                )
            result = fn(task.payload)
        except Exception as exc:
            self.counters.failed += 1
            failures.append(
                TaskFailure(
                    task=task,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    traceback=traceback.format_exc(),
                    attempts=attempts,
                )
            )
            return
        self.counters.rescued += 1
        self._complete(task, result, emit, results)

    def _complete(
        self,
        task: Task,
        result: Any,
        emit: Callable[[Task, Any], None],
        results: dict[int, Any],
        *,
        degraded: bool = False,
    ) -> None:
        self.counters.completed += 1
        if degraded:
            self.counters.degraded += 1
        results[task.task_id] = result
        emit(task, result)

    # -- process supervision -------------------------------------------

    def _run_pool(
        self,
        tasks: list[Task],
        fn: Callable[[Any], Any],
        emit: Callable[[Task, Any], None],
        results: dict[int, Any],
        failures: list[TaskFailure],
    ) -> None:
        ctx = (
            self._context
            if self._context is not None
            else preferred_mp_context()
        )
        plan = self.faults if self.faults.active else None
        #: (task, attempt, earliest monotonic launch time)
        pending: list[tuple[Task, int, float]] = [
            (task, 1, 0.0) for task in tasks
        ]
        running: dict[mp_connection.Connection, _Running] = {}
        spawn_failures = 0
        degrade = False

        while running or (pending and not degrade):
            now = time.monotonic()
            while pending and not degrade and len(running) < self.jobs:
                index = next(
                    (
                        i
                        for i, (_, _, ready_at) in enumerate(pending)
                        if ready_at <= now
                    ),
                    None,
                )
                if index is None:
                    break
                task, attempt, _ = pending.pop(index)
                if self._launch(ctx, task, attempt, fn, plan, running):
                    continue
                spawn_failures += 1
                if spawn_failures >= self.policy.max_spawn_failures:
                    degrade = True
                pending.append(
                    (task, attempt, now + self.policy.backoff_s(task.key, attempt))
                )

            if running:
                timeout = max(
                    0.0,
                    min(r.deadline for r in running.values())
                    - time.monotonic(),
                )
                if pending and not degrade:
                    next_ready = min(ra for (_, _, ra) in pending)
                    timeout = min(
                        timeout, max(0.0, next_ready - time.monotonic())
                    )
                ready = mp_connection.wait(list(running), timeout=timeout)
            elif pending and not degrade:
                next_ready = min(ra for (_, _, ra) in pending)
                time.sleep(max(0.0, next_ready - time.monotonic()))
                continue
            else:
                break

            for reader in ready:
                info = running.pop(reader)  # type: ignore[index]
                try:
                    message = reader.recv()  # type: ignore[union-attr]
                except Exception:
                    # EOF or a torn message: the worker died mid-task.
                    message = None
                reader.close()  # type: ignore[union-attr]
                info.proc.join()
                if message is None:
                    self.counters.worker_deaths += 1
                    self._after_failed_attempt(
                        info, pending, fn, emit, results, failures
                    )
                elif message[0] == "ok":
                    _, result, ledger = message
                    sanitize.merge(ledger)
                    self._complete(info.task, result, emit, results)
                else:
                    _, _etype, _error, ledger = message
                    sanitize.merge(ledger)
                    self._after_failed_attempt(
                        info, pending, fn, emit, results, failures
                    )

            now = time.monotonic()
            expired = [
                reader
                for reader, info in running.items()
                if info.deadline <= now
            ]
            for reader in expired:
                info = running.pop(reader)
                _kill(info.proc)
                reader.close()
                self.counters.timeouts += 1
                self._after_failed_attempt(
                    info, pending, fn, emit, results, failures
                )

        if pending:
            # Degraded: the platform would not give us workers, so the
            # remaining points run in-process (fresh attempt counts,
            # transient injections suspended) rather than not at all.
            for task, _, _ in sorted(pending, key=lambda p: p[0].task_id):
                self._run_one_serial(
                    task, fn, emit, results, failures, degraded=True
                )

    def _launch(
        self,
        ctx: Any,
        task: Task,
        attempt: int,
        fn: Callable[[Any], Any],
        plan: FaultPlan | None,
        running: dict[mp_connection.Connection, _Running],
    ) -> bool:
        try:
            reader, writer = ctx.Pipe(duplex=False)
        except OSError:
            return False
        try:
            proc = ctx.Process(
                target=_worker_entry,
                args=(writer, fn, task.payload, task.key, attempt, plan),
                daemon=True,
            )
            proc.start()
        except OSError:
            reader.close()
            writer.close()
            return False
        # The load-bearing close: before any further fork, drop the
        # parent's writer so EOF on the reader means worker death.
        writer.close()
        running[reader] = _Running(
            proc=proc,
            reader=reader,
            task=task,
            attempt=attempt,
            deadline=time.monotonic() + task.timeout_s,
        )
        return True

    def _after_failed_attempt(
        self,
        info: _Running,
        pending: list[tuple[Task, int, float]],
        fn: Callable[[Any], Any],
        emit: Callable[[Task, Any], None],
        results: dict[int, Any],
        failures: list[TaskFailure],
    ) -> None:
        if info.attempt < self.policy.max_attempts:
            self.counters.retries += 1
            delay = self.policy.backoff_s(info.task.key, info.attempt)
            pending.append(
                (info.task, info.attempt + 1, time.monotonic() + delay)
            )
        else:
            self._rescue(info.task, fn, emit, results, failures)
