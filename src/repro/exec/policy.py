"""Retry/timeout/backoff policy for the supervised executor.

The policy is plain data: how many attempts a task gets, how long one
attempt may run (scaled from the simulated duration — a 40 s point is
allowed more wall clock than a 2 s one), and how retries back off.
Backoff *jitter* — the classic thundering-herd breaker — comes from a
``derive_key``-keyed stream addressed by (task key, attempt), so the
entire retry schedule of a sweep is a deterministic function of its
configs: two runs of the same sweep retry at the same offsets, and a
chaos test can reason about its own timing.

Knobs are overridable at the process boundary through the
``REPRO_EXEC`` environment variable, a comma-separated ``name=value``
spec mirroring ``REPRO_FAULTS``::

    REPRO_EXEC="max_attempts=2,timeout_base_s=30,backoff_base_s=0.01"
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.utils.rng import derive_key, rng_from_key

#: environment variable holding the policy override spec
ENV_VAR = "REPRO_EXEC"


def parse_spec(spec: str, *, what: str, fields: set[str]) -> dict[str, float]:
    """Parse a ``name=value,name=value`` spec into floats, strictly.

    Shared by :class:`ExecPolicy` and :class:`~repro.exec.faults.
    FaultPlan`; unknown names and malformed values raise so a typo in
    CI configuration fails loudly instead of silently running with
    defaults.
    """
    out: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, raw = part.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(f"malformed {what} entry {part!r}")
        if name not in fields:
            raise ValueError(
                f"unknown {what} field {name!r}; valid: {sorted(fields)}"
            )
        if name in out:
            raise ValueError(f"duplicate {what} field {name!r}")
        try:
            out[name] = float(raw.strip())
        except ValueError:
            raise ValueError(
                f"{what} field {name!r} has non-numeric value {raw!r}"
            ) from None
    return out


def _key_seed(key: bytes) -> int:
    """The integer seed a task key contributes to its derived streams.

    Empty keys (ad-hoc supervisor callers) degrade to seed 0; the run
    cache always passes the config's 32-byte content digest.
    """
    return int.from_bytes(key[:8], "big")


@dataclass(frozen=True)
class ExecPolicy:
    """How the supervisor retries, times out, and backs off."""

    #: supervised attempts per task (>= 1) before the in-process rescue
    max_attempts: int = 4
    #: per-attempt wall-clock budget: base + scale * config duration
    timeout_base_s: float = 60.0
    timeout_scale: float = 10.0
    #: exponential backoff between a task's attempts
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    #: relative jitter span: the delay is scaled by 1 + jitter * u
    backoff_jitter: float = 0.5
    #: consecutive worker-spawn failures before degrading to serial
    max_spawn_failures: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_spawn_failures < 1:
            raise ValueError(
                "max_spawn_failures must be >= 1, got "
                f"{self.max_spawn_failures}"
            )

    def timeout_for(self, duration_s: float) -> float:
        """One attempt's wall-clock budget for a point of this length."""
        return self.timeout_base_s + self.timeout_scale * duration_s

    def backoff_s(self, key: bytes, attempt: int) -> float:
        """Delay before retrying ``key`` after failed attempt ``attempt``.

        Exponential in the attempt number, jittered by a keyed uniform
        draw so concurrent retries spread out — deterministically,
        because the stream is addressed by (task key, attempt) alone.
        """
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        if not self.backoff_jitter:
            return base
        stream = rng_from_key(
            derive_key(_key_seed(key), "exec/backoff", attempt)
        )
        return base * (1.0 + self.backoff_jitter * float(stream.random()))

    @classmethod
    def from_spec(cls, spec: str) -> "ExecPolicy":
        """A policy from a ``name=value,...`` spec over the defaults."""
        fields = {f.name for f in dataclasses.fields(cls)}
        values = parse_spec(spec, what="REPRO_EXEC", fields=fields)
        for name in ("max_attempts", "max_spawn_failures"):
            if name in values:
                values[name] = int(values[name])  # type: ignore[assignment]
        return cls(**values)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls) -> "ExecPolicy":
        """The policy selected by ``REPRO_EXEC`` (defaults when unset)."""
        spec = os.environ.get(ENV_VAR, "")
        return cls.from_spec(spec) if spec else cls()
