"""Deterministic fault injection: the chaos mirror of ``REPRO_FAULTS``.

The sanitizer (``repro.utils.sanitize``) proves stream-key hygiene at
runtime; this module proves *executor* hygiene.  With ::

    REPRO_FAULTS="crash=0.05,hang=0.02,flaky=0.1"

the supervised worker entry point rolls one keyed uniform per (task
key, attempt) — via ``derive_key``, exactly like every other stream in
the repository — and injects the selected fault *before* the task
function runs.  Because the schedule is a pure function of the config
digest and attempt number, chaos runs are reproducible: the same sweep
crashes, hangs, and flakes at the same points every time, on any
worker count, which is what lets CI byte-diff a faulted run against a
clean one.

Fault kinds, partitioned over the uniform in this order:

``crash``
    the worker process dies instantly (``os._exit``) without sending a
    result — exercising dead-worker detection and point reassignment.
``hang``
    the worker sleeps forever — exercising per-task timeouts and kills.
``flaky``
    a transient :class:`InjectedFault` is raised — exercising bounded
    retries with backoff.
``fail``
    a persistent :class:`InjectedFailure` is raised.  Unlike the three
    transient kinds it is injected in *every* execution mode, including
    the degraded serial path and the final in-process rescue attempt —
    so ``fail=1.0`` poisons a point permanently, exercising the
    structured failure path end to end.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

from repro.exec.policy import _key_seed, parse_spec
from repro.utils.rng import derive_key, rng_from_key

#: environment variable holding the fault spec
ENV_VAR = "REPRO_FAULTS"

#: partition order of the keyed uniform (stable: part of the contract)
KIND_ORDER = ("crash", "hang", "flaky", "fail")

#: kinds suspended in degraded serial / rescue execution
TRANSIENT_KINDS = frozenset({"crash", "hang", "flaky"})

#: exit code of an injected worker crash (distinguishable from real
#: segfaults in supervisor diagnostics)
CRASH_EXIT_CODE = 113


class InjectedFault(RuntimeError):
    """A transient injected failure; retries are expected to clear it."""


class InjectedFailure(RuntimeError):
    """A persistent injected failure; no execution mode clears it."""


@dataclass(frozen=True)
class FaultPlan:
    """Per-attempt fault probabilities, keyed off the task identity."""

    crash: float = 0.0
    hang: float = 0.0
    flaky: float = 0.0
    fail: float = 0.0

    def __post_init__(self) -> None:
        total = 0.0
        for kind in KIND_ORDER:
            p = getattr(self, kind)
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"fault probability {kind}={p} outside [0, 1]"
                )
            total += p
        if total > 1.0:
            raise ValueError(
                f"fault probabilities sum to {total}, exceeding 1"
            )

    @property
    def active(self) -> bool:
        """Whether any fault has non-zero probability."""
        return any(getattr(self, kind) for kind in KIND_ORDER)

    @property
    def needs_processes(self) -> bool:
        """Whether injection requires worker processes to be survivable.

        Crashes and hangs must not take down (or wedge) the caller, so
        a plan containing them forces process supervision even at
        ``jobs=1``.
        """
        return bool(self.crash or self.hang)

    def decide(
        self, key: bytes, attempt: int, *, transient: bool = True
    ) -> str | None:
        """The fault (if any) for one (task key, attempt) execution.

        One keyed uniform is partitioned across the kinds in
        :data:`KIND_ORDER`, so a given (key, attempt) always yields the
        same decision — independent of worker count, execution order,
        or which process asks.  With ``transient=False`` (degraded
        serial and rescue execution) the transient kinds are
        suspended: their bands still occupy the same probability mass,
        but land on "no fault", keeping ``fail`` decisions identical
        across modes.
        """
        if not self.active:
            return None
        stream = rng_from_key(
            derive_key(_key_seed(key), "exec/fault", attempt)
        )
        u = float(stream.random())
        edge = 0.0
        for kind in KIND_ORDER:
            edge += getattr(self, kind)
            if u < edge:
                if kind in TRANSIENT_KINDS and not transient:
                    return None
                return kind
        return None

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """A plan from a ``kind=prob,...`` spec (unknown kinds raise)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**parse_spec(spec, what="REPRO_FAULTS", fields=fields))

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """The plan selected by ``REPRO_FAULTS`` (inactive when unset)."""
        spec = os.environ.get(ENV_VAR, "")
        return cls.from_spec(spec) if spec else cls()


def inject(kind: str | None) -> None:
    """Execute one fault decision (no-op for ``None``).

    Runs *before* the task function, so a surviving attempt's result is
    byte-identical to an unfaulted run — injection perturbs execution,
    never data.
    """
    if kind is None:
        return
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if kind == "hang":
        while True:  # killed by the supervisor's deadline
            time.sleep(3600.0)
    if kind == "flaky":
        raise InjectedFault("injected transient fault (REPRO_FAULTS)")
    if kind == "fail":
        raise InjectedFailure("injected persistent failure (REPRO_FAULTS)")
    raise ValueError(f"unknown fault kind {kind!r}")
