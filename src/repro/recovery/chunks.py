"""SoftPHY chunk fallback for frames SIC could not fully clean.

Successive interference cancellation either recovers a frame whole or
leaves symbols whose Hamming hints still exceed the PPR confidence
threshold η.  PPR's answer to the leftovers is chunked retransmission
(paper §5): partition the frame into chunks by the Eq. 4/5 dynamic
program and request only the bad ones.  This module packages that
fallback for the recovery pipeline: given a frame's post-SIC hints,
label symbols by the threshold rule and, when anything is still bad,
compute the optimal chunk plan to feed the ARQ layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arq.chunking import ChunkPlan, plan_chunks
from repro.arq.runlength import RunLengthPacket


@dataclass(frozen=True)
class ChunkRecovery:
    """What PPR chunking would still have to retransmit.

    ``runs`` is the threshold-labelled run-length view of the frame;
    ``plan`` is the Eq. 4/5-optimal chunking, or ``None`` when every
    symbol cleared the threshold (nothing to retransmit).
    """

    eta: float
    runs: RunLengthPacket
    plan: ChunkPlan | None

    @property
    def clean(self) -> bool:
        """Whether every symbol cleared the confidence threshold."""
        return self.plan is None

    @property
    def n_bad_symbols(self) -> int:
        """Symbols still below confidence after cancellation."""
        return self.runs.n_bad_symbols

    @property
    def cost_bits(self) -> float:
        """Feedback cost of the chunk plan (0 when clean)."""
        return 0.0 if self.plan is None else float(self.plan.cost_bits)


def plan_chunk_recovery(
    hints: np.ndarray,
    eta: float = 6.0,
    checksum_bits: int = 32,
) -> ChunkRecovery:
    """Chunk-recovery plan for a frame's post-decode Hamming hints.

    Symbols with ``hint <= eta`` count as good (the PPR threshold
    rule); when any symbol is bad, the Eq. 4/5 DP picks the chunking
    that minimises the retransmission-request cost.
    """
    if eta < 0:
        raise ValueError(f"eta must be non-negative, got {eta}")
    runs = RunLengthPacket.from_hints(np.asarray(hints), eta)
    plan = None if runs.all_good else plan_chunks(runs, checksum_bits)
    return ChunkRecovery(eta=float(eta), runs=runs, plan=plan)
