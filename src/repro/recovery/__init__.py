"""Collision recovery: successive interference cancellation + chunks.

The subsystem that turns a collision from a loss into two decodes:
:class:`SicDecoder` acquires and decodes the stronger frame, cancels
its re-synthesised waveform out of the capture, decodes the weaker
frame from the residual, and falls back to PPR chunk planning
(:func:`plan_chunk_recovery`) for anything still below confidence.
The network simulation drives it through
``SimulationConfig.sic_recovery``; :mod:`repro.experiments` maps its
operating region in ``exp_sic_collision``.
"""

from repro.recovery.chunks import ChunkRecovery, plan_chunk_recovery
from repro.recovery.sic import SicDecoder, SicFrame, SicPairResult

__all__ = [
    "ChunkRecovery",
    "SicDecoder",
    "SicFrame",
    "SicPairResult",
    "plan_chunk_recovery",
]
