"""Successive interference cancellation over collided captures.

A two-packet collision at sample fidelity is a *sum*: the capture is
``g1·x1 + g2·x2 + noise``.  Capture effect lets the standard receiver
decode the stronger frame straight through the interference; SIC then
treats that decode as side information — re-synthesise the stronger
frame's waveform (:func:`repro.phy.remodulate.remodulate_frame`),
estimate its complex channel gain against the capture, subtract the
reconstruction, and run the receiver again on the residual, where the
weaker frame now stands alone.  Whatever survives neither pass falls
back to PPR chunk recovery (:mod:`repro.recovery.chunks`), so the
pipeline degrades gracefully from "both frames whole" to "retransmit
these chunks".

:class:`SicDecoder` packages the pipeline; :class:`SicPairResult` is
one collision's outcome, each side a :class:`SicFrame` carrying its
reception, estimated gain, and chunk-fallback plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.batch import FrameReception, WaveformBatchEngine
from repro.phy.codebook import Codebook
from repro.phy.remodulate import estimate_complex_scale, remodulate_frame
from repro.phy.sync import sync_field_symbols
from repro.recovery.chunks import ChunkRecovery, plan_chunk_recovery


@dataclass(frozen=True)
class SicFrame:
    """One collided frame as the SIC pipeline recovered it.

    ``frame_start`` is the capture sample where the frame's preamble
    begins (derived from the sync anchor, so postamble-rollback frames
    get a rolled-back start); ``scale`` is the estimated complex
    channel gain of the frame within the capture it was decoded from;
    ``via_residual`` marks a frame decoded after cancellation;
    ``fallback`` is the PPR chunk plan for whatever symbols are still
    below confidence.
    """

    reception: FrameReception
    frame_start: int
    scale: complex
    via_residual: bool
    fallback: ChunkRecovery

    @property
    def clean(self) -> bool:
        """Whether every symbol cleared the confidence threshold."""
        return self.fallback.clean


@dataclass(frozen=True)
class SicPairResult:
    """Outcome of one SIC pass over a two-packet collision.

    ``strong`` is the frame the plain receiver captured (``None`` when
    nothing acquired at all); ``weak`` the frame recovered from the
    residual (``None`` when cancellation was skipped or the residual
    held no credible frame); ``residual`` the capture after
    cancellation (the untouched capture when ``cancelled`` is False).
    """

    strong: SicFrame | None
    weak: SicFrame | None
    residual: np.ndarray
    cancelled: bool

    @property
    def frames(self) -> list[SicFrame]:
        """The recovered frames, strongest first."""
        return [f for f in (self.strong, self.weak) if f is not None]

    @property
    def n_clean(self) -> int:
        """Frames recovered with every symbol above confidence."""
        return sum(1 for f in self.frames if f.clean)


class SicDecoder:
    """The SIC pipeline: capture → strong decode → cancel → weak decode.

    Parameters
    ----------
    codebook:
        DSSS codebook shared by both transmitters.
    sps:
        Samples per chip (must match the modulator).
    threshold:
        Sync-correlation detection threshold for both passes.
    eta:
        PPR confidence threshold η for the chunk fallback.
    """

    def __init__(
        self,
        codebook: Codebook,
        sps: int = 4,
        threshold: float = 0.70,
        eta: float = 6.0,
    ) -> None:
        if eta < 0:
            raise ValueError(f"eta must be non-negative, got {eta}")
        self._codebook = codebook
        self._sps = int(sps)
        self._eta = float(eta)
        self._engine = WaveformBatchEngine(codebook, sps=sps, threshold=threshold)

    @property
    def engine(self) -> WaveformBatchEngine:
        """The underlying batched waveform receiver."""
        return self._engine

    @property
    def eta(self) -> float:
        """PPR confidence threshold for the chunk fallback."""
        return self._eta

    def _frame_start(
        self, reception: FrameReception, n_body_symbols: int
    ) -> int:
        """Capture sample where the frame's preamble begins."""
        detection = reception.detection
        assert detection is not None
        if detection.kind == "preamble":
            return detection.sample_offset
        sync_symbols = sync_field_symbols("preamble").size
        span = (sync_symbols + n_body_symbols) * (
            self._codebook.chips_per_symbol * self._sps
        )
        return detection.sample_offset - span

    def _frame_stream(self, reception: FrameReception) -> np.ndarray:
        """Full symbol stream (sync fields included) of a decode."""
        return np.concatenate(
            [
                sync_field_symbols("preamble"),
                reception.symbols,
                sync_field_symbols("postamble"),
            ]
        )

    def _sic_frame(
        self,
        reception: FrameReception,
        frame_start: int,
        scale: complex,
        via_residual: bool,
    ) -> SicFrame:
        return SicFrame(
            reception=reception,
            frame_start=frame_start,
            scale=scale,
            via_residual=via_residual,
            fallback=plan_chunk_recovery(reception.hints, self._eta),
        )

    def decode_pair(
        self, capture: np.ndarray, n_body_symbols: int
    ) -> SicPairResult:
        """Run the full SIC pipeline over one collided capture.

        The strong pass is the standard reception policy (preamble
        forward, else postamble rollback).  Cancellation is skipped
        when nothing acquires or the gain estimate carries no energy;
        a residual detection within one symbol of the cancelled frame
        is discarded as a cancellation remnant rather than reported as
        a second frame.
        """
        capture = np.asarray(capture, dtype=np.complex128)
        strong = self._engine.receive_frames([capture], n_body_symbols)[0]
        if not strong.acquired:
            return SicPairResult(
                strong=None,
                weak=None,
                residual=capture.copy(),
                cancelled=False,
            )
        start = self._frame_start(strong, n_body_symbols)
        stream = self._frame_stream(strong)
        unit = remodulate_frame(stream, self._codebook, sps=self._sps)
        scale = estimate_complex_scale(capture, unit, start)
        strong_frame = self._sic_frame(strong, start, scale, False)
        if not abs(scale) > 0:
            return SicPairResult(
                strong=strong_frame,
                weak=None,
                residual=capture.copy(),
                cancelled=False,
            )
        reconstruction = remodulate_frame(
            stream,
            self._codebook,
            sps=self._sps,
            gain=abs(scale),
            phase=float(np.angle(scale)),
        )
        weak, residual = self._engine.receive_residual(
            capture, [(reconstruction, start)], n_body_symbols
        )
        weak_frame = None
        if weak.acquired:
            weak_start = self._frame_start(weak, n_body_symbols)
            # A lock within one symbol of the cancelled frame is the
            # cancellation's own remnant, not a second transmission.
            guard = self._codebook.chips_per_symbol * self._sps
            if abs(weak_start - start) > guard:
                weak_scale = estimate_complex_scale(
                    residual,
                    remodulate_frame(
                        self._frame_stream(weak),
                        self._codebook,
                        sps=self._sps,
                    ),
                    weak_start,
                )
                weak_frame = self._sic_frame(
                    weak, weak_start, weak_scale, True
                )
        return SicPairResult(
            strong=strong_frame,
            weak=weak_frame,
            residual=residual,
            cancelled=True,
        )
