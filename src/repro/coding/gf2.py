"""Vectorized GF(2) linear algebra on bit-packed uint64 words.

Random linear network coding over GF(2) reduces to two kernels:

* **encode** — a coded block is the XOR of the source blocks selected
  by one row of a coefficient matrix.  Blocks are byte rows packed
  eight-bytes-per-word into uint64, so one ``^`` combines 64 bits.
* **eliminate** — given the coefficient vectors of the blocks that
  survived (intact source blocks contribute unit vectors, valid coded
  blocks their coefficient rows), batched Gaussian elimination to
  reduced row-echelon form recovers every source block whose
  coordinate is uniquely determined.  Row operations XOR whole packed
  rows (coefficient words and payload words together), so the inner
  loop is one vectorized XOR over all rows that carry the pivot bit.

Both kernels keep their original pure-Python loop implementations
(``gf2_encode_reference``, ``gf2_eliminate_reference``) as executable
specifications, pinned bit-for-bit by the equivalence suite.

Coefficient matrices come from the counter-based keyed streams of
:mod:`repro.utils.rng`, so a ``(seed, label, *ids)`` tuple always
names the same matrix on sender and receiver, in any process.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import keyed_rng

_WORD_BITS = 64
_WORD_BYTES = 8


def pack_bytes_to_words(rows: np.ndarray) -> np.ndarray:
    """Pack ``(n, L)`` uint8 byte rows into ``(n, ceil(L/8))`` uint64.

    Byte 0 of a row lands in the most significant byte of word 0
    (big-endian within the word, matching the MSB-first convention of
    :mod:`repro.utils.bitops`); rows are zero-padded to a whole number
    of words.
    """
    rows = np.asarray(rows, dtype=np.uint8)
    if rows.ndim != 2:
        raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
    n, n_bytes = rows.shape
    n_words = -(-n_bytes // _WORD_BYTES) if n_bytes else 0
    padded = np.zeros((n, n_words * _WORD_BYTES), dtype=np.uint8)
    padded[:, :n_bytes] = rows
    return (
        np.ascontiguousarray(padded)
        .view(np.dtype(">u8"))
        .astype(np.uint64)
        .reshape(n, n_words)
    )


def unpack_words_to_bytes(words: np.ndarray, n_bytes: int) -> np.ndarray:
    """Inverse of :func:`pack_bytes_to_words`: keep the first ``n_bytes``."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"words must be 2-D, got shape {words.shape}")
    if n_bytes > words.shape[1] * _WORD_BYTES:
        raise ValueError(
            f"cannot unpack {n_bytes} bytes from "
            f"{words.shape[1]} words per row"
        )
    as_bytes = words.astype(np.dtype(">u8")).view(np.uint8)
    return as_bytes.reshape(words.shape[0], -1)[:, :n_bytes]


def gf2_coefficients(
    seed: int, label: str, *ids: int, shape: tuple[int, int]
) -> np.ndarray:
    """A keyed random ``shape`` 0/1 coefficient matrix.

    Drawn from the counter-based stream addressed by
    ``(seed, label, *ids, 2)``, so sender and receiver derive identical
    matrices without exchanging them.  The trailing field-order
    discriminator keeps this stream family disjoint from
    :func:`repro.coding.gf256.gf256_coefficients` when both are called
    with the same label and ids (a codec switching fields must not
    reuse one stream).  All-zero rows (probability ``2**-k`` per row)
    would be useless equations, so they are deterministically replaced
    by all-ones rows.
    """
    m, k = shape
    if m < 0 or k <= 0:
        raise ValueError(f"shape must be (m >= 0, k >= 1), got {shape}")
    rng = keyed_rng(seed, label, *ids, 2)
    coeffs = rng.integers(0, 2, size=(m, k), dtype=np.uint8)
    zero_rows = ~coeffs.any(axis=1)
    coeffs[zero_rows] = 1
    return coeffs


def gf2_encode(coeffs: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Coded rows: XOR of the packed ``rows`` selected by each
    coefficient row.

    ``coeffs`` is ``(m, k)`` 0/1; ``rows`` is ``(k, w)`` uint64.
    Returns the ``(m, w)`` coded words in one fused where/XOR-reduce.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    rows = np.asarray(rows, dtype=np.uint64)
    if coeffs.ndim != 2 or rows.ndim != 2:
        raise ValueError("coeffs and rows must be 2-D")
    if coeffs.shape[1] != rows.shape[0]:
        raise ValueError(
            f"coeffs select {coeffs.shape[1]} rows but {rows.shape[0]} "
            "were given"
        )
    selected = np.where(
        coeffs[:, :, None].astype(bool), rows[None, :, :], np.uint64(0)
    )
    return np.bitwise_xor.reduce(selected, axis=1)


def gf2_encode_reference(
    coeffs: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Loop specification of :func:`gf2_encode` (pinned bit-for-bit)."""
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    rows = np.asarray(rows, dtype=np.uint64)
    m = coeffs.shape[0]
    out = np.zeros((m, rows.shape[1]), dtype=np.uint64)
    for i in range(m):
        for j in range(coeffs.shape[1]):
            if coeffs[i, j]:
                for w in range(rows.shape[1]):
                    out[i, w] ^= rows[j, w]
    return out


def _pack_coeff_bits(coeffs: np.ndarray) -> np.ndarray:
    """Pack ``(m, k)`` 0/1 coefficients into ``(m, ceil(k/64))``
    uint64 words, bit ``j`` of a row at bit ``63 - (j % 64)`` of word
    ``j // 64`` (MSB-first, like the byte packing)."""
    m, k = coeffs.shape
    n_bytes = -(-k // 8)
    packed = np.packbits(coeffs.astype(np.uint8), axis=1)
    out = np.zeros((m, -(-k // _WORD_BITS) * _WORD_BYTES), dtype=np.uint8)
    out[:, :n_bytes] = packed
    return (
        np.ascontiguousarray(out)
        .view(np.dtype(">u8"))
        .astype(np.uint64)
        .reshape(m, -1)
    )


def gf2_eliminate(
    coeffs: np.ndarray, payload: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Batched Gaussian elimination over GF(2).

    ``coeffs`` is the ``(m, k)`` 0/1 matrix of the available
    equations; ``payload`` the ``(m, w)`` uint64 packed right-hand
    sides.  Reduces the augmented system to reduced row-echelon form —
    each pivot step XORs the pivot row into *every* other row carrying
    the pivot bit, coefficient words and payload words in one
    vectorized operation — and reads off the unknowns that are
    uniquely determined.

    Returns ``(recovered, solved)``: ``recovered`` is the ``(k,)``
    bool mask of source rows the system pins down, ``solved`` the
    ``(k, w)`` uint64 rows (zeros where not recovered).
    """
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    payload = np.asarray(payload, dtype=np.uint64)
    if coeffs.ndim != 2 or payload.ndim != 2:
        raise ValueError("coeffs and payload must be 2-D")
    m, k = coeffs.shape
    if payload.shape[0] != m:
        raise ValueError(
            f"{m} equations but {payload.shape[0]} payload rows"
        )
    w = payload.shape[1]
    recovered = np.zeros(k, dtype=bool)
    solved = np.zeros((k, w), dtype=np.uint64)
    if m == 0:
        return recovered, solved
    coeff_words = _pack_coeff_bits(coeffs)
    cw = coeff_words.shape[1]
    aug = np.concatenate([coeff_words, payload], axis=1)
    pivots: list[tuple[int, int]] = []  # (row, column)
    row = 0
    for col in range(k):
        word, bit = divmod(col, _WORD_BITS)
        bit_mask = np.uint64(1) << np.uint64(_WORD_BITS - 1 - bit)
        candidates = (aug[row:, word] & bit_mask) != 0
        if not candidates.any():
            continue
        pivot = row + int(np.argmax(candidates))
        if pivot != row:
            aug[[row, pivot]] = aug[[pivot, row]]
        carriers = (aug[:, word] & bit_mask) != 0
        carriers[row] = False
        aug[carriers] ^= aug[row]
        pivots.append((row, col))
        row += 1
        if row == m:
            break
    for prow, pcol in pivots:
        # Unique determination: the row's coefficient part is exactly
        # the unit vector at pcol.
        word, bit = divmod(pcol, _WORD_BITS)
        unit = np.zeros(cw, dtype=np.uint64)
        unit[word] = np.uint64(1) << np.uint64(_WORD_BITS - 1 - bit)
        if np.array_equal(aug[prow, :cw], unit):
            recovered[pcol] = True
            solved[pcol] = aug[prow, cw:]
    return recovered, solved


def gf2_eliminate_reference(
    coeffs: np.ndarray, payload: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Loop specification of :func:`gf2_eliminate` (pinned bit-for-bit).

    Same pivot choices (first carrier row, columns left to right) on
    plain Python ints, so swaps and XOR order match exactly.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    payload = np.asarray(payload, dtype=np.uint64)
    m, k = coeffs.shape
    w = payload.shape[1]
    recovered = np.zeros(k, dtype=bool)
    solved = np.zeros((k, w), dtype=np.uint64)
    if m == 0:
        return recovered, solved
    rows = [
        (
            [int(c) for c in coeffs[i]],
            [int(p) for p in payload[i]],
        )
        for i in range(m)
    ]
    pivots: list[tuple[int, int]] = []
    row = 0
    for col in range(k):
        pivot = next(
            (i for i in range(row, m) if rows[i][0][col]), None
        )
        if pivot is None:
            continue
        rows[row], rows[pivot] = rows[pivot], rows[row]
        for i in range(m):
            if i != row and rows[i][0][col]:
                rows[i] = (
                    [a ^ b for a, b in zip(rows[i][0], rows[row][0], strict=True)],
                    [a ^ b for a, b in zip(rows[i][1], rows[row][1], strict=True)],
                )
        pivots.append((row, col))
        row += 1
        if row == m:
            break
    for prow, pcol in pivots:
        cvec, pvec = rows[prow]
        if sum(cvec) == 1 and cvec[pcol] == 1:
            recovered[pcol] = True
            solved[pcol] = np.array(pvec, dtype=np.uint64)
    return recovered, solved
