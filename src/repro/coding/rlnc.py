"""Segmented random-linear-network-coding codec (S-PRAC, PAPERS.md).

The wire format protects a payload twice over:

* the payload is cut into ``k`` nearly-equal **data segments**, each
  followed by its own CRC-32 (exactly the fragmented-CRC baseline's
  per-fragment protection), and
* ``r`` **repair segments** follow — random linear combinations of
  the (zero-padded) data segments over GF(2) or GF(256), each with
  its own CRC-32.

A receiver keeps every segment whose CRC verifies.  Erased data
segments are unknowns in a linear system whose equations are the
intact data segments (unit vectors) and the intact repair segments
(their coefficient rows); Gaussian elimination recovers every segment
the surviving equations pin down.  *Any* sufficient subset of repair
segments works — no individual loss has to be repaired by name, which
is what makes coded repair efficient in very noisy channels.

Layout (no header): ``seg_1 crc_1 ... seg_k crc_k rep_1 crc_1 ...
rep_r crc_r``.  Data segments are sized like
:func:`repro.link.fragmentation.fragment_payload` (leading segments
take the remainder); repair segments are as long as the largest data
segment.  Total wire length is strictly increasing in payload length,
so the payload length is recoverable from the wire length alone.

Coefficient matrices are addressed, not transmitted: both ends derive
the same matrix from ``(seed, "rlnc-coeffs", k, r)`` via the keyed
counter-based streams of :mod:`repro.utils.rng`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.gf2 import (
    gf2_coefficients,
    gf2_eliminate,
    gf2_encode,
    pack_bytes_to_words,
    unpack_words_to_bytes,
)
from repro.coding.gf256 import (
    gf256_coefficients,
    gf256_eliminate,
    gf256_encode,
)
from repro.utils.crc import CRC32_IEEE

_CRC_BYTES = 4
_FIELDS = ("gf2", "gf256")


@dataclass(frozen=True)
class RlncDecodeResult:
    """What one decode attempt delivered.

    ``segments[i]`` is data segment ``i``'s recovered bytes, or
    ``None`` when neither its CRC nor the coded repair could produce
    it.  ``data_ok`` / ``repair_ok`` record the raw CRC outcomes;
    ``coded_recovered`` marks segments the elimination (not their own
    CRC) delivered.
    """

    segments: tuple[bytes | None, ...]
    data_ok: np.ndarray
    repair_ok: np.ndarray
    coded_recovered: np.ndarray

    @property
    def delivered(self) -> np.ndarray:
        """Per-segment delivery mask (own CRC or coded recovery)."""
        return self.data_ok | self.coded_recovered

    @property
    def complete(self) -> bool:
        """True when every data segment was delivered."""
        return bool(self.delivered.all())

    def payload(self) -> bytes:
        """Reassembled payload, zero-filling undelivered segments.

        Zero-fill keeps byte offsets stable (mirroring
        :func:`repro.link.fragmentation.reassemble_fragments`) so
        callers can still address the delivered ranges.
        """
        out = []
        for seg, size in zip(self.segments, self._segment_sizes, strict=True):
            out.append(seg if seg is not None else bytes(size))
        return b"".join(out)

    # set by the codec; needed to zero-fill undelivered segments
    _segment_sizes: tuple[int, ...] = ()


class SegmentedRlncCodec:
    """Encode/decode the segmented-RLNC wire format.

    ``n_segments`` (k) data segments, ``n_repair`` (r) coded repair
    segments, over ``field`` ``"gf2"`` (XOR combining on bit-packed
    uint64 words) or ``"gf256"`` (log/exp-table dense coefficients).
    """

    def __init__(
        self,
        n_segments: int,
        n_repair: int,
        field: str = "gf2",
        seed: int = 0,
    ) -> None:
        if n_segments < 1:
            raise ValueError(
                f"n_segments must be >= 1, got {n_segments}"
            )
        if n_repair < 1:
            raise ValueError(f"n_repair must be >= 1, got {n_repair}")
        if n_segments > 255 or n_repair > 255:
            raise ValueError(
                "segment and repair counts must fit in one byte"
            )
        if field not in _FIELDS:
            raise ValueError(
                f"field must be one of {_FIELDS}, got {field!r}"
            )
        self.n_segments = int(n_segments)
        self.n_repair = int(n_repair)
        self.field = field
        self.seed = int(seed)

    def __repr__(self) -> str:
        return (
            f"SegmentedRlncCodec(n_segments={self.n_segments}, "
            f"n_repair={self.n_repair}, field={self.field!r})"
        )

    # -- layout --------------------------------------------------------------

    def coefficients(self) -> np.ndarray:
        """The keyed ``(r, k)`` coefficient matrix of this codec."""
        make = (
            gf2_coefficients if self.field == "gf2" else gf256_coefficients
        )
        return make(
            self.seed,
            "rlnc-coeffs",
            self.n_segments,
            self.n_repair,
            shape=(self.n_repair, self.n_segments),
        )

    def segment_sizes(self, payload_len: int) -> list[int]:
        """Per-data-segment byte counts (leading take the remainder)."""
        if payload_len < self.n_segments:
            raise ValueError(
                f"payload of {payload_len} bytes cannot fill "
                f"{self.n_segments} segments"
            )
        base, extra = divmod(payload_len, self.n_segments)
        return [
            base + (1 if i < extra else 0)
            for i in range(self.n_segments)
        ]

    def repair_size(self, payload_len: int) -> int:
        """Bytes per repair segment (the largest data segment)."""
        return -(-payload_len // self.n_segments)

    def wire_length(self, payload_len: int) -> int:
        """Total encoded bytes for a payload."""
        return (
            payload_len
            + _CRC_BYTES * self.n_segments
            + (self.repair_size(payload_len) + _CRC_BYTES) * self.n_repair
        )

    def payload_length(self, wire_len: int) -> int:
        """Invert :meth:`wire_length` (it is strictly increasing)."""
        k, r = self.n_segments, self.n_repair
        fixed = _CRC_BYTES * (k + r)
        # wire = L + fixed + r*S with S = ceil(L/k), so S is within one
        # of (wire - fixed) / (k + r); check the nearby candidates.
        approx = max(1, (wire_len - fixed) // (k + r))
        for size in (approx - 1, approx, approx + 1):
            if size < 1:
                continue
            payload_len = wire_len - fixed - r * size
            if (
                payload_len >= k
                and self.repair_size(payload_len) == size
            ):
                return payload_len
        raise ValueError(
            f"wire length {wire_len} inconsistent with k={k}, r={r}"
        )

    def data_spans(self, payload_len: int) -> list[tuple[int, int]]:
        """Wire byte ranges ``(offset, size)`` of the data segments."""
        spans = []
        offset = 0
        for size in self.segment_sizes(payload_len):
            spans.append((offset, size))
            offset += size + _CRC_BYTES
        return spans

    def repair_spans(self, payload_len: int) -> list[tuple[int, int]]:
        """Wire byte ranges ``(offset, size)`` of the repair segments."""
        size = self.repair_size(payload_len)
        offset = payload_len + _CRC_BYTES * self.n_segments
        return [
            (offset + j * (size + _CRC_BYTES), size)
            for j in range(self.n_repair)
        ]

    # -- field dispatch ------------------------------------------------------

    def _encode_rows(
        self, coeffs: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        if self.field == "gf2":
            packed = pack_bytes_to_words(rows)
            coded = gf2_encode(coeffs, packed)
            return unpack_words_to_bytes(coded, rows.shape[1])
        return gf256_encode(coeffs, rows)

    def _eliminate(
        self, coeffs: np.ndarray, payload: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.field == "gf2":
            n_bytes = payload.shape[1]
            recovered, solved = gf2_eliminate(
                coeffs, pack_bytes_to_words(payload)
            )
            return recovered, unpack_words_to_bytes(solved, n_bytes)
        return gf256_eliminate(coeffs, payload)

    # -- encode / decode -----------------------------------------------------

    def encode(self, payload: bytes) -> bytes:
        """Payload -> wire bytes (segments, repair, per-segment CRCs)."""
        sizes = self.segment_sizes(len(payload))
        size = self.repair_size(len(payload))
        data = np.frombuffer(payload, dtype=np.uint8)
        rows = np.zeros((self.n_segments, size), dtype=np.uint8)
        offset = 0
        for i, seg_size in enumerate(sizes):
            rows[i, :seg_size] = data[offset : offset + seg_size]
            offset += seg_size
        repair = self._encode_rows(self.coefficients(), rows)
        data_crcs = CRC32_IEEE.checksum_many(
            rows, np.asarray(sizes, dtype=np.int64)
        )
        repair_crcs = CRC32_IEEE.checksum_many(repair)
        pieces = []
        offset = 0
        for i, seg_size in enumerate(sizes):
            pieces.append(payload[offset : offset + seg_size])
            pieces.append(int(data_crcs[i]).to_bytes(_CRC_BYTES, "big"))
            offset += seg_size
        for j in range(self.n_repair):
            pieces.append(repair[j].tobytes())
            pieces.append(int(repair_crcs[j]).to_bytes(_CRC_BYTES, "big"))
        return b"".join(pieces)

    def decode(self, wire: bytes) -> RlncDecodeResult:
        """Wire bytes (possibly corrupted) -> per-segment recovery.

        Segments whose CRC verifies are kept; erased data segments
        are recovered by elimination over the intact equations.
        Recovered segments are *not* re-checked against their (also
        possibly corrupted) wire CRC fields: their integrity follows
        from the coding arithmetic over CRC-verified inputs.
        """
        payload_len = self.payload_length(len(wire))
        sizes = self.segment_sizes(payload_len)
        size = self.repair_size(payload_len)
        data = np.frombuffer(wire, dtype=np.uint8)

        seg_rows = np.zeros((self.n_segments, size), dtype=np.uint8)
        seg_crcs = np.zeros(self.n_segments, dtype=np.uint64)
        for i, (offset, seg_size) in enumerate(
            self.data_spans(payload_len)
        ):
            seg_rows[i, :seg_size] = data[offset : offset + seg_size]
            seg_crcs[i] = int.from_bytes(
                wire[offset + seg_size : offset + seg_size + _CRC_BYTES],
                "big",
            )
        lengths = np.asarray(sizes, dtype=np.int64)
        data_ok = (
            CRC32_IEEE.checksum_many(seg_rows, lengths) == seg_crcs
        )

        rep_rows = np.zeros((self.n_repair, size), dtype=np.uint8)
        rep_crcs = np.zeros(self.n_repair, dtype=np.uint64)
        for j, (offset, rep_size) in enumerate(
            self.repair_spans(payload_len)
        ):
            rep_rows[j] = data[offset : offset + rep_size]
            rep_crcs[j] = int.from_bytes(
                wire[offset + rep_size : offset + rep_size + _CRC_BYTES],
                "big",
            )
        repair_ok = CRC32_IEEE.checksum_many(rep_rows) == rep_crcs

        coded_recovered = np.zeros(self.n_segments, dtype=bool)
        solved = np.zeros((self.n_segments, size), dtype=np.uint8)
        if not data_ok.all() and repair_ok.any():
            eye = np.eye(self.n_segments, dtype=np.uint8)
            coeffs = np.concatenate(
                [eye[data_ok], self.coefficients()[repair_ok]]
            )
            rhs = np.concatenate(
                [seg_rows[data_ok], rep_rows[repair_ok]]
            )
            recovered, solved = self._eliminate(coeffs, rhs)
            coded_recovered = recovered & ~data_ok

        segments: list[bytes | None] = []
        for i, seg_size in enumerate(sizes):
            if data_ok[i]:
                segments.append(seg_rows[i, :seg_size].tobytes())
            elif coded_recovered[i]:
                segments.append(solved[i, :seg_size].tobytes())
            else:
                segments.append(None)
        return RlncDecodeResult(
            segments=tuple(segments),
            data_ok=data_ok,
            repair_ok=repair_ok,
            coded_recovered=coded_recovered,
            _segment_sizes=tuple(sizes),
        )

    def recoverable_mask(
        self, data_ok: np.ndarray, repair_ok: np.ndarray
    ) -> np.ndarray:
        """Which data segments the surviving equations pin down.

        Rank-only form of :meth:`decode` for trace post-processing
        (where segment *outcomes* are known but no wire bytes exist):
        intact data segments contribute unit vectors, intact repair
        segments their coefficient rows, and the elimination reports
        every uniquely-determined coordinate.
        """
        data_ok = np.asarray(data_ok, dtype=bool)
        repair_ok = np.asarray(repair_ok, dtype=bool)
        if data_ok.shape != (self.n_segments,):
            raise ValueError(
                f"data_ok must have shape ({self.n_segments},)"
            )
        if repair_ok.shape != (self.n_repair,):
            raise ValueError(
                f"repair_ok must have shape ({self.n_repair},)"
            )
        if data_ok.all():
            return data_ok.copy()
        eye = np.eye(self.n_segments, dtype=np.uint8)
        coeffs = np.concatenate(
            [eye[data_ok], self.coefficients()[repair_ok]]
        )
        dummy = np.zeros((coeffs.shape[0], 1), dtype=np.uint8)
        recovered, _ = self._eliminate(coeffs, dummy)
        return recovered
