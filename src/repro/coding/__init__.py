"""Network-coded partial packet recovery (S-PRAC-style, PAPERS.md).

The paper's PP-ARQ retransmits the raw symbols of every bad run.  The
S-PRAC line of work shows that in very noisy channels it is far more
efficient to (a) segment the packet and CRC-protect each segment, and
(b) repair losses with *random linear network coding*: any sufficient
subset of coded repair blocks recovers all erased segments, so no
individual repair transmission is precious.

This package provides the three layers of that idea:

* :mod:`repro.coding.gf2` / :mod:`repro.coding.gf256` — vectorized
  finite-field linear algebra (XOR combining on bit-packed uint64
  words; a log/exp-table GF(256) variant for denser coefficients),
  each kernel with its loop ``*_reference`` retained as an executable
  specification.
* :mod:`repro.coding.rlnc` — the segmented-RLNC codec: payload ->
  CRC-protected segments plus coded repair segments.
* :mod:`repro.coding.session` — :class:`CodedRepairSession`, a PP-ARQ
  variant whose retransmissions are coded combinations of the bad
  runs instead of the runs themselves.
"""

from repro.coding.gf2 import (
    gf2_coefficients,
    gf2_eliminate,
    gf2_encode,
    pack_bytes_to_words,
    unpack_words_to_bytes,
)
from repro.coding.gf256 import (
    gf256_coefficients,
    gf256_eliminate,
    gf256_encode,
    gf256_mul,
)
from repro.coding.rlnc import RlncDecodeResult, SegmentedRlncCodec
from repro.coding.session import (
    CodedRepairPacket,
    CodedRepairReceiver,
    CodedRepairSender,
    CodedRepairSession,
    decode_coded_repair,
    encode_coded_repair,
)

__all__ = [
    "CodedRepairPacket",
    "CodedRepairReceiver",
    "CodedRepairSender",
    "CodedRepairSession",
    "RlncDecodeResult",
    "SegmentedRlncCodec",
    "decode_coded_repair",
    "encode_coded_repair",
    "gf2_coefficients",
    "gf2_eliminate",
    "gf2_encode",
    "gf256_coefficients",
    "gf256_eliminate",
    "gf256_encode",
    "gf256_mul",
    "pack_bytes_to_words",
    "unpack_words_to_bytes",
]
