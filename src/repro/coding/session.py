"""PP-ARQ with network-coded retransmissions.

The stock PP-ARQ sender answers feedback by retransmitting the raw
symbols of every requested bad run (:mod:`repro.arq.protocol`).  Over
a very noisy channel that is fragile: each retransmitted segment must
itself survive, and a segment lost again must be re-requested *by
name* next round.

The coded variant keeps the whole feedback machinery — run-length
labelling, the Eq. 4/5 chunking DP, gap checksums, miss widening —
and changes only what the sender puts on the air: the requested bad
runs become equal-width blocks (nibble-packed symbol rows), and the
retransmission carries ``n_blocks + extra`` random GF(2) linear
combinations of them.  Any ``n_blocks`` of the combinations that
survive (each carries its own CRC-8) recover *all* blocks by Gaussian
elimination, so the ``extra`` redundancy absorbs *any* pattern of
combination losses — no loss has to be repaired by name.

The structured fields of the coded packet (offsets, coefficients,
checksums) are assumed intact while the coded symbol rows cross the
lossy channel, exactly the modelling note of
:mod:`repro.arq.protocol`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arq.feedback import (
    CHECKSUM_BITS,
    COUNT_BITS,
    LENGTH_BITS,
    OFFSET_BITS,
    SEQ_BITS,
    FeedbackPacket,
    feedback_bit_cost,
    gaps_for_segments,
    segment_checksum,
)
from repro.arq.protocol import (
    ChannelFn,
    PpArqReceiver,
    PpArqSender,
    TransferLog,
)
from repro.coding.gf2 import (
    gf2_coefficients,
    gf2_eliminate,
    gf2_encode,
    pack_bytes_to_words,
    unpack_words_to_bytes,
)
from repro.phy.spreading import bytes_to_symbols
from repro.phy.symbols import SoftPacket
from repro.utils.bitops import BitReader, BitWriter
from repro.utils.crc import CRC32_IEEE

_MAX_CODED = 255  # coded-row count must fit the 8-bit field


def _pack_symbol_rows(
    spans: tuple[tuple[int, int], ...], symbols: np.ndarray
) -> np.ndarray:
    """Nibble-pack each span of 4-bit symbols into one padded byte row.

    Low nibble first (pad nibble = 0), matching
    :func:`repro.arq.feedback.segment_checksum`'s packing; rows are
    zero-padded to the widest span so they can be XOR-combined.
    """
    widths = [-(-(end - start) // 2) for start, end in spans]
    rows = np.zeros((len(spans), max(widths)), dtype=np.uint8)
    for i, (start, end) in enumerate(spans):
        seg = np.asarray(symbols[start:end], dtype=np.int64)
        if seg.size % 2:
            seg = np.concatenate([seg, [0]])
        pairs = seg.reshape(-1, 2)
        rows[i, : widths[i]] = (pairs[:, 0] | (pairs[:, 1] << 4)).astype(
            np.uint8
        )
    return rows


def _unpack_row_symbols(row: np.ndarray, n_symbols: int) -> np.ndarray:
    """Inverse of :func:`_pack_symbol_rows` for one byte row."""
    row = np.asarray(row, dtype=np.uint8)
    nibbles = np.empty(2 * row.size, dtype=np.int64)
    nibbles[0::2] = row & 0xF
    nibbles[1::2] = row >> 4
    return nibbles[:n_symbols]


def _bytes_to_row_symbols(rows: np.ndarray) -> np.ndarray:
    """All byte rows as one ``(n, 2*width)`` 4-bit symbol matrix."""
    rows = np.asarray(rows, dtype=np.uint8)
    out = np.empty((rows.shape[0], 2 * rows.shape[1]), dtype=np.int64)
    out[:, 0::2] = rows & 0xF
    out[:, 1::2] = rows >> 4
    return out


@dataclass(frozen=True)
class CodedRepairPacket:
    """Sender -> receiver: coded combinations of the requested runs.

    ``spans`` are the requested symbol ranges (the unknown blocks, in
    order); ``coefficients[c]`` selects which blocks coded row ``c``
    XORs together; ``rows`` carries each coded row as 4-bit symbols
    (two per packed byte); ``row_checksums[c]`` is the CRC-8 that
    lets the receiver keep only intact equations.
    """

    seq: int
    n_symbols: int
    spans: tuple[tuple[int, int], ...]
    coefficients: np.ndarray
    rows: np.ndarray
    row_checksums: tuple[int, ...]
    gap_checksums: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "coefficients",
            np.asarray(self.coefficients, dtype=np.uint8),
        )
        object.__setattr__(
            self, "rows", np.asarray(self.rows, dtype=np.int64)
        )
        n_coded = self.coefficients.shape[0]
        if self.rows.shape[0] != n_coded:
            raise ValueError(
                f"{n_coded} coefficient rows but {self.rows.shape[0]} "
                "coded rows"
            )
        if len(self.row_checksums) != n_coded:
            raise ValueError(
                f"{n_coded} coded rows but {len(self.row_checksums)} "
                "row checksums"
            )
        if self.coefficients.shape[1] != len(self.spans):
            raise ValueError(
                f"coefficients select {self.coefficients.shape[1]} "
                f"blocks but {len(self.spans)} spans requested"
            )

    @property
    def n_coded(self) -> int:
        """Number of coded combinations carried."""
        return int(self.coefficients.shape[0])

    @property
    def n_data_symbols(self) -> int:
        """Total coded symbols on the air."""
        return int(self.rows.size)


def encode_coded_repair(packet: CodedRepairPacket) -> bytes:
    """Serialise a coded repair packet to its on-air bytes.

    Layout: seq, n_symbols, span count, per-span offset + length,
    coded-row count, row width (bytes), then per coded row its
    coefficient bits + CRC-8 + nibble symbols, then gap checksums.
    The coefficient bits ride in the packet (RLNC's per-combination
    overhead is real and must be charged to the comparison).
    """
    writer = BitWriter()
    writer.write_uint(packet.seq, SEQ_BITS)
    writer.write_uint(packet.n_symbols, OFFSET_BITS)
    writer.write_uint(len(packet.spans), COUNT_BITS)
    for start, end in packet.spans:
        writer.write_uint(start, OFFSET_BITS)
        writer.write_uint(end - start, LENGTH_BITS)
    writer.write_uint(packet.n_coded, COUNT_BITS)
    writer.write_uint(packet.rows.shape[1] // 2, LENGTH_BITS)
    syms = np.asarray(packet.rows, dtype=np.int64)
    if syms.size and (syms.min() < 0 or syms.max() > 15):
        raise ValueError("coded symbol rows must hold 4-bit values")
    # Expand each 4-bit symbol to its MSB-first bits in one shot
    # (equivalent to write_uint(sym, 4) per symbol).
    sym_bits = ((syms[:, :, None] >> np.array([3, 2, 1, 0])) & 1).reshape(
        syms.shape[0], 4 * syms.shape[1]
    )
    for c in range(packet.n_coded):
        writer.write_bits(packet.coefficients[c])
        writer.write_uint(packet.row_checksums[c], CHECKSUM_BITS)
        writer.write_bits(sym_bits[c])
    for checksum in packet.gap_checksums:
        writer.write_uint(checksum, CHECKSUM_BITS)
    return writer.getvalue()


def decode_coded_repair(data: bytes) -> CodedRepairPacket:
    """Parse bytes produced by :func:`encode_coded_repair`."""
    reader = BitReader(data)
    seq = reader.read_uint(SEQ_BITS)
    n_symbols = reader.read_uint(OFFSET_BITS)
    n_spans = reader.read_uint(COUNT_BITS)
    spans = []
    for _ in range(n_spans):
        start = reader.read_uint(OFFSET_BITS)
        length = reader.read_uint(LENGTH_BITS)
        spans.append((start, start + length))
    n_coded = reader.read_uint(COUNT_BITS)
    row_bytes = reader.read_uint(LENGTH_BITS)
    coefficients = np.zeros((n_coded, n_spans), dtype=np.uint8)
    rows = np.zeros((n_coded, 2 * row_bytes), dtype=np.int64)
    checksums = []
    nibble_weights = np.array([8, 4, 2, 1], dtype=np.int64)
    for c in range(n_coded):
        coefficients[c] = reader.read_bits(n_spans)
        checksums.append(reader.read_uint(CHECKSUM_BITS))
        # One ragged bit read per row; nibbles reassemble vectorized
        # (equivalent to read_uint(4) per symbol, MSB-first).
        rows[c] = (
            reader.read_bits(8 * row_bytes)
            .astype(np.int64)
            .reshape(-1, 4)
            @ nibble_weights
        )
    n_gaps = len(gaps_for_segments(tuple(spans), n_symbols))
    gap_checksums = tuple(
        reader.read_uint(CHECKSUM_BITS) for _ in range(n_gaps)
    )
    return CodedRepairPacket(
        seq=seq,
        n_symbols=n_symbols,
        spans=tuple(spans),
        coefficients=coefficients,
        rows=rows,
        row_checksums=tuple(checksums),
        gap_checksums=gap_checksums,
    )


class CodedRepairSender(PpArqSender):
    """PP-ARQ sender whose retransmissions are coded combinations.

    ``redundancy`` sets how many extra combinations ride along:
    ``n_coded = n_blocks + max(1, ceil(redundancy * n_blocks))``.
    Coefficients are keyed on ``(seed, seq, round)`` so every round
    fresh combinations go out (a repeated round must not resend the
    same linear span), and they ride in the packet explicitly.
    """

    def __init__(self, seed: int = 0, redundancy: float = 0.25) -> None:
        super().__init__()
        if redundancy < 0:
            raise ValueError(
                f"redundancy must be non-negative, got {redundancy}"
            )
        self.seed = int(seed)
        self.redundancy = float(redundancy)
        self._rounds: dict[int, int] = {}

    def handle_feedback_coded(
        self, feedback: FeedbackPacket
    ) -> CodedRepairPacket | None:
        """Build the coded repair a feedback packet asks for.

        Reuses the base class for the request geometry (segment
        merging, gap-checksum verification, miss widening) and codes
        the resulting blocks instead of sending them raw.  Returns
        ``None`` for a pure ACK.
        """
        raw = self.handle_feedback(feedback)
        if raw is None:
            return None
        truth = self._packets[feedback.seq]
        spans = self._fit_spans(raw.segment_spans())
        n_blocks = len(spans)
        extra = max(1, int(np.ceil(self.redundancy * n_blocks)))
        # An extreme redundancy setting can still overflow the 8-bit
        # row count with a single block; cap the extras, never the
        # blocks (at least one extra survives by construction).
        n_coded = n_blocks + min(extra, _MAX_CODED - n_blocks)
        if spans == raw.segment_spans():
            gap_checksums = raw.gap_checksums
        else:
            # Merging spans absorbed some gaps; re-checksum the rest.
            gap_checksums = tuple(
                segment_checksum(truth[start:end])
                for start, end in gaps_for_segments(spans, truth.size)
            )
        round_index = self._rounds.get(feedback.seq, 0)
        self._rounds[feedback.seq] = round_index + 1
        coeffs = gf2_coefficients(
            self.seed,
            "coded-repair",
            feedback.seq,
            round_index,
            shape=(n_coded, n_blocks),
        )
        blocks = _pack_symbol_rows(spans, truth)
        coded = unpack_words_to_bytes(
            gf2_encode(coeffs, pack_bytes_to_words(blocks)),
            blocks.shape[1],
        )
        rows = _bytes_to_row_symbols(coded)
        row_checksums = tuple(
            segment_checksum(rows[c]) for c in range(n_coded)
        )
        return CodedRepairPacket(
            seq=feedback.seq,
            n_symbols=truth.size,
            spans=spans,
            coefficients=coeffs,
            rows=rows,
            row_checksums=row_checksums,
            gap_checksums=gap_checksums,
        )

    def _fit_spans(
        self, spans: tuple[tuple[int, int], ...]
    ) -> tuple[tuple[int, int], ...]:
        """Merge nearest spans until blocks + redundancy fit the
        8-bit coded-row count.

        Without this, a feedback round naming ~255 bad runs would
        silently clamp away the extra equations the class guarantees
        (a square random GF(2) system is singular ~29% of the time,
        so rounds would burn airtime recovering nothing).  Merging
        the closest-together spans trades a few good symbols inside
        the coded blocks for keeping every block covered *and* the
        redundancy intact.
        """
        merged = list(spans)

        def budget(n: int) -> int:
            return n + max(1, int(np.ceil(self.redundancy * n)))

        while len(merged) > 1 and budget(len(merged)) > _MAX_CODED:
            gaps = [
                (merged[i + 1][0] - merged[i][1], i)
                for i in range(len(merged) - 1)
            ]
            _, i = min(gaps)
            merged[i] = (merged[i][0], merged[i + 1][1])
            del merged[i + 1]
        return tuple(merged)


class CodedRepairReceiver(PpArqReceiver):
    """PP-ARQ receiver that repairs bad runs from coded combinations."""

    def receive_coded_repair(
        self,
        packet: CodedRepairPacket,
        channel_view: SoftPacket | None = None,
    ) -> None:
        """Solve the coded equations and patch recovered blocks.

        ``channel_view`` carries the coded rows as actually received
        (all rows concatenated, in order); without it the packet is
        treated as clean.  Rows whose CRC-8 fails are dropped; the
        remaining rows form the equation system.  Blocks the
        elimination recovers are patched in verified; unrecovered
        blocks get their hints forced bad so the next feedback round
        re-requests them.
        """
        state = self._require(packet.seq)
        if packet.n_symbols != state.symbols.size:
            raise ValueError(
                "coded repair disagrees on packet length"
            )
        n_coded = packet.n_coded
        row_width = packet.rows.shape[1]
        if channel_view is None:
            rx_rows = packet.rows
        else:
            rx_rows = np.asarray(
                channel_view.symbols, dtype=np.int64
            ).reshape(n_coded, row_width)
        valid = np.array(
            [
                segment_checksum(rx_rows[c]) == packet.row_checksums[c]
                for c in range(n_coded)
            ],
            dtype=bool,
        )
        n_blocks = len(packet.spans)
        recovered = np.zeros(n_blocks, dtype=bool)
        solved = np.zeros((n_blocks, row_width // 2), dtype=np.uint8)
        if valid.any():
            rhs = np.zeros((n_coded, row_width // 2), dtype=np.uint8)
            rx = rx_rows.astype(np.uint8)
            rhs[:, :] = (rx[:, 0::2] & 0xF) | (rx[:, 1::2] << 4)
            rec, sol = gf2_eliminate(
                packet.coefficients[valid],
                pack_bytes_to_words(rhs[valid]),
            )
            recovered = rec
            solved = unpack_words_to_bytes(sol, row_width // 2)
        for i, (start, end) in enumerate(packet.spans):
            span = slice(start, end)
            if recovered[i]:
                state.symbols[span] = _unpack_row_symbols(
                    solved[i], end - start
                )
                state.hints[span] = 0.0
                state.verified[span] = True
            else:
                unverified = ~state.verified[span]
                hints = state.hints[span]
                hints[unverified] = np.maximum(
                    hints[unverified], self.eta + 1.0
                )
        # Confirm gaps against the sender's checksums, as in the raw
        # retransmission path.
        gaps = gaps_for_segments(packet.spans, packet.n_symbols)
        for (start, end), sender_crc in zip(gaps, packet.gap_checksums, strict=True):
            mine = segment_checksum(state.symbols[start:end])
            if mine == sender_crc:
                state.verified[start:end] = True
                state.hints[start:end] = np.minimum(
                    state.hints[start:end], 0.0
                )
            else:
                state.hints[start:end] = np.maximum(
                    state.hints[start:end], self.eta + 1.0
                )
                state.verified[start:end] = False


class CodedRepairSession:
    """Drives coded-repair PP-ARQ across rounds over a lossy channel.

    Drop-in counterpart of :class:`repro.arq.protocol.PpArqSession`
    (same :class:`TransferLog` accounting) with coded retransmissions:
    compare the two on one channel to measure what coding buys.
    """

    def __init__(
        self,
        data_channel: ChannelFn,
        retransmit_channel: ChannelFn | None = None,
        eta: float = 6.0,
        max_rounds: int = 50,
        seed: int = 0,
        redundancy: float = 0.25,
    ) -> None:
        if max_rounds < 1:
            raise ValueError(
                f"max_rounds must be >= 1, got {max_rounds}"
            )
        self._data_channel = data_channel
        self._retransmit_channel = retransmit_channel or data_channel
        self._sender = CodedRepairSender(
            seed=seed, redundancy=redundancy
        )
        self._receiver = CodedRepairReceiver(eta=eta)
        self._max_rounds = int(max_rounds)

    @property
    def receiver(self) -> CodedRepairReceiver:
        """The session's receiver (for inspection in tests)."""
        return self._receiver

    def transfer(self, seq: int, payload: bytes) -> TransferLog:
        """Send one packet to completion (or round exhaustion)."""
        wire = payload + CRC32_IEEE.compute_bytes(payload)
        wire_symbols = bytes_to_symbols(wire)
        self._sender.register_packet(seq, wire_symbols)
        log = TransferLog(seq=seq)

        soft = self._data_channel(wire_symbols)
        log.data_symbols_sent += wire_symbols.size
        self._receiver.receive_data(seq, soft)

        for _ in range(self._max_rounds):
            log.rounds += 1
            if self._receiver.is_complete(seq):
                feedback = FeedbackPacket(
                    seq=seq,
                    n_symbols=wire_symbols.size,
                    segments=(),
                    gap_checksums=(
                        segment_checksum(
                            self._receiver.decoded_symbols(seq)
                        ),
                    ),
                )
                log.feedback_bits.append(feedback_bit_cost(feedback))
                self._sender.handle_feedback(feedback)
                log.delivered = True
                return log
            feedback = self._receiver.build_feedback(seq)
            log.feedback_bits.append(feedback_bit_cost(feedback))
            packet = self._sender.handle_feedback_coded(feedback)
            if packet is None:
                log.delivered = True
                return log
            encoded = encode_coded_repair(packet)
            log.retransmit_packet_bytes.append(len(encoded))
            log.data_symbols_sent += packet.n_data_symbols
            channel_view = self._retransmit_channel(
                packet.rows.reshape(-1)
            )
            self._receiver.receive_coded_repair(packet, channel_view)
        log.delivered = self._receiver.is_complete(seq)
        return log
