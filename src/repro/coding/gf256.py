"""GF(256) linear algebra via log/exp tables — the dense-coefficient
variant of :mod:`repro.coding.gf2`.

GF(2) coefficients are cheap but a random GF(2) matrix loses rank
with noticeable probability at small segment counts; coefficients
drawn from GF(256) make every square submatrix invertible with
probability ``>= 1 - k/255`` (near-MDS), at the cost of multiplies
instead of bare XORs.  Multiplication uses the classic log/exp
construction over the AES-adjacent polynomial ``x^8+x^4+x^3+x^2+1``
(0x11D, generator 2): ``a*b = exp[log a + log b]``, with the exp
table doubled so the sum never needs a modulo.

Kernels mirror the GF(2) module — vectorized ``gf256_encode`` /
``gf256_eliminate`` with pure-loop ``*_reference`` specifications
pinned bit-for-bit by the equivalence suite.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import keyed_rng

_POLY = 0x11D


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int64)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _POLY
    exp[255:510] = exp[:255]
    return exp, log


_EXP, _LOG = _build_tables()


def gf256_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise GF(256) product (vectorized, broadcasting)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    nonzero = (a != 0) & (b != 0)
    out = _EXP[_LOG[a] + _LOG[b]]
    return np.where(nonzero, out, np.uint8(0))


def gf256_inv(a: int) -> int:
    """Multiplicative inverse of a nonzero GF(256) element."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def gf256_coefficients(
    seed: int, label: str, *ids: int, shape: tuple[int, int]
) -> np.ndarray:
    """A keyed random ``shape`` GF(256) coefficient matrix.

    Same addressing contract as
    :func:`repro.coding.gf2.gf2_coefficients`, with a trailing
    field-order discriminator of 256 (vs 2) so the two field variants
    never draw from one stream for identical ``(seed, label, *ids)``;
    all-zero rows are replaced by all-ones rows.
    """
    m, k = shape
    if m < 0 or k <= 0:
        raise ValueError(f"shape must be (m >= 0, k >= 1), got {shape}")
    rng = keyed_rng(seed, label, *ids, 256)
    coeffs = rng.integers(0, 256, size=(m, k), dtype=np.uint8)
    zero_rows = ~coeffs.any(axis=1)
    coeffs[zero_rows] = 1
    return coeffs


def gf256_encode(coeffs: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Coded rows ``coeffs @ rows`` over GF(256).

    ``coeffs`` is ``(m, k)`` uint8, ``rows`` ``(k, L)`` uint8 byte
    rows.  Vectorized per source row: one table-driven multiply over
    all ``m x L`` outputs, XOR-accumulated — k passes total instead of
    ``m*k*L`` scalar operations.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    rows = np.asarray(rows, dtype=np.uint8)
    if coeffs.ndim != 2 or rows.ndim != 2:
        raise ValueError("coeffs and rows must be 2-D")
    if coeffs.shape[1] != rows.shape[0]:
        raise ValueError(
            f"coeffs select {coeffs.shape[1]} rows but {rows.shape[0]} "
            "were given"
        )
    out = np.zeros((coeffs.shape[0], rows.shape[1]), dtype=np.uint8)
    for j in range(rows.shape[0]):
        out ^= gf256_mul(coeffs[:, j : j + 1], rows[j][None, :])
    return out


def gf256_encode_reference(
    coeffs: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Loop specification of :func:`gf256_encode` (pinned bit-for-bit)."""
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    rows = np.asarray(rows, dtype=np.uint8)
    m = coeffs.shape[0]
    out = np.zeros((m, rows.shape[1]), dtype=np.uint8)
    for i in range(m):
        for j in range(coeffs.shape[1]):
            c = int(coeffs[i, j])
            if not c:
                continue
            for col in range(rows.shape[1]):
                v = int(rows[j, col])
                if v:
                    out[i, col] ^= _EXP[_LOG[c] + _LOG[v]]
    return out


def gf256_eliminate(
    coeffs: np.ndarray, payload: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian elimination to RREF over GF(256), vectorized per row op.

    Same contract as :func:`repro.coding.gf2.gf2_eliminate`:
    ``coeffs`` ``(m, k)`` equations, ``payload`` ``(m, L)`` uint8
    right-hand sides; returns ``(recovered, solved)`` with ``solved``
    shaped ``(k, L)``.  Pivot rows are normalised to 1 and eliminated
    from every other carrier row in one table-driven multiply + XOR
    across the full augmented width.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    payload = np.asarray(payload, dtype=np.uint8)
    if coeffs.ndim != 2 or payload.ndim != 2:
        raise ValueError("coeffs and payload must be 2-D")
    m, k = coeffs.shape
    if payload.shape[0] != m:
        raise ValueError(
            f"{m} equations but {payload.shape[0]} payload rows"
        )
    n_cols = payload.shape[1]
    recovered = np.zeros(k, dtype=bool)
    solved = np.zeros((k, n_cols), dtype=np.uint8)
    if m == 0:
        return recovered, solved
    aug = np.concatenate([coeffs, payload], axis=1)
    pivots: list[tuple[int, int]] = []
    row = 0
    for col in range(k):
        candidates = aug[row:, col] != 0
        if not candidates.any():
            continue
        pivot = row + int(np.argmax(candidates))
        if pivot != row:
            aug[[row, pivot]] = aug[[pivot, row]]
        inv = np.uint8(gf256_inv(int(aug[row, col])))
        aug[row] = gf256_mul(inv, aug[row])
        carriers = aug[:, col] != 0
        carriers[row] = False
        if carriers.any():
            factors = aug[carriers, col][:, None]
            aug[carriers] ^= gf256_mul(factors, aug[row][None, :])
        pivots.append((row, col))
        row += 1
        if row == m:
            break
    for prow, pcol in pivots:
        cvec = aug[prow, :k]
        if cvec[pcol] == 1 and np.count_nonzero(cvec) == 1:
            recovered[pcol] = True
            solved[pcol] = aug[prow, k:]
    return recovered, solved


def gf256_eliminate_reference(
    coeffs: np.ndarray, payload: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Loop specification of :func:`gf256_eliminate` (pinned
    bit-for-bit): same pivot choices on scalar arithmetic."""
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    payload = np.asarray(payload, dtype=np.uint8)
    m, k = coeffs.shape
    n_cols = payload.shape[1]
    recovered = np.zeros(k, dtype=bool)
    solved = np.zeros((k, n_cols), dtype=np.uint8)
    if m == 0:
        return recovered, solved

    def mul(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(_EXP[_LOG[a] + _LOG[b]])

    rows = [[int(v) for v in row] for row in np.concatenate(
        [coeffs, payload], axis=1
    )]
    pivots: list[tuple[int, int]] = []
    row = 0
    for col in range(k):
        pivot = next(
            (i for i in range(row, m) if rows[i][col]), None
        )
        if pivot is None:
            continue
        rows[row], rows[pivot] = rows[pivot], rows[row]
        inv = gf256_inv(rows[row][col])
        rows[row] = [mul(inv, v) for v in rows[row]]
        for i in range(m):
            factor = rows[i][col]
            if i != row and factor:
                rows[i] = [
                    v ^ mul(factor, p)
                    for v, p in zip(rows[i], rows[row], strict=True)
                ]
        pivots.append((row, col))
        row += 1
        if row == m:
            break
    for prow, pcol in pivots:
        cvec = rows[prow][:k]
        if cvec[pcol] == 1 and sum(1 for v in cvec if v) == 1:
            recovered[pcol] = True
            solved[pcol] = np.array(rows[prow][k:], dtype=np.uint8)
    return recovered, solved
