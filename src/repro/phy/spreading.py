"""Bit <-> symbol conversions for DSSS spreading.

802.15.4 sends each byte as two 4-bit symbols, low nibble first, with
the least-significant bit of the nibble as the first bit on air.  The
functions here implement that mapping for arbitrary ``bits_per_symbol``
so alternative codebooks keep working.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitops import bits_to_bytes, bytes_to_bits


def bits_to_symbols(bits: np.ndarray, bits_per_symbol: int = 4) -> np.ndarray:
    """Group a bit array into symbol indices, LSB-first per symbol.

    The bit array length must be a multiple of ``bits_per_symbol``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % bits_per_symbol != 0:
        raise ValueError(
            f"bit count {bits.size} is not a multiple of {bits_per_symbol}"
        )
    groups = bits.reshape(-1, bits_per_symbol)
    weights = 1 << np.arange(bits_per_symbol, dtype=np.int64)
    return (groups.astype(np.int64) * weights).sum(axis=1)


def symbols_to_bits(symbols: np.ndarray, bits_per_symbol: int = 4) -> np.ndarray:
    """Inverse of :func:`bits_to_symbols`."""
    symbols = np.asarray(symbols, dtype=np.int64)
    if symbols.size and (symbols.min() < 0 or symbols.max() >= (1 << bits_per_symbol)):
        raise ValueError(
            f"symbol values must fit in {bits_per_symbol} bits"
        )
    shifts = np.arange(bits_per_symbol, dtype=np.int64)
    bits = (symbols[:, None] >> shifts[None, :]) & 1
    return bits.reshape(-1).astype(np.uint8)


def bytes_to_symbols(data: bytes, bits_per_symbol: int = 4) -> np.ndarray:
    """Convert bytes to symbol indices (low nibble of each byte first).

    For the Zigbee case (4 bits/symbol) byte ``0xA3`` becomes symbols
    ``[3, 10]``.
    """
    if 8 % bits_per_symbol != 0:
        raise ValueError(
            f"bits_per_symbol must divide 8, got {bits_per_symbol}"
        )
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    per_byte = 8 // bits_per_symbol
    mask = (1 << bits_per_symbol) - 1
    out = np.empty(arr.size * per_byte, dtype=np.int64)
    for i in range(per_byte):
        out[i::per_byte] = (arr >> (bits_per_symbol * i)) & mask
    return out


def symbols_to_bytes(symbols: np.ndarray, bits_per_symbol: int = 4) -> bytes:
    """Inverse of :func:`bytes_to_symbols`."""
    if 8 % bits_per_symbol != 0:
        raise ValueError(
            f"bits_per_symbol must divide 8, got {bits_per_symbol}"
        )
    symbols = np.asarray(symbols, dtype=np.int64)
    per_byte = 8 // bits_per_symbol
    if symbols.size % per_byte != 0:
        raise ValueError(
            f"symbol count {symbols.size} is not a multiple of {per_byte}"
        )
    if symbols.size and (symbols.min() < 0 or symbols.max() >= (1 << bits_per_symbol)):
        raise ValueError(f"symbol values must fit in {bits_per_symbol} bits")
    groups = symbols.reshape(-1, per_byte)
    out = np.zeros(groups.shape[0], dtype=np.int64)
    for i in range(per_byte):
        out |= groups[:, i] << (bits_per_symbol * i)
    return out.astype(np.uint8).tobytes()


def bits_msb_to_symbols(bits: np.ndarray, bits_per_symbol: int = 4) -> np.ndarray:
    """Like :func:`bits_to_symbols` but via byte packing (MSB-first bytes).

    Provided for callers that carry payloads as MSB-first bit arrays
    (the :mod:`repro.utils.bitops` convention) and want on-air symbol
    order identical to :func:`bytes_to_symbols`.
    """
    return bytes_to_symbols(bits_to_bytes(bits), bits_per_symbol)


def symbols_to_bits_msb(symbols: np.ndarray, bits_per_symbol: int = 4) -> np.ndarray:
    """Inverse of :func:`bits_msb_to_symbols`."""
    return bytes_to_bits(symbols_to_bytes(symbols, bits_per_symbol))
