"""MSK matched-filter demodulator (waveform path).

Undoes :class:`repro.phy.modulation.MskModulator`: correlates each
chip's two-chip-period window against the half-sine pulse, reading the
I rail for even chips and the Q rail for odd chips.  With correct
timing there is no inter-chip interference (adjacent same-rail pulses
abut exactly), so the soft output for chip *k* is
``amplitude * sign(chip_k) + noise``.

The matched filter is one fused reduction over a
``sliding_window_view`` of the capture — all chips' windows against
the pulse at once.  The per-chip loop survives as
:meth:`MskDemodulator.demodulate_soft_reference`, the executable spec
the equivalence suite pins bit-for-bit.  Both paths spell the inner
product as multiply-then-``sum`` so the reduction order (numpy's
pairwise summation over the last axis) is identical between them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.phy.pulse import half_sine_pulse


class MskDemodulator:
    """Matched-filter chip demodulator for half-sine O-QPSK/MSK."""

    def __init__(self, sps: int = 4) -> None:
        if sps < 2:
            raise ValueError(f"sps must be >= 2, got {sps}")
        self._sps = int(sps)
        self._pulse = half_sine_pulse(self._sps)

    @property
    def sps(self) -> int:
        """Samples per chip."""
        return self._sps

    def _window_view(
        self, samples: np.ndarray, start: int, n_chips: int
    ) -> np.ndarray:
        """Validated ``(n_chips, 2*sps)`` strided view of chip windows.

        ``start`` is the sample index where chip 0's pulse begins.  The
        capture must contain the full span of every requested chip; a
        truncated capture raises ``ValueError`` so callers never decode
        silence as data.
        """
        samples = np.asarray(samples, dtype=np.complex128)
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        if n_chips < 0:
            raise ValueError(f"n_chips must be non-negative, got {n_chips}")
        sps = self._sps
        plen = self._pulse.size
        needed = start + (n_chips - 1) * sps + plen if n_chips else start
        if needed > samples.size:
            raise ValueError(
                f"capture too short: need {needed} samples, have "
                f"{samples.size}"
            )
        if n_chips == 0:
            return np.zeros((0, plen), dtype=np.complex128)
        windows = np.lib.stride_tricks.sliding_window_view(samples, plen)
        return windows[start : start + n_chips * sps : sps]

    @staticmethod
    def _rail_split(corr: np.ndarray) -> np.ndarray:
        """I rail for even chips, Q rail for odd chips."""
        out = np.empty(corr.size, dtype=np.float64)
        out[0::2] = corr[0::2].real
        out[1::2] = corr[1::2].imag
        return out

    def demodulate_soft(
        self, samples: np.ndarray, start: int, n_chips: int
    ) -> np.ndarray:
        """Matched-filter soft outputs for ``n_chips`` chips.

        One fused array program: every chip's two-chip-period window is
        correlated against the pulse in a single reduction over the
        window matrix.
        """
        windows = self._window_view(samples, start, n_chips)
        corr = (windows * self._pulse).sum(axis=1)
        return self._rail_split(corr)

    def demodulate_soft_reference(
        self, samples: np.ndarray, start: int, n_chips: int
    ) -> np.ndarray:
        """Per-chip loop implementation, kept as the executable spec
        for :meth:`demodulate_soft` (pinned bit-for-bit by the
        equivalence suite)."""
        samples = np.asarray(samples, dtype=np.complex128)
        # Same validation as the vectorized path.
        self._window_view(samples, start, n_chips)
        sps = self._sps
        pulse = self._pulse
        plen = pulse.size
        out = np.empty(n_chips, dtype=np.float64)
        for k in range(n_chips):
            s0 = start + k * sps
            window = samples[s0 : s0 + plen]
            corr = (window * pulse).sum()
            out[k] = corr.real if k % 2 == 0 else corr.imag
        return out

    def demodulate_soft_batch(
        self, requests: Sequence[tuple[np.ndarray, int, int]]
    ) -> list[np.ndarray]:
        """Soft outputs for many ``(samples, start, n_chips)`` requests
        in one fused matched-filter reduction.

        The requests' window matrices are stacked and reduced against
        the pulse in a single pass; per-request results are
        bit-identical to :meth:`demodulate_soft` (the reduction is
        independent across rows).
        """
        mats = [
            self._window_view(samples, start, n_chips)
            for samples, start, n_chips in requests
        ]
        sizes = [m.shape[0] for m in mats]
        if sum(sizes) == 0:
            return [np.zeros(0, dtype=np.float64) for _ in mats]
        fused = np.concatenate(mats)
        corr = (fused * self._pulse).sum(axis=1)
        offsets = np.cumsum(sizes[:-1]) if len(sizes) > 1 else []
        return [
            self._rail_split(piece) for piece in np.split(corr, offsets)
        ]

    def demodulate_chips(
        self, samples: np.ndarray, start: int, n_chips: int
    ) -> np.ndarray:
        """Hard chip decisions (0/1) by slicing the soft outputs."""
        soft = self.demodulate_soft(samples, start, n_chips)
        return (soft > 0).astype(np.uint8)

    def soft_chip_matrix(
        self,
        samples: np.ndarray,
        start: int,
        n_symbols: int,
        chips_per_symbol: int = 32,
    ) -> np.ndarray:
        """Soft chips grouped per codeword: shape (n_symbols, chips/symbol)."""
        soft = self.demodulate_soft(
            samples, start, n_symbols * chips_per_symbol
        )
        return soft.reshape(n_symbols, chips_per_symbol)
