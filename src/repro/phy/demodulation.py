"""MSK matched-filter demodulator (waveform path).

Undoes :class:`repro.phy.modulation.MskModulator`: correlates each
chip's two-chip-period window against the half-sine pulse, reading the
I rail for even chips and the Q rail for odd chips.  With correct
timing there is no inter-chip interference (adjacent same-rail pulses
abut exactly), so the soft output for chip *k* is
``amplitude * sign(chip_k) + noise``.
"""

from __future__ import annotations

import numpy as np

from repro.phy.pulse import half_sine_pulse


class MskDemodulator:
    """Matched-filter chip demodulator for half-sine O-QPSK/MSK."""

    def __init__(self, sps: int = 4) -> None:
        if sps < 2:
            raise ValueError(f"sps must be >= 2, got {sps}")
        self._sps = int(sps)
        self._pulse = half_sine_pulse(self._sps)

    @property
    def sps(self) -> int:
        """Samples per chip."""
        return self._sps

    def demodulate_soft(
        self, samples: np.ndarray, start: int, n_chips: int
    ) -> np.ndarray:
        """Matched-filter soft outputs for ``n_chips`` chips.

        ``start`` is the sample index where chip 0's pulse begins.  The
        capture must contain the full span of every requested chip; a
        truncated capture raises ``ValueError`` so callers never decode
        silence as data.
        """
        samples = np.asarray(samples, dtype=np.complex128)
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        if n_chips < 0:
            raise ValueError(f"n_chips must be non-negative, got {n_chips}")
        sps = self._sps
        plen = self._pulse.size
        needed = start + (n_chips - 1) * sps + plen if n_chips else start
        if needed > samples.size:
            raise ValueError(
                f"capture too short: need {needed} samples, have "
                f"{samples.size}"
            )
        out = np.empty(n_chips, dtype=np.float64)
        pulse = self._pulse
        for k in range(n_chips):
            s0 = start + k * sps
            window = samples[s0 : s0 + plen]
            corr = np.dot(window, pulse)
            out[k] = corr.real if k % 2 == 0 else corr.imag
        return out

    def demodulate_chips(
        self, samples: np.ndarray, start: int, n_chips: int
    ) -> np.ndarray:
        """Hard chip decisions (0/1) by slicing the soft outputs."""
        soft = self.demodulate_soft(samples, start, n_chips)
        return (soft > 0).astype(np.uint8)

    def soft_chip_matrix(
        self,
        samples: np.ndarray,
        start: int,
        n_symbols: int,
        chips_per_symbol: int = 32,
    ) -> np.ndarray:
        """Soft chips grouped per codeword: shape (n_symbols, chips/symbol)."""
        soft = self.demodulate_soft(
            samples, start, n_symbols * chips_per_symbol
        )
        return soft.reshape(n_symbols, chips_per_symbol)
