"""The SoftPHY interface: decoded symbols annotated with confidence hints.

This is the paper's central abstraction (§3): the PHY keeps making hard
decisions, but passes each decision upward together with a *hint*.  The
library-wide convention is that **lower hints mean higher confidence**
(Hamming distance is the canonical instance); decoders whose natural
metric is higher-is-better (soft-decision correlation, matched filter)
negate their metric so the monotonicity contract of §3.3 holds in one
direction everywhere.

Higher layers must not interpret hint *values* beyond that ordering —
they apply a threshold η (possibly adapted online, see
:mod:`repro.link.adaptive`) to label symbols good or bad.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.phy.spreading import symbols_to_bytes


class SyncSource(Enum):
    """How the receiver synchronised onto a frame."""

    PREAMBLE = "preamble"
    POSTAMBLE = "postamble"
    NONE = "none"


@dataclass(frozen=True)
class SoftSymbol:
    """A single decoded symbol with its SoftPHY hint.

    ``value`` is the decoded symbol index; ``hint`` is the PHY
    confidence (lower = more confident).
    """

    value: int
    hint: float

    def is_good(self, eta: float) -> bool:
        """Apply the threshold rule of paper §3.2."""
        return self.hint <= eta


@dataclass
class SoftPacket:
    """A decoded frame as delivered by the SoftPHY interface.

    Array-oriented for performance: ``symbols[i]`` and ``hints[i]``
    describe the i-th decoded codeword of the frame body (header +
    payload + trailer region, depending on the producer).  Metadata
    records how the frame was acquired and whether structural fields
    verified.
    """

    symbols: np.ndarray
    hints: np.ndarray
    sync_source: SyncSource = SyncSource.PREAMBLE
    source: int | None = None
    dest: int | None = None
    header_ok: bool = True
    trailer_ok: bool = False
    rx_time: float = 0.0
    link: tuple[int, int] | None = None
    truth: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.symbols = np.asarray(self.symbols, dtype=np.int64)
        self.hints = np.asarray(self.hints, dtype=np.float64)
        if self.symbols.shape != self.hints.shape:
            raise ValueError(
                f"symbols shape {self.symbols.shape} != hints shape "
                f"{self.hints.shape}"
            )
        if self.truth is not None:
            self.truth = np.asarray(self.truth, dtype=np.int64)
            if self.truth.shape != self.symbols.shape:
                raise ValueError(
                    "truth must have the same shape as symbols"
                )

    def __len__(self) -> int:
        return int(self.symbols.size)

    @property
    def n_symbols(self) -> int:
        """Number of decoded codewords in the frame."""
        return int(self.symbols.size)

    def good_mask(self, eta: float) -> np.ndarray:
        """Boolean mask of symbols labelled good at threshold ``eta``."""
        return self.hints <= eta

    def correct_mask(self) -> np.ndarray:
        """Boolean mask of symbols that actually decoded correctly.

        Requires ground truth (available in simulation); raises
        otherwise, since a real receiver cannot know this.
        """
        if self.truth is None:
            raise ValueError("no ground truth attached to this SoftPacket")
        return self.symbols == self.truth

    def to_soft_symbols(self) -> list[SoftSymbol]:
        """Materialise per-symbol objects (convenience, not the fast path)."""
        return [
            SoftSymbol(int(v), float(h))
            for v, h in zip(self.symbols, self.hints, strict=True)
        ]

    def payload_bytes(self, bits_per_symbol: int = 4) -> bytes:
        """Reassemble the decoded symbols into bytes (low nibble first)."""
        n = self.symbols.size - self.symbols.size % (8 // bits_per_symbol)
        return symbols_to_bytes(self.symbols[:n], bits_per_symbol)

    # -- hint statistics (used by the experiment harness) -------------------

    def miss_mask(self, eta: float) -> np.ndarray:
        """Incorrect symbols labelled good — the "misses" of §7.4.1."""
        return self.good_mask(eta) & ~self.correct_mask()

    def false_alarm_mask(self, eta: float) -> np.ndarray:
        """Correct symbols labelled bad — the "false alarms" of §7.4.2."""
        return ~self.good_mask(eta) & self.correct_mask()
