"""Chip-level channel: per-symbol SINR drives a binary symmetric channel.

Network-scale experiments model each reception as a *timeline of SINRs*,
one per codeword: interference from overlapping transmissions raises
the denominator only during the overlapped codewords (paper Fig. 5).
Each chip then flips independently with the coherent-MSK error
probability ``Q(sqrt(2 * SINR))``.  Despreading gain is not applied
here — it emerges when 32 received chips are jointly decoded to the
nearest codeword.

Two BSC entry points serve different callers:
:func:`transmit_chipwords` draws from a caller-supplied sequential
generator — the natural interface for single-link studies (the PP-ARQ
experiments, the quickstart example) that own one explicit stream —
while :func:`transmit_chipwords_batch`, the network simulation's only
channel path, draws each reception's flips from its own counter-based
Philox stream keyed on the (transmission, receiver) pair, so
arbitrarily many receptions can be corrupted in one fused call (or
sharded across processes) with bit-identical results.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.utils.bitops import pack_bits_to_uint32
from repro.utils.rng import RngLike, ensure_rng, rng_from_key


def chip_error_probability(sinr_linear: float | np.ndarray) -> np.ndarray:
    """Chip flip probability for coherent MSK detection at given SINR.

    Per-chip detection of MSK with a matched filter behaves like
    antipodal (BPSK) signalling: ``p = Q(sqrt(2 * SINR))``, expressed
    with ``erfc`` for vectorisation.  As SINR -> 0 the probability
    approaches 0.5 (chips become random), which is what makes collision
    regions produce large Hamming hints.
    """
    sinr = np.asarray(sinr_linear, dtype=np.float64)
    if np.any(sinr < 0):
        raise ValueError("SINR must be non-negative")
    return 0.5 * erfc(np.sqrt(sinr))


def chip_error_probability_interference(
    snr_linear: float | np.ndarray, isr_linear: float | np.ndarray
) -> np.ndarray:
    """Chip flip probability under noise *and* a co-channel interferer.

    Interference from another DSSS transmission is not Gaussian: each
    interfering chip is itself an antipodal symbol that either aids or
    opposes the desired chip.  Averaging over the two cases gives::

        p = 1/2 Q( sqrt(2 S/N) (1 + sqrt(I/S)) )
          + 1/2 Q( sqrt(2 S/N) (1 - sqrt(I/S)) )

    with S/N the signal-to-noise ratio and I/S the
    interference-to-signal ratio.  Equal-power collisions (I = S) give
    p -> 0.25 even at high SNR — collisions destroy the overlapped
    codewords — while an interferer a few dB down is captured through
    (p -> 0), reproducing the capture effect.  Multiple simultaneous
    interferers are approximated by their total power.
    """
    snr = np.asarray(snr_linear, dtype=np.float64)
    isr = np.asarray(isr_linear, dtype=np.float64)
    if np.any(snr < 0):
        raise ValueError("SNR must be non-negative")
    if np.any(isr < 0):
        raise ValueError("interference-to-signal ratio must be non-negative")
    base = np.sqrt(snr)
    offset = np.sqrt(isr)
    with np.errstate(invalid="ignore"):
        aligned = 0.5 * erfc(base * (1.0 + offset))
        opposed = 0.5 * erfc(base * (1.0 - offset))
    p = 0.5 * (aligned + opposed)
    # Guard the I -> inf limit (e.g. a half-duplex receiver jamming
    # itself): erfc(-inf) = 2, so p correctly tends to 0.5, but inf*0
    # produces NaN when snr == 0; random chips are the right answer.
    return np.where(np.isnan(p), 0.5, np.clip(p, 0.0, 0.5))


def transmit_chipwords(
    tx_words: np.ndarray,
    chip_error_prob: float | np.ndarray,
    rng: RngLike = None,
) -> np.ndarray:
    """Pass packed chip words through a BSC with per-word flip probability.

    Parameters
    ----------
    tx_words:
        uint32 array of transmitted codewords (one per symbol).
    chip_error_prob:
        scalar, or array of shape ``(len(tx_words),)`` giving each
        symbol's chip flip probability (from its SINR).
    rng:
        seed or generator for the error process.

    Returns the received uint32 chip words.
    """
    gen = ensure_rng(rng)
    tx_words = np.asarray(tx_words, dtype=np.uint32)
    n = tx_words.size
    p = np.broadcast_to(
        np.asarray(chip_error_prob, dtype=np.float64), (n,)
    )
    _validate_chip_probs(p)
    if n == 0:
        return tx_words.copy()
    flips = gen.random((n, 32)) < p[:, None]
    error_words = pack_bits_to_uint32(flips.astype(np.uint8))
    return tx_words ^ error_words


# Words per fused pack/XOR group: bounds the transient (n_words, 32)
# flip matrix to a few tens of MB however many pairs are fused.
# Grouping is at pair granularity and cannot change results — each
# pair's randomness comes from its own keyed stream, not from its
# place in the batch.
_BATCH_GROUP_WORDS = 1 << 20


def _validate_chip_probs(p: np.ndarray) -> None:
    # NaN compares false to both bounds, so a plain range check lets it
    # through and the channel silently flips nothing; reject non-finite
    # probabilities explicitly.
    if not np.all(np.isfinite(p)):
        raise ValueError(
            "chip error probability must be finite, got non-finite "
            "values (NaN or infinity)"
        )
    if np.any((p < 0) | (p > 1)):
        raise ValueError("chip error probability must be in [0, 1]")


def transmit_chipwords_batch(
    tx_words: np.ndarray,
    chip_error_prob: np.ndarray,
    sizes: np.ndarray,
    keys: np.ndarray,
) -> np.ndarray:
    """Keyed-stream BSC over many receptions' words in one fused call.

    The input is any number of (transmission, receiver) pairs' words
    concatenated flat; ``sizes`` gives each pair's word count and
    ``keys[i]`` its 128-bit stream key (from ``derive_key(seed,
    "chip-channel", tx_id, receiver)``).  Pair *i*'s chips flip using
    uniforms drawn from a counter-based Philox stream under ``keys[i]``
    — a function of the key and the pair's own draw order only — so
    the result is bit-identical whether pairs transit one at a time,
    fused across a whole trial, or sharded over worker processes.
    Flip generation, packing, and the XOR against the transmitted
    words run over whole groups of pairs at once.

    Parameters
    ----------
    tx_words:
        ``(n,)`` uint32 transmitted codewords, flat across pairs.
    chip_error_prob:
        scalar or ``(n,)`` per-word chip flip probability.
    sizes:
        per-pair word counts; must sum to ``n``.
    keys:
        ``(len(sizes), 2)`` uint64 per-pair stream keys.

    Returns the received uint32 chip words.
    """
    tx_words = np.asarray(tx_words, dtype=np.uint32)
    n = tx_words.size
    p = np.broadcast_to(
        np.asarray(chip_error_prob, dtype=np.float64), (n,)
    )
    _validate_chip_probs(p)
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.ndim != 1 or (sizes.size and sizes.min() < 0):
        raise ValueError("sizes must be a 1-D array of non-negative counts")
    if int(sizes.sum()) != n:
        raise ValueError(
            f"sizes sum to {int(sizes.sum())} but {n} words were given"
        )
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.shape != (sizes.size, 2):
        raise ValueError(
            f"keys must be ({sizes.size}, 2) uint64, got {keys.shape}"
        )
    if n == 0:
        return tx_words.copy()

    starts = np.concatenate([[0], np.cumsum(sizes)])
    # Flip iff a 32-bit uniform falls below p * 2**32: probabilities
    # quantise at 2**-32 resolution (far below the channel model's own
    # fidelity) and the integer draws are ~2x cheaper than doubles.
    thresholds = np.ldexp(p, 32)
    rx = np.empty(n, dtype=np.uint32)
    i = 0
    while i < sizes.size:
        # Group whole pairs up to the memory bound (always >= 1 pair).
        j = i + 1
        g_lo = int(starts[i])
        while (
            j < sizes.size
            and int(starts[j + 1]) - g_lo <= _BATCH_GROUP_WORDS
        ):
            j += 1
        g_hi = int(starts[j])
        # Every row in the group belongs to exactly one pair below, so
        # the buffer needs no initialisation.
        flips = np.empty((g_hi - g_lo, 32), dtype=np.uint8)
        for k in range(i, j):
            lo, hi = int(starts[k]) - g_lo, int(starts[k + 1]) - g_lo
            if hi > lo:
                gen = rng_from_key(keys[k])
                uniforms = gen.integers(
                    0, 1 << 32, size=(hi - lo, 32), dtype=np.uint32
                )
                flips[lo:hi] = (
                    uniforms < thresholds[g_lo + lo : g_lo + hi, None]
                )
        rx[g_lo:g_hi] = tx_words[g_lo:g_hi] ^ pack_bits_to_uint32(flips)
        i = j
    return rx


def sinr_timeline_to_chip_probs(
    signal_mw: float,
    noise_mw: float,
    interference_mw: np.ndarray,
) -> np.ndarray:
    """Convert a per-symbol interference timeline into chip error probs.

    ``interference_mw[i]`` is the total interfering power (mW) during
    codeword *i*; the result is ``Q(sqrt(2 * S/(N+I)))`` per codeword.
    """
    if signal_mw <= 0:
        raise ValueError(f"signal power must be positive, got {signal_mw}")
    if noise_mw <= 0:
        raise ValueError(f"noise power must be positive, got {noise_mw}")
    interference = np.asarray(interference_mw, dtype=np.float64)
    if np.any(interference < 0):
        raise ValueError("interference power must be non-negative")
    sinr = signal_mw / (noise_mw + interference)
    return chip_error_probability(sinr)
