"""Symbol/chip timing recovery.

The paper's receiver uses non-data-aided timing recovery (Mueller &
Müller [21]) so that stored samples can be symbol-synchronised *without
having heard a preamble* — the property postamble decoding depends on
(paper §4).  Two estimators are provided:

* :func:`estimate_chip_phase` — non-data-aided exhaustive-phase energy
  maximisation: demodulate at every candidate sample phase and keep the
  phase with the largest mean squared matched-filter output.  Works at
  any point of a transmission, which is exactly what rollback needs.
  Like every energy-based NDA estimator it is blind to whole-chip
  alignment (an odd-chip offset swaps the O-QPSK I/Q rails and shows up
  as a shifted energy peak); absolute chip alignment comes from the
  frame-sync correlators, which is how the full receiver composes the
  two.
* :class:`MuellerMullerTed` — the classic decision-directed timing
  error detector, usable for fine tracking once coarse chip phase is
  known.
"""

from __future__ import annotations

import numpy as np

from repro.phy.demodulation import MskDemodulator


def estimate_chip_phase(
    samples: np.ndarray,
    sps: int,
    n_probe_chips: int = 64,
    start: int = 0,
) -> tuple[int, np.ndarray]:
    """Estimate the chip-rate sample phase non-data-aided.

    Demodulates ``n_probe_chips`` chips at each of the ``sps`` candidate
    phases beginning at ``start`` and returns ``(best_phase, energies)``
    where ``energies[p]`` is the mean squared soft output at phase
    ``p``.  The true chip grid maximises matched-filter energy because
    any misalignment leaks power between the I/Q rails and across
    pulses.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if sps < 2:
        raise ValueError(f"sps must be >= 2, got {sps}")
    demod = MskDemodulator(sps)
    plen = 2 * sps
    max_chips = (samples.size - start - plen) // sps
    probe = min(n_probe_chips, max_chips - sps)
    if probe < 8:
        raise ValueError(
            "capture too short for timing estimation: "
            f"only {probe} probe chips available"
        )
    energies = np.empty(sps, dtype=np.float64)
    for phase in range(sps):
        soft = demod.demodulate_soft(samples, start + phase, probe)
        energies[phase] = np.mean(soft**2)
    return int(energies.argmax()), energies


class MuellerMullerTed:
    """Mueller & Müller decision-directed timing error detector.

    Operates on a sequence of symbol-rate (here: chip-rate) soft
    outputs.  The error signal for sample *k* is::

        e_k = d_{k-1} * y_k - d_k * y_{k-1}

    with ``d`` the hard decisions (±1) and ``y`` the soft outputs.  A
    positive mean error indicates sampling late, negative early.  The
    detector is exposed both as a one-shot estimator over a block
    (:meth:`error_signal`) and a simple first-order tracking loop
    (:meth:`track`).
    """

    def __init__(self, loop_gain: float = 0.05) -> None:
        if not 0 < loop_gain < 1:
            raise ValueError(f"loop_gain must be in (0, 1), got {loop_gain}")
        self._gain = float(loop_gain)

    def error_signal(self, soft: np.ndarray) -> np.ndarray:
        """Per-step M&M timing errors for a block of soft outputs."""
        soft = np.asarray(soft, dtype=np.float64)
        if soft.size < 2:
            return np.zeros(0, dtype=np.float64)
        decisions = np.sign(soft)
        decisions[decisions == 0] = 1.0
        return decisions[:-1] * soft[1:] - decisions[1:] * soft[:-1]

    def mean_error(self, soft: np.ndarray) -> float:
        """Block-averaged timing error (0 when sampling is centred)."""
        e = self.error_signal(soft)
        return float(e.mean()) if e.size else 0.0

    def track(self, soft_blocks: list[np.ndarray]) -> list[float]:
        """Run the first-order loop over successive blocks.

        Returns the running fractional-phase estimate after each block;
        callers apply it by re-sampling their capture.  The loop is
        intentionally simple — the library's default acquisition path
        uses :func:`estimate_chip_phase`.
        """
        phase = 0.0
        history = []
        for block in soft_blocks:
            phase -= self._gain * self.mean_error(block)
            history.append(phase)
        return history
