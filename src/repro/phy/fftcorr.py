"""FFT-domain sliding correlation against a fixed pattern.

The sync correlators (:mod:`repro.phy.sync` in the chip domain,
:mod:`repro.phy.frontend` in the sample domain) need the raw valid-mode
cross-correlation of every capture row against one fixed pattern.  The
direct per-row ``np.correlate`` is O(n·p) per capture; for the sample
domain (pattern length 1280 at 4 samples/chip) the FFT product
``ifft(fft(row) · conj(fft(pattern)))`` is ~8x faster and turns the
whole batch into one array program.

Two properties the callers rely on:

* **Batch-shape invariance, bit-for-bit.**  pocketfft transforms each
  row of a stacked input independently, so correlating a stacked batch
  equals correlating each row alone to the last bit — the determinism
  contract (identical artifacts across ``--jobs`` and batching modes)
  survives the rewrite.
* **Tolerance vs the time-domain spec.**  FFT reassociates the sums,
  so the result differs from the per-offset dot product in the last
  few ulps (relative error ~1e-15).  The ``*_reference`` loop twins
  remain the executable specs; the equivalence suite pins the FFT path
  to them at 1e-12 — the one sanctioned deviation from the bit-for-bit
  pin, documented where it happens.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import next_fast_len


class FftCorrelator:
    """Valid-mode raw cross-correlation of capture rows vs a pattern.

    Matches ``np.correlate(row, pattern, mode="valid")`` semantics:
    output lag ``i`` is ``sum_k row[i + k] * conj(pattern[k])`` (the
    conjugate is a no-op for real patterns).  The pattern's spectrum is
    cached per padded FFT length, so repeated calls over same-length
    captures pay one pattern transform total.
    """

    def __init__(self, pattern: np.ndarray) -> None:
        pattern = np.asarray(pattern)
        if pattern.ndim != 1 or pattern.size == 0:
            raise ValueError(
                f"pattern must be a non-empty 1-D array, got shape "
                f"{pattern.shape}"
            )
        self._complex = bool(np.iscomplexobj(pattern))
        dtype = np.complex128 if self._complex else np.float64
        self._pattern = pattern.astype(dtype, copy=True)
        self._spectra: dict[int, np.ndarray] = {}

    @property
    def pattern_size(self) -> int:
        """Pattern length in elements."""
        return self._pattern.size

    def _spectrum(self, length: int) -> np.ndarray:
        spectrum = self._spectra.get(length)
        if spectrum is None:
            if self._complex:
                spectrum = np.conj(np.fft.fft(self._pattern, length))
            else:
                spectrum = np.conj(np.fft.rfft(self._pattern, length))
            self._spectra[length] = spectrum
        return spectrum

    def correlate_rows(self, rows: np.ndarray) -> np.ndarray:
        """Raw valid-mode correlation of every row, in one FFT program.

        ``rows`` is ``(n_rows, n)``; the output is ``(n_rows,
        n - pattern_size + 1)``.  Real inputs with a real pattern use
        the half-spectrum transform and return float64; anything
        complex returns complex128.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(
                f"rows must be 2-D (n_rows, n), got shape {rows.shape}"
            )
        psize = self._pattern.size
        n = rows.shape[1]
        n_out = n - psize + 1
        if n_out <= 0:
            dtype = (
                np.complex128
                if self._complex or np.iscomplexobj(rows)
                else np.float64
            )
            return np.zeros((rows.shape[0], 0), dtype=dtype)
        # Zero-padding past n + psize - 1 keeps the circular
        # correlation free of wraparound over the valid lags.
        length = next_fast_len(n + psize - 1, real=not self._complex)
        if self._complex or np.iscomplexobj(rows):
            spec = self._spectrum_complex(length)
            product = np.fft.fft(rows, length, axis=1) * spec
            return np.fft.ifft(product, length, axis=1)[:, :n_out]
        product = np.fft.rfft(rows, length, axis=1) * self._spectrum(length)
        return np.fft.irfft(product, length, axis=1)[:, :n_out]

    def _spectrum_complex(self, length: int) -> np.ndarray:
        """Full-spectrum pattern transform (complex rows or pattern)."""
        key = -length  # separate cache namespace from the rfft spectra
        spectrum = self._spectra.get(key)
        if spectrum is None:
            spectrum = np.conj(np.fft.fft(self._pattern, length))
            self._spectra[key] = spectrum
        return spectrum
