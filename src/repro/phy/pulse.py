"""Pulse shapes for the MSK (half-sine O-QPSK) waveform path.

802.15.4's 2450 MHz PHY is O-QPSK with half-sine pulse shaping, which
is mathematically MSK (paper §6, [22]).  Each chip rides a half-sine
pulse spanning two chip periods; even chips go to the I rail, odd chips
to the Q rail offset by one chip period.
"""

from __future__ import annotations

import numpy as np


def half_sine_pulse(sps: int) -> np.ndarray:
    """Half-sine pulse spanning two chip periods at ``sps`` samples/chip.

    Normalised to unit energy so matched-filter outputs are directly
    comparable across oversampling factors.
    """
    if sps < 1:
        raise ValueError(f"sps must be >= 1, got {sps}")
    length = 2 * sps
    t = (np.arange(length) + 0.5) / length
    pulse = np.sin(np.pi * t)
    return pulse / np.linalg.norm(pulse)


def rectangular_pulse(sps: int) -> np.ndarray:
    """Unit-energy rectangular chip pulse (one chip period).

    Used by tests as a degenerate shape to isolate pulse effects.
    """
    if sps < 1:
        raise ValueError(f"sps must be >= 1, got {sps}")
    pulse = np.ones(sps)
    return pulse / np.linalg.norm(pulse)
