"""Complex-baseband channel for the waveform path.

Supports the impairments the Fig. 13 experiment needs: additive white
Gaussian noise, per-transmission gain/delay/phase, carrier frequency
offset, and the superposition of multiple concurrent transmissions
(collisions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class TransmissionInstance:
    """One waveform placed on the medium.

    ``offset`` is in samples from the start of the capture window;
    ``gain`` is linear amplitude; ``cfo`` is carrier frequency offset in
    cycles/sample; ``phase`` is a fixed phase rotation in radians.
    """

    samples: np.ndarray
    offset: int
    gain: float = 1.0
    cfo: float = 0.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative, got {self.offset}")
        if self.gain <= 0:
            raise ValueError(f"gain must be positive, got {self.gain}")


def mix_transmissions(
    transmissions: list[TransmissionInstance],
    window_len: int | None = None,
) -> np.ndarray:
    """Superpose transmissions into one capture window (no noise)."""
    if window_len is None:
        if not transmissions:
            raise ValueError("need window_len when there are no transmissions")
        window_len = max(t.offset + t.samples.size for t in transmissions)
    out = np.zeros(window_len, dtype=np.complex128)
    for t in transmissions:
        wave = np.asarray(t.samples, dtype=np.complex128)
        if t.cfo or t.phase:
            n = np.arange(wave.size)
            wave = wave * np.exp(1j * (2 * np.pi * t.cfo * n + t.phase))
        end = min(t.offset + wave.size, window_len)
        if end > t.offset:
            out[t.offset : end] += t.gain * wave[: end - t.offset]
    return out


def add_awgn(
    samples: np.ndarray,
    noise_power: float,
    rng: RngLike = None,
) -> np.ndarray:
    """Add circular complex Gaussian noise of the given total power.

    ``noise_power`` is E[|n|^2]; each of the real/imag components gets
    half of it.
    """
    if noise_power < 0:
        raise ValueError(f"noise_power must be non-negative, got {noise_power}")
    samples = np.asarray(samples, dtype=np.complex128)
    if noise_power == 0:
        return samples.copy()
    gen = ensure_rng(rng)
    sigma = np.sqrt(noise_power / 2.0)
    noise = gen.normal(0.0, sigma, samples.size) + 1j * gen.normal(
        0.0, sigma, samples.size
    )
    return samples + noise


def awgn_collision_channel(
    transmissions: list[TransmissionInstance],
    noise_power: float,
    window_len: int | None = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Convenience: mix transmissions then add AWGN."""
    mixed = mix_transmissions(transmissions, window_len)
    return add_awgn(mixed, noise_power, rng)


def fractional_delay(samples: np.ndarray, delay: float) -> np.ndarray:
    """Apply a (possibly fractional) sample delay via linear interpolation.

    Used to exercise symbol-timing recovery: the receiver's sample grid
    then no longer lines up with chip boundaries.
    """
    if delay < 0:
        raise ValueError(f"delay must be non-negative, got {delay}")
    samples = np.asarray(samples, dtype=np.complex128)
    whole = int(np.floor(delay))
    frac = delay - whole
    out = np.concatenate([np.zeros(whole, dtype=np.complex128), samples])
    if not frac:
        return out
    shifted = np.empty(out.size + 1, dtype=np.complex128)
    shifted[0] = (1 - frac) * out[0]
    shifted[1:-1] = (1 - frac) * out[1:] + frac * out[:-1]
    shifted[-1] = frac * out[-1]
    return shifted
