"""SoftPHY decoders: hard-decision, soft-decision, and matched-filter hints.

Paper §3.1 lays out three sources of PHY hints.  All three are
implemented here behind one convention: **lower hint = higher
confidence** (see :mod:`repro.phy.symbols`).

* :class:`HardDecisionDecoder` — nearest-codeword decoding; the hint is
  the Hamming distance (the design the paper implements and evaluates).
* :class:`SoftDecisionDecoder` — Eq. 1 correlation over ±1 chip
  samples; the hint is the (negated, normalised) correlation margin.
* :class:`MatchedFilterHinter` — per-chip matched filter magnitudes
  aggregated per codeword, for uncoded PHYs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.codebook import Codebook
from repro.phy.symbols import SoftPacket, SyncSource


@dataclass(frozen=True)
class DecodeResult:
    """Raw output of a decoder: symbols plus lower-is-better hints."""

    symbols: np.ndarray
    hints: np.ndarray

    def to_soft_packet(self, **metadata) -> SoftPacket:
        """Wrap the result in a :class:`SoftPacket`."""
        return SoftPacket(
            symbols=self.symbols,
            hints=self.hints,
            **metadata,
        )


class HardDecisionDecoder:
    """Hamming-distance hard-decision decoding (paper §3.2).

    The demodulator slices each chip independently; this decoder maps
    each received 32-chip word to the nearest codeword and reports the
    Hamming distance as the hint.
    """

    def __init__(self, codebook: Codebook) -> None:
        self._codebook = codebook

    @property
    def codebook(self) -> Codebook:
        """The codebook decoded against."""
        return self._codebook

    def decode_words(self, received_words: np.ndarray) -> DecodeResult:
        """Decode packed uint32 chip words."""
        symbols, distances = self._codebook.decode_hard(received_words)
        return DecodeResult(symbols=symbols, hints=distances.astype(np.float64))

    def decode_chips(self, chips: np.ndarray) -> DecodeResult:
        """Decode a flat 0/1 chip array (length multiple of 32)."""
        chips = np.asarray(chips, dtype=np.uint8)
        width = self._codebook.chips_per_symbol
        if chips.size % width != 0:
            raise ValueError(
                f"chip count {chips.size} is not a multiple of {width}"
            )
        from repro.utils.bitops import pack_bits_to_uint32

        words = pack_bits_to_uint32(chips.reshape(-1, width))
        return self.decode_words(words)


class SoftDecisionDecoder:
    """Correlation-metric soft-decision decoding (paper §3.1, Eq. 1).

    Consumes per-chip *samples* (matched-filter outputs, roughly ±1
    plus noise) rather than sliced chips.  The decoded symbol maximises
    ``C(R, C_i) = sum_j (2 c_ij - 1) r_ij``.

    The hint must be lower-is-better, so we report the *normalised
    negative margin*: with ±1 samples the margin ranges in ``[0, 2B]``
    and ``(2B - margin) / 4`` maps it to ``[0, B/2]`` — 0 when the
    winner is maximally separated, ``B/2`` when the decision was a
    dead tie.  (Noisy samples can push the margin past ``2B`` and the
    hint slightly negative; only the ordering matters upstream.)
    """

    def __init__(self, codebook: Codebook) -> None:
        self._codebook = codebook

    @property
    def codebook(self) -> Codebook:
        """The codebook decoded against."""
        return self._codebook

    def decode_samples(self, chip_samples: np.ndarray) -> DecodeResult:
        """Decode ``(n, chips_per_symbol)`` soft chip samples."""
        chip_samples = np.asarray(chip_samples, dtype=np.float64)
        signs = self._codebook.sign_matrix
        corr = chip_samples @ signs.T
        # Only the top-2 correlations matter (winner + margin), so an
        # O(n_codewords) partition beats the old full argsort on this
        # per-reception hot path.
        top2 = np.argpartition(corr, -2, axis=1)[:, -2:]
        vals = np.take_along_axis(corr, top2, axis=1)
        first_larger = (vals[:, 0] > vals[:, 1]) | (
            (vals[:, 0] == vals[:, 1]) & (top2[:, 0] < top2[:, 1])
        )
        best_idx = np.where(first_larger, top2[:, 0], top2[:, 1])
        margin = np.abs(vals[:, 0] - vals[:, 1])
        # Map the margin (in [0, 2B] for ±1 samples) to a
        # lower-is-better hint in [0, B/2] comparable in spirit to a
        # Hamming distance.
        hints = (2.0 * self._codebook.chips_per_symbol - margin) / 4.0
        return DecodeResult(symbols=best_idx.astype(np.int64), hints=hints)


class MatchedFilterHinter:
    """Matched-filter magnitude hints for uncoded PHYs (paper §3.1).

    For a PHY without channel coding, the demodulator's matched-filter
    output magnitude is itself the confidence.  Given per-chip filter
    outputs, this aggregates mean |magnitude| per codeword and converts
    to a lower-is-better hint by negating against the nominal amplitude.
    """

    def __init__(self, nominal_amplitude: float = 1.0, group: int = 32) -> None:
        if nominal_amplitude <= 0:
            raise ValueError(
                f"nominal_amplitude must be positive, got {nominal_amplitude}"
            )
        if group <= 0:
            raise ValueError(f"group must be positive, got {group}")
        self._nominal = float(nominal_amplitude)
        self._group = int(group)

    def hints_from_samples(self, samples: np.ndarray) -> np.ndarray:
        """Aggregate per-chip magnitudes into per-codeword hints.

        ``samples`` is a flat array of matched-filter outputs; length
        must be a multiple of the group size.  Output hint is
        ``max(0, nominal - mean|sample|)`` per group: 0 when chips come
        through at full amplitude, growing as the signal weakens.
        """
        samples = np.asarray(samples, dtype=np.float64)
        if samples.size % self._group != 0:
            raise ValueError(
                f"sample count {samples.size} is not a multiple of "
                f"{self._group}"
            )
        mags = np.abs(samples).reshape(-1, self._group).mean(axis=1)
        return np.maximum(0.0, self._nominal - mags)


def decode_to_packet(
    decoder: HardDecisionDecoder,
    received_words: np.ndarray,
    truth_symbols: np.ndarray | None = None,
    sync_source: SyncSource = SyncSource.PREAMBLE,
    **metadata,
) -> SoftPacket:
    """Convenience: decode words and attach ground truth for analysis."""
    result = decoder.decode_words(received_words)
    return SoftPacket(
        symbols=result.symbols,
        hints=result.hints,
        truth=truth_symbols,
        sync_source=sync_source,
        **metadata,
    )
