"""Frame re-synthesis for successive interference cancellation.

The SIC pipeline (:mod:`repro.recovery.sic`) decodes the stronger
frame of a collision, rebuilds its transmitted waveform from the
decoded symbols, scales it by the estimated complex channel gain, and
subtracts it from the capture so the weaker frame can be decoded from
the residual.  This module holds the three sample-domain pieces:

* :func:`remodulate_frame` — decoded symbols back to a complex
  baseband waveform (spread through the codebook, MSK-modulated,
  scaled by an estimated gain and carrier phase), with its per-chip
  loop twin :func:`remodulate_frame_reference` pinned bit-for-bit;
* :func:`estimate_complex_scale` — the least-squares complex gain of
  a unit reconstruction against the capture segment it overlaps;
* :func:`subtract_frame` — clipped subtraction of a reconstruction
  placed at a sample offset (possibly hanging off either capture
  edge).
"""

from __future__ import annotations

import numpy as np

from repro.phy.codebook import Codebook
from repro.phy.modulation import MskModulator


def _frame_scale(gain: float, phase: float) -> complex:
    """Shared complex scale so the kernel twins multiply identically."""
    return complex(gain) * complex(np.exp(1j * float(phase)))


def remodulate_frame(
    symbols: np.ndarray,
    codebook: Codebook,
    sps: int = 4,
    gain: float = 1.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Re-synthesise a frame's waveform from decoded symbols.

    Spreads ``symbols`` through ``codebook``, MSK-modulates the chips
    (vectorized rail-split program), and scales by ``gain`` at carrier
    ``phase`` — the transmitter inverted, as the canceller needs it.
    Bit-identical to :func:`remodulate_frame_reference`.
    """
    chips = codebook.encode(np.asarray(symbols, dtype=np.int64))
    wave = MskModulator(sps=sps).modulate_chips(chips)
    return _frame_scale(gain, phase) * wave


def remodulate_frame_reference(
    symbols: np.ndarray,
    codebook: Codebook,
    sps: int = 4,
    gain: float = 1.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Per-chip loop implementation, kept as the executable spec for
    :func:`remodulate_frame` (the equivalence suite pins the two
    bit-for-bit)."""
    chips = codebook.encode(np.asarray(symbols, dtype=np.int64))
    wave = MskModulator(sps=sps).modulate_chips_reference(chips)
    return _frame_scale(gain, phase) * wave


def estimate_complex_scale(
    capture: np.ndarray, frame: np.ndarray, offset: int
) -> complex:
    """Least-squares complex gain of ``frame`` within ``capture``.

    Returns the scale ``s`` minimising ``|capture_seg - s * frame_seg|``
    over the samples where the frame (placed with its first sample at
    ``offset``) overlaps the capture — amplitude *and* residual carrier
    phase in one estimate.  Returns ``0j`` when the overlap is empty or
    the frame segment carries no energy (nothing to cancel).
    """
    capture = np.asarray(capture, dtype=np.complex128)
    frame = np.asarray(frame, dtype=np.complex128)
    start = max(0, offset)
    stop = min(capture.size, offset + frame.size)
    if stop <= start:
        return 0j
    seg_c = capture[start:stop]
    seg_f = frame[start - offset : stop - offset]
    denom = np.vdot(seg_f, seg_f).real
    if not denom > 0:
        return 0j
    return complex(np.vdot(seg_f, seg_c) / denom)


def subtract_frame(
    capture: np.ndarray, frame: np.ndarray, offset: int
) -> np.ndarray:
    """Capture minus a reconstruction placed at ``offset``.

    The frame's first sample lands at capture sample ``offset``
    (negative offsets and overhang past the capture end are clipped).
    Returns a new array; the capture is never mutated.
    """
    capture = np.asarray(capture, dtype=np.complex128)
    frame = np.asarray(frame, dtype=np.complex128)
    residual = capture.copy()
    start = max(0, offset)
    stop = min(capture.size, offset + frame.size)
    if stop > start:
        residual[start:stop] -= frame[start - offset : stop - offset]
    return residual
