"""Waveform receiver front end: sync detection plus chip extraction.

Ties the waveform path together for the link layer: detect preamble or
postamble waveforms in a capture window (with phase estimation from the
correlation peak), then extract matched-filter soft chips anywhere in
the frame relative to the detected anchor — including *backwards*, which
is what postamble rollback means at waveform level.

All frame fields in this library are whole codewords (32 chips), so
chip offsets relative to an anchor are always even and the O-QPSK I/Q
rail parity is preserved.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.phy.codebook import Codebook
from repro.phy.demodulation import MskDemodulator
from repro.phy.fftcorr import FftCorrelator
from repro.phy.modulation import MskModulator
from repro.phy.sync import peak_offsets, sync_field_symbols
from repro.utils.bitops import pack_bits_to_uint32


@dataclass(frozen=True)
class SyncDetection:
    """A detected sync field in a capture window.

    ``sample_offset`` is where the field's first chip pulse starts;
    ``phase`` is the carrier phase estimated from the correlation peak
    (radians); ``score`` is the normalised correlation in [0, 1].
    """

    kind: str
    sample_offset: int
    phase: float
    score: float


@dataclass(frozen=True)
class ChipExtractRequest:
    """One soft-chip extraction from a batch of captures.

    ``capture`` indexes the capture list handed to
    :meth:`ReceiverFrontend.extract_batch`; the remaining fields mirror
    :meth:`ReceiverFrontend.soft_chips_at` (``chip_offset`` may be
    negative for postamble rollback, and must be even to preserve the
    O-QPSK rail parity).
    """

    capture: int
    anchor_sample: int
    chip_offset: int
    n_chips: int
    phase: float = 0.0


class ReceiverFrontend:
    """Detect sync fields and extract soft chips from a capture.

    Parameters
    ----------
    codebook:
        The DSSS codebook (defines sync chip patterns and decoding).
    sps:
        Samples per chip; must match the transmitter's modulator.
    threshold:
        Normalised-correlation detection threshold for both sync kinds.
    """

    def __init__(
        self,
        codebook: Codebook,
        sps: int = 4,
        threshold: float = 0.70,
    ) -> None:
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._codebook = codebook
        self._sps = int(sps)
        self._threshold = float(threshold)
        self._demod = MskDemodulator(sps)
        modulator = MskModulator(sps=sps)
        self._refs = {}
        self._correlators = {}
        for kind in ("preamble", "postamble"):
            symbols = sync_field_symbols(kind)
            self._refs[kind] = modulator.modulate_symbols(symbols, codebook)
            self._correlators[kind] = FftCorrelator(self._refs[kind])

    @property
    def codebook(self) -> Codebook:
        """The codebook used for decoding."""
        return self._codebook

    @property
    def sps(self) -> int:
        """Samples per chip."""
        return self._sps

    def sync_pattern_chips(self, kind: str) -> int:
        """Length of a sync field in chips (including the delimiter)."""
        return sync_field_symbols(kind).size * self._codebook.chips_per_symbol

    # -- detection -----------------------------------------------------------

    def correlation(self, samples: np.ndarray, kind: str) -> np.ndarray:
        """Normalised sync correlation magnitude at every sample offset."""
        samples = np.asarray(samples, dtype=np.complex128)
        return self.correlation_batch(samples[None, :], kind)[0]

    def correlation_batch(
        self, samples: np.ndarray, kind: str
    ) -> np.ndarray:
        """Row-wise sync correlation over equal-length captures:
        ``(n_captures, n_samples)`` in, ``(n_captures, n_offsets)``
        out.

        The raw correlation is one FFT product over the whole batch
        (:class:`~repro.phy.fftcorr.FftCorrelator`) instead of one
        ``np.correlate`` per capture — the pattern here is 1280
        samples at 4 samples/chip, where the FFT path is ~8x faster.
        Each row is bit-identical to :meth:`correlation` on that
        capture alone (pocketfft transforms rows independently); the
        time-domain loop spec :meth:`correlation_reference` is pinned
        at 1e-12 rather than bit-for-bit, the FFT reassociation being
        the one sanctioned deviation."""
        ref = self._refs[kind]
        samples = np.asarray(samples, dtype=np.complex128)
        if samples.ndim != 2:
            raise ValueError(
                f"samples must be 2-D (n_captures, n_samples), got "
                f"shape {samples.shape}"
            )
        if samples.shape[1] < ref.size:
            return np.zeros((samples.shape[0], 0), dtype=np.float64)
        raw = self._correlators[kind].correlate_rows(samples)
        energy = np.concatenate(
            [
                np.zeros((samples.shape[0], 1)),
                np.cumsum(np.abs(samples) ** 2, axis=1),
            ],
            axis=1,
        )
        win = energy[:, ref.size :] - energy[:, : -ref.size]
        denom = np.sqrt(win) * np.linalg.norm(ref)
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 0, np.abs(raw) / denom, 0.0)
        return corr

    def correlation_reference(
        self, samples: np.ndarray, kind: str
    ) -> np.ndarray:
        """Per-offset loop implementation, kept as the executable spec
        for :meth:`correlation` / :meth:`correlation_batch`: a scalar
        running energy sum and one conjugate dot product per
        alignment.  The FFT fast path reassociates these sums, so the
        equivalence suite pins the pair at 1e-12 (batch-vs-single
        consistency of the fast path itself stays bit-for-bit)."""
        ref = self._refs[kind]
        ref_conj = np.conj(ref)
        ref_norm = float(np.linalg.norm(ref))
        samples = np.asarray(samples, dtype=np.complex128)
        m = ref.size
        n = samples.size
        if n < m:
            return np.zeros(0, dtype=np.float64)
        energy = np.empty(n + 1, dtype=np.float64)
        energy[0] = 0.0
        acc = 0.0
        for i in range(n):
            acc += abs(samples[i]) ** 2
            energy[i + 1] = acc
        out = np.empty(n - m + 1, dtype=np.float64)
        for i in range(out.size):
            raw = np.dot(samples[i : i + m], ref_conj)
            denom = np.sqrt(energy[i + m] - energy[i]) * ref_norm
            out[i] = abs(raw) / denom if denom > 0 else 0.0
        return out

    def _emit_detections(
        self, samples: np.ndarray, corr: np.ndarray, kind: str
    ) -> list[SyncDetection]:
        """Peak-pick a correlation trace and estimate each peak's phase."""
        ref = self._refs[kind]
        detections = []
        for peak in peak_offsets(corr, self._threshold, ref.size):
            window = samples[peak : peak + ref.size]
            raw = np.dot(window, np.conj(ref))
            detections.append(
                SyncDetection(
                    kind=kind,
                    sample_offset=peak,
                    phase=float(np.angle(raw)),
                    score=float(corr[peak]),
                )
            )
        return detections

    def detect(self, samples: np.ndarray, kind: str) -> list[SyncDetection]:
        """All detections of ``kind`` in the capture, by correlation peak."""
        samples = np.asarray(samples, dtype=np.complex128)
        corr = self.correlation(samples, kind)
        return self._emit_detections(samples, corr, kind)

    def detect_batch(
        self, captures: Sequence[np.ndarray], kind: str
    ) -> list[list[SyncDetection]]:
        """Detect ``kind`` in many capture windows in one pass.

        Captures may be ragged; equal-length captures are stacked and
        correlated row-wise (one fused normalisation), so the per-
        capture results are bit-identical to :meth:`detect`.
        """
        captures = [
            np.asarray(c, dtype=np.complex128) for c in captures
        ]
        results: list[list[SyncDetection]] = [[] for _ in captures]
        by_length: dict[int, list[int]] = defaultdict(list)
        for i, capture in enumerate(captures):
            by_length[capture.size].append(i)
        for indices in by_length.values():
            stacked = np.stack([captures[i] for i in indices])
            corr = self.correlation_batch(stacked, kind)
            for i, row in zip(indices, corr, strict=True):
                results[i] = self._emit_detections(captures[i], row, kind)
        return results

    # -- extraction ----------------------------------------------------------

    def soft_chips_at(
        self,
        samples: np.ndarray,
        anchor_sample: int,
        chip_offset: int,
        n_chips: int,
        phase: float = 0.0,
    ) -> np.ndarray:
        """Matched-filter soft chips starting ``chip_offset`` chips from
        the anchor (negative offsets roll back in time).

        ``chip_offset`` must be even so the I/Q rail parity matches the
        transmitter.  The capture is derotated by ``phase`` first.
        """
        samples, start = self._rotated_extract(
            samples, anchor_sample, chip_offset, phase
        )
        return self._demod.demodulate_soft(samples, start, n_chips)

    def _rotated_extract(
        self,
        samples: np.ndarray,
        anchor_sample: int,
        chip_offset: int,
        phase: float,
    ) -> tuple[np.ndarray, int]:
        """Validate an extraction and derotate its capture."""
        if chip_offset % 2 != 0:
            raise ValueError(
                f"chip_offset must be even to preserve O-QPSK rail "
                f"parity, got {chip_offset}"
            )
        start = anchor_sample + chip_offset * self._sps
        if start < 0:
            raise ValueError(
                f"requested chips before the capture start (sample {start})"
            )
        samples = np.asarray(samples, dtype=np.complex128)
        if phase:
            samples = samples * np.exp(-1j * phase)
        return samples, start

    def extract_batch(
        self,
        captures: Sequence[np.ndarray],
        requests: Sequence[ChipExtractRequest],
    ) -> list[np.ndarray]:
        """Soft chips for many extraction requests in one fused
        matched-filter pass.

        All requests' chip windows are reduced against the pulse in a
        single call (:meth:`MskDemodulator.demodulate_soft_batch`), so
        each result is bit-identical to :meth:`soft_chips_at` with the
        same arguments.
        """
        captures = [
            np.asarray(c, dtype=np.complex128) for c in captures
        ]
        prepared = []
        for request in requests:
            samples, start = self._rotated_extract(
                captures[request.capture],
                request.anchor_sample,
                request.chip_offset,
                request.phase,
            )
            prepared.append((samples, start, request.n_chips))
        return self._demod.demodulate_soft_batch(prepared)

    def decode_symbols_at(
        self,
        samples: np.ndarray,
        anchor_sample: int,
        symbol_offset: int,
        n_symbols: int,
        phase: float = 0.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Hard-decode ``n_symbols`` codewords relative to the anchor.

        ``symbol_offset`` is in whole codewords (may be negative for
        rollback).  Returns ``(symbols, hamming_hints)``.
        """
        width = self._codebook.chips_per_symbol
        soft = self.soft_chips_at(
            samples,
            anchor_sample,
            symbol_offset * width,
            n_symbols * width,
            phase,
        )
        hard = (soft > 0).astype(np.uint8).reshape(n_symbols, width)
        words = pack_bits_to_uint32(hard)
        symbols, dists = self._codebook.decode_hard(words)
        return symbols, dists.astype(np.float64)
