"""DSSS codebooks: the symbol -> chip-sequence mapping.

The paper's senders are CC2420 radios: 802.15.4 DSSS at 2 Mchip/s with
``B = 32`` chip codewords, each encoding ``b = 4`` data bits (16
codewords).  The Hamming distance between a received 32-chip word and
the nearest codeword is PPR's SoftPHY hint (paper §3.2), so the
codebook is the heart of the hint machinery.

:class:`ZigbeeCodebook` reproduces the IEEE 802.15.4 2450 MHz chip
sequences: symbols 1..7 are 4-chip cyclic rotations of the symbol-0
sequence, and symbols 8..15 invert the odd-indexed (Q-phase) chips.
:class:`RandomCodebook` generates codebooks with other (b, B) geometries
for ablations over spreading factors.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitops import pack_bits_to_uint32, popcount32, unpack_uint32_to_bits
from repro.utils.rng import RngLike, ensure_rng

# IEEE 802.15.4-2006 Table 24 (2450 MHz O-QPSK PHY), chip sequence for
# data symbol 0, chips c0..c31.
_ZIGBEE_BASE_CHIPS = np.array(
    [1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
     0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0],
    dtype=np.uint8,
)


class Codebook:
    """A symbol -> chip-word mapping with vectorised nearest decoding.

    Parameters
    ----------
    codewords:
        ``(n_symbols, chips_per_symbol)`` array of 0/1 chips.  The
        number of symbols must be a power of two so that each symbol
        encodes an integer number of bits.
    """

    def __init__(self, codewords: np.ndarray) -> None:
        codewords = np.asarray(codewords, dtype=np.uint8)
        if codewords.ndim != 2:
            raise ValueError(f"codewords must be 2-D, got {codewords.ndim}-D")
        n, width = codewords.shape
        if n < 2 or (n & (n - 1)) != 0:
            raise ValueError(
                f"number of codewords must be a power of two >= 2, got {n}"
            )
        if width != 32:
            raise ValueError(
                "this implementation packs chip words into uint32; "
                f"chips_per_symbol must be 32, got {width}"
            )
        if len({tuple(row) for row in codewords.tolist()}) != n:
            raise ValueError("codewords must be distinct")
        self._chips = codewords
        self._words = pack_bits_to_uint32(codewords)
        self._bits_per_symbol = int(np.log2(n))
        # ±1 chip patterns for soft-decision correlation (Eq. 1).
        self._signs = codewords.astype(np.float64) * 2.0 - 1.0

    # -- geometry ----------------------------------------------------------

    @property
    def n_symbols(self) -> int:
        """Number of codewords (2**bits_per_symbol)."""
        return self._chips.shape[0]

    @property
    def chips_per_symbol(self) -> int:
        """Chips per codeword (the paper's B)."""
        return self._chips.shape[1]

    @property
    def bits_per_symbol(self) -> int:
        """Data bits per codeword (the paper's b)."""
        return self._bits_per_symbol

    @property
    def chip_matrix(self) -> np.ndarray:
        """Copy of the (n_symbols, chips_per_symbol) chip matrix."""
        return self._chips.copy()

    @property
    def chip_words(self) -> np.ndarray:
        """Codewords packed as uint32, chip 0 in the MSB."""
        return self._words.copy()

    @property
    def sign_matrix(self) -> np.ndarray:
        """Codewords as ±1 floats, for correlation decoding."""
        return self._signs.copy()

    # -- encode / decode ---------------------------------------------------

    def encode(self, symbols: np.ndarray) -> np.ndarray:
        """Map symbol indices to a flat chip array.

        Returns a 1-D uint8 array of length
        ``len(symbols) * chips_per_symbol``.
        """
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.size and (symbols.min() < 0 or symbols.max() >= self.n_symbols):
            raise ValueError(
                f"symbol indices must be in [0, {self.n_symbols}), "
                f"got range [{symbols.min()}, {symbols.max()}]"
            )
        return self._chips[symbols].reshape(-1)

    def encode_words(self, symbols: np.ndarray) -> np.ndarray:
        """Map symbol indices to packed uint32 chip words."""
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.size and (symbols.min() < 0 or symbols.max() >= self.n_symbols):
            raise ValueError(
                f"symbol indices must be in [0, {self.n_symbols})"
            )
        return self._words[symbols]

    def decode_hard(
        self, received_words: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-codeword decode of packed uint32 chip words.

        Returns ``(symbols, distances)`` where ``distances[i]`` is the
        Hamming distance from received word *i* to the codeword it was
        decoded to — exactly the SoftPHY hint of paper §3.2.

        Ties resolve to the lowest symbol index, which matches a
        deterministic hardware correlator bank.
        """
        received_words = np.asarray(received_words, dtype=np.uint32)
        # (n_received, n_symbols) distance matrix via XOR + popcount.
        xor = received_words[:, None] ^ self._words[None, :]
        dist = popcount32(xor)
        symbols = dist.argmin(axis=1)
        distances = dist[np.arange(dist.shape[0]), symbols]
        return symbols.astype(np.int64), distances.astype(np.int64)

    def decode_soft(
        self, chip_samples: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Soft-decision decode of ±1-ish chip samples (paper Eq. 1).

        ``chip_samples`` has shape ``(n_received, chips_per_symbol)``.
        Returns ``(symbols, correlations)`` where ``correlations[i]`` is
        the winning correlation metric ``C(R, C_i)`` — larger means more
        confident.
        """
        chip_samples = np.asarray(chip_samples, dtype=np.float64)
        if chip_samples.ndim != 2 or chip_samples.shape[1] != self.chips_per_symbol:
            raise ValueError(
                f"expected shape (n, {self.chips_per_symbol}), "
                f"got {chip_samples.shape}"
            )
        corr = chip_samples @ self._signs.T
        symbols = corr.argmax(axis=1)
        best = corr[np.arange(corr.shape[0]), symbols]
        return symbols.astype(np.int64), best

    # -- distance structure ------------------------------------------------

    def pairwise_distances(self) -> np.ndarray:
        """(n, n) matrix of Hamming distances between codewords."""
        xor = self._words[:, None] ^ self._words[None, :]
        return popcount32(xor)

    def min_distance(self) -> int:
        """Minimum Hamming distance between distinct codewords."""
        d = self.pairwise_distances()
        n = d.shape[0]
        return int(d[~np.eye(n, dtype=bool)].min())

    def words_to_chips(self, words: np.ndarray) -> np.ndarray:
        """Unpack uint32 chip words into an (n, chips_per_symbol) array."""
        return unpack_uint32_to_bits(words)


class ZigbeeCodebook(Codebook):
    """The IEEE 802.15.4 2450 MHz codebook: 16 codewords of 32 chips.

    Symbol *k* for k in 1..7 is the symbol-0 sequence cyclically rotated
    right by 4k chips; symbols 8..15 are symbols 0..7 with the
    odd-indexed chips inverted (Q-phase conjugation).
    """

    def __init__(self) -> None:
        rows = []
        for k in range(8):
            rows.append(np.roll(_ZIGBEE_BASE_CHIPS, 4 * k))
        odd_mask = np.zeros(32, dtype=np.uint8)
        odd_mask[1::2] = 1
        for k in range(8):
            rows.append(rows[k] ^ odd_mask)
        super().__init__(np.stack(rows))


class RandomCodebook(Codebook):
    """A random codebook with the Zigbee geometry but fresh sequences.

    Useful for ablating how much of PPR's hint quality comes from the
    specific 802.15.4 sequences versus the 4->32 spreading ratio.
    Generation rejects candidate codeword sets whose minimum distance
    falls below ``min_distance`` (default 10), retrying up to
    ``max_tries`` times.
    """

    def __init__(
        self,
        n_symbols: int = 16,
        rng: RngLike = 0,
        min_distance: int = 10,
        max_tries: int = 200,
    ) -> None:
        gen = ensure_rng(rng)
        for _ in range(max_tries):
            chips = gen.integers(0, 2, size=(n_symbols, 32), dtype=np.uint8)
            try:
                candidate = Codebook(chips)
            except ValueError:
                continue
            if candidate.min_distance() >= min_distance:
                super().__init__(chips)
                return
        raise RuntimeError(
            f"could not generate a codebook with min distance "
            f">= {min_distance} in {max_tries} tries"
        )
