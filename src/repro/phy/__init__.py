"""Physical layer: DSSS codebooks, modulation, channels, and decoding.

Two fidelity levels share one decoding core:

* **Chip level** (``chipchannel``) — chips cross a binary symmetric
  channel whose flip probability follows the per-symbol SINR.  This is
  what the network-scale experiments use; despreading gain and SoftPHY
  Hamming hints emerge from real nearest-codeword decoding.
* **Waveform level** (``modulation``/``channelsim``/``demodulation``) —
  a complex-baseband MSK (half-sine O-QPSK) modem with matched
  filtering, timing recovery and preamble/postamble synchronisation,
  used by the collision-anatomy experiment (paper Fig. 13) and the PHY
  test suite.
"""

from repro.phy.batch import (
    BatchReceptionEngine,
    CollisionPairReception,
    FrameReception,
    WaveformBatchEngine,
    WaveformDecodeRequest,
    decode_samples_batch,
    decode_words_batch,
)
from repro.phy.codebook import Codebook, RandomCodebook, ZigbeeCodebook
from repro.phy.decoder import (
    HardDecisionDecoder,
    MatchedFilterHinter,
    SoftDecisionDecoder,
)
from repro.phy.chipchannel import (
    chip_error_probability,
    transmit_chipwords,
    transmit_chipwords_batch,
)
from repro.phy.spreading import (
    bits_to_symbols,
    bytes_to_symbols,
    symbols_to_bits,
    symbols_to_bytes,
)
from repro.phy.symbols import SoftPacket, SoftSymbol
from repro.phy.modulation import MskModulator
from repro.phy.demodulation import MskDemodulator
from repro.phy.sync import (
    PREAMBLE_SYMBOLS,
    POSTAMBLE_SYMBOLS,
    SFD_SYMBOLS,
    CorrelationSynchronizer,
    RollbackBuffer,
)
from repro.phy.frontend import ChipExtractRequest, ReceiverFrontend
from repro.phy.remodulate import (
    estimate_complex_scale,
    remodulate_frame,
    remodulate_frame_reference,
    subtract_frame,
)
from repro.phy.convolutional import (
    ConvolutionalCode,
    SovaDecoder,
    SovaResult,
)

__all__ = [
    "BatchReceptionEngine",
    "CollisionPairReception",
    "FrameReception",
    "WaveformBatchEngine",
    "WaveformDecodeRequest",
    "ChipExtractRequest",
    "decode_samples_batch",
    "decode_words_batch",
    "ConvolutionalCode",
    "SovaDecoder",
    "SovaResult",
    "Codebook",
    "RandomCodebook",
    "ZigbeeCodebook",
    "HardDecisionDecoder",
    "SoftDecisionDecoder",
    "MatchedFilterHinter",
    "chip_error_probability",
    "transmit_chipwords",
    "transmit_chipwords_batch",
    "bits_to_symbols",
    "bytes_to_symbols",
    "symbols_to_bits",
    "symbols_to_bytes",
    "SoftPacket",
    "SoftSymbol",
    "MskModulator",
    "MskDemodulator",
    "PREAMBLE_SYMBOLS",
    "POSTAMBLE_SYMBOLS",
    "SFD_SYMBOLS",
    "CorrelationSynchronizer",
    "RollbackBuffer",
    "ReceiverFrontend",
    "estimate_complex_scale",
    "remodulate_frame",
    "remodulate_frame_reference",
    "subtract_frame",
]
