"""Convolutional coding with soft-output Viterbi decoding.

Paper §3.1 names a third SoftPHY hint source: *"a particularly
interesting instance of a confidence metric when convolutional decoding
is used ... is to use the output of the Viterbi decoder"* — the
soft-output Viterbi algorithm (SOVA) of Hagenauer & Hoeher, whose
reliability for each bit is how decisively the surviving trellis path
beat the competitors that disagree on that bit.

This module provides a rate-1/2 feed-forward convolutional code (the
classic (7, 5) octal generator pair by default) and a Viterbi decoder
that emits per-bit reliabilities via the standard simplified SOVA
update: each decoded bit's reliability is the minimum path-metric
margin among the merges, within an update window, whose competitor
path disagrees on that bit.

Hints follow the library convention (lower = more confident):
``hint = -reliability``, so a decisively-decoded bit gets a large
negative hint and a coin-flip decision gets a hint near 0.  Only the
monotone ordering matters to higher layers (paper §3.3).

Two implementations share the decoder:

* :meth:`SovaDecoder.decode` — the production path.  The per-state
  add-compare-select runs as numpy array ops over all trellis states
  (and, via :meth:`SovaDecoder.decode_batch`, over many packets) at
  once; only the unavoidable time recursion stays a Python loop.
* :meth:`SovaDecoder.decode_reference` — the original pure-Python
  trellis walk, retained as the executable specification that the
  equivalence suite pins the vectorized path against bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


def _poly_taps(poly: int, constraint: int) -> np.ndarray:
    """Binary tap vector (current bit first) for an octal generator."""
    return np.array(
        [(poly >> (constraint - 1 - i)) & 1 for i in range(constraint)],
        dtype=np.int64,
    )


@dataclass(frozen=True)
class ConvolutionalCode:
    """A rate-1/n feed-forward convolutional code.

    Parameters
    ----------
    generators:
        Generator polynomials in octal-style integers; the default
        (0o7, 0o5) is the ubiquitous constraint-length-3 pair.
    constraint:
        Constraint length K (memory = K - 1).
    """

    generators: tuple[int, ...] = (0o7, 0o5)
    constraint: int = 3

    def __post_init__(self) -> None:
        if self.constraint < 2:
            raise ValueError(
                f"constraint length must be >= 2, got {self.constraint}"
            )
        if len(self.generators) < 2:
            raise ValueError("need at least two generator polynomials")
        limit = 1 << self.constraint
        if any(not 0 < g < limit for g in self.generators):
            raise ValueError(
                f"generators must fit in {self.constraint} bits"
            )

    @property
    def rate_inverse(self) -> int:
        """Output bits per input bit (n of rate 1/n)."""
        return len(self.generators)

    @property
    def n_states(self) -> int:
        """Trellis states (2^(K-1))."""
        return 1 << (self.constraint - 1)

    def encode(self, bits: np.ndarray, terminate: bool = True) -> np.ndarray:
        """Encode a bit array; optionally append K-1 flush zeros.

        Termination drives the encoder back to state 0 so the decoder
        can anchor both ends of the trellis.
        """
        bits = np.asarray(bits, dtype=np.int64)
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError("input must be a 0/1 bit array")
        if terminate:
            bits = np.concatenate(
                [bits, np.zeros(self.constraint - 1, dtype=np.int64)]
            )
        taps = [_poly_taps(g, self.constraint) for g in self.generators]
        state = np.zeros(self.constraint - 1, dtype=np.int64)
        out = np.empty(bits.size * self.rate_inverse, dtype=np.uint8)
        pos = 0
        for b in bits:
            window = np.concatenate([[b], state])
            for tap in taps:
                out[pos] = int(window @ tap) & 1
                pos += 1
            state = window[:-1]
        return out

    def transitions(self) -> tuple[np.ndarray, np.ndarray]:
        """(next_state, output_bits) tables indexed by [state, input].

        Built as one array program over all (state, input) pairs: the
        encoder window is ``[input] + state_bits`` MSB-first, so the
        successor state is ``input << (K-2) | state >> 1`` and the
        output bits are the window's dot products with the generator
        taps mod 2.
        """
        taps = np.array(
            [_poly_taps(g, self.constraint) for g in self.generators],
            dtype=np.int64,
        )
        n_states = self.n_states
        memory = self.constraint - 1
        states = np.arange(n_states, dtype=np.int64)
        bits = np.arange(2, dtype=np.int64)
        shifts = memory - 1 - np.arange(memory, dtype=np.int64)
        state_bits = (states[:, None] >> shifts) & 1
        windows = np.concatenate(
            [
                np.broadcast_to(bits[None, :, None], (n_states, 2, 1)),
                np.broadcast_to(
                    state_bits[:, None, :], (n_states, 2, memory)
                ),
            ],
            axis=2,
        )
        outputs = (windows @ taps.T) & 1
        next_state = (bits[None, :] << (memory - 1)) | (states[:, None] >> 1)
        return next_state, outputs


@dataclass(frozen=True)
class SovaResult:
    """Decoded bits and their SOVA hints (lower = more confident)."""

    bits: np.ndarray
    hints: np.ndarray


class SovaDecoder:
    """Viterbi decoding with simplified SOVA reliabilities.

    Consumes *LLR-like* soft inputs: one float per coded bit, positive
    meaning "this coded bit is probably 0" (sign convention matches
    ``1 - 2*bit`` antipodal mapping).  Hard received bits can be mapped
    through :meth:`llrs_from_hard`.
    """

    def __init__(
        self,
        code: ConvolutionalCode | None = None,
        update_window: int | None = None,
    ) -> None:
        self._code = code or ConvolutionalCode()
        self._window = (
            update_window
            if update_window is not None
            else 5 * self._code.constraint
        )
        if self._window < 1:
            raise ValueError(
                f"update_window must be >= 1, got {self._window}"
            )
        self._next_state, self._outputs = self._code.transitions()
        self._pred_state, self._pred_bit = self._predecessor_tables()
        # Antipodal branch outputs gathered per (destination, slot):
        # row s of the flat (n_states * 2, n) matrix is the output of
        # the transition entering via flat predecessor index s.
        antipodal = 1.0 - 2.0 * self._outputs  # (state, input, n)
        self._antipodal_flat = antipodal.reshape(-1, antipodal.shape[-1])
        self._pred_flat = self._pred_state * 2 + self._pred_bit

    @property
    def code(self) -> ConvolutionalCode:
        """The convolutional code being decoded."""
        return self._code

    @staticmethod
    def llrs_from_hard(
        bits: np.ndarray, confidence: float = 2.0
    ) -> np.ndarray:
        """Map hard bits to fixed-magnitude LLRs."""
        bits = np.asarray(bits, dtype=np.int64)
        return confidence * (1.0 - 2.0 * bits)

    def _predecessor_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-state predecessor tables for the vectorized forward pass.

        Every state of a feed-forward shift register has exactly two
        predecessors; slots are ordered by ascending predecessor state
        so tie-breaking matches the reference decoder's scan order.
        """
        n_states = self._code.n_states
        # Enumerate (state, bit) pairs in the reference scan order
        # (state-major, bit-minor) and group them by destination: a
        # stable sort on destination keeps that order within each
        # group, reproducing the slot filling of the scalar scan.
        flat_state = np.repeat(np.arange(n_states, dtype=np.int64), 2)
        flat_bit = np.tile(np.array([0, 1], dtype=np.int64), n_states)
        dest = self._next_state.ravel()
        assert np.all(
            np.bincount(dest, minlength=n_states) == 2
        ), "trellis must be 2-regular"
        order = np.argsort(dest, kind="stable")
        pred_state = flat_state[order].reshape(n_states, 2)
        pred_bit = flat_bit[order].reshape(n_states, 2)
        return pred_state, pred_bit

    def _check_length(self, size: int) -> int:
        """Validate an LLR count; returns the number of trellis steps."""
        n = self._code.rate_inverse
        if size % n != 0:
            raise ValueError(
                f"LLR count {size} is not a multiple of {n}"
            )
        n_steps = size // n
        if n_steps <= self._code.constraint - 1:
            raise ValueError("input too short for a terminated trellis")
        return n_steps

    def decode(self, llrs: np.ndarray) -> SovaResult:
        """Decode terminated LLRs into bits + SOVA hints.

        The LLR count must be a multiple of the code rate inverse; the
        trailing K-1 flush bits are stripped from the result.  This is
        the vectorized path; it is bit- and hint-exact versus
        :meth:`decode_reference`.
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        self._check_length(llrs.size)
        return self._decode_block(llrs[None, :])[0]

    def decode_batch(
        self, llrs_list: Iterable[np.ndarray]
    ) -> list[SovaResult]:
        """Decode many packets in fused batched trellis passes.

        Packets of equal coded length share one forward/traceback pass
        with a leading batch dimension, so the per-step numpy dispatch
        overhead is amortised across the whole batch.  Results come
        back in input order and match :meth:`decode` exactly.
        """
        arrays = [
            np.asarray(llrs, dtype=np.float64) for llrs in llrs_list
        ]
        for arr in arrays:
            self._check_length(arr.size)
        by_length: dict[int, list[int]] = {}
        for idx, arr in enumerate(arrays):
            by_length.setdefault(arr.size, []).append(idx)
        results: list[SovaResult | None] = [None] * len(arrays)
        for indices in by_length.values():
            block = np.stack([arrays[i] for i in indices])
            decoded = self._decode_block(block)
            for i, result in zip(indices, decoded, strict=True):
                results[i] = result
        return results  # type: ignore[return-value]

    def _decode_block(self, llr_block: np.ndarray) -> list[SovaResult]:
        """Vectorized SOVA over a ``(batch, coded_bits)`` LLR block."""
        n = self._code.rate_inverse
        n_batch = llr_block.shape[0]
        n_steps = llr_block.shape[1] // n
        memory = self._code.constraint - 1
        n_states = self._code.n_states
        batch_idx = np.arange(n_batch)

        # Branch metrics for every (t, destination, predecessor slot):
        # correlate each step's LLRs against the antipodal outputs of
        # the transition entering through that slot.
        step_llrs = llr_block.reshape(n_batch, n_steps, n)
        branch = (step_llrs @ self._antipodal_flat.T)[
            ..., self._pred_flat
        ]  # (batch, steps, states, 2)

        metrics = np.full((n_batch, n_states), -np.inf)
        metrics[:, 0] = 0.0
        survivor_slot = np.zeros(
            (n_batch, n_steps, n_states), dtype=bool
        )
        bests = np.empty((n_batch, n_steps, n_states))
        seconds = np.empty((n_batch, n_steps, n_states))

        pred_state = self._pred_state
        for t in range(n_steps):
            cand = metrics[:, pred_state]
            cand += branch[:, t]
            c0 = cand[..., 0]
            c1 = cand[..., 1]
            # Slot 0 is the lower predecessor state; the reference
            # scan only replaces on "strictly greater", so ties keep
            # slot 0 — hence c1 must be strictly greater to win.
            take1 = c1 > c0
            survivor_slot[:, t] = take1
            bests[:, t] = np.where(take1, c1, c0)
            seconds[:, t] = np.where(take1, c0, c1)
            metrics = bests[:, t]

        # A merge whose losing branch is unreachable (metric -inf) has
        # an infinite margin; best - second would be NaN only when both
        # are -inf, i.e. the state itself is unreachable.
        with np.errstate(invalid="ignore"):
            merge_margin = np.where(
                np.isneginf(seconds), np.inf, bests - seconds
            )

        # Traceback from the zero state (terminated trellis),
        # vectorized across the batch.
        state = np.zeros(n_batch, dtype=np.int64)
        decoded = np.zeros((n_batch, n_steps), dtype=np.uint8)
        margins = np.empty((n_batch, n_steps))
        for t in range(n_steps - 1, -1, -1):
            slot = survivor_slot[batch_idx, t, state].astype(np.int8)
            decoded[:, t] = self._pred_bit[state, slot]
            margins[:, t] = merge_margin[batch_idx, t, state]
            state = self._pred_state[state, slot]

        # Simplified SOVA: a bit's reliability is the smallest merge
        # margin within the update window ahead of it.  Pad with +inf
        # so windows overhanging the packet end shrink, then take the
        # per-window min in one strided pass.
        padded = np.pad(
            margins,
            ((0, 0), (0, self._window - 1)),
            constant_values=np.inf,
        )
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, self._window, axis=1
        )
        hints = -windows.min(axis=2)

        keep = n_steps - memory
        return [
            SovaResult(bits=decoded[b, :keep], hints=hints[b, :keep])
            for b in range(n_batch)
        ]

    def decode_reference(self, llrs: np.ndarray) -> SovaResult:
        """Pure-Python loop SOVA — the executable specification.

        Retained (not dead code) as the ground truth the equivalence
        suite and benchmarks pin :meth:`decode` against.
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        n = self._code.rate_inverse
        n_steps = self._check_length(llrs.size)
        memory = self._code.constraint - 1
        n_states = self._code.n_states
        neg_inf = -np.inf

        # Branch metric: correlation of antipodal outputs with LLRs.
        step_llrs = llrs.reshape(n_steps, n)
        antipodal = 1.0 - 2.0 * self._outputs  # (state, input, n)

        metrics = np.full(n_states, neg_inf)
        metrics[0] = 0.0
        survivor_input = np.zeros((n_steps, n_states), dtype=np.int64)
        survivor_prev = np.zeros((n_steps, n_states), dtype=np.int64)
        merge_margin = np.zeros((n_steps, n_states), dtype=np.float64)

        predecessors: list[list[tuple[int, int]]] = [
            [] for _ in range(n_states)
        ]
        for state in range(n_states):
            for bit in (0, 1):
                predecessors[self._next_state[state, bit]].append(
                    (state, bit)
                )

        for t in range(n_steps):
            new_metrics = np.full(n_states, neg_inf)
            for state in range(n_states):
                best, second = neg_inf, neg_inf
                best_prev, best_bit = 0, 0
                for prev, bit in predecessors[state]:
                    if metrics[prev] == neg_inf:
                        continue
                    branch = float(
                        antipodal[prev, bit] @ step_llrs[t]
                    )
                    candidate = metrics[prev] + branch
                    if candidate > best:
                        second = best
                        best = candidate
                        best_prev, best_bit = prev, bit
                    elif candidate > second:
                        second = candidate
                new_metrics[state] = best
                survivor_prev[t, state] = best_prev
                survivor_input[t, state] = best_bit
                merge_margin[t, state] = (
                    best - second if second != neg_inf else np.inf
                )
            metrics = new_metrics

        # Traceback from the zero state (terminated trellis).
        state = 0
        decoded = np.zeros(n_steps, dtype=np.uint8)
        margins = np.zeros(n_steps, dtype=np.float64)
        for t in range(n_steps - 1, -1, -1):
            decoded[t] = survivor_input[t, state]
            margins[t] = merge_margin[t, state]
            state = survivor_prev[t, state]

        # Simplified SOVA: a bit's reliability is the smallest merge
        # margin within the update window ahead of it — a weak merge
        # downstream could have flipped this decision.
        reliabilities = np.empty(n_steps, dtype=np.float64)
        for t in range(n_steps):
            hi = min(n_steps, t + self._window)
            reliabilities[t] = margins[t:hi].min()
        hints = -reliabilities

        return SovaResult(
            bits=decoded[: n_steps - memory],
            hints=hints[: n_steps - memory],
        )

    def decode_hard(self, bits: np.ndarray) -> SovaResult:
        """Decode hard coded bits (fixed-confidence LLRs)."""
        return self.decode(self.llrs_from_hard(bits))
