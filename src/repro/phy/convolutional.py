"""Convolutional coding with soft-output Viterbi decoding.

Paper §3.1 names a third SoftPHY hint source: *"a particularly
interesting instance of a confidence metric when convolutional decoding
is used ... is to use the output of the Viterbi decoder"* — the
soft-output Viterbi algorithm (SOVA) of Hagenauer & Hoeher, whose
reliability for each bit is how decisively the surviving trellis path
beat the competitors that disagree on that bit.

This module provides a rate-1/2 feed-forward convolutional code (the
classic (7, 5) octal generator pair by default) and a Viterbi decoder
that emits per-bit reliabilities via the standard simplified SOVA
update: each decoded bit's reliability is the minimum path-metric
margin among the merges, within an update window, whose competitor
path disagrees on that bit.

Hints follow the library convention (lower = more confident):
``hint = -reliability``, so a decisively-decoded bit gets a large
negative hint and a coin-flip decision gets a hint near 0.  Only the
monotone ordering matters to higher layers (paper §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _poly_taps(poly: int, constraint: int) -> np.ndarray:
    """Binary tap vector (current bit first) for an octal generator."""
    return np.array(
        [(poly >> (constraint - 1 - i)) & 1 for i in range(constraint)],
        dtype=np.int64,
    )


@dataclass(frozen=True)
class ConvolutionalCode:
    """A rate-1/n feed-forward convolutional code.

    Parameters
    ----------
    generators:
        Generator polynomials in octal-style integers; the default
        (0o7, 0o5) is the ubiquitous constraint-length-3 pair.
    constraint:
        Constraint length K (memory = K - 1).
    """

    generators: tuple[int, ...] = (0o7, 0o5)
    constraint: int = 3

    def __post_init__(self) -> None:
        if self.constraint < 2:
            raise ValueError(
                f"constraint length must be >= 2, got {self.constraint}"
            )
        if len(self.generators) < 2:
            raise ValueError("need at least two generator polynomials")
        limit = 1 << self.constraint
        if any(not 0 < g < limit for g in self.generators):
            raise ValueError(
                f"generators must fit in {self.constraint} bits"
            )

    @property
    def rate_inverse(self) -> int:
        """Output bits per input bit (n of rate 1/n)."""
        return len(self.generators)

    @property
    def n_states(self) -> int:
        """Trellis states (2^(K-1))."""
        return 1 << (self.constraint - 1)

    def encode(self, bits: np.ndarray, terminate: bool = True) -> np.ndarray:
        """Encode a bit array; optionally append K-1 flush zeros.

        Termination drives the encoder back to state 0 so the decoder
        can anchor both ends of the trellis.
        """
        bits = np.asarray(bits, dtype=np.int64)
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise ValueError("input must be a 0/1 bit array")
        if terminate:
            bits = np.concatenate(
                [bits, np.zeros(self.constraint - 1, dtype=np.int64)]
            )
        taps = [_poly_taps(g, self.constraint) for g in self.generators]
        state = np.zeros(self.constraint - 1, dtype=np.int64)
        out = np.empty(bits.size * self.rate_inverse, dtype=np.uint8)
        pos = 0
        for b in bits:
            window = np.concatenate([[b], state])
            for tap in taps:
                out[pos] = int(window @ tap) & 1
                pos += 1
            state = window[:-1]
        return out

    def transitions(self):
        """(next_state, output_bits) tables indexed by [state, input]."""
        taps = [_poly_taps(g, self.constraint) for g in self.generators]
        n_states = self.n_states
        memory = self.constraint - 1
        next_state = np.zeros((n_states, 2), dtype=np.int64)
        outputs = np.zeros(
            (n_states, 2, self.rate_inverse), dtype=np.int64
        )
        for state in range(n_states):
            state_bits = [
                (state >> (memory - 1 - i)) & 1 for i in range(memory)
            ]
            for bit in (0, 1):
                window = np.array([bit] + state_bits, dtype=np.int64)
                outputs[state, bit] = [
                    int(window @ tap) & 1 for tap in taps
                ]
                next_state[state, bit] = int(
                    "".join(map(str, window[:-1].tolist())), 2
                ) if memory else 0
        return next_state, outputs


@dataclass(frozen=True)
class SovaResult:
    """Decoded bits and their SOVA hints (lower = more confident)."""

    bits: np.ndarray
    hints: np.ndarray


class SovaDecoder:
    """Viterbi decoding with simplified SOVA reliabilities.

    Consumes *LLR-like* soft inputs: one float per coded bit, positive
    meaning "this coded bit is probably 0" (sign convention matches
    ``1 - 2*bit`` antipodal mapping).  Hard received bits can be mapped
    through :meth:`llrs_from_hard`.
    """

    def __init__(
        self,
        code: ConvolutionalCode | None = None,
        update_window: int | None = None,
    ) -> None:
        self._code = code or ConvolutionalCode()
        self._window = (
            update_window
            if update_window is not None
            else 5 * self._code.constraint
        )
        if self._window < 1:
            raise ValueError(
                f"update_window must be >= 1, got {self._window}"
            )
        self._next_state, self._outputs = self._code.transitions()

    @property
    def code(self) -> ConvolutionalCode:
        """The convolutional code being decoded."""
        return self._code

    @staticmethod
    def llrs_from_hard(
        bits: np.ndarray, confidence: float = 2.0
    ) -> np.ndarray:
        """Map hard bits to fixed-magnitude LLRs."""
        bits = np.asarray(bits, dtype=np.int64)
        return confidence * (1.0 - 2.0 * bits)

    def decode(self, llrs: np.ndarray) -> SovaResult:
        """Decode terminated LLRs into bits + SOVA hints.

        The LLR count must be a multiple of the code rate inverse; the
        trailing K-1 flush bits are stripped from the result.
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        n = self._code.rate_inverse
        if llrs.size % n != 0:
            raise ValueError(
                f"LLR count {llrs.size} is not a multiple of {n}"
            )
        n_steps = llrs.size // n
        memory = self._code.constraint - 1
        if n_steps <= memory:
            raise ValueError("input too short for a terminated trellis")
        n_states = self._code.n_states
        neg_inf = -np.inf

        # Branch metric: correlation of antipodal outputs with LLRs.
        step_llrs = llrs.reshape(n_steps, n)
        antipodal = 1.0 - 2.0 * self._outputs  # (state, input, n)

        metrics = np.full(n_states, neg_inf)
        metrics[0] = 0.0
        survivor_input = np.zeros((n_steps, n_states), dtype=np.int64)
        survivor_prev = np.zeros((n_steps, n_states), dtype=np.int64)
        merge_margin = np.zeros((n_steps, n_states), dtype=np.float64)

        predecessors: list[list[tuple[int, int]]] = [
            [] for _ in range(n_states)
        ]
        for state in range(n_states):
            for bit in (0, 1):
                predecessors[self._next_state[state, bit]].append(
                    (state, bit)
                )

        for t in range(n_steps):
            new_metrics = np.full(n_states, neg_inf)
            for state in range(n_states):
                best, second = neg_inf, neg_inf
                best_prev, best_bit = 0, 0
                for prev, bit in predecessors[state]:
                    if metrics[prev] == neg_inf:
                        continue
                    branch = float(
                        antipodal[prev, bit] @ step_llrs[t]
                    )
                    candidate = metrics[prev] + branch
                    if candidate > best:
                        second = best
                        best = candidate
                        best_prev, best_bit = prev, bit
                    elif candidate > second:
                        second = candidate
                new_metrics[state] = best
                survivor_prev[t, state] = best_prev
                survivor_input[t, state] = best_bit
                merge_margin[t, state] = (
                    best - second if second != neg_inf else np.inf
                )
            metrics = new_metrics

        # Traceback from the zero state (terminated trellis).
        state = 0
        decoded = np.zeros(n_steps, dtype=np.uint8)
        margins = np.zeros(n_steps, dtype=np.float64)
        for t in range(n_steps - 1, -1, -1):
            decoded[t] = survivor_input[t, state]
            margins[t] = merge_margin[t, state]
            state = survivor_prev[t, state]

        # Simplified SOVA: a bit's reliability is the smallest merge
        # margin within the update window ahead of it — a weak merge
        # downstream could have flipped this decision.
        reliabilities = np.empty(n_steps, dtype=np.float64)
        for t in range(n_steps):
            hi = min(n_steps, t + self._window)
            reliabilities[t] = margins[t:hi].min()
        hints = -reliabilities

        return SovaResult(
            bits=decoded[: n_steps - memory],
            hints=hints[: n_steps - memory],
        )

    def decode_hard(self, bits: np.ndarray) -> SovaResult:
        """Decode hard coded bits (fixed-confidence LLRs)."""
        return self.decode(self.llrs_from_hard(bits))
