"""MSK (half-sine O-QPSK) modulator.

Produces complex-baseband sample streams from chip sequences, matching
the CC2420's modulation (paper §6): even-indexed chips modulate the I
rail, odd-indexed chips the Q rail delayed by one chip period, each
chip shaped by a half-sine spanning two chip periods.
"""

from __future__ import annotations

import numpy as np

from repro.phy.codebook import Codebook
from repro.phy.pulse import half_sine_pulse


class MskModulator:
    """Chip-stream -> complex baseband MSK samples.

    Parameters
    ----------
    sps:
        Samples per chip.  4 is plenty for the simulation experiments.
    amplitude:
        Linear amplitude scale of the output waveform.
    """

    def __init__(self, sps: int = 4, amplitude: float = 1.0) -> None:
        if sps < 2:
            raise ValueError(f"sps must be >= 2 for O-QPSK offset, got {sps}")
        if amplitude <= 0:
            raise ValueError(f"amplitude must be positive, got {amplitude}")
        self._sps = int(sps)
        self._amplitude = float(amplitude)
        self._pulse = half_sine_pulse(self._sps)

    @property
    def sps(self) -> int:
        """Samples per chip."""
        return self._sps

    @property
    def pulse(self) -> np.ndarray:
        """The unit-energy half-sine chip pulse (two chip periods)."""
        return self._pulse.copy()

    def samples_for_chips(self, n_chips: int) -> int:
        """Waveform length (samples) for a chip sequence of given length."""
        if n_chips < 0:
            raise ValueError(f"n_chips must be non-negative, got {n_chips}")
        if n_chips == 0:
            return 0
        # Last chip's pulse spans two chip periods; Q rail adds one more
        # chip of offset when the last chip index is odd.
        return (n_chips + 1) * self._sps

    def _validated_signs(self, chips: np.ndarray) -> np.ndarray:
        """Shared validation: 0/1 chips, even count, as ±1 signs."""
        chips = np.asarray(chips, dtype=np.int64)
        if chips.size % 2 != 0:
            raise ValueError(
                f"chip count must be even for O-QPSK, got {chips.size}"
            )
        if chips.size and (chips.min() < 0 or chips.max() > 1):
            raise ValueError("chips must be 0/1")
        return chips * 2 - 1

    def modulate_chips(self, chips: np.ndarray) -> np.ndarray:
        """Modulate a 0/1 chip array into complex baseband samples.

        The chip count must be even (chips alternate I/Q rails).

        Vectorized rail-split program: same-rail pulses abut exactly
        (two-chip-period pulse, two-chip same-rail spacing), so each
        rail is the flattened outer product of its chips' signs with
        the pulse — no per-chip loop, bit-identical to
        :meth:`modulate_chips_reference`.
        """
        signs = self._validated_signs(chips)
        n = signs.size
        if n == 0:
            return np.zeros(0, dtype=np.complex128)
        sps = self._sps
        out_len = self.samples_for_chips(n)
        wave_i = np.zeros(out_len, dtype=np.float64)
        wave_q = np.zeros(out_len, dtype=np.float64)
        # Even chips fill the I rail from sample 0, odd chips the Q
        # rail from sample sps (the inherent one-chip O-QPSK offset);
        # consecutive same-rail blocks are disjoint, so assignment of
        # the flattened outer product reproduces the reference's
        # accumulate-into-zeros exactly.
        blocks_i = signs[0::2, None] * self._pulse
        blocks_q = signs[1::2, None] * self._pulse
        wave_i[: blocks_i.size] = blocks_i.ravel()
        wave_q[sps : sps + blocks_q.size] = blocks_q.ravel()
        return self._amplitude * (wave_i + 1j * wave_q)

    def modulate_chips_reference(self, chips: np.ndarray) -> np.ndarray:
        """Per-chip loop implementation, kept as the executable spec
        for :meth:`modulate_chips` (the equivalence suite pins the two
        bit-for-bit)."""
        signs = self._validated_signs(chips)
        n = signs.size
        if n == 0:
            return np.zeros(0, dtype=np.complex128)
        sps = self._sps
        out_len = self.samples_for_chips(n)
        wave_i = np.zeros(out_len, dtype=np.float64)
        wave_q = np.zeros(out_len, dtype=np.float64)
        pulse = self._pulse
        plen = pulse.size
        # Chip k's pulse starts at sample k*sps and spans 2*sps samples;
        # even chips on I, odd chips on Q (inherent one-chip offset).
        for k in range(n):
            start = k * sps
            rail = wave_i if k % 2 == 0 else wave_q
            rail[start : start + plen] += signs[k] * pulse
        return self._amplitude * (wave_i + 1j * wave_q)

    def modulate_symbols(
        self, symbols: np.ndarray, codebook: Codebook
    ) -> np.ndarray:
        """Spread symbols through ``codebook`` and modulate the chips."""
        chips = codebook.encode(np.asarray(symbols, dtype=np.int64))
        return self.modulate_chips(chips)
