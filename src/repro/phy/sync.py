"""Frame synchronisation: preamble and postamble detection (paper §4).

The preamble follows 802.15.4: eight zero symbols then the start-frame
delimiter 0xA7.  PPR appends a *postamble* — a distinct well-known
sequence (eight 15-symbols then the end-frame delimiter 0x7A) — so a
receiver that missed the preamble can lock late and roll back through
its sample buffer (the Fig. 5 scenario).

:class:`CorrelationSynchronizer` detects sync fields by normalised
correlation in the chip domain; :class:`RollbackBuffer` is the circular
sample store that makes rolling back possible.
"""

from __future__ import annotations

import numpy as np

from repro.phy.codebook import Codebook
from repro.phy.fftcorr import FftCorrelator

# 802.15.4 SHR: 8 zero symbols, then SFD byte 0xA7 (low nibble first).
PREAMBLE_SYMBOLS = tuple([0] * 8)
SFD_SYMBOLS = (7, 10)
# PPR postamble: mirrored structure, distinct content (§4: "a well-known
# sequence ... that uniquely identifies it as the postamble").
POSTAMBLE_SYMBOLS = tuple([15] * 8)
EFD_SYMBOLS = (10, 7)


def sync_field_symbols(kind: str) -> np.ndarray:
    """Symbol sequence of a sync field: ``"preamble"`` or ``"postamble"``.

    The returned sequence includes the delimiter (SFD / EFD).
    """
    if kind == "preamble":
        return np.array(PREAMBLE_SYMBOLS + SFD_SYMBOLS, dtype=np.int64)
    if kind == "postamble":
        return np.array(POSTAMBLE_SYMBOLS + EFD_SYMBOLS, dtype=np.int64)
    raise ValueError(f"kind must be 'preamble' or 'postamble', got {kind!r}")


def peak_offsets(
    corr: np.ndarray, threshold: float, min_gap: int
) -> list[int]:
    """Non-maximum suppression over a correlation trace.

    Above-threshold offsets are grouped wherever consecutive indices
    are at most ``min_gap`` apart (``np.split`` on the gap boundaries
    — no per-index Python walk); each group contributes the offset of
    its correlation maximum, mirroring a hardware correlator's peak
    detector.
    """
    above = np.flatnonzero(corr >= threshold)
    if above.size == 0:
        return []
    boundaries = np.flatnonzero(np.diff(above) > min_gap) + 1
    return [
        int(group[0] + corr[group[0] : group[-1] + 1].argmax())
        for group in np.split(above, boundaries)
    ]


class CorrelationSynchronizer:
    """Sliding normalised correlation against a known chip pattern.

    Works on soft chips (matched-filter outputs) or hard chips mapped
    to ±1.  A detection is an offset where the normalised correlation
    exceeds ``threshold`` and is the local maximum within one pattern
    length (non-maximum suppression), mirroring a hardware correlator's
    peak detector.
    """

    def __init__(
        self,
        codebook: Codebook,
        kind: str,
        threshold: float = 0.75,
    ) -> None:
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._codebook = codebook
        self._kind = kind
        self._threshold = float(threshold)
        chips = codebook.encode(sync_field_symbols(kind))
        self._pattern = chips.astype(np.float64) * 2.0 - 1.0
        self._pattern_norm = float(np.linalg.norm(self._pattern))
        self._correlator = FftCorrelator(self._pattern)

    @property
    def kind(self) -> str:
        """Which sync field this correlator matches."""
        return self._kind

    @property
    def pattern_chips(self) -> int:
        """Length of the sync pattern in chips."""
        return self._pattern.size

    @property
    def threshold(self) -> float:
        """Detection threshold on normalised correlation."""
        return self._threshold

    def _prepare(
        self, chips: np.ndarray, hard: bool | None
    ) -> np.ndarray:
        """Map chips to the ±1 domain the pattern lives in.

        ``hard=None`` infers from the dtype: integer/bool arrays are
        hard 0/1 chips (mapped to ±1), floating arrays are soft
        matched-filter outputs used as-is.  The old value-range
        heuristic (``min() >= 0 and max() <= 1``) silently remapped
        genuine soft chips that happened to land in [0, 1]; pass
        ``hard`` explicitly to override the dtype inference.
        """
        chips = np.asarray(chips)
        if hard is None:
            hard = chips.dtype.kind in "bui"
        chips = chips.astype(np.float64, copy=False)
        if hard:
            if chips.size and not ((chips == 0) | (chips == 1)).all():
                raise ValueError("hard chips must be 0/1")
            chips = chips * 2.0 - 1.0
        return chips

    def correlate(
        self, chips: np.ndarray, hard: bool | None = None
    ) -> np.ndarray:
        """Normalised correlation at every alignment (valid mode).

        ``chips`` may be hard 0/1 chips (integer dtype, mapped to ±1)
        or soft ±1-ish matched-filter outputs (floating dtype, used
        as-is); pass ``hard`` to override the dtype inference.  Output
        values lie in [-1, 1].
        """
        chips = np.asarray(chips)
        if chips.ndim != 1:
            raise ValueError(
                f"chips must be 1-D (use correlate_many for stacked "
                f"captures), got shape {chips.shape}"
            )
        return self.correlate_many(chips[None, :], hard)[0]

    def correlate_many(
        self, chips: np.ndarray, hard: bool | None = None
    ) -> np.ndarray:
        """Row-wise normalised correlation over many equal-length
        captures at once: ``(n_captures, n_chips)`` in,
        ``(n_captures, n_offsets)`` out.

        The raw correlation is one FFT product over the whole batch
        (:class:`~repro.phy.fftcorr.FftCorrelator`) instead of one
        ``np.correlate`` per capture.  Each row is bit-identical to
        :meth:`correlate` on that row alone (pocketfft transforms rows
        independently); against the time-domain loop spec
        :meth:`correlate_reference` the FFT reassociation shifts the
        last few ulps, so the equivalence suite pins that pair at
        1e-12 rather than bit-for-bit.
        """
        chips = np.asarray(chips)
        if chips.ndim != 2:
            raise ValueError(
                f"chips must be 2-D (n_captures, n_chips), got "
                f"shape {chips.shape}"
            )
        chips = self._prepare(chips, hard)
        psize = self._pattern.size
        if chips.shape[1] < psize:
            return np.zeros((chips.shape[0], 0), dtype=np.float64)
        raw = self._correlator.correlate_rows(chips)
        # Windowed energy of the received chips for normalisation.
        sq = np.concatenate(
            [
                np.zeros((chips.shape[0], 1)),
                np.cumsum(chips**2, axis=1),
            ],
            axis=1,
        )
        win = sq[:, psize:] - sq[:, :-psize]
        denom = np.sqrt(win) * self._pattern_norm
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denom > 0, raw / denom, 0.0)
        return corr

    def correlate_reference(
        self, chips: np.ndarray, hard: bool | None = None
    ) -> np.ndarray:
        """Per-offset loop implementation, kept as the executable spec
        for :meth:`correlate`: a scalar running energy sum plays the
        cumulative-energy trick's role, one dot product per alignment.
        The FFT fast path reassociates these sums, so the equivalence
        suite pins the pair at 1e-12 (the batch path itself stays
        bit-identical across batch shapes)."""
        chips = self._prepare(np.asarray(chips), hard)
        psize = self._pattern.size
        n = chips.size
        if n < psize:
            return np.zeros(0, dtype=np.float64)
        sq = np.empty(n + 1, dtype=np.float64)
        sq[0] = 0.0
        acc = 0.0
        for i in range(n):
            acc += chips[i] * chips[i]
            sq[i + 1] = acc
        out = np.empty(n - psize + 1, dtype=np.float64)
        for i in range(out.size):
            raw = np.dot(chips[i : i + psize], self._pattern)
            denom = np.sqrt(sq[i + psize] - sq[i]) * self._pattern_norm
            out[i] = raw / denom if denom > 0 else 0.0
        return out

    def detect(
        self, chips: np.ndarray, hard: bool | None = None
    ) -> list[int]:
        """Chip offsets where the sync pattern is detected."""
        corr = self.correlate(chips, hard)
        return peak_offsets(corr, self._threshold, self._pattern.size)


class RollbackBuffer:
    """Fixed-capacity circular buffer of received samples (paper §4).

    The receiver appends every incoming sample; on postamble detection
    it retrieves a window *backwards in time* by absolute sample index.
    Capacity should cover one maximally-sized packet, matching the
    paper's implementation.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._buf = np.zeros(self._capacity, dtype=np.complex128)
        self._written = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained samples."""
        return self._capacity

    @property
    def total_written(self) -> int:
        """Absolute count of samples ever appended."""
        return self._written

    @property
    def oldest_available(self) -> int:
        """Absolute index of the oldest sample still retained."""
        return max(0, self._written - self._capacity)

    def append(self, samples: np.ndarray) -> None:
        """Append samples, evicting the oldest beyond capacity."""
        samples = np.asarray(samples, dtype=np.complex128)
        n = samples.size
        if n >= self._capacity:
            # Keep only the tail, placed so that absolute index i still
            # lives at buffer position i % capacity.
            tail_abs_start = self._written + n - self._capacity
            positions = (
                tail_abs_start + np.arange(self._capacity)
            ) % self._capacity
            self._buf[positions] = samples[n - self._capacity :]
            self._written += n
            return
        pos = self._written % self._capacity
        first = min(n, self._capacity - pos)
        self._buf[pos : pos + first] = samples[:first]
        if first < n:
            self._buf[: n - first] = samples[first:]
        self._written += n

    def get_range(self, abs_start: int, count: int) -> np.ndarray:
        """Samples ``[abs_start, abs_start + count)`` by absolute index.

        Raises ``ValueError`` if any requested sample has been evicted
        or not yet written — rollback must never fabricate data.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if abs_start < self.oldest_available:
            raise ValueError(
                f"samples from {abs_start} already evicted (oldest "
                f"available: {self.oldest_available})"
            )
        if abs_start + count > self._written:
            raise ValueError(
                f"samples up to {abs_start + count} not yet written "
                f"(have {self._written})"
            )
        # A retained range spans at most one wrap point, so it is at
        # most two contiguous slices — no per-sample fancy index.
        pos = abs_start % self._capacity
        first = min(count, self._capacity - pos)
        if first == count:
            return self._buf[pos : pos + count].copy()
        return np.concatenate(
            [self._buf[pos:], self._buf[: count - first]]
        )

    def get_last(self, count: int) -> np.ndarray:
        """The most recent ``count`` samples."""
        return self.get_range(self._written - count, count)
