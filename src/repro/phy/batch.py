"""Batched reception: decode many packets' words/samples/captures in one call.

Every row-wise decoder in :mod:`repro.phy.decoder` is already
vectorised *within* one reception; network-scale experiments, however,
decode thousands of receptions per trial, and the per-call numpy
dispatch overhead dominates once each individual call is small.  This
module fuses those calls: receptions are concatenated into one matrix,
decoded in a single pass through the shared PHY core, and split back —
bit-identical to per-reception decoding, since every decoder here is
independent across rows.

:class:`BatchReceptionEngine` is the network simulation's entry point
(ragged uint32 chip-word lists); :func:`decode_words_batch` and
:func:`decode_samples_batch` wrap the public decoders for the same
pattern.  :class:`WaveformBatchEngine` lifts the same idea to the
sample domain: a ragged list of complex capture windows goes through
fused preamble/postamble correlation, one fused MSK matched-filter
reduction, and one fused nearest-codeword decode.  SOVA batching lives
on :meth:`repro.phy.convolutional.SovaDecoder.decode_batch`, which
fuses whole trellis passes rather than rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.phy.codebook import Codebook
from repro.phy.decoder import (
    DecodeResult,
    HardDecisionDecoder,
    SoftDecisionDecoder,
)
from repro.phy.frontend import (
    ChipExtractRequest,
    ReceiverFrontend,
    SyncDetection,
)
from repro.phy.remodulate import subtract_frame
from repro.phy.sync import sync_field_symbols
from repro.utils.bitops import pack_bits_to_uint32


def _split_offsets(sizes: list[int]) -> np.ndarray:
    """Split points for ``np.split`` given per-piece sizes."""
    return np.cumsum(sizes[:-1]) if len(sizes) > 1 else np.array([], int)


class BatchReceptionEngine:
    """Fused nearest-codeword decoding over many receptions.

    Wraps one codebook and decodes ragged lists of packed chip-word
    arrays (one array per reception, arbitrary lengths) with a single
    ``decode_hard`` call.
    """

    def __init__(self, codebook: Codebook) -> None:
        self._codebook = codebook

    @property
    def codebook(self) -> Codebook:
        """The codebook decoded against."""
        return self._codebook

    def decode_hard_ragged(
        self, word_arrays: Sequence[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Decode many uint32 word arrays in one fused call.

        Returns one ``(symbols, distances)`` pair per input array, in
        order; empty inputs yield empty outputs.  Equivalent to calling
        ``codebook.decode_hard`` per array.
        """
        sizes = [int(np.asarray(w).size) for w in word_arrays]
        total = sum(sizes)
        if total == 0:
            empty_syms = np.zeros(0, dtype=np.int64)
            empty_d = np.zeros(0, dtype=np.int64)
            return [(empty_syms.copy(), empty_d.copy()) for _ in sizes]
        fused = np.concatenate(
            [np.asarray(w, dtype=np.uint32).ravel() for w in word_arrays]
        )
        symbols, distances = self._codebook.decode_hard(fused)
        offsets = _split_offsets(sizes)
        return list(
            zip(np.split(symbols, offsets), np.split(distances, offsets), strict=True)
        )


def decode_words_batch(
    decoder: HardDecisionDecoder,
    word_arrays: Sequence[np.ndarray],
) -> list[DecodeResult]:
    """Hard-decision decode many word arrays in one fused pass."""
    engine = BatchReceptionEngine(decoder.codebook)
    return [
        DecodeResult(symbols=symbols, hints=distances.astype(np.float64))
        for symbols, distances in engine.decode_hard_ragged(word_arrays)
    ]


def decode_samples_batch(
    decoder: SoftDecisionDecoder,
    sample_blocks: Sequence[np.ndarray],
) -> list[DecodeResult]:
    """Soft-decision decode many sample blocks in one fused pass.

    Each block is ``(n_i, chips_per_symbol)``; blocks are stacked into
    one matrix, decoded with a single correlation pass, and split back.
    """
    blocks = [
        np.asarray(block, dtype=np.float64) for block in sample_blocks
    ]
    width = decoder.codebook.chips_per_symbol
    for block in blocks:
        if block.ndim != 2 or block.shape[1] != width:
            raise ValueError(
                f"each block must be (n, {width}), got {block.shape}"
            )
    sizes = [block.shape[0] for block in blocks]
    if sum(sizes) == 0:
        return [
            DecodeResult(
                symbols=np.zeros(0, dtype=np.int64),
                hints=np.zeros(0, dtype=np.float64),
            )
            for _ in blocks
        ]
    fused = decoder.decode_samples(np.vstack(blocks))
    offsets = _split_offsets(sizes)
    return [
        DecodeResult(symbols=symbols, hints=hints)
        for symbols, hints in zip(
            np.split(fused.symbols, offsets),
            np.split(fused.hints, offsets), strict=True,
        )
    ]


@dataclass(frozen=True)
class WaveformDecodeRequest:
    """One codeword-run decode from a batch of captures.

    ``capture`` indexes the capture list; ``symbol_offset`` is in whole
    codewords relative to ``anchor_sample`` (negative for postamble
    rollback), mirroring
    :meth:`repro.phy.frontend.ReceiverFrontend.decode_symbols_at`.
    """

    capture: int
    anchor_sample: int
    symbol_offset: int
    n_symbols: int
    phase: float = 0.0


@dataclass(frozen=True)
class CollisionPairReception:
    """Both sides of a two-packet collision in one capture window.

    ``first`` decoded forward from its preamble, ``second`` rolled
    back from the last postamble (the Fig. 5/13 scenario).  The full
    detection lists are kept so callers can reason about what else
    did — or did not — rise above the sync threshold.
    """

    preamble_detections: list[SyncDetection]
    postamble_detections: list[SyncDetection]
    first: "FrameReception"
    second: "FrameReception"


@dataclass(frozen=True)
class FrameReception:
    """One capture's frame decode through the waveform engine.

    ``detection`` is the sync field the receiver locked on (``None``
    when neither sync field was found — ``symbols``/``hints`` are then
    empty); ``via_postamble`` records a Fig. 5-style rollback.
    """

    detection: SyncDetection | None
    symbols: np.ndarray
    hints: np.ndarray

    @property
    def acquired(self) -> bool:
        """Whether any sync field was detected."""
        return self.detection is not None

    @property
    def via_postamble(self) -> bool:
        """Whether the frame was recovered by postamble rollback."""
        return self.detection is not None and (
            self.detection.kind == "postamble"
        )


class WaveformBatchEngine:
    """Fused waveform reception over many capture windows.

    The sample-domain analogue of :class:`BatchReceptionEngine`: a
    ragged list of complex-baseband captures is synchronised
    (row-stacked preamble/postamble correlation), matched-filtered
    (one fused reduction over every request's chip windows), and
    despread (one fused nearest-codeword decode) — bit-identical to
    running :class:`~repro.phy.frontend.ReceiverFrontend` per capture,
    since every stage is independent across rows.
    """

    def __init__(
        self,
        codebook: Codebook,
        sps: int = 4,
        threshold: float = 0.70,
    ) -> None:
        self._frontend = ReceiverFrontend(codebook, sps, threshold)
        self._engine = BatchReceptionEngine(codebook)

    @property
    def codebook(self) -> Codebook:
        """The codebook decoded against."""
        return self._frontend.codebook

    @property
    def frontend(self) -> ReceiverFrontend:
        """The per-capture receiver front end the engine fuses over."""
        return self._frontend

    def detect_batch(
        self, captures: Sequence[np.ndarray], kind: str
    ) -> list[list[SyncDetection]]:
        """Sync detections of ``kind`` for every capture, in one pass."""
        return self._frontend.detect_batch(captures, kind)

    def decode_symbols_batch(
        self,
        captures: Sequence[np.ndarray],
        requests: Sequence[WaveformDecodeRequest],
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Hard-decode many codeword runs in one fused pass.

        Returns one ``(symbols, hamming_hints)`` pair per request —
        bit-identical to
        :meth:`~repro.phy.frontend.ReceiverFrontend.decode_symbols_at`
        per request.
        """
        if not requests:
            return []
        width = self.codebook.chips_per_symbol
        soft_runs = self._frontend.extract_batch(
            captures,
            [
                ChipExtractRequest(
                    capture=r.capture,
                    anchor_sample=r.anchor_sample,
                    chip_offset=r.symbol_offset * width,
                    n_chips=r.n_symbols * width,
                    phase=r.phase,
                )
                for r in requests
            ],
        )
        # One fused pack + one fused nearest-codeword decode over every
        # request's hard decisions.
        hard = [
            (soft > 0).astype(np.uint8).reshape(-1, width)
            for soft in soft_runs
        ]
        words = pack_bits_to_uint32(np.concatenate(hard))
        symbols, dists = self._engine.decode_hard_ragged([words])[0]
        offsets = _split_offsets([h.shape[0] for h in hard])
        return [
            (s, d.astype(np.float64))
            for s, d in zip(
                np.split(symbols, offsets), np.split(dists, offsets), strict=True
            )
        ]

    def receive_collision_pair(
        self, capture: np.ndarray, n_body_symbols: int
    ) -> CollisionPairReception:
        """Decode both packets of a two-packet collision (Fig. 5/13).

        The first packet anchors on its (cleanly received) preamble
        and decodes forward; the second packet's preamble collided, so
        it anchors on the *last* postamble in the capture and rolls
        back.  Both codeword runs go through one fused matched-filter
        + nearest-codeword decode.  Raises ``RuntimeError`` when a
        required sync field is missing.
        """
        pre_dets = self.detect_batch([capture], "preamble")[0]
        if not pre_dets:
            raise RuntimeError("first packet's preamble not detected")
        post_dets = self.detect_batch([capture], "postamble")[0]
        if not post_dets:
            raise RuntimeError("second packet's postamble not detected")
        det1 = pre_dets[0]
        det2 = max(post_dets, key=lambda d: d.sample_offset)
        preamble_symbols = sync_field_symbols("preamble").size
        (sym1, hints1), (sym2, hints2) = self.decode_symbols_batch(
            [capture],
            [
                WaveformDecodeRequest(
                    capture=0,
                    anchor_sample=det1.sample_offset,
                    symbol_offset=preamble_symbols,
                    n_symbols=n_body_symbols,
                    phase=det1.phase,
                ),
                WaveformDecodeRequest(
                    capture=0,
                    anchor_sample=det2.sample_offset,
                    symbol_offset=-n_body_symbols,
                    n_symbols=n_body_symbols,
                    phase=det2.phase,
                ),
            ],
        )
        return CollisionPairReception(
            preamble_detections=pre_dets,
            postamble_detections=post_dets,
            first=FrameReception(
                detection=det1, symbols=sym1, hints=hints1
            ),
            second=FrameReception(
                detection=det2, symbols=sym2, hints=hints2
            ),
        )

    def receive_residual(
        self,
        capture: np.ndarray,
        cancellations: Sequence[tuple[np.ndarray, int]],
        n_body_symbols: int,
    ) -> tuple[FrameReception, np.ndarray]:
        """Decode what remains of a capture after cancelling frames.

        ``cancellations`` is a list of ``(waveform, sample_offset)``
        reconstructions (already scaled by their estimated complex
        gains — see :func:`repro.phy.remodulate.estimate_complex_scale`);
        each is subtracted from the capture and the residual goes
        through the standard single-frame reception policy
        (:meth:`receive_frames`).  Returns the residual reception and
        the residual samples, so callers can iterate the cancellation
        or hand the leftovers to chunk recovery.
        """
        residual = np.asarray(capture, dtype=np.complex128)
        for waveform, sample_offset in cancellations:
            residual = subtract_frame(residual, waveform, sample_offset)
        reception = self.receive_frames([residual], n_body_symbols)[0]
        return reception, residual

    def receive_frames(
        self,
        captures: Sequence[np.ndarray],
        n_body_symbols: int,
    ) -> list[FrameReception]:
        """PPR reception policy over many captures, fused end to end.

        Each capture is assumed to hold (at most) one frame whose body
        is ``n_body_symbols`` codewords between the standard sync
        fields.  A receiver that hears the preamble decodes forward
        from it; one that missed it but hears the postamble rolls back
        through the capture (paper §4); captures with neither sync
        field yield an empty reception.
        """
        if n_body_symbols < 0:
            raise ValueError(
                f"n_body_symbols must be non-negative, got {n_body_symbols}"
            )
        preamble_symbols = sync_field_symbols("preamble").size
        width = self.codebook.chips_per_symbol
        sps = self._frontend.sps

        def _fits(
            capture_len: int,
            detection: SyncDetection,
            symbol_offset: int,
        ) -> bool:
            """Whether the body's chip span lies inside the capture."""
            start = (
                detection.sample_offset + symbol_offset * width * sps
            )
            n_chips = n_body_symbols * width
            needed = start + (n_chips - 1) * sps + 2 * sps if n_chips else start
            return start >= 0 and needed <= capture_len

        lengths = [np.asarray(c).size for c in captures]
        pre = self.detect_batch(captures, "preamble")
        chosen: list[SyncDetection | None] = []
        for i, pre_dets in enumerate(pre):
            if pre_dets and _fits(
                lengths[i], pre_dets[0], preamble_symbols
            ):
                chosen.append(pre_dets[0])
            else:
                chosen.append(None)
        # Postamble correlation is only paid for the captures the
        # preamble path could not serve (the rollback minority).
        fallback = [
            i for i, detection in enumerate(chosen) if detection is None
        ]
        if fallback:
            post = self.detect_batch(
                [captures[i] for i in fallback], "postamble"
            )
            for i, post_dets in zip(fallback, post, strict=True):
                if not post_dets:
                    continue
                last = max(post_dets, key=lambda d: d.sample_offset)
                if _fits(lengths[i], last, -n_body_symbols):
                    chosen[i] = last
        requests = []
        for i, detection in enumerate(chosen):
            if detection is None:
                continue
            symbol_offset = (
                preamble_symbols
                if detection.kind == "preamble"
                else -n_body_symbols
            )
            requests.append(
                WaveformDecodeRequest(
                    capture=i,
                    anchor_sample=detection.sample_offset,
                    symbol_offset=symbol_offset,
                    n_symbols=n_body_symbols,
                    phase=detection.phase,
                )
            )
        decoded = iter(self.decode_symbols_batch(captures, requests))
        receptions = []
        for detection in chosen:
            if detection is None:
                receptions.append(
                    FrameReception(
                        detection=None,
                        symbols=np.zeros(0, dtype=np.int64),
                        hints=np.zeros(0, dtype=np.float64),
                    )
                )
            else:
                symbols, hints = next(decoded)
                receptions.append(
                    FrameReception(
                        detection=detection, symbols=symbols, hints=hints
                    )
                )
        return receptions
