"""Batched reception: decode many packets' words/samples in one call.

Every row-wise decoder in :mod:`repro.phy.decoder` is already
vectorised *within* one reception; network-scale experiments, however,
decode thousands of receptions per trial, and the per-call numpy
dispatch overhead dominates once each individual call is small.  This
module fuses those calls: receptions are concatenated into one matrix,
decoded in a single pass through the shared PHY core, and split back —
bit-identical to per-reception decoding, since every decoder here is
independent across rows.

:class:`BatchReceptionEngine` is the network simulation's entry point
(ragged uint32 chip-word lists); :func:`decode_words_batch` and
:func:`decode_samples_batch` wrap the public decoders for the same
pattern.  SOVA batching lives on
:meth:`repro.phy.convolutional.SovaDecoder.decode_batch`, which fuses
whole trellis passes rather than rows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.phy.codebook import Codebook
from repro.phy.decoder import (
    DecodeResult,
    HardDecisionDecoder,
    SoftDecisionDecoder,
)


def _split_offsets(sizes: list[int]) -> np.ndarray:
    """Split points for ``np.split`` given per-piece sizes."""
    return np.cumsum(sizes[:-1]) if len(sizes) > 1 else np.array([], int)


class BatchReceptionEngine:
    """Fused nearest-codeword decoding over many receptions.

    Wraps one codebook and decodes ragged lists of packed chip-word
    arrays (one array per reception, arbitrary lengths) with a single
    ``decode_hard`` call.
    """

    def __init__(self, codebook: Codebook) -> None:
        self._codebook = codebook

    @property
    def codebook(self) -> Codebook:
        """The codebook decoded against."""
        return self._codebook

    def decode_hard_ragged(
        self, word_arrays: Sequence[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Decode many uint32 word arrays in one fused call.

        Returns one ``(symbols, distances)`` pair per input array, in
        order; empty inputs yield empty outputs.  Equivalent to calling
        ``codebook.decode_hard`` per array.
        """
        sizes = [int(np.asarray(w).size) for w in word_arrays]
        total = sum(sizes)
        if total == 0:
            empty_s = np.zeros(0, dtype=np.int64)
            empty_d = np.zeros(0, dtype=np.int64)
            return [(empty_s.copy(), empty_d.copy()) for _ in sizes]
        fused = np.concatenate(
            [np.asarray(w, dtype=np.uint32).ravel() for w in word_arrays]
        )
        symbols, distances = self._codebook.decode_hard(fused)
        offsets = _split_offsets(sizes)
        return list(
            zip(np.split(symbols, offsets), np.split(distances, offsets))
        )


def decode_words_batch(
    decoder: HardDecisionDecoder,
    word_arrays: Sequence[np.ndarray],
) -> list[DecodeResult]:
    """Hard-decision decode many word arrays in one fused pass."""
    engine = BatchReceptionEngine(decoder.codebook)
    return [
        DecodeResult(symbols=symbols, hints=distances.astype(np.float64))
        for symbols, distances in engine.decode_hard_ragged(word_arrays)
    ]


def decode_samples_batch(
    decoder: SoftDecisionDecoder,
    sample_blocks: Sequence[np.ndarray],
) -> list[DecodeResult]:
    """Soft-decision decode many sample blocks in one fused pass.

    Each block is ``(n_i, chips_per_symbol)``; blocks are stacked into
    one matrix, decoded with a single correlation pass, and split back.
    """
    blocks = [
        np.asarray(block, dtype=np.float64) for block in sample_blocks
    ]
    width = decoder.codebook.chips_per_symbol
    for block in blocks:
        if block.ndim != 2 or block.shape[1] != width:
            raise ValueError(
                f"each block must be (n, {width}), got {block.shape}"
            )
    sizes = [block.shape[0] for block in blocks]
    if sum(sizes) == 0:
        return [
            DecodeResult(
                symbols=np.zeros(0, dtype=np.int64),
                hints=np.zeros(0, dtype=np.float64),
            )
            for _ in blocks
        ]
    fused = decoder.decode_samples(np.vstack(blocks))
    offsets = _split_offsets(sizes)
    return [
        DecodeResult(symbols=symbols, hints=hints)
        for symbols, hints in zip(
            np.split(fused.symbols, offsets),
            np.split(fused.hints, offsets),
        )
    ]
