"""Figure 11: end-to-end per-link throughput CDF near saturation.

The paper plots per-link delivered throughput at 6.9 Kbit/s/node
offered load (carrier sense off) for all six scheme variants.  Claim
(via Table 1): PPR and fragmented CRC improve per-link throughput over
the status quo, PPR the most.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.textplot import render_cdf
from repro.experiments.common import (
    LOAD_MEDIUM,
    ExperimentOutput,
    RunCache,
    ShapeCheck,
    grid,
    labelled_evaluations,
)
from repro.experiments.registry import register


@register(
    "fig11",
    title="End-to-end per-link throughput, 6.9 Kbit/s/node",
    paper_expectation=(
        "per-link throughput at 6.9 Kbit/s/node: PPR delivers the "
        "most, then fragmented CRC, then packet CRC; postamble "
        "variants beat no-postamble variants"
    ),
    points=grid(load=LOAD_MEDIUM, carrier_sense=False),
    order=11,
)
def run(cache: RunCache) -> ExperimentOutput:
    """Reproduce Fig. 11 at medium (near-saturation) load."""
    result = cache.get(load=LOAD_MEDIUM, carrier_sense=False)
    by_label = labelled_evaluations(result)

    tput_series = {}
    totals = {}
    for label, e in by_label.items():
        tputs = np.array(sorted(e.throughputs_kbps().values()))
        tput_series[label] = tputs
        totals[label] = float(tputs.sum())

    rendered = render_cdf(
        tput_series,
        xlabel="per-link end-to-end throughput (Kbit/s)",
    )
    # The paper's claims are per-link: strong links deliver the bulk of
    # bits under every scheme, so aggregates barely move.  In our
    # simulator the 6.9 Kbit/s point is milder than the paper's (their
    # testbed was near saturation), so the separation sits in the lower
    # tail of the per-link CDF rather than at its median — the checks
    # therefore measure mean per-link gain and the bottom decile, and
    # EXPERIMENTS.md records the offset.
    floor = 1e-2

    def _q10(label: str) -> float:
        return float(np.percentile(tput_series[label], 10))

    def _link_ratios(num_label: str, den_label: str) -> np.ndarray:
        num = by_label[num_label].throughputs_kbps()
        den = by_label[den_label].throughputs_kbps()
        return np.array(
            [
                (num.get(link, 0.0) + floor)
                / (den.get(link, 0.0) + floor)
                for link in set(num) | set(den)
            ]
        )

    ppr_vs_sq = _link_ratios("ppr, postamble", "packet_crc, no postamble")
    checks = [
        ShapeCheck(
            name="bottom-decile link throughput: PPR >= packet CRC",
            passed=_q10("ppr, postamble")
            >= _q10("packet_crc, postamble") - 1e-9,
            detail=f"q10: ppr={_q10('ppr, postamble'):.3f} "
            f"pkt={_q10('packet_crc, postamble'):.3f} Kbit/s",
        ),
        ShapeCheck(
            name="mean per-link gain of PPR over the status quo",
            passed=float(ppr_vs_sq.mean()) >= 1.1,
            detail=f"mean link ratio = {ppr_vs_sq.mean():.2f}x "
            "(gains concentrated on marginal links)",
        ),
        ShapeCheck(
            name="PPR never loses to the status quo on any link",
            passed=float(ppr_vs_sq.min()) >= 0.85,
            detail=f"min link ratio = {ppr_vs_sq.min():.2f}x",
        ),
    ]
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={**tput_series, "totals": totals},
    )


if __name__ == "__main__":
    print(run().summary())
