"""Figure 12: scatter of per-link throughput against fragmented CRC.

The paper plots, for every link and all three offered loads, the
link's throughput under PPR (triangles) and packet CRC (circles)
against its throughput under fragmented CRC on the x axis (log-log).
Claims: PPR improves over fragmented CRC by a roughly constant factor;
fragmented CRC far outperforms packet CRC; the spread of the link
quality distribution shrinks with finer recovery granularity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import geometric_mean
from repro.analysis.textplot import render_scatter
from repro.experiments.common import (
    LOAD_HEAVY,
    LOAD_MEDIUM,
    LOAD_MODERATE,
    ExperimentOutput,
    RunCache,
    ShapeCheck,
    grid,
    labelled_evaluations,
)
from repro.experiments.registry import register

_FLOOR_KBPS = 1e-2

_LOADS = (LOAD_MODERATE, LOAD_MEDIUM, LOAD_HEAVY)


@register(
    "fig12",
    title="Throughput scatter: fragmented CRC vs PPR / packet CRC",
    paper_expectation=(
        "PPR above the y=x line by a roughly constant factor; packet "
        "CRC scattered far below fragmented CRC; spread shrinks with "
        "finer recovery granularity"
    ),
    points=grid(load=_LOADS, carrier_sense=False),
    order=12,
)
def run(cache: RunCache) -> ExperimentOutput:
    """Reproduce the Fig. 12 scatter over all three loads."""
    ppr_points: list[tuple[float, float]] = []
    pkt_points: list[tuple[float, float]] = []
    for load in _LOADS:
        result = cache.get(load=load, carrier_sense=False)
        evals = labelled_evaluations(result, postamble_options=(True,))
        frag = evals["fragmented_crc, postamble"].throughputs_kbps()
        ppr = evals["ppr, postamble"].throughputs_kbps()
        pkt = evals["packet_crc, postamble"].throughputs_kbps()
        for link, frag_tput in frag.items():
            ppr_points.append((frag_tput, ppr.get(link, 0.0)))
            pkt_points.append((frag_tput, pkt.get(link, 0.0)))

    ppr_arr = np.array(ppr_points)
    pkt_arr = np.array(pkt_points)
    rendered = render_scatter(
        {
            "PPR": (ppr_arr[:, 0], ppr_arr[:, 1]),
            "packet CRC": (pkt_arr[:, 0], pkt_arr[:, 1]),
        },
        xlabel="fragmented CRC per-link throughput (Kbit/s)",
        ylabel="PPR / packet CRC per-link throughput (Kbit/s)",
        floor=_FLOOR_KBPS,
    )

    # Ratio statistics over links with usable fragmented-CRC throughput.
    active = ppr_arr[:, 0] > _FLOOR_KBPS
    ppr_ratio = geometric_mean(
        (ppr_arr[active, 1] + _FLOOR_KBPS)
        / (ppr_arr[active, 0] + _FLOOR_KBPS)
    )
    pkt_ratio = geometric_mean(
        (pkt_arr[active, 1] + _FLOOR_KBPS)
        / (pkt_arr[active, 0] + _FLOOR_KBPS)
    )
    ratio_spread = float(
        np.std(
            np.log10(
                (ppr_arr[active, 1] + _FLOOR_KBPS)
                / (ppr_arr[active, 0] + _FLOOR_KBPS)
            )
        )
    )
    checks = [
        ShapeCheck(
            name="PPR at or above fragmented CRC (constant-factor gain)",
            passed=ppr_ratio >= 1.0,
            detail=f"geometric mean PPR/frag ratio = {ppr_ratio:.2f}",
        ),
        ShapeCheck(
            name="packet CRC below fragmented CRC",
            passed=pkt_ratio < 1.0,
            detail=f"geometric mean pkt/frag ratio = {pkt_ratio:.2f}",
        ),
        ShapeCheck(
            name="PPR/frag ratio roughly constant across links",
            passed=ratio_spread <= 0.5,
            detail=f"log10 ratio std = {ratio_spread:.2f} decades",
        ),
    ]
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={
            "ppr_points": ppr_arr,
            "packet_points": pkt_arr,
            "ppr_over_frag": ppr_ratio,
            "pkt_over_frag": pkt_ratio,
        },
    )


if __name__ == "__main__":
    print(run().summary())
