"""Figure 16 + §7.5: PP-ARQ retransmission sizes on a single link.

One sender streams 250-byte packets to one receiver over a bursty
channel (collision-like interference bursts over part of each frame).
The paper's claim: "the median retransmission size is approximately
half the full packet size", and Table 1 summarises "significant
end-to-end savings in retransmission cost, a median factor of 50%
reduction" against whole-packet ARQ.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import Cdf
from repro.analysis.textplot import render_cdf
from repro.arq.fullarq import FullPacketArqSession
from repro.arq.protocol import PpArqSession
from repro.experiments.common import ExperimentOutput, RunCache, ShapeCheck
from repro.experiments.registry import register
from repro.phy.chipchannel import transmit_chipwords
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.symbols import SoftPacket
from repro.utils.rng import derive_rng

PACKET_BYTES = 250


class BurstyLinkChannel:
    """Single-link chip channel with collision-like bursts.

    Every frame sees a low residual chip error rate; with probability
    ``burst_prob`` an interference burst covers a contiguous fraction
    of the frame at a high chip error rate — the §7.5 regime where
    most of each packet survives but the CRC fails.
    """

    def __init__(
        self,
        codebook: ZigbeeCodebook,
        rng: np.random.Generator,
        base_error: float = 0.01,
        burst_error: float = 0.4,
        burst_prob: float = 0.85,
        burst_frac_range: tuple[float, float] = (0.1, 0.6),
    ) -> None:
        if not 0 <= burst_prob <= 1:
            raise ValueError(f"burst_prob must be in [0,1], got {burst_prob}")
        lo, hi = burst_frac_range
        if not 0 < lo <= hi < 1:
            raise ValueError(
                f"burst_frac_range must satisfy 0 < lo <= hi < 1, "
                f"got {burst_frac_range}"
            )
        self._codebook = codebook
        self._rng = rng
        self._base = float(base_error)
        self._burst = float(burst_error)
        self._prob = float(burst_prob)
        self._frac = (float(lo), float(hi))

    def __call__(self, symbols: np.ndarray) -> SoftPacket:
        symbols = np.asarray(symbols, dtype=np.int64)
        if symbols.size == 0:
            empty = np.zeros(0)
            return SoftPacket(
                symbols=symbols, hints=empty, truth=symbols
            )
        p = np.full(symbols.size, self._base)
        if self._rng.random() < self._prob:
            frac = self._rng.uniform(*self._frac)
            burst_len = max(1, int(frac * symbols.size))
            start = int(
                self._rng.integers(0, max(1, symbols.size - burst_len))
            )
            p[start : start + burst_len] = self._burst
        words = self._codebook.encode_words(symbols)
        received = transmit_chipwords(words, p, self._rng)
        decoded, dists = self._codebook.decode_hard(received)
        return SoftPacket(
            symbols=decoded,
            hints=dists.astype(np.float64),
            truth=symbols,
        )


@register(
    "fig16",
    title="PP-ARQ partial retransmission sizes (250 B packets)",
    paper_expectation=(
        "median PP-ARQ retransmission ~half the 250-byte packet; "
        "total retransmission cost roughly halved vs whole-packet ARQ"
    ),
    order=16,
)
def run(
    cache: RunCache,
    n_packets: int = 60,
    eta: float = 6.0,
    seed: int = 16,
) -> ExperimentOutput:
    """Transfer packets under PP-ARQ and whole-packet ARQ, compare.

    Runs on its own single-link bursty channel; ``cache`` is unused
    (the spec declares no simulation points).
    """
    codebook = ZigbeeCodebook()
    payload_rng = derive_rng(seed, "fig16-payloads")
    payloads = [
        bytes(payload_rng.integers(0, 256, PACKET_BYTES, dtype=np.uint8))
        for _ in range(n_packets)
    ]

    pp_channel = BurstyLinkChannel(
        codebook, derive_rng(seed, "fig16-pparq-channel")
    )
    pp_session = PpArqSession(pp_channel, eta=eta)
    retransmit_sizes: list[int] = []
    pp_total_bytes = 0
    pp_delivered = 0
    for seq, payload in enumerate(payloads):
        log = pp_session.transfer(seq, payload)
        retransmit_sizes.extend(log.retransmit_packet_bytes)
        pp_total_bytes += log.total_retransmit_bytes
        pp_delivered += int(log.delivered)

    full_channel = BurstyLinkChannel(
        codebook, derive_rng(seed, "fig16-fullarq-channel")
    )
    full_session = FullPacketArqSession(full_channel)
    full_total_bytes = 0
    full_delivered = 0
    for seq, payload in enumerate(payloads):
        log = full_session.transfer(seq, payload)
        full_total_bytes += log.total_retransmit_bytes
        full_delivered += int(log.delivered)

    if not retransmit_sizes:
        raise RuntimeError(
            "channel produced no retransmissions; burst parameters "
            "too benign"
        )
    cdf = Cdf(np.array(retransmit_sizes, dtype=np.float64))
    rendered = render_cdf(
        {"PP-ARQ retransmission size": cdf.samples},
        xlabel="size of partial retransmission (bytes)",
        xmax=float(PACKET_BYTES + 10),
    )
    median_size = cdf.median()
    savings = 1.0 - pp_total_bytes / max(full_total_bytes, 1)
    checks = [
        ShapeCheck(
            name="median retransmission well below the full packet",
            passed=median_size <= 0.7 * PACKET_BYTES,
            detail=f"median {median_size:.0f} B vs {PACKET_BYTES} B "
            "packets (paper: ~half)",
        ),
        ShapeCheck(
            name="all packets eventually delivered by PP-ARQ",
            passed=pp_delivered == n_packets,
            detail=f"{pp_delivered}/{n_packets}",
        ),
        ShapeCheck(
            name="PP-ARQ halves retransmission cost vs full ARQ",
            passed=savings >= 0.40,
            detail=f"retransmitted {pp_total_bytes} B vs "
            f"{full_total_bytes} B: {savings:.0%} saved "
            "(paper: ~50%)",
        ),
        ShapeCheck(
            name="full-packet ARQ struggles on the same channel",
            passed=full_total_bytes > pp_total_bytes,
            detail=f"full ARQ delivered {full_delivered}/{n_packets}",
        ),
    ]
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={
            "retransmit_sizes": np.array(retransmit_sizes),
            "median_size": median_size,
            "pp_total_bytes": pp_total_bytes,
            "full_total_bytes": full_total_bytes,
            "savings": savings,
        },
    )


if __name__ == "__main__":
    print(run().summary())
