"""SIC collision recovery across relative SNR and overlap offset.

Beyond-the-paper experiment on the :mod:`repro.recovery` pipeline: two
senders at unequal ranges collide on the air, and the receiver tries
three strategies on the very same rendered capture —

* **capture-only**: the plain waveform receiver (preamble lock plus
  postamble rollback, :meth:`receive_collision_pair`), which can hand
  up at most the frames the capture effect leaves intact;
* **PPR chunks**: partial credit for the capture-only decodes — every
  codeword whose SoftPHY hint clears η is delivered (paper §5);
* **SIC**: decode the stronger frame, re-modulate it at the estimated
  complex gain, subtract, decode the weaker frame from the residual
  (:class:`repro.recovery.SicDecoder`).

Sweeping the far sender's range (relative SNR) against the overlap
offset maps the *both-frames-recovered region*: SIC turns a collision
into two deliveries wherever capture decodes the strong frame and the
weak frame clears the noise floor.  The region is bounded on both
sides — near-equal powers deny capture a clean strong decode, and a
deeply faded weak frame drowns before cancellation can help — while
the capture-only baseline never exceeds one frame anywhere.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.textplot import format_table
from repro.experiments.common import ExperimentOutput, RunCache, ShapeCheck
from repro.experiments.registry import register
from repro.link.schemes import SicScheme
from repro.phy.batch import WaveformBatchEngine
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.modulation import MskModulator
from repro.phy.spreading import bytes_to_symbols
from repro.phy.sync import sync_field_symbols
from repro.recovery import SicDecoder
from repro.sim.medium import PathLossModel, RadioMedium, Transmission
from repro.sim.medium import waveform_capture as render_capture
from repro.sim.testbed import collision_testbed
from repro.utils.rng import derive_rng, keyed_rng

# 802.15.4 timing: 2 Mchip/s, 32 chips per symbol.
CHIP_RATE_HZ = 2.0e6
CHIPS_PER_SYMBOL = 32
SYMBOL_PERIOD_S = CHIPS_PER_SYMBOL / CHIP_RATE_HZ

#: far-sender ranges spanning near-equal power (4.5 m, +1.9 dB gap)
#: through the comfortable middle to the noise floor (36 m, -4 dB SNR)
FAR_DISTANCES_M = (4.5, 6.0, 9.0, 15.0, 24.0, 30.0, 36.0)

#: overlap depths (symbols of the near frame's tail under the far
#: frame's head) crossed with a half-symbol chip slip, so the sweep
#: hits both codeword-aligned and misaligned collisions
OVERLAP_SYMBOLS = (12, 24, 36)
EXTRA_CHIPS = (0, CHIPS_PER_SYMBOL // 2)


def _delivered(symbols, hints, body, eta):
    """(whole frame correct, codewords delivered under the η rule)."""
    correct = symbols == body
    good = int(((hints <= eta) & correct).sum())
    return bool(correct.all()), good


def _closest_body(symbols, bodies):
    """Index of the transmitted body this decode is nearest to."""
    distances = [int(np.sum(symbols != body)) for body in bodies]
    return int(np.argmin(distances))


def _judge(candidates, bodies, eta):
    """Score a strategy's decode attempts against the transmissions.

    Each attempt is matched to the transmitted body it is nearest to;
    a body counts as recovered *whole* when any attempt reproduces it
    exactly, and its delivered codewords are the best any attempt
    managed under the η rule.  Returns ``(whole frames, codewords)``.
    """
    whole = [False] * len(bodies)
    good = [0] * len(bodies)
    for symbols, hints in candidates:
        which = _closest_body(symbols, bodies)
        ok, delivered = _delivered(
            symbols, hints, bodies[which], eta
        )
        whole[which] = whole[which] or ok
        good[which] = max(good[which], delivered)
    return sum(whole), sum(good)


@register(
    "sic_collision",
    title="SIC both-frames-recovered region (relative SNR x overlap)",
    paper_expectation=(
        "successive interference cancellation recovers BOTH frames of "
        "a collision across a wide band of relative SNRs, bounded by "
        "near-equal powers (no capture) and the noise floor (weak "
        "frame inaudible); plain capture never delivers more than one"
    ),
    order=18,
)
def run(
    cache: RunCache,
    payload_bytes: int = 24,
    near_m: float = 4.0,
    sps: int = 4,
    eta: float = 6.0,
    seed: int = 23,
) -> ExperimentOutput:
    """Map the recovery region over the (range, offset) grid.

    Every capture is rendered once and judged by all three
    strategies; ``cache`` is unused (the spec declares no simulation
    points).
    """
    codebook = ZigbeeCodebook()
    modulator = MskModulator(sps=sps)
    scheme = SicScheme(eta=eta)
    # The chip-level simulation calls a sync field detectable when its
    # chip error rate is at most sync_error_threshold = 0.25; in the
    # +-1 correlation domain an error rate p maps to 1 - 2p, so the
    # waveform passes use threshold 0.5 to agree on "detectable".
    threshold = 0.5
    engine = WaveformBatchEngine(codebook, sps=sps, threshold=threshold)
    decoder = SicDecoder(
        codebook, sps=sps, threshold=threshold, eta=eta
    )

    payload_rng = derive_rng(seed, "sic-collision-payload")
    payloads = [
        payload_rng.integers(0, 256, payload_bytes, dtype=np.uint8)
        .tobytes()
        for _ in range(2)
    ]
    bodies = [
        bytes_to_symbols(scheme.encode_payload(p)) for p in payloads
    ]
    preamble = sync_field_symbols("preamble")
    postamble = sync_field_symbols("postamble")
    streams = [
        np.concatenate([preamble, body, postamble]) for body in bodies
    ]
    waves = [
        modulator.modulate_symbols(stream, codebook)
        for stream in streams
    ]
    n_body = bodies[0].size
    n_stream = streams[0].size
    offsets_chips = [
        (n_stream - overlap) * CHIPS_PER_SYMBOL + extra
        for overlap in OVERLAP_SYMBOLS
        for extra in EXTRA_CHIPS
    ]

    base_frames = np.zeros(
        (len(FAR_DISTANCES_M), len(offsets_chips)), dtype=np.int64
    )
    sic_frames = np.zeros_like(base_frames)
    base_good = np.zeros_like(base_frames)
    sic_good = np.zeros_like(base_frames)
    weak_snr_db = np.zeros(len(FAR_DISTANCES_M))

    for i_dist, far_m in enumerate(FAR_DISTANCES_M):
        testbed = collision_testbed(near_m=near_m, far_m=far_m)
        near, far = testbed.sender_ids
        (receiver,) = testbed.receiver_ids
        # Frozen geometry, no shadowing: the sweep *is* the SNR axis.
        medium = RadioMedium(
            testbed.positions_m,
            path_loss=PathLossModel(shadowing_sigma_db=0.0),
            seed=seed,
        )
        weak_snr_db[i_dist] = 10.0 * np.log10(
            medium.snr(far, receiver)
        )
        for i_off, offset_chips in enumerate(offsets_chips):
            transmissions = [
                Transmission(
                    tx_id=0,
                    sender=near,
                    dst=receiver,
                    start=0.0,
                    symbols=streams[0],
                    symbol_period=SYMBOL_PERIOD_S,
                ),
                Transmission(
                    tx_id=1,
                    sender=far,
                    dst=receiver,
                    start=offset_chips / CHIP_RATE_HZ,
                    symbols=streams[1],
                    symbol_period=SYMBOL_PERIOD_S,
                ),
            ]
            capture = render_capture(
                medium,
                receiver,
                transmissions,
                waves,
                CHIP_RATE_HZ * sps,
                rng=keyed_rng(
                    seed, "sic-collision-noise", i_dist, i_off
                ),
            )

            # Capture-only: the plain receiver's best effort (both
            # sync anchors when it finds them, else the single pass).
            try:
                pair = engine.receive_collision_pair(capture, n_body)
                receptions = [pair.first, pair.second]
            except RuntimeError:
                receptions = [
                    r
                    for r in engine.receive_frames([capture], n_body)
                    if r.acquired
                ]
            plain = [(r.symbols, r.hints) for r in receptions]
            base_frames[i_dist, i_off], base_good[i_dist, i_off] = (
                _judge(plain, bodies, eta)
            )

            # The SIC pipeline degrades gracefully: when cancellation
            # yields no credible weak frame, the plain decodes (and
            # their PPR chunk credit) are still on the table.
            result = decoder.decode_pair(capture, n_body)
            cancelled = plain + [
                (f.reception.symbols, f.reception.hints)
                for f in result.frames
            ]
            sic_frames[i_dist, i_off], sic_good[i_dist, i_off] = (
                _judge(cancelled, bodies, eta)
            )

    headers = ["far sender", "weak SNR"] + [
        f"-{overlap}sym{'+' if extra else ''}"
        for overlap in OVERLAP_SYMBOLS
        for extra in EXTRA_CHIPS
    ]
    rows = [
        [f"{far_m:.1f} m", f"{weak_snr_db[i]:+.1f} dB"]
        + [
            f"{base_frames[i, j]}->{sic_frames[i, j]}"
            for j in range(len(offsets_chips))
        ]
        for i, far_m in enumerate(FAR_DISTANCES_M)
    ]
    rendered = format_table(
        headers,
        rows,
        title=(
            "frames recovered whole, capture-only -> SIC (columns: "
            "overlap depth in symbols; '+' marks a half-symbol slip)"
        ),
    )

    total_symbols = 2 * n_body * base_frames.size
    both = sic_frames == 2
    checks = [
        ShapeCheck(
            name="SIC both-frames-recovered region is non-empty",
            passed=bool(both.any()),
            detail=f"{int(both.sum())}/{base_frames.size} grid points "
            "deliver both frames whole under SIC",
        ),
        ShapeCheck(
            name="capture-only never delivers more than one frame",
            passed=bool((base_frames <= 1).all()),
            detail=f"max {int(base_frames.max())} whole frame(s) "
            "without cancellation",
        ),
        ShapeCheck(
            name="the region is bounded by the noise floor",
            passed=bool((~both[weak_snr_db < 0.0, :]).all())
            and bool(both[weak_snr_db > 10.0, :].any()),
            detail="no both-frame recovery below 0 dB weak-frame SNR",
        ),
        ShapeCheck(
            name="SIC strictly beats PPR-chunk partial delivery",
            passed=int(sic_good.sum()) > int(base_good.sum()),
            detail=f"{sic_good.sum()}/{total_symbols} vs "
            f"{base_good.sum()}/{total_symbols} codewords delivered",
        ),
    ]
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={
            "far_distances_m": np.asarray(FAR_DISTANCES_M),
            "weak_snr_db": weak_snr_db,
            "offsets_chips": np.asarray(offsets_chips),
            "base_frames": base_frames,
            "sic_frames": sic_frames,
            "base_good_symbols": base_good,
            "sic_good_symbols": sic_good,
        },
    )


if __name__ == "__main__":
    print(run().summary())
