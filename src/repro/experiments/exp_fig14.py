"""Figure 14: CCDF of contiguous SoftPHY miss lengths.

A *miss* is an incorrect codeword labelled good at threshold η.  Paper
claims: most misses are short (~30% of length exactly 1) and the length
distribution "decreases faster than an exponential distribution" —
which is what lets PP-ARQ catch missed codewords by retransmitting the
correctly-labelled bad codewords around them.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.analysis.runs import ccdf_from_counts
from repro.analysis.textplot import render_series
from repro.experiments.common import (
    LOAD_HEAVY,
    LOAD_MEDIUM,
    LOAD_MODERATE,
    ExperimentOutput,
    RunCache,
    ShapeCheck,
    grid,
)
from repro.experiments.registry import register
from repro.sim.metrics import miss_run_length_counts

ETAS = (1, 2, 3, 4)

_LOADS = (LOAD_MODERATE, LOAD_MEDIUM, LOAD_HEAVY)


@register(
    "fig14",
    title="CCDF of contiguous miss lengths",
    paper_expectation=(
        "majority of misses short (~30% of length 1); miss-length "
        "CCDF decays faster than exponential for every eta in 1..4"
    ),
    points=grid(load=_LOADS, carrier_sense=False),
    order=14,
)
def run(cache: RunCache) -> ExperimentOutput:
    """Reproduce Fig. 14, aggregating traces from all three loads.

    Misses are rare in our simulator (the codebook separation is
    cleaner than the authors' over-the-air radios), so the run-length
    statistics pool every capacity run the harness already has.
    """
    counts = {eta: Counter() for eta in ETAS}
    for load in _LOADS:
        result = cache.get(load=load, carrier_sense=False)
        for eta, counter in miss_run_length_counts(
            result, etas=ETAS
        ).items():
            counts[eta].update(counter)

    series = {}
    max_len = 1
    for eta in ETAS:
        if counts[eta]:
            lengths, tail = ccdf_from_counts(counts[eta])
            max_len = max(max_len, int(lengths.max()))
            series[f"eta = {eta}"] = (lengths, tail)

    xs = np.arange(1, max_len + 1)
    plotted = {}
    for label, (lengths, tail) in series.items():
        full = np.full(xs.size, np.nan)
        for length, t in zip(lengths, tail, strict=True):
            full[int(length) - 1] = t
        plotted[label] = full
    rendered = render_series(
        xs, plotted, xlabel="length of contiguous misses", logy=True
    )

    total_misses = sum(sum(c.values()) for c in counts.values())
    # Shape checks on the largest-eta curve (most misses).
    eta_star = max(
        (eta for eta in ETAS if counts[eta]),
        key=lambda e: sum(counts[e].values()),
        default=None,
    )
    checks = [
        ShapeCheck(
            name="misses observed at heavy load",
            passed=total_misses > 0,
            detail=f"{total_misses} miss runs across thresholds",
        )
    ]
    if eta_star is not None:
        hist = counts[eta_star]
        total = sum(hist.values())
        frac_len1 = hist.get(1, 0) / total
        lengths, tail = ccdf_from_counts(hist)
        # Faster than exponential: log-tail is concave, i.e. the
        # empirical tail at length L is below the exponential fitted
        # through the length-1 point.
        p1 = 1.0 - frac_len1
        faster = True
        for length, t in zip(lengths, tail, strict=True):
            if length >= 3 and t > (p1 ** (length - 1)) * 3.0:
                faster = False
        checks.extend(
            [
                ShapeCheck(
                    name="length-1 misses form the largest class",
                    passed=frac_len1 >= 0.25,
                    detail=f"{frac_len1:.0%} of misses at eta="
                    f"{eta_star} have length 1 (paper: ~30%)",
                ),
                ShapeCheck(
                    name="tail decays at least exponentially",
                    passed=faster,
                    detail="CCDF below the geometric extrapolation "
                    "of the length-1 mass",
                ),
            ]
        )
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={"counts": {eta: dict(counts[eta]) for eta in ETAS}},
    )


if __name__ == "__main__":
    print(run().summary())
