"""Table 1: the paper's summary of experimental conclusions.

Composes the headline numbers from the other experiments:

* PPR and fragmented CRC improve per-link throughput over the status
  quo (packet CRC without postamble decoding) under load — the paper
  reports >7x under high load and 2x under moderate load;
* PPR beats fragmented CRC;
* PP-ARQ cuts retransmission cost by roughly half.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import median
from repro.analysis.textplot import format_table
from repro.experiments import exp_fig16
from repro.experiments.common import (
    LOAD_HEAVY,
    LOAD_MODERATE,
    ExperimentOutput,
    RunCache,
    ShapeCheck,
    grid,
    labelled_evaluations,
)
from repro.experiments.registry import register


@register(
    "table1",
    title="Headline result summary",
    paper_expectation=(
        "PPR/frag CRC improve per-link throughput >7x under high load "
        "and ~2x under moderate load; PPR above frag CRC; PP-ARQ cuts "
        "retransmission cost ~50%"
    ),
    points=grid(load=(LOAD_MODERATE, LOAD_HEAVY), carrier_sense=False),
    order=1,
)
def run(cache: RunCache) -> ExperimentOutput:
    """Build the Table 1 summary from fresh evaluations."""
    rows = []
    ratios = {}
    for label, load in (
        ("moderate (3.5 Kb/s/node)", LOAD_MODERATE),
        ("heavy (13.8 Kb/s/node)", LOAD_HEAVY),
    ):
        result = cache.get(load=load, carrier_sense=False)
        evals = labelled_evaluations(result)
        status_quo = evals["packet_crc, no postamble"]
        ppr = evals["ppr, postamble"]
        frag = evals["fragmented_crc, postamble"]
        # Per-link improvement ratios — the paper's "per-link
        # throughput" factors.  Links dead under the status quo but
        # alive under PPR contribute large finite ratios via flooring;
        # strong links contribute ~1x, so the mean-of-ratios captures
        # where the gains actually come from.
        floor = 1e-2
        sq_t = status_quo.throughputs_kbps()
        ppr_t = ppr.throughputs_kbps()
        frag_t = frag.throughputs_kbps()
        links = sorted(set(sq_t) | set(ppr_t))
        ppr_ratios = [
            (ppr_t.get(link, 0.0) + floor) / (sq_t.get(link, 0.0) + floor)
            for link in links
        ]
        frag_ratios = [
            (frag_t.get(link, 0.0) + floor) / (sq_t.get(link, 0.0) + floor)
            for link in links
        ]
        ppr_gain = float(np.mean(ppr_ratios))
        frag_gain = float(np.mean(frag_ratios))
        med_ratio = median(ppr_ratios)
        ratios[label] = {
            "ppr_mean_gain": ppr_gain,
            "frag_mean_gain": frag_gain,
            "median_link_ratio": med_ratio,
        }
        rows.append([label, f"{ppr_gain:.2f}x", f"{frag_gain:.2f}x",
                     f"{med_ratio:.2f}x"])

    arq = exp_fig16.run()
    savings = float(arq.series["savings"])
    rows.append(
        [
            "PP-ARQ vs full ARQ",
            f"{savings:.0%} bytes saved",
            "-",
            "-",
        ]
    )
    rendered = format_table(
        [
            "condition",
            "PPR vs status quo",
            "frag CRC vs status quo",
            "median per-link ratio",
        ],
        rows,
        title="Summary of reproduced headline results (paper Table 1)",
    )
    mod = ratios["moderate (3.5 Kb/s/node)"]
    heavy = ratios["heavy (13.8 Kb/s/node)"]
    checks = [
        ShapeCheck(
            name="PPR improves on the status quo under moderate load",
            passed=mod["ppr_mean_gain"] >= 1.1,
            detail=f"{mod['ppr_mean_gain']:.2f}x (paper: ~2x)",
        ),
        ShapeCheck(
            name="gains grow under heavy load",
            passed=heavy["ppr_mean_gain"] >= mod["ppr_mean_gain"],
            detail=f"heavy {heavy['ppr_mean_gain']:.2f}x vs moderate "
            f"{mod['ppr_mean_gain']:.2f}x (paper: 7x vs 2x)",
        ),
        ShapeCheck(
            name="PPR above fragmented CRC in both conditions",
            passed=mod["ppr_mean_gain"] >= mod["frag_mean_gain"]
            and heavy["ppr_mean_gain"] >= heavy["frag_mean_gain"],
        ),
        ShapeCheck(
            name="PP-ARQ cuts retransmission cost roughly in half",
            passed=savings >= 0.40,
            detail=f"{savings:.0%} (paper: ~50%)",
        ),
    ]
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={"ratios": ratios, "pp_arq_savings": savings},
    )


if __name__ == "__main__":
    print(run().summary())
