"""Figure 10: delivery rate CDF, carrier sense off, heavy load.

Claim: packet CRC degrades substantially at 13.8 Kbit/s/node while
PPR's delivery rate remains high (compared against the moderate-load
no-carrier-sense condition, which this experiment also evaluates).
"""

from __future__ import annotations

from repro.experiments import delivery
from repro.experiments.common import (
    LOAD_HEAVY,
    LOAD_MODERATE,
    ExperimentOutput,
    RunCache,
    ShapeCheck,
    grid,
    mean_delivery_rate,
)
from repro.experiments.registry import register


@register(
    "fig10",
    title="Delivery rate CDF, carrier sense off, 13.8 Kbit/s/node",
    paper_expectation=(
        "packet CRC performance collapses at high offered load; "
        "PPR's frame delivery rate remains high"
    ),
    points=grid(load=(LOAD_HEAVY, LOAD_MODERATE), carrier_sense=False),
    order=10,
)
def run(cache: RunCache) -> ExperimentOutput:
    """Fig. 10: heavy load (13.8 Kbit/s/node), carrier sense disabled."""
    evals = delivery.delivery_cdfs(cache, LOAD_HEAVY, carrier_sense=False)
    checks = delivery.common_checks(evals)
    evals_mod = delivery.delivery_cdfs(
        cache, LOAD_MODERATE, carrier_sense=False
    )
    pkt_mod = mean_delivery_rate(evals_mod["packet_crc, no postamble"])
    pkt_heavy = mean_delivery_rate(evals["packet_crc, no postamble"])
    ppr_heavy = mean_delivery_rate(evals["ppr, postamble"])
    checks.append(
        ShapeCheck(
            name="packet CRC degrades substantially under heavy load",
            passed=pkt_heavy <= 0.75 * pkt_mod,
            detail=f"pkt mean {pkt_mod:.3f} (moderate) -> "
            f"{pkt_heavy:.3f} (heavy)",
        )
    )
    checks.append(
        ShapeCheck(
            name="PPR remains well above packet CRC under heavy load",
            passed=ppr_heavy >= 1.5 * pkt_heavy,
            detail=f"ppr+postamble {ppr_heavy:.3f} vs pkt "
            f"{pkt_heavy:.3f}",
        )
    )
    return ExperimentOutput(
        rendered=delivery.render(evals),
        shape_checks=checks,
        series=delivery.rate_series(evals),
    )


if __name__ == "__main__":
    print(run().summary())
