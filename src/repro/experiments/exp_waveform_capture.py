"""Capture effect at waveform level, over testbed geometry.

Beyond-the-paper experiment on the batched waveform pipeline: two
senders at unequal ranges from one receiver
(:func:`repro.sim.testbed.collision_testbed`) collide on the air, and
the receiver's capture window is rendered through the radio medium's
actual link budget (:func:`repro.sim.medium.waveform_capture`) rather
than the unit gains the Fig. 13 anatomy uses.  The expected asymmetry
is the capture effect: the near (stronger) sender's frame decodes
through the collision almost untouched, while the far sender loses its
preamble under the near frame and is only recovered — clean tail,
destroyed head — by rolling back from its postamble, exactly the
§4 rollback story at sample fidelity.

The whole reception runs through the
:class:`~repro.phy.batch.WaveformBatchEngine`: one fused sync pass and
one fused matched-filter + nearest-codeword decode for both frames.

A second capture repeats the collision with the chip grids *exactly*
codeword-aligned — PPR's blind spot: the near frame's chips form
valid codewords inside the far frame's decode windows, so the far
head decodes to confidently wrong symbols (hint 0) that the η
threshold rule happily delivers.  Successive interference
cancellation (:class:`repro.recovery.SicDecoder`) closes the hole on
both captures: it subtracts the re-modulated near frame and decodes
the far frame whole from the residual, turning the misleading head
into a full recovery under :class:`~repro.link.schemes.SicScheme`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.textplot import render_series
from repro.experiments.common import ExperimentOutput, RunCache, ShapeCheck
from repro.experiments.registry import register
from repro.link.schemes import SicScheme
from repro.phy.batch import WaveformBatchEngine
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.modulation import MskModulator
from repro.phy.sync import sync_field_symbols
from repro.recovery import SicDecoder
from repro.sim.medium import PathLossModel, RadioMedium, Transmission
from repro.sim.medium import waveform_capture as render_capture
from repro.sim.metrics import trace_deliver
from repro.sim.testbed import collision_testbed
from repro.utils.rng import derive_rng

# 802.15.4 timing: 2 Mchip/s, 32 chips per symbol.
CHIP_RATE_HZ = 2.0e6
CHIPS_PER_SYMBOL = 32
SYMBOL_PERIOD_S = CHIPS_PER_SYMBOL / CHIP_RATE_HZ


@register(
    "waveform_capture",
    title="Capture effect at waveform level (testbed geometry)",
    paper_expectation=(
        "the near sender's frame decodes through the collision "
        "(capture effect); the far sender's preamble is buried but "
        "its clean tail is recovered by postamble rollback; a "
        "codeword-aligned overlap defeats the hints (confidently "
        "wrong head) and is recovered whole only by SIC"
    ),
    order=17,
)
def run(
    cache: RunCache,
    n_body_symbols: int = 60,
    overlap_symbols: int = 25,
    sps: int = 4,
    near_m: float = 4.0,
    far_m: float = 9.0,
    seed: int = 19,
) -> ExperimentOutput:
    """Render the two-sender collision through the medium and decode.

    Runs the waveform pipeline on its own single-collision capture;
    ``cache`` is unused (the spec declares no simulation points).
    """
    if overlap_symbols >= n_body_symbols:
        raise ValueError("overlap must be shorter than the packet body")
    codebook = ZigbeeCodebook()
    rng = derive_rng(seed, "waveform-capture")
    modulator = MskModulator(sps=sps)
    engine = WaveformBatchEngine(codebook, sps=sps)
    testbed = collision_testbed(near_m=near_m, far_m=far_m)
    near, far = testbed.sender_ids
    (receiver,) = testbed.receiver_ids
    # Frozen geometry, no shadowing: the experiment is about the
    # capture asymmetry the distances alone create.
    medium = RadioMedium(
        testbed.positions_m,
        path_loss=PathLossModel(shadowing_sigma_db=0.0),
        seed=seed,
    )

    preamble = sync_field_symbols("preamble")
    postamble = sync_field_symbols("postamble")
    body_near = rng.integers(0, 16, n_body_symbols)
    body_far = rng.integers(0, 16, n_body_symbols)
    stream_near = np.concatenate([preamble, body_near, postamble])
    stream_far = np.concatenate([preamble, body_far, postamble])

    # The far sender starts while the near frame's tail is still on
    # the air: its preamble lands under the (much stronger) near frame.
    # The extra half-symbol keeps the two chip grids (and the O-QPSK
    # rail parity) aligned but their codeword boundaries offset — a
    # symbol-aligned overlap would leave the near frame's chips
    # forming *valid* codewords inside the far frame's windows, hiding
    # the corruption from the Hamming hints entirely.
    sample_rate = CHIP_RATE_HZ * sps
    offset_symbols = stream_near.size - overlap_symbols
    offset_chips = (
        offset_symbols * CHIPS_PER_SYMBOL + CHIPS_PER_SYMBOL // 2
    )
    far_start_s = offset_chips / CHIP_RATE_HZ
    transmissions = [
        Transmission(
            tx_id=0,
            sender=near,
            dst=receiver,
            start=0.0,
            symbols=stream_near,
            symbol_period=SYMBOL_PERIOD_S,
        ),
        Transmission(
            tx_id=1,
            sender=far,
            dst=receiver,
            start=far_start_s,
            symbols=stream_far,
            symbol_period=SYMBOL_PERIOD_S,
        ),
    ]
    waves = [
        modulator.modulate_symbols(stream_near, codebook),
        modulator.modulate_symbols(stream_far, codebook),
    ]
    capture = render_capture(
        medium,
        receiver,
        transmissions,
        waves,
        sample_rate,
        rng=derive_rng(seed, "waveform-capture-noise"),
    )

    # Fused reception: the near frame syncs on its clean preamble; the
    # far frame's preamble collided, so it anchors on its postamble
    # and rolls back.  Both codeword runs decode in one engine call.
    pair = engine.receive_collision_pair(capture, n_body_symbols)
    hints_near, hints_far = pair.first.hints, pair.second.hints
    correct_near = pair.first.symbols == body_near
    correct_far = pair.second.symbols == body_far

    # The same collision with the chip grids codeword-aligned — the
    # hints' blind spot.  The near frame's chips now fill whole decode
    # windows of the far frame, forming *valid* codewords: the far
    # head decodes to wrong symbols at hint 0.
    aligned_chips = offset_symbols * CHIPS_PER_SYMBOL
    transmissions_aligned = [
        transmissions[0],
        Transmission(
            tx_id=1,
            sender=far,
            dst=receiver,
            start=aligned_chips / CHIP_RATE_HZ,
            symbols=stream_far,
            symbol_period=SYMBOL_PERIOD_S,
        ),
    ]
    capture_aligned = render_capture(
        medium,
        receiver,
        transmissions_aligned,
        waves,
        sample_rate,
        rng=derive_rng(seed, "waveform-capture-aligned-noise"),
    )
    pair_aligned = engine.receive_collision_pair(
        capture_aligned, n_body_symbols
    )
    hints_aligned = pair_aligned.second.hints
    correct_aligned = pair_aligned.second.symbols == body_far

    # SIC closes the hole: cancel the re-modulated near frame and
    # decode the far frame from the residual, on both captures.  The
    # waveform threshold 0.5 mirrors the chip-level detectability rule
    # (chip error rate p <-> correlation 1 - 2p at p = 0.25).
    scheme = SicScheme()
    decoder = SicDecoder(
        codebook, sps=sps, threshold=0.5, eta=scheme.eta
    )
    sic_far_passed = {}
    for label, sic_capture in (
        ("offset", capture),
        ("aligned", capture_aligned),
    ):
        sic_far_passed[label] = False
        for frame in decoder.decode_pair(
            sic_capture, n_body_symbols
        ).frames:
            wrong_far = int(np.sum(frame.reception.symbols != body_far))
            wrong_near = int(
                np.sum(frame.reception.symbols != body_near)
            )
            if wrong_far < wrong_near:
                delivery = trace_deliver(
                    scheme,
                    frame.reception.symbols == body_far,
                    frame.reception.hints,
                )
                sic_far_passed[label] = delivery.frame_passed

    xs = np.arange(n_body_symbols)
    rendered = render_series(
        xs,
        {
            "near frame Hamming distance": hints_near,
            "far frame Hamming distance": hints_far,
        },
        xlabel="time (codeword number)",
    )

    # The far frame's head: the overlap minus its (collided) sync field.
    dirty_far_len = max(overlap_symbols - preamble.size, 1)
    clean_far = hints_far[dirty_far_len:]
    snr_gap_db = 10.0 * np.log10(
        medium.snr(near, receiver) / medium.snr(far, receiver)
    )
    checks = [
        ShapeCheck(
            name="near frame captures through the collision",
            passed=float(np.mean(correct_near)) >= 0.95,
            detail=f"{correct_near.sum()}/{n_body_symbols} codewords "
            f"correct at +{snr_gap_db:.1f} dB link advantage",
        ),
        ShapeCheck(
            name="far frame's preamble is buried by the near frame",
            passed=all(
                abs(d.sample_offset - offset_chips * sps) > sps
                for d in pair.preamble_detections
            ),
            detail=f"{len(pair.preamble_detections)} preamble "
            "detection(s), none near the far frame's offset",
        ),
        ShapeCheck(
            name="far frame's clean tail recovered via postamble rollback",
            passed=float(np.mean(clean_far)) <= 1.0
            and float(np.mean(correct_far[dirty_far_len:])) >= 0.95,
            detail=f"clean-tail mean hint {np.mean(clean_far):.2f}, "
            f"correct {np.mean(correct_far[dirty_far_len:]):.2%}",
        ),
        ShapeCheck(
            name="far frame's overlapped head shows high hints",
            passed=float(np.mean(hints_far[:dirty_far_len])) >= 4.0,
            detail=f"mean hint {np.mean(hints_far[:dirty_far_len]):.2f} "
            "in the overlap",
        ),
        ShapeCheck(
            name="aligned overlap hides the corruption from the hints",
            passed=bool((~correct_aligned[:dirty_far_len]).all())
            and float(np.mean(hints_aligned[:dirty_far_len])) <= 1.0,
            detail=f"{int((~correct_aligned[:dirty_far_len]).sum())}"
            f"/{dirty_far_len} head codewords wrong at mean hint "
            f"{np.mean(hints_aligned[:dirty_far_len]):.2f} — the η "
            "rule would deliver them",
        ),
        ShapeCheck(
            name="SIC recovers the far frame whole from both captures",
            passed=sic_far_passed["offset"]
            and sic_far_passed["aligned"],
            detail="SicScheme frame CRC passes on the cancelled "
            f"residual: offset={sic_far_passed['offset']}, "
            f"aligned={sic_far_passed['aligned']}",
        ),
    ]
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={
            "near_hints": hints_near,
            "near_correct": correct_near,
            "far_hints": hints_far,
            "far_correct": correct_far,
            "snr_gap_db": snr_gap_db,
            "aligned_far_hints": hints_aligned,
            "aligned_far_correct": correct_aligned,
            "sic_far_passed_offset": sic_far_passed["offset"],
            "sic_far_passed_aligned": sic_far_passed["aligned"],
        },
    )


if __name__ == "__main__":
    print(run().summary())
