"""Declarative experiment registry.

Every ``exp_*`` module registers exactly one :class:`ExperimentSpec`
via the :func:`register` decorator, declaring its id, title, the
paper's expectation, and — crucially — the simulation points it needs
as :class:`~repro.experiments.common.Scenario` overrides of the run
cache's base config.  The runner prefetches the union of the selected
experiments' declared points (sharded across worker processes) before
any experiment body runs; because the declaration lives next to the
code, there is no shadow point map to drift out of date.

Registration example::

    @register(
        "fig3",
        title="Hamming distance distributions",
        paper_expectation="correct and incorrect codewords separate",
        points=grid(load=(3500.0, 6900.0, 13800.0), carrier_sense=False),
        order=3,
    )
    def run(cache):
        ...
        return ExperimentOutput(rendered=..., shape_checks=..., series=...)

The decorated callable takes a :class:`RunCache` (``None`` selects the
shared default cache) and returns a full
:class:`~repro.experiments.common.ExperimentResult`: the wrapper
stamps the spec's identity onto the body's
:class:`~repro.experiments.common.ExperimentOutput`, so id/title/
expectation are stated exactly once, on the spec.
"""

from __future__ import annotations

import functools
import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.experiments.common import (
    ExperimentOutput,
    ExperimentResult,
    RunCache,
    Scenario,
    default_runs,
)
from repro.sim.network import SimulationConfig


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one registered experiment."""

    experiment_id: str
    title: str
    paper_expectation: str
    points: tuple[Scenario, ...]
    order: float
    run: Callable[..., ExperimentResult] = field(compare=False)

    def configs(self, base: SimulationConfig) -> list[SimulationConfig]:
        """The simulation configs the declared points resolve to."""
        return [scenario.config(base) for scenario in self.points]


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(
    experiment_id: str,
    *,
    title: str,
    paper_expectation: str,
    points: tuple[Scenario, ...] = (),
    order: float = 0.0,
) -> Callable[[Callable[..., ExperimentOutput]], Callable[..., ExperimentResult]]:
    """Declare an experiment and register it under ``experiment_id``.

    ``points`` are the simulation points the experiment will request
    from its cache, as scenarios over the cache's base config;
    ``order`` sorts ``--list`` / ``--all`` presentation.  Registering
    the same id twice is an error — one module, one experiment.
    """

    def decorate(
        fn: Callable[..., ExperimentOutput],
    ) -> Callable[..., ExperimentResult]:
        @functools.wraps(fn)
        def run(
            cache: RunCache | None = None, **kwargs: Any
        ) -> ExperimentResult:
            output = fn(
                cache if cache is not None else default_runs(), **kwargs
            )
            return ExperimentResult(
                experiment_id=experiment_id,
                title=title,
                paper_expectation=paper_expectation,
                rendered=output.rendered,
                shape_checks=list(output.shape_checks),
                series=dict(output.series),
            )

        spec = ExperimentSpec(
            experiment_id=experiment_id,
            title=title,
            paper_expectation=paper_expectation,
            points=tuple(points),
            order=float(order),
            run=run,
        )
        existing = _REGISTRY.get(experiment_id)
        if existing is not None:
            raise ValueError(
                f"experiment {experiment_id!r} registered twice "
                f"(first by {getattr(existing.run, '__module__', '?')}, "
                f"again by {getattr(fn, '__module__', '?')})"
            )
        _REGISTRY[experiment_id] = spec
        # function objects accept ad-hoc attributes at runtime; the
        # stubs' Callable view does not
        run.spec = spec  # type: ignore[attr-defined]
        return run

    return decorate


def discover() -> None:
    """Import every ``repro.experiments.exp_*`` module (idempotent).

    Importing a module triggers its :func:`register` call; modules
    already imported are no-ops, so discovery is safe to call from
    the runner, tests, and tooling alike.
    """
    pkg = importlib.import_module("repro.experiments")
    for info in pkgutil.iter_modules(pkg.__path__):
        if info.name.startswith("exp_"):
            importlib.import_module(f"{pkg.__name__}.{info.name}")


def all_specs() -> list[ExperimentSpec]:
    """Every registered spec, in presentation order."""
    discover()
    return sorted(
        _REGISTRY.values(), key=lambda s: (s.order, s.experiment_id)
    )


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The spec registered under ``experiment_id``.

    Raises ``ValueError`` (listing what is available) for unknown ids.
    """
    discover()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None
