"""Figure 13: anatomy of a collision, at waveform level.

Two MSK packets from different senders partially overlap at one
receiver.  The paper shows each packet's per-codeword Hamming distance
over time with markers for correct codewords: distance sits near zero
on the cleanly-received runs, rises sharply across the collision burst,
and the packet whose preamble was lost is recovered through its
postamble.

This experiment exercises the full waveform pipeline — MSK modulation,
superposition, AWGN, preamble/postamble correlation sync, matched
filtering, despreading — rather than the chip-level shortcut the
network simulations use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.textplot import render_series
from repro.experiments.common import ExperimentOutput, RunCache, ShapeCheck
from repro.experiments.registry import register
from repro.phy.batch import WaveformBatchEngine
from repro.phy.channelsim import TransmissionInstance, awgn_collision_channel
from repro.phy.codebook import ZigbeeCodebook
from repro.phy.modulation import MskModulator
from repro.phy.sync import sync_field_symbols
from repro.utils.rng import derive_rng


@dataclass
class CollisionAnatomy:
    """Decoded view of one packet in the collision."""

    name: str
    sync_kind: str
    hints: np.ndarray
    correct: np.ndarray


@register(
    "fig13",
    title="Anatomy of a collision (waveform level)",
    paper_expectation=(
        "Hamming distance ~0 on cleanly-received codeword runs, high "
        "across the collision burst; the packet whose preamble was "
        "lost is recovered via its postamble"
    ),
    order=13,
)
def run(
    cache: RunCache,
    n_body_symbols: int = 120,
    overlap_symbols: int = 45,
    sps: int = 4,
    noise_power: float = 0.05,
    seed: int = 7,
) -> ExperimentOutput:
    """Simulate the two-packet collision and decode both sides.

    Runs the waveform pipeline on its own single-collision channel;
    ``cache`` is unused (the spec declares no simulation points).
    """
    if overlap_symbols >= n_body_symbols:
        raise ValueError("overlap must be shorter than the packet body")
    codebook = ZigbeeCodebook()
    rng = derive_rng(seed, "fig13")
    modulator = MskModulator(sps=sps)
    engine = WaveformBatchEngine(codebook, sps=sps)

    preamble = sync_field_symbols("preamble")
    postamble = sync_field_symbols("postamble")
    body1 = rng.integers(0, 16, n_body_symbols)
    body2 = rng.integers(0, 16, n_body_symbols)
    stream1 = np.concatenate([preamble, body1, postamble])
    stream2 = np.concatenate([preamble, body2, postamble])
    wave1 = modulator.modulate_symbols(stream1, codebook)
    wave2 = modulator.modulate_symbols(stream2, codebook)

    # Packet 2 starts so that its preamble lands inside packet 1's tail:
    # packet 1 loses its tail, packet 2 loses its head (and preamble).
    chips_per_symbol = codebook.chips_per_symbol
    offset_symbols = stream1.size - overlap_symbols
    offset_samples = offset_symbols * chips_per_symbol * sps
    capture = awgn_collision_channel(
        [
            TransmissionInstance(samples=wave1, offset=0, gain=1.0),
            TransmissionInstance(
                samples=wave2, offset=offset_samples, gain=1.0
            ),
        ],
        noise_power=noise_power,
        rng=derive_rng(seed, "fig13-noise"),
    )

    # Packet 1 syncs on its (cleanly received) preamble; packet 2's
    # preamble collided, so it anchors on its postamble and rolls
    # back.  Both packets' codeword runs go through the engine's fused
    # matched filter + nearest-codeword decode in one call.
    pair = engine.receive_collision_pair(capture, n_body_symbols)
    sym1, hints1 = pair.first.symbols, pair.first.hints
    sym2, hints2 = pair.second.symbols, pair.second.hints

    packet1 = CollisionAnatomy(
        name="first packet (preamble sync)",
        sync_kind="preamble",
        hints=hints1,
        correct=sym1 == body1,
    )
    packet2 = CollisionAnatomy(
        name="second packet (postamble rollback)",
        sync_kind="postamble",
        hints=hints2,
        correct=sym2 == body2,
    )

    xs = np.arange(n_body_symbols)
    rendered = render_series(
        xs,
        {
            "packet 1 Hamming distance": packet1.hints,
            "packet 2 Hamming distance": packet2.hints,
        },
        xlabel="time (codeword number)",
    )

    # Shape checks: clean regions decode with low hints, the overlapped
    # regions show high hints, and hints track correctness.
    clean1 = packet1.hints[: n_body_symbols - overlap_symbols]
    dirty1 = packet1.hints[n_body_symbols - overlap_symbols :]
    # Packet 2's head: overlap minus its sync field (which also collided).
    dirty2_len = max(overlap_symbols - preamble.size, 1)
    clean2 = packet2.hints[dirty2_len:]
    checks = [
        ShapeCheck(
            name="packet 1 clean run decodes with near-zero hints",
            passed=float(np.mean(clean1)) <= 1.0
            and bool(packet1.correct[: clean1.size].all()),
            detail=f"mean hint {np.mean(clean1):.2f} over "
            f"{clean1.size} codewords",
        ),
        ShapeCheck(
            name="collision region shows high hints on packet 1",
            passed=float(np.mean(dirty1)) >= 4.0,
            detail=f"mean hint {np.mean(dirty1):.2f} in overlap",
        ),
        ShapeCheck(
            name="packet 2 recovered through postamble rollback",
            passed=float(np.mean(clean2)) <= 1.0
            and float(np.mean(packet2.correct[dirty2_len:])) >= 0.95,
            detail=f"clean-run mean hint {np.mean(clean2):.2f}, "
            f"correct {np.mean(packet2.correct[dirty2_len:]):.2%}",
        ),
        ShapeCheck(
            name="hints separate correct from incorrect codewords",
            passed=_hint_separation(packet1, packet2),
            detail="mean hint(incorrect) > mean hint(correct) + 3",
        ),
    ]
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={
            "packet1_hints": packet1.hints,
            "packet1_correct": packet1.correct,
            "packet2_hints": packet2.hints,
            "packet2_correct": packet2.correct,
        },
    )


def _hint_separation(*packets: CollisionAnatomy) -> bool:
    hints = np.concatenate([p.hints for p in packets])
    correct = np.concatenate([p.correct for p in packets])
    if correct.all() or not correct.any():
        return False
    return float(hints[~correct].mean()) > float(hints[correct].mean()) + 3.0


if __name__ == "__main__":
    print(run().summary())
