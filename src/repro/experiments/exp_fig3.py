"""Figure 3: Hamming-distance CDFs for correct vs incorrect codewords.

Paper claim: *"Conditioned on a correct decoding, 96% of codewords have
a Hamming distance of 1 or less.  In contrast, barely 10% of the
incorrect codewords have a distance of 6 or less."*  The separation is
what makes Hamming distance a usable SoftPHY hint.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.textplot import render_series
from repro.experiments.common import (
    LOAD_HEAVY,
    LOAD_MEDIUM,
    LOAD_MODERATE,
    ExperimentOutput,
    RunCache,
    ShapeCheck,
    grid,
)
from repro.experiments.registry import register
from repro.sim.metrics import hint_histograms

LOADS = {
    "3.5 Kbits/s/node": LOAD_MODERATE,
    "6.9 Kbits/s/node": LOAD_MEDIUM,
    "13.8 Kbits/s/node": LOAD_HEAVY,
}


@register(
    "fig3",
    title="Hamming distance distributions, correct vs incorrect",
    paper_expectation=(
        ">=96% of correct codewords at Hamming distance <= 1; only "
        "~10% of incorrect codewords at distance <= 6, at all three "
        "offered loads"
    ),
    points=grid(load=tuple(LOADS.values()), carrier_sense=False),
    order=3,
)
def run(cache: RunCache) -> ExperimentOutput:
    """Reproduce Fig. 3 from the three load points (carrier sense off)."""
    xs = np.arange(0, 13)
    series: dict[str, np.ndarray] = {}
    stats: dict[str, tuple[float, float]] = {}
    for label, load in LOADS.items():
        result = cache.get(load=load, carrier_sense=False)
        correct_hist, incorrect_hist = hint_histograms(result)
        cdf_correct = np.cumsum(correct_hist) / max(correct_hist.sum(), 1)
        cdf_incorrect = np.cumsum(incorrect_hist) / max(
            incorrect_hist.sum(), 1
        )
        series[f"{label}, correct"] = cdf_correct[xs]
        series[f"{label}, incorrect"] = cdf_incorrect[xs]
        stats[label] = (float(cdf_correct[1]), float(cdf_incorrect[6]))

    rendered = render_series(
        xs,
        series,
        xlabel="Hamming distance",
        logy=False,
    )
    worst_correct = min(v[0] for v in stats.values())
    worst_incorrect = max(v[1] for v in stats.values())
    checks = [
        ShapeCheck(
            name="correct codewords concentrate at distance <= 1",
            passed=worst_correct >= 0.80,
            detail=f"min over loads P(d<=1|correct) = {worst_correct:.3f} "
            "(paper: 0.96)",
        ),
        ShapeCheck(
            name="incorrect codewords rarely at distance <= 6",
            passed=worst_incorrect <= 0.25,
            detail=f"max over loads P(d<=6|incorrect) = "
            f"{worst_incorrect:.3f} (paper: ~0.10)",
        ),
        ShapeCheck(
            name="distributions separated at eta = 6",
            passed=all(
                c_le1 > inc_le6 for (c_le1, inc_le6) in stats.values()
            ),
            detail="P(d<=1|correct) > P(d<=6|incorrect) at every load",
        ),
    ]
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={"x": xs, **series, "stats": stats},
    )


if __name__ == "__main__":
    print(run().summary())
