"""Beyond the paper: seed-replicated load sweep with confidence bands.

The paper evaluates each offered load from a single testbed trace.
This experiment exercises the scenario-sweep API to replicate every
load point across independent seeds and attach 95% confidence
intervals to the headline comparison (PPR with postamble decoding vs
the status-quo packet CRC without it) — establishing that the paper's
ordering is a property of the *conditions*, not of one noise
realisation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.textplot import format_table
from repro.experiments.common import (
    DEFAULT_SEED,
    LOAD_HEAVY,
    LOAD_MEDIUM,
    LOAD_MODERATE,
    ExperimentOutput,
    RunCache,
    ShapeCheck,
    labelled_evaluations,
    mean_delivery_rate,
    sweep,
)
from repro.experiments.registry import register

LOADS = (LOAD_MODERATE, LOAD_MEDIUM, LOAD_HEAVY)
# Independent replications; the first seed matches the paper
# experiments' runs, so one point per load is shared with them.
SEEDS = (DEFAULT_SEED, DEFAULT_SEED + 1, DEFAULT_SEED + 2)

_SWEEP = sweep(load=LOADS, seed=SEEDS, carrier_sense=False)

# Two-sided 95% normal quantile; with three seeds per point this is a
# coarse band, but it is exactly what the check needs — "does the
# scheme ordering survive seed noise", not a publication-grade CI.
_Z95 = 1.96


def _mean_ci(values: list[float]) -> tuple[float, float]:
    arr = np.asarray(values, dtype=np.float64)
    half = (
        _Z95 * arr.std(ddof=1) / np.sqrt(arr.size)
        if arr.size > 1
        else 0.0
    )
    return float(arr.mean()), float(half)


@register(
    "sweep_load",
    title="Load sweep with seed replication (beyond the paper)",
    paper_expectation=(
        "beyond the paper: PPR's delivery advantage over the status "
        "quo holds at every offered load with non-overlapping 95% "
        "confidence bands across seeds"
    ),
    points=_SWEEP.scenarios,
    order=100,
)
def run(cache: RunCache) -> ExperimentOutput:
    """Replicate each load across seeds and compare with CIs."""
    per_load: dict[float, dict[str, list[float]]] = {
        load: {"ppr": [], "status_quo": []} for load in LOADS
    }
    for _scenario, result in _SWEEP.run(cache):
        evals = labelled_evaluations(result)
        load = result.config.load_bits_per_s_per_node
        per_load[load]["ppr"].append(
            mean_delivery_rate(evals["ppr, postamble"])
        )
        per_load[load]["status_quo"].append(
            mean_delivery_rate(evals["packet_crc, no postamble"])
        )

    rows = []
    stats: dict[str, dict[str, float]] = {}
    for load in LOADS:
        ppr_mean, ppr_hw = _mean_ci(per_load[load]["ppr"])
        sq_mean, sq_hw = _mean_ci(per_load[load]["status_quo"])
        # Paired per-seed gap: both schemes are evaluated on the same
        # recorded trace per seed, so the seed-to-seed noise they
        # share cancels — the statistically meaningful comparison.
        gap_values = [
            p - s
            for p, s in zip(
                per_load[load]["ppr"], per_load[load]["status_quo"], strict=True
            )
        ]
        gap_mean, gap_hw = _mean_ci(gap_values)
        label = f"{load / 1000:.1f} Kbit/s/node"
        stats[label] = {
            "ppr_mean": ppr_mean,
            "ppr_ci": ppr_hw,
            "status_quo_mean": sq_mean,
            "status_quo_ci": sq_hw,
            "gap_mean": gap_mean,
            "gap_ci": gap_hw,
            "gap_min": float(min(gap_values)),
        }
        rows.append(
            [
                label,
                f"{ppr_mean:.3f} +- {ppr_hw:.3f}",
                f"{sq_mean:.3f} +- {sq_hw:.3f}",
                f"{gap_mean:+.3f} +- {gap_hw:.3f}",
            ]
        )
    rendered = format_table(
        [
            "offered load",
            "PPR+postamble delivery",
            "status quo delivery",
            "paired gap",
        ],
        rows,
        title=f"Mean per-link delivery rate over {len(SEEDS)} seeds "
        "(95% CI)",
    )

    values = list(stats.values())
    gaps = [v["gap_mean"] for v in values]
    separated = all(
        v["gap_min"] > 0 and v["gap_mean"] - v["gap_ci"] > 0
        for v in values
    )
    checks = [
        ShapeCheck(
            name="PPR above the status quo at every load, beyond "
            "seed noise",
            passed=separated,
            detail="paired gap positive in every replication and its "
            "95% band clear of zero at every load"
            if separated
            else "paired PPR-vs-status-quo gap not separated from "
            "zero at some load",
        ),
        ShapeCheck(
            name="status quo degrades from moderate to heavy load",
            passed=values[-1]["status_quo_mean"]
            < values[0]["status_quo_mean"],
            detail=f"{values[0]['status_quo_mean']:.3f} -> "
            f"{values[-1]['status_quo_mean']:.3f}",
        ),
        ShapeCheck(
            name="PPR's advantage does not shrink under load",
            passed=gaps[-1] >= gaps[0] - 0.05,
            detail=f"paired gap {gaps[0]:+.3f} (moderate) -> "
            f"{gaps[-1]:+.3f} (heavy)",
        ),
        ShapeCheck(
            name="seed-to-seed variability is small",
            passed=all(
                v["ppr_ci"] <= 0.2 and v["status_quo_ci"] <= 0.2
                for v in values
            ),
            detail="all CI half-widths <= 0.2",
        ),
    ]
    return ExperimentOutput(
        rendered=rendered,
        shape_checks=checks,
        series={
            "loads": list(LOADS),
            "seeds": list(SEEDS),
            "per_load_ppr": {
                str(load): per_load[load]["ppr"] for load in LOADS
            },
            "per_load_status_quo": {
                str(load): per_load[load]["status_quo"] for load in LOADS
            },
            "stats": stats,
        },
    )


if __name__ == "__main__":
    print(run().summary())
