"""Experiment harness: one module per table/figure of the paper.

Every ``exp_*`` module registers a declarative
:class:`~repro.experiments.registry.ExperimentSpec` — id, title, the
paper's expectation, and the simulation points it needs — and returns
a result object with a stable JSON schema.  ``python -m
repro.experiments.runner --all`` regenerates everything (``--list``
enumerates, ``--format json`` / ``--out DIR`` emit machine-readable
artifacts); the pytest benchmarks call the same entry points and
assert the *shape* checks (who wins, by roughly what factor, where
crossovers fall).
"""

from repro.experiments.common import (
    LOAD_HEAVY,
    LOAD_MEDIUM,
    LOAD_MODERATE,
    ExperimentOutput,
    ExperimentResult,
    RunCache,
    Scenario,
    ShapeCheck,
    Sweep,
    default_runs,
    grid,
    labelled_evaluations,
    sweep,
)
from repro.experiments.registry import (
    ExperimentSpec,
    all_specs,
    discover,
    get_spec,
    register,
)

__all__ = [
    "ExperimentOutput",
    "ExperimentResult",
    "ExperimentSpec",
    "LOAD_HEAVY",
    "LOAD_MEDIUM",
    "LOAD_MODERATE",
    "RunCache",
    "Scenario",
    "ShapeCheck",
    "Sweep",
    "all_specs",
    "default_runs",
    "discover",
    "get_spec",
    "grid",
    "labelled_evaluations",
    "register",
    "sweep",
]
