"""Experiment harness: one module per table/figure of the paper.

Every experiment is deterministic (explicit seeds), returns a result
object carrying the measured series plus the paper's expectation, and
renders itself as text.  ``python -m repro.experiments.runner --all``
regenerates everything; the pytest benchmarks call the same entry
points and assert the *shape* checks (who wins, by roughly what factor,
where crossovers fall).
"""

from repro.experiments.common import (
    CapacityRuns,
    ExperimentResult,
    LOAD_HEAVY,
    LOAD_MEDIUM,
    LOAD_MODERATE,
    ShapeCheck,
    default_runs,
)

__all__ = [
    "CapacityRuns",
    "ExperimentResult",
    "LOAD_HEAVY",
    "LOAD_MEDIUM",
    "LOAD_MODERATE",
    "ShapeCheck",
    "default_runs",
]
